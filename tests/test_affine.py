"""Unit tests for LP affine forms."""

import pytest

from repro.lp.affine import AffBuilder, AffForm, VarPool


@pytest.fixture()
def pool():
    return VarPool()


class TestVarPool:
    def test_fresh_assigns_dense_indices(self, pool):
        a = pool.fresh("a")
        b = pool.fresh("b")
        assert (a.index, b.index) == (0, 1)
        assert len(pool) == 2

    def test_names_are_unique(self, pool):
        a = pool.fresh("x")
        b = pool.fresh("x")
        assert a.name != b.name

    def test_variables_listing(self, pool):
        created = [pool.fresh(f"v{i}") for i in range(5)]
        assert list(pool.variables) == created

    def test_variables_view_is_cached_and_invalidated(self, pool):
        pool.fresh("a")
        first = pool.variables
        assert pool.variables is first  # no copy per access
        b = pool.fresh("b")
        assert list(pool.variables) == [first[0], b]


class TestAffForm:
    def test_constant(self):
        form = AffForm.constant(3.5)
        assert form.is_constant()
        assert form.const == 3.5

    def test_of_var(self, pool):
        v = pool.fresh("v")
        form = AffForm.of_var(v, 2.0)
        assert form.terms == {v.index: 2.0}
        assert not form.is_constant()

    def test_of_var_zero_coefficient_is_constant(self, pool):
        form = AffForm.of_var(pool.fresh("v"), 0.0)
        assert form.is_zero()

    def test_addition_merges_terms(self, pool):
        v = pool.fresh("v")
        form = AffForm.of_var(v) + AffForm.of_var(v, 2.0) + 1.0
        assert form.terms == {v.index: 3.0}
        assert form.const == 1.0

    def test_addition_cancels_to_zero(self, pool):
        v = pool.fresh("v")
        form = AffForm.of_var(v) - AffForm.of_var(v)
        assert form.is_zero()

    def test_scalar_multiplication(self, pool):
        v = pool.fresh("v")
        form = (AffForm.of_var(v) + 2.0) * 3.0
        assert form.terms == {v.index: 3.0}
        assert form.const == 6.0

    def test_rmul(self, pool):
        v = pool.fresh("v")
        assert 2 * AffForm.of_var(v) == AffForm.of_var(v, 2.0)

    def test_multiplying_by_zero(self, pool):
        form = (AffForm.of_var(pool.fresh("v")) + 5.0) * 0.0
        assert form.is_zero()

    def test_nonlinear_product_rejected(self, pool):
        a = AffForm.of_var(pool.fresh("a"))
        b = AffForm.of_var(pool.fresh("b"))
        with pytest.raises(TypeError, match="non-linear"):
            a * b

    def test_product_with_constant_affform(self, pool):
        a = AffForm.of_var(pool.fresh("a"))
        assert a * AffForm.constant(2.0) == a * 2.0
        assert AffForm.constant(2.0) * a == a * 2.0

    def test_subtraction_and_negation(self, pool):
        v = pool.fresh("v")
        form = 1.0 - AffForm.of_var(v)
        assert form.const == 1.0
        assert form.terms == {v.index: -1.0}
        assert -form == AffForm.of_var(v) - 1.0

    def test_evaluate(self, pool):
        a, b = pool.fresh("a"), pool.fresh("b")
        form = AffForm.of_var(a, 2.0) + AffForm.of_var(b, -1.0) + 4.0
        assert form.evaluate([10.0, 3.0]) == 21.0

    def test_equality_with_scalar(self):
        assert AffForm.constant(2.0) == 2.0
        assert AffForm.constant(2.0) != 3.0

    def test_hashable(self, pool):
        v = pool.fresh("v")
        forms = {AffForm.of_var(v), AffForm.of_var(v), AffForm.constant(1.0)}
        assert len(forms) == 2

    def test_hash_consistent_with_numeric_equality(self):
        # ``AffForm.constant(2.0) == 2`` holds, so the hashes must agree
        # (the dict/set contract); this used to be violated.
        assert hash(AffForm.constant(2.0)) == hash(2.0) == hash(2)
        assert len({AffForm.constant(2.0), 2.0, 2}) == 1
        assert {AffForm.constant(3.0): "a"}[3] == "a"


class TestAffBuilder:
    def test_iadd_isub_accumulation(self, pool):
        a, b = pool.fresh("a"), pool.fresh("b")
        builder = AffBuilder()
        builder += AffForm.of_var(a, 2.0)
        builder += AffForm.of_var(b) + 1.0
        builder -= AffForm.of_var(a)
        builder += 3
        form = builder.to_form()
        assert form.terms == {a.index: 1.0, b.index: 1.0}
        assert form.const == 4.0

    def test_cancellation_drops_terms(self, pool):
        v = pool.fresh("v")
        builder = AffBuilder()
        builder += AffForm.of_var(v)
        builder -= AffForm.of_var(v)
        assert builder.is_zero()
        assert builder.to_form().terms == {}

    def test_add_with_scale(self, pool):
        v = pool.fresh("v")
        builder = AffBuilder()
        builder.add(AffForm.of_var(v) + 2.0, scale=-3.0)
        form = builder.to_form()
        assert form.terms == {v.index: -3.0}
        assert form.const == -6.0

    def test_add_var_and_const(self, pool):
        v = pool.fresh("v")
        builder = AffBuilder().add_var(v, 2.0).add_var(v.index, -2.0).add_const(5.0)
        assert builder.is_constant()
        assert builder.const == 5.0

    def test_accumulates_other_builders(self, pool):
        v = pool.fresh("v")
        one = AffBuilder().add_var(v, 1.0)
        two = AffBuilder().add_var(v, 2.0).add_const(1.0)
        one += two
        assert one.to_form() == AffForm.of_var(v, 3.0) + 1.0

    def test_negate_in_place(self, pool):
        v = pool.fresh("v")
        builder = AffBuilder().add_var(v, 2.0).add_const(-1.0)
        builder.negate()
        assert builder.to_form() == AffForm.of_var(v, -2.0) + 1.0

    def test_matches_equivalent_affform_chain(self, pool):
        vs = [pool.fresh(f"v{i}") for i in range(20)]
        chained = AffForm.constant(0.0)
        builder = AffBuilder()
        for i, v in enumerate(vs):
            term = AffForm.of_var(v, float(i - 10)) + 0.5
            chained = chained + term
            builder += term
        assert builder.to_form() == chained
