"""Unit tests for LP affine forms."""

import pytest

from repro.lp.affine import AffForm, VarPool


@pytest.fixture()
def pool():
    return VarPool()


class TestVarPool:
    def test_fresh_assigns_dense_indices(self, pool):
        a = pool.fresh("a")
        b = pool.fresh("b")
        assert (a.index, b.index) == (0, 1)
        assert len(pool) == 2

    def test_names_are_unique(self, pool):
        a = pool.fresh("x")
        b = pool.fresh("x")
        assert a.name != b.name

    def test_variables_listing(self, pool):
        created = [pool.fresh(f"v{i}") for i in range(5)]
        assert pool.variables == created


class TestAffForm:
    def test_constant(self):
        form = AffForm.constant(3.5)
        assert form.is_constant()
        assert form.const == 3.5

    def test_of_var(self, pool):
        v = pool.fresh("v")
        form = AffForm.of_var(v, 2.0)
        assert form.terms == {v.index: 2.0}
        assert not form.is_constant()

    def test_of_var_zero_coefficient_is_constant(self, pool):
        form = AffForm.of_var(pool.fresh("v"), 0.0)
        assert form.is_zero()

    def test_addition_merges_terms(self, pool):
        v = pool.fresh("v")
        form = AffForm.of_var(v) + AffForm.of_var(v, 2.0) + 1.0
        assert form.terms == {v.index: 3.0}
        assert form.const == 1.0

    def test_addition_cancels_to_zero(self, pool):
        v = pool.fresh("v")
        form = AffForm.of_var(v) - AffForm.of_var(v)
        assert form.is_zero()

    def test_scalar_multiplication(self, pool):
        v = pool.fresh("v")
        form = (AffForm.of_var(v) + 2.0) * 3.0
        assert form.terms == {v.index: 3.0}
        assert form.const == 6.0

    def test_rmul(self, pool):
        v = pool.fresh("v")
        assert 2 * AffForm.of_var(v) == AffForm.of_var(v, 2.0)

    def test_multiplying_by_zero(self, pool):
        form = (AffForm.of_var(pool.fresh("v")) + 5.0) * 0.0
        assert form.is_zero()

    def test_nonlinear_product_rejected(self, pool):
        a = AffForm.of_var(pool.fresh("a"))
        b = AffForm.of_var(pool.fresh("b"))
        with pytest.raises(TypeError, match="non-linear"):
            a * b

    def test_product_with_constant_affform(self, pool):
        a = AffForm.of_var(pool.fresh("a"))
        assert a * AffForm.constant(2.0) == a * 2.0
        assert AffForm.constant(2.0) * a == a * 2.0

    def test_subtraction_and_negation(self, pool):
        v = pool.fresh("v")
        form = 1.0 - AffForm.of_var(v)
        assert form.const == 1.0
        assert form.terms == {v.index: -1.0}
        assert -form == AffForm.of_var(v) - 1.0

    def test_evaluate(self, pool):
        a, b = pool.fresh("a"), pool.fresh("b")
        form = AffForm.of_var(a, 2.0) + AffForm.of_var(b, -1.0) + 4.0
        assert form.evaluate([10.0, 3.0]) == 21.0

    def test_equality_with_scalar(self):
        assert AffForm.constant(2.0) == 2.0
        assert AffForm.constant(2.0) != 3.0

    def test_hashable(self, pool):
        v = pool.fresh("v")
        forms = {AffForm.of_var(v), AffForm.of_var(v), AffForm.constant(1.0)}
        assert len(forms) == 2
