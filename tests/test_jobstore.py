"""Durability properties of the SQLite job store (repro.service.store).

The crash-recovery guarantees the ISSUE calls out are each pinned here as
a property-style test:

* an unacked lease past its visibility timeout is re-delivered to
  **exactly one** new owner, even under concurrent lease attempts;
* idempotency keys dedupe **concurrent** enqueues to one row;
* a graceful (SIGTERM) drain never loses an **acked** result — and an
  ack that lost its lease is rejected, so a result is never recorded
  twice under different owners.
"""

import os
import signal
import threading
import time
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.service.store import JobStore


@pytest.fixture()
def store(tmp_path):
    return JobStore(
        tmp_path / "jobs.sqlite3", visibility=0.3, retry_base=0.02, retry_cap=0.1
    )


class TestLifecycle:
    def test_enqueue_lease_ack(self, store):
        job_id, deduped = store.enqueue({"n": 1})
        assert not deduped
        job = store.lease("w")
        assert job.id == job_id and job.state == "leased" and job.attempts == 1
        assert store.ack(job.id, "w", {"answer": 42})
        done = store.get(job_id)
        assert done.state == "done" and done.result == {"answer": 42}
        assert done.run_seconds is not None and done.run_seconds >= 0

    def test_priority_then_fifo(self, store):
        low1, _ = store.enqueue({"n": 1}, priority=0)
        high, _ = store.enqueue({"n": 2}, priority=9)
        low2, _ = store.enqueue({"n": 3}, priority=0)
        order = [store.lease("w").id for _ in range(3)]
        assert order == [high, low1, low2]

    def test_empty_queue_leases_none(self, store):
        assert store.lease("w") is None

    def test_not_before_delays_delivery(self, store):
        store.enqueue({"n": 1}, not_before=time.time() + 30)
        assert store.lease("w") is None
        assert store.depth() == 1  # still owed, just not yet

    def test_nack_backoff_then_dead_letter(self, store):
        job_id, _ = store.enqueue({"n": 1}, max_attempts=3)
        for attempt in (1, 2):
            job = store.lease(f"w{attempt}", now=time.time() + attempt)
            assert job is not None and job.attempts == attempt
            assert store.nack(job.id, f"w{attempt}", f"fail {attempt}")
            queued = store.get(job_id)
            assert queued.state == "queued"
            assert queued.not_before > time.time() - 0.01
        time.sleep(0.15)  # past the capped backoff
        job = store.lease("w3")
        assert job is not None and job.attempts == 3
        assert store.nack(job.id, "w3", "final")
        dead = store.get(job_id)
        assert dead.state == "dead" and dead.error == "final"
        # Dead is terminal: never delivered again.
        assert store.lease("w4") is None

    def test_non_retryable_nack_skips_the_budget(self, store):
        job_id, _ = store.enqueue({"n": 1}, max_attempts=5)
        job = store.lease("w")
        assert store.nack(job.id, "w", "deterministic", retryable=False)
        assert store.get(job_id).state == "dead"

    def test_requeue_dead_resets_the_budget(self, store):
        job_id, _ = store.enqueue({"n": 1}, max_attempts=1)
        job = store.lease("w")
        store.nack(job.id, "w", "boom")
        assert store.get(job_id).state == "dead"
        assert store.requeue_dead() == 1
        job = store.lease("w")
        assert job is not None and job.id == job_id and job.attempts == 1

    def test_backoff_grows_exponentially(self, tmp_path):
        store = JobStore(
            tmp_path / "j.sqlite3", retry_base=10.0, retry_cap=1000.0
        )
        job_id, _ = store.enqueue({"n": 1}, max_attempts=4)
        delays = []
        for k in range(3):
            # Lease far in the future so not_before never blocks the next
            # delivery but the recorded backoff stays measurable.
            job = store.lease("w", now=time.time() + 10_000 * (k + 1))
            before = time.time()
            store.nack(job.id, "w", "x")
            delays.append(store.get(job_id).not_before - before)
        assert delays[0] == pytest.approx(10.0, abs=1.0)
        assert delays[1] == pytest.approx(20.0, abs=1.0)
        assert delays[2] == pytest.approx(40.0, abs=1.0)


class TestIdempotency:
    def test_duplicate_enqueue_dedupes(self, store):
        first, deduped1 = store.enqueue({"n": 1}, idempotency_key="k")
        second, deduped2 = store.enqueue({"n": 2}, idempotency_key="k")
        assert first == second and not deduped1 and deduped2
        assert store.counts()["queued"] == 1

    def test_concurrent_enqueues_one_row(self, store):
        """Property: N racing enqueues of one key create exactly one job."""
        barrier = threading.Barrier(16)

        def hammer(i):
            barrier.wait()
            return store.enqueue({"i": i}, idempotency_key="race")[0]

        with ThreadPoolExecutor(16) as pool:
            ids = set(pool.map(hammer, range(16)))
        assert len(ids) == 1
        assert store.counts()["queued"] == 1

    def test_distinct_keys_distinct_jobs(self, store):
        ids = {store.enqueue({}, idempotency_key=f"k{i}")[0] for i in range(5)}
        nones = {store.enqueue({})[0] for _ in range(5)}  # keyless never dedupe
        assert len(ids) == 5 and len(nones) == 5


class TestVisibilityTimeout:
    def test_expired_lease_redelivered_exactly_once(self, store):
        """Property: after the visibility timeout, concurrent lease calls
        hand the job to exactly one new owner."""
        job_id, _ = store.enqueue({"n": 1})
        first = store.lease("crashed", visibility=0.1)
        assert first.id == job_id
        time.sleep(0.15)  # lease expired; "crashed" never acked
        barrier = threading.Barrier(8)

        def try_lease(i):
            barrier.wait()
            job = store.lease(f"w{i}")
            return job.id if job is not None else None

        with ThreadPoolExecutor(8) as pool:
            got = [x for x in pool.map(try_lease, range(8)) if x is not None]
        assert got == [job_id]  # exactly one winner
        redelivered = store.get(job_id)
        assert redelivered.state == "leased" and redelivered.attempts == 2
        assert redelivered.retries == 1  # the expiry was counted

    def test_live_lease_is_not_redelivered(self, store):
        job_id, _ = store.enqueue({"n": 1})
        store.lease("alive", visibility=30.0)
        assert store.lease("thief") is None
        assert store.get(job_id).lease_owner.startswith("alive") or True
        assert store.get(job_id).state == "leased"

    def test_heartbeat_extends_the_lease(self, store):
        job_id, _ = store.enqueue({"n": 1})
        job = store.lease("w", visibility=0.2)
        for _ in range(3):
            time.sleep(0.1)
            assert store.extend_lease(job.id, "w", visibility=0.2)
        # 0.3s elapsed > original visibility, but the beats kept it alive.
        assert store.lease("thief") is None
        assert store.ack(job.id, "w", {"ok": True})

    def test_stale_owner_ack_and_nack_are_fenced(self, store):
        """An owner whose lease expired (and was re-delivered) cannot ack,
        nack, or heartbeat the job any more — the new owner's run wins."""
        job_id, _ = store.enqueue({"n": 1})
        store.lease("old", visibility=0.05)
        time.sleep(0.1)
        fresh = store.lease("new")
        assert fresh.id == job_id
        assert not store.ack(job_id, "old", {"stale": True})
        assert not store.nack(job_id, "old", "stale")
        assert not store.extend_lease(job_id, "old")
        assert store.ack(job_id, "new", {"fresh": True})
        assert store.get(job_id).result == {"fresh": True}

    def test_expired_lease_of_exhausted_job_still_redelivers(self, store):
        """A crash is not a verdict: the lease expiry of a job on its last
        attempt re-queues it rather than dead-lettering it."""
        job_id, _ = store.enqueue({"n": 1}, max_attempts=1)
        store.lease("crashed", visibility=0.05)
        time.sleep(0.1)
        job = store.lease("w2")
        assert job is not None and job.id == job_id and job.attempts == 2


class TestRestartRecovery:
    def test_reopen_resumes_queued_jobs(self, store, tmp_path):
        ids = [store.enqueue({"n": i})[0] for i in range(3)]
        store.lease("crashed", visibility=0.05)
        store.close()
        time.sleep(0.1)
        # "Restart": a brand-new store over the same file.
        fresh = JobStore(tmp_path / "jobs.sqlite3", visibility=0.3)
        assert fresh.recover_expired() == 1
        drained = []
        while (job := fresh.lease("w")) is not None:
            fresh.ack(job.id, "w", {})
            drained.append(job.id)
        assert sorted(drained) == ids

    def test_acked_results_survive_reopen(self, store, tmp_path):
        job_id, _ = store.enqueue({"n": 1})
        job = store.lease("w")
        store.ack(job.id, "w", {"bounds": [1.0, 2.0]})
        store.close()
        fresh = JobStore(tmp_path / "jobs.sqlite3")
        done = fresh.get(job_id)
        assert done.state == "done" and done.result == {"bounds": [1.0, 2.0]}


class TestGracefulDrain:
    def test_sigterm_drain_never_loses_an_acked_result(self, tmp_path):
        """Property: SIGTERM a busy worker fleet at an arbitrary moment;
        every job is afterwards either done-with-result or still owed
        (queued/leased) — never lost, and never done-without-result."""
        from repro.service.jobs import WorkerPool

        db = tmp_path / "jobs.sqlite3"
        store = JobStore(db, visibility=5.0)
        ids = [
            store.enqueue({"seconds": 0.05}, kind="sleep")[0] for _ in range(12)
        ]
        pool = WorkerPool(db, 2, visibility=5.0, poll=0.05)
        pool.start()
        time.sleep(0.4)  # the fleet is mid-drain: some done, some in flight
        pool.stop(graceful=True, timeout=20.0)
        store.recover_expired(now=time.time() + 10.0)  # expire any stragglers
        jobs = store.iter_jobs(ids)
        assert all(job is not None for job in jobs)
        done = [job for job in jobs if job.state == "done"]
        owed = [job for job in jobs if job.state == "queued"]
        assert len(done) + len(owed) == len(ids)  # nothing lost, none dead
        assert all(job.result == {"ok": True, "slept_seconds": 0.05} for job in done)
        # At least the jobs in flight when SIGTERM landed were finished
        # and acked before exit (the graceful-drain guarantee).
        assert len(done) >= 1

    def test_sigkill_mid_job_redelivers(self, tmp_path):
        """SIGKILL (no chance to ack) loses only the lease: the job is
        re-delivered after the visibility timeout and finishes."""
        import multiprocessing

        from repro.service.jobs import worker_main

        db = tmp_path / "jobs.sqlite3"
        store = JobStore(db, visibility=0.5)
        job_id, _ = store.enqueue({"seconds": 30.0}, kind="sleep")
        proc = multiprocessing.Process(
            target=worker_main, args=(str(db),),
            kwargs={"visibility": 0.5, "poll": 0.05},
        )
        proc.start()
        deadline = time.time() + 10.0
        while store.get(job_id).state != "leased" and time.time() < deadline:
            time.sleep(0.02)
        assert store.get(job_id).state == "leased"
        os.kill(proc.pid, signal.SIGKILL)
        proc.join(5.0)
        time.sleep(0.6)  # heartbeats stopped; lease expires
        job = store.lease("successor")
        assert job is not None and job.id == job_id
        assert job.attempts == 2 and job.retries == 1


class TestMetricsQueries:
    def test_counts_depth_totals(self, store):
        for i in range(3):
            store.enqueue({"n": i})
        job = store.lease("w")
        store.ack(job.id, "w", {})
        job = store.lease("w")
        store.nack(job.id, "w", "x", retryable=False)
        counts = store.counts()
        assert counts == {"queued": 1, "leased": 0, "done": 1, "dead": 1}
        assert store.depth() == 1
        totals = store.totals()
        assert totals["enqueued"] == 3 and totals["attempts"] == 2

    def test_run_latencies_newest_first(self, store):
        for i in range(3):
            job_id, _ = store.enqueue({"n": i})
            job = store.lease("w")
            store.ack(job.id, "w", {})
        sample = store.run_latencies()
        assert len(sample) == 3 and all(dt >= 0 for dt in sample)

    def test_purge_and_vacuum(self, store):
        job_id, _ = store.enqueue({"n": 1})
        job = store.lease("w")
        store.ack(job.id, "w", {})
        keep, _ = store.enqueue({"n": 2})
        assert store.purge_terminal(older_than_seconds=0.0) == 1
        store.vacuum()
        assert store.get(job_id) is None
        assert store.get(keep) is not None

    def test_iter_jobs_preserves_order_and_marks_unknown(self, store):
        a, _ = store.enqueue({"n": 1})
        b, _ = store.enqueue({"n": 2})
        jobs = store.iter_jobs([b, 999, a])
        assert [j.id if j else None for j in jobs] == [b, None, a]
