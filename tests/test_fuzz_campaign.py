"""Crash-safe fuzzing campaigns (:mod:`repro.soundness.campaign`).

The headline test is the SIGKILL parity drill: a campaign killed
mid-sweep and resumed must produce exactly the tallies and reproducer set
of an uninterrupted twin, with finished shards never re-checked.  Around
it: exactly-once case claims, idempotent shard completion, the quarantine
path under deterministic chaos injection, coverage-guided weights, the
content-addressed reproducer corpus, and the seeded tier-1 replay corpus.
"""

import json
import pathlib
import time

import pytest

from repro.programs.fuzz import (
    FuzzConfig,
    bucket_signature,
    generate_case,
    generate_corpus,
    generate_shard_corpus,
)
from repro.service.jobs import WorkerPool
from repro.service.store import JobStore
from repro.soundness.campaign import (
    DEDUPED,
    QUARANTINED,
    CampaignConfig,
    CampaignStore,
    build_report,
    case_key,
    coverage_weights,
    enqueue_wave,
    execute_shard,
    run_campaign,
    shard_idempotency_key,
    start_campaign,
)
from repro.soundness.corpus import load_corpus, save_entry
from repro.soundness.differential import (
    VIOLATION,
    DifferentialConfig,
    check_case,
    minimize_case,
)

#: Fast campaign knobs shared by the integration tests: tiny corpora,
#: small MC sample counts, short leases so crash re-delivery is quick.
def small_config(**overrides) -> CampaignConfig:
    base = dict(
        seed_start=0,
        seed_count=8,
        shard_size=4,
        samples=300,
        max_steps=60_000,
        deadline_seconds=None,
        minimize_budget=4,
        minimize_seconds=5.0,
        probe_timeout=60.0,
    )
    base.update(overrides)
    return CampaignConfig(**base)


# ---------------------------------------------------------------------------
# Config / partition
# ---------------------------------------------------------------------------


class TestCampaignConfig:
    def test_partition_covers_range_exactly(self):
        config = CampaignConfig(seed_start=100, seed_count=11, shard_size=4)
        ranges = [config.shard_range(i) for i in range(config.shard_count)]
        assert ranges == [(100, 4), (104, 4), (108, 3)]
        seeds = [lo + i for lo, n in ranges for i in range(n)]
        assert seeds == list(range(100, 111))

    def test_roundtrip(self):
        config = CampaignConfig(
            seed_count=7, chaos_crash_seeds=(3,), max_rss_mb=512
        )
        again = CampaignConfig.from_dict(config.to_dict())
        assert again == config

    def test_digest_tracks_config(self):
        a = CampaignConfig(seed_count=10)
        b = CampaignConfig(seed_count=11)
        assert a.digest() == CampaignConfig(seed_count=10).digest()
        assert a.digest() != b.digest()
        assert shard_idempotency_key("n", 0, a) != shard_idempotency_key(
            "n", 0, b
        )

    def test_case_key_separates_degrees(self):
        case = generate_case(0)
        from dataclasses import replace

        other = replace(case, moment_degree=case.moment_degree + 1)
        assert case_key(case) != case_key(other)
        assert case_key(case) == case_key(generate_case(0))


class TestCoverageWeights:
    def test_none_until_coverage_exists(self):
        assert coverage_weights({}) is None

    def test_under_covered_kinds_weigh_more(self):
        buckets = {
            "loop+discrete|m2": 50,
            "straight|m1": 2,
        }
        weights = dict(coverage_weights(buckets))
        assert weights["straight"] > weights["walk"]
        assert weights["geo"] > weights["walk"]  # unseen beats saturated

    def test_shard_corpus_without_weights_matches_legacy(self):
        shard = generate_shard_corpus(5, 6, None, campaign_seed=0, shard_index=2)
        legacy = generate_corpus(6, seed=5)
        assert [c.source for c in shard] == [c.source for c in legacy]

    def test_shard_corpus_replay_is_byte_identical(self):
        config = FuzzConfig(kind_weights=(("straight", 8.0), ("walk", 0.1)))
        one = generate_shard_corpus(0, 8, config, campaign_seed=7, shard_index=3)
        two = generate_shard_corpus(0, 8, config, campaign_seed=7, shard_index=3)
        assert [c.source for c in one] == [c.source for c in two]


# ---------------------------------------------------------------------------
# Store: exactly-once primitives
# ---------------------------------------------------------------------------


class TestCampaignStore:
    def test_claim_cases_first_claimant_wins(self, tmp_path):
        store = CampaignStore(tmp_path / "c.db")
        camp = store.create_campaign(
            "claims", small_config(), tmp_path / "dir"
        )
        keys = ["k1", "k2", "k3"]
        assert store.claim_cases(camp["id"], 0, keys) == set(keys)
        # A second shard claiming an overlapping set only gets the fresh key.
        assert store.claim_cases(camp["id"], 1, ["k2", "k4"]) == {"k4"}
        # A replay of shard 0 re-observes its own claims.
        assert store.claim_cases(camp["id"], 0, keys) == set(keys)

    def test_complete_shard_is_idempotent(self, tmp_path):
        store = CampaignStore(tmp_path / "c.db")
        camp = store.create_campaign(
            "complete", small_config(), tmp_path / "dir"
        )
        assert store.complete_shard(camp["id"], 0, {"verified": 4}, {"s|m2": 4}, 1.0)
        before = store.get_shard(camp["id"], 0)["completed_at"]
        # The duplicate delivery changes nothing — tallies and buckets stay.
        assert not store.complete_shard(
            camp["id"], 0, {"verified": 999}, {"s|m2": 999}, 9.0
        )
        assert store.tallies(camp["id"])["verified"] == 4
        assert store.bucket_counts(camp["id"]) == {"s|m2": 4}
        assert store.get_shard(camp["id"], 0)["completed_at"] == before

    def test_create_campaign_rejects_config_drift(self, tmp_path):
        store = CampaignStore(tmp_path / "c.db")
        store.create_campaign("drift", small_config(), tmp_path / "dir")
        store.create_campaign("drift", small_config(), tmp_path / "dir")  # ok
        with pytest.raises(ValueError, match="different config"):
            store.create_campaign(
                "drift", small_config(seed_count=9), tmp_path / "dir"
            )


# ---------------------------------------------------------------------------
# Shard execution (no fleet: direct lease/execute)
# ---------------------------------------------------------------------------


def _lease_shard_job(db_path, campaign, *, owner="test-owner"):
    store = JobStore(db_path, visibility=30.0)
    cstore = CampaignStore(db_path)
    enqueue_wave(store, cstore, campaign)
    job = store.lease(owner)
    return store, cstore, job


class TestExecuteShard:
    def test_done_shard_short_circuits(self, tmp_path):
        db = tmp_path / "c.db"
        campaign = start_campaign(
            db, "short", small_config(seed_count=3, shard_size=3),
            tmp_path / "dir",
        )
        store, cstore, job = _lease_shard_job(db, campaign)
        first = execute_shard(job, db_path=str(db))
        assert first["ok"] and "replayed" not in first
        assert sum(first["tallies"].values()) == 3
        # Simulate a re-delivery of the same job after completion: nothing
        # is re-checked, the recorded tallies come back verbatim.
        again = execute_shard(job, db_path=str(db))
        assert again["replayed"] is True
        assert again["tallies"] == first["tallies"]

    def test_cross_shard_dedupe_counts_once(self, tmp_path):
        db = tmp_path / "c.db"
        # Two shards over the same seed... not possible via partition, so
        # pre-claim one of shard 0's case keys for a phantom shard 99 and
        # check the shard tallies it as deduped instead of re-analyzing.
        campaign = start_campaign(
            db, "dedupe", small_config(seed_count=2, shard_size=2),
            tmp_path / "dir",
        )
        cases = generate_shard_corpus(0, 2, None, campaign_seed=0, shard_index=0)
        cstore = CampaignStore(db)
        cstore.claim_cases(campaign["id"], 99, [case_key(cases[0])])
        store, cstore, job = _lease_shard_job(db, campaign)
        result = execute_shard(job, db_path=str(db))
        assert result["tallies"][DEDUPED] == 1
        assert sum(result["tallies"].values()) == 2


# ---------------------------------------------------------------------------
# End-to-end: uninterrupted, kill+resume parity, quarantine
# ---------------------------------------------------------------------------


def _reproducer_files(campaign_dir) -> list[str]:
    corpus_dir = pathlib.Path(campaign_dir) / "corpus"
    return sorted(p.name for p in corpus_dir.glob("*.appl"))


class TestCampaignEndToEnd:
    def test_campaign_completes_and_reports(self, tmp_path):
        db = tmp_path / "q.db"
        start_campaign(db, "e2e", small_config(), tmp_path / "camp")
        report = run_campaign(
            db, "e2e", workers=2, visibility=10.0, wave_timeout=240.0
        )
        assert report.complete
        assert report.state == "complete"
        assert report.checked == 8
        assert report.tallies["verified"] >= 6
        assert report.tallies[QUARANTINED] == 0
        assert len(report.buckets) >= 2
        assert report.verified_per_second > 0
        # Re-running a complete campaign is a no-op with identical results.
        again = run_campaign(db, "e2e", workers=1, visibility=10.0)
        assert again.tallies == report.tallies

    def test_sigkill_resume_parity(self, tmp_path):
        """The acceptance drill: SIGKILL mid-sweep, resume, and the final
        tallies, reproducer set, and per-shard accounting match an
        uninterrupted twin — no shard checked twice, no reproducer lost.

        ``z=0.05`` makes MC noise escape the (correct) intervals, so the
        campaign deterministically finds "violations" and the reproducer
        pipeline is exercised for real.
        """
        config = small_config(
            seed_count=12, shard_size=2, z=0.05, minimize_budget=2,
            minimize_seconds=2.0,
        )

        # Twin A: uninterrupted.
        db_a = tmp_path / "a.db"
        start_campaign(db_a, "twin", config, tmp_path / "dira")
        report_a = run_campaign(
            db_a, "twin", workers=1, visibility=3.0, wave=100,
            wave_timeout=240.0,
        )
        assert report_a.complete

        # Twin B: enqueue everything, SIGKILL the lone worker mid-sweep.
        db_b = tmp_path / "b.db"
        start_campaign(db_b, "twin", config, tmp_path / "dirb")
        store = JobStore(db_b, visibility=3.0)
        cstore = CampaignStore(db_b)
        campaign = cstore.get_campaign("twin")
        enqueue_wave(store, cstore, campaign)
        pool = WorkerPool(db_b, 1, visibility=3.0, poll=0.05, respawn=False)
        pool.start()
        deadline = time.time() + 120.0
        while time.time() < deadline:
            if cstore.shard_counts(campaign["id"])["done"] >= 2:
                break
            time.sleep(0.02)
        done_before = {
            row["idx"]: row["completed_at"]
            for idx in range(config.shard_count)
            for row in [cstore.get_shard(campaign["id"], idx)]
            if row["state"] == "done"
        }
        assert done_before, "fleet never finished a shard before the kill"
        pool.kill_worker()
        pool.stop(graceful=False)

        # Resume with a fresh fleet; only unfinished shards replay.
        report_b = run_campaign(
            db_b, "twin", workers=1, visibility=3.0, wave=100,
            wave_timeout=240.0,
        )
        assert report_b.complete

        # Identical final tallies and reproducer sets.
        assert report_b.tallies == report_a.tallies
        assert report_b.reproducers == report_a.reproducers
        assert report_a.reproducers, "drill config should find violations"
        assert _reproducer_files(tmp_path / "dirb") == _reproducer_files(
            tmp_path / "dira"
        )

        # Exactly-once: shards finished before the kill were not re-run
        # (their completion timestamps are untouched and their jobs were
        # delivered exactly once).
        attempts = cstore.shard_attempts(campaign["id"], store)
        for idx, stamp in done_before.items():
            assert cstore.get_shard(campaign["id"], idx)["completed_at"] == stamp
            assert attempts[idx] == 1

    def test_chaos_quarantine(self, tmp_path):
        """A case that hard-kills its worker and one that OOMs are both
        dead-lettered with provenance; the campaign still completes."""
        db = tmp_path / "q.db"
        config = small_config(
            chaos_crash_seeds=(5,), chaos_oom_seeds=(2,), minimize_seconds=6.0
        )
        start_campaign(db, "chaos", config, tmp_path / "camp")
        report = run_campaign(
            db, "chaos", workers=1, visibility=3.0, wave_timeout=240.0
        )
        assert report.complete
        assert report.tallies[QUARANTINED] == 2
        by_seed = {entry["seed"]: entry for entry in report.quarantine}
        assert set(by_seed) == {2, 5}
        assert "MemoryError" in by_seed[2]["reason"]
        assert "probe confirmed" in by_seed[5]["reason"]
        assert by_seed[5]["provenance"]["attempts"] >= 2
        assert by_seed[5]["provenance"]["minimized_sha256"]
        # Quarantined programs are dumped (content-addressed) for the runbook.
        dumps = list((tmp_path / "camp" / "quarantine").glob("*.appl"))
        assert dumps


# ---------------------------------------------------------------------------
# Reproducer corpus (content-addressed store + seeded tier-1 replay)
# ---------------------------------------------------------------------------


CORPUS_DIR = pathlib.Path(__file__).parent / "data" / "fuzz_corpus"


class TestCorpusStore:
    def test_roundtrip(self, tmp_path):
        case = generate_case(11)
        entry = save_entry(
            tmp_path, case.source,
            {
                "seed": case.seed,
                "initial": case.initial,
                "valuation": case.valuation,
                "moment_degree": case.moment_degree,
            },
        )
        loaded = load_corpus(tmp_path)
        assert [e.digest for e in loaded] == [entry.digest]
        rebuilt = loaded[0].case()
        assert rebuilt.source == case.source
        assert rebuilt.valuation == case.valuation
        assert rebuilt.moment_degree == case.moment_degree

    def test_save_is_idempotent(self, tmp_path):
        case = generate_case(3)
        one = save_entry(tmp_path, case.source, {"seed": 3})
        two = save_entry(tmp_path, case.source, {"seed": 3})
        assert one.digest == two.digest
        assert len(list(tmp_path.glob("*.appl"))) == 1

    def test_corrupt_entry_is_skipped(self, tmp_path):
        case = generate_case(4)
        entry = save_entry(tmp_path, case.source, {"seed": 4})
        (tmp_path / f"{entry.digest}.appl").write_text("func main() begin skip end\n")
        assert load_corpus(tmp_path) == []

    def test_missing_directory_is_empty(self, tmp_path):
        assert load_corpus(tmp_path / "nope") == []


class TestSeededCorpusReplay:
    """Tier-1 replay of the committed regression corpus: every stored
    reproducer must still re-verify (tolerant of an empty corpus)."""

    def test_replay_all_entries(self):
        entries = load_corpus(CORPUS_DIR)
        config = DifferentialConfig(samples=1500, max_steps=150_000)
        for entry in entries:
            outcome = check_case(entry.case(), config)
            assert outcome.status != VIOLATION, (
                f"corpus entry {entry.digest[:16]} regressed:"
                f" {outcome.detail}\n{entry.source}"
            )

    def test_committed_corpus_is_content_addressed(self):
        entries = load_corpus(CORPUS_DIR)
        for entry in entries:
            assert entry.meta.get("sha256") == entry.digest
        # The seeded corpus itself should not be empty (the empty-corpus
        # tolerance is for downstream forks that prune tests/data).
        assert len(entries) >= 1


# ---------------------------------------------------------------------------
# Minimizer bounds (satellite: deadline/lp_jobs threading)
# ---------------------------------------------------------------------------


class TestMinimizerBounds:
    def test_minimize_seconds_zero_stops_immediately(self):
        case = generate_case(0)
        config = DifferentialConfig(
            samples=200, max_steps=50_000, minimize_seconds=0.0
        )
        best, spent = minimize_case(case, config, lp_jobs=1)
        assert spent == 0
        assert best.source == case.source

    def test_minimize_budget_zero_stops_immediately(self):
        case = generate_case(0)
        config = DifferentialConfig(
            samples=200, max_steps=50_000, minimize_budget=0
        )
        best, spent = minimize_case(case, config)
        assert spent == 0


# ---------------------------------------------------------------------------
# Metrics + CLI surfaces
# ---------------------------------------------------------------------------


class TestCampaignSurfaces:
    def test_metrics_fuzz_section(self, tmp_path):
        from repro.service.metrics import ServiceMetrics
        from repro.soundness.campaign import campaign_metrics

        db = tmp_path / "q.db"
        # Queue-only store: no campaign tables, no fuzz section.
        store = JobStore(db)
        assert campaign_metrics(db) is None
        assert "fuzz" not in ServiceMetrics(store=store).snapshot()

        start_campaign(db, "m", small_config(seed_count=3, shard_size=3),
                       tmp_path / "camp")
        cstore = CampaignStore(db)
        campaign = cstore.get_campaign("m")
        enqueue_wave(store, cstore, campaign)
        job = store.lease("metrics-owner")
        execute_shard(job, db_path=str(db))
        store.ack(job.id, "metrics-owner", {"ok": True})

        snap = ServiceMetrics(store=store).snapshot()
        assert snap["fuzz"]["campaigns"] == 1
        assert snap["fuzz"]["shards"]["done"] == 1
        assert sum(snap["fuzz"]["tallies"].values()) == 3
        assert snap["queue"]["kinds"]["fuzz_shard"]["done"] == 1
        text = ServiceMetrics(store=store).render_prometheus()
        assert 'repro_fuzz_shards{state="done"} 1' in text
        assert 'repro_jobs_by_kind{kind="fuzz_shard",state="done"} 1' in text

    def test_cli_status_unknown_campaign(self, tmp_path, capsys):
        from repro.cli import run

        code = run(
            [
                "fuzz", "campaign", "status",
                "--db", str(tmp_path / "missing.db"), "--name", "ghost",
            ]
        )
        assert code == 2

    def test_cli_campaign_lifecycle(self, tmp_path, capsys):
        from repro.cli import run

        db = str(tmp_path / "q.db")
        code = run(
            [
                "fuzz", "campaign", "start", "--db", db, "--name", "cli",
                "--seeds", "4", "--shard-size", "2", "--samples", "250",
                "--deadline", "30", "--workers", "1", "--visibility", "5",
                "--dir", str(tmp_path / "camp"),
            ]
        )
        assert code == 0, capsys.readouterr().out
        capsys.readouterr()
        assert run(["fuzz", "campaign", "status", "--db", db, "--name", "cli"]) == 0
        out = capsys.readouterr().out
        assert "2/2 shards" in out
        assert (
            run(["fuzz", "campaign", "report", "--db", db, "--name", "cli",
                 "--json"])
            == 0
        )
        document = json.loads(capsys.readouterr().out)
        assert document["state"] == "complete"
        assert document["checked"] == 4
