"""Tests for the Theorem 4.4 side-condition checkers."""

import pytest

from repro import parse_program
from repro.soundness.bounded_update import check_bounded_update
from repro.soundness.checker import check_soundness
from repro.soundness.termination import check_termination_moment


def program(body: str, pre: str = "") -> object:
    return parse_program(f"func main(){pre} begin {body} end")


class TestBoundedUpdate:
    def test_constant_shift_ok(self):
        report = check_bounded_update(program("x := x + 1; y := y - 2.5"))
        assert report.ok

    def test_bounded_reset_ok(self):
        report = check_bounded_update(program("x := 3; y := x + 1"))
        assert report.ok

    def test_shift_by_bounded_sample_ok(self):
        report = check_bounded_update(program("t ~ uniform(-1, 2); x := x + t"))
        assert report.ok

    def test_doubling_fails(self):
        report = check_bounded_update(program("x := 2 * x"))
        assert not report.ok
        assert any("x" in v for v in report.violations)

    def test_sum_of_unbounded_vars_fails(self):
        report = check_bounded_update(program("x := x + 1; z := x + x"))
        assert not report.ok

    def test_shift_by_unbounded_var_fails(self):
        # y grows without bound, so x := x + y is not a bounded update.
        report = check_bounded_update(program("y := y + 1; x := x + y"))
        assert not report.ok

    def test_copy_of_unbounded_var_ok(self):
        # |x| <= |y| = O(n): coefficient-1 copies preserve linear growth.
        report = check_bounded_update(program("y := y + 1; x := y"))
        assert report.ok

    def test_scaled_copy_fails(self):
        report = check_bounded_update(program("y := y + 1; x := 2 * y"))
        assert not report.ok

    def test_chain_of_bounded_vars_ok(self):
        report = check_bounded_update(
            program("t ~ uniform(0, 1); u := t + 1; x := x + u")
        )
        assert report.ok

    def test_rdwalk_is_bounded(self):
        from repro.programs import registry

        report = check_bounded_update(registry.get("rdwalk").parse())
        assert report.ok

    def test_all_registered_benchmarks_bounded(self):
        from repro.programs import registry

        for name, bench in registry.all_benchmarks().items():
            report = check_bounded_update(bench.parse())
            assert report.ok, f"{name}: {report.violations}"


class TestTerminationMoments:
    def test_rdwalk_second_moment_finite(self):
        from repro.programs import registry

        report = check_termination_moment(registry.get("rdwalk").parse(), 2)
        assert report.ok
        assert report.bound_str

    def test_geo_fourth_moment_finite(self):
        from repro.programs import registry

        report = check_termination_moment(registry.get("geo").parse(), 4)
        assert report.ok

    def test_nonterminating_loop_fails(self):
        report = check_termination_moment(
            program("while true do tick(1) od"), 1
        )
        assert not report.ok
        assert "divergence" in report.detail

    def test_symmetric_walk_fails(self):
        # The symmetric random walk terminates a.s. but E[T] = infinity;
        # no polynomial potential exists and the checker must say so.
        report = check_termination_moment(
            program(
                "while x > 0 inv(x >= 0) do "
                "t ~ discrete(-1: 0.5, 1: 0.5); x := x + t; tick(1) od",
                pre=" pre(x >= 0)",
            ),
            1,
        )
        assert not report.ok


class TestCombinedReport:
    def test_ok_program(self):
        from repro.programs import registry

        report = check_soundness(registry.get("rdwalk").parse(), 2)
        assert report.ok
        assert "OK" in report.summary()

    def test_failing_program(self):
        report = check_soundness(program("x := 2 * x; tick(1)"), 1)
        assert not report.ok
        assert "NOT ESTABLISHED" in report.summary()

    def test_engine_integration(self):
        from repro import AnalysisOptions, analyze
        from repro.programs import registry

        bench = registry.get("geo")
        result = analyze(
            bench.parse(),
            AnalysisOptions(moment_degree=1, check_soundness=True),
        )
        assert result.soundness is not None
        assert result.soundness.ok
