"""Tests for the command-line interface."""

import io

import pytest

from repro.cli import _parse_valuation, build_parser, run

RDWALK = """
func rdwalk() pre(x < d + 2) begin
  if x < d then
    t ~ uniform(-1, 2);
    x := x + t;
    call rdwalk;
    tick(1)
  fi
end

func main() pre(d > 0) begin
  x := 0;
  call rdwalk
end
"""


@pytest.fixture()
def source_file(tmp_path):
    path = tmp_path / "rdwalk.appl"
    path.write_text(RDWALK)
    return str(path)


class TestCli:
    def test_analyze_prints_bounds(self, source_file):
        out = io.StringIO()
        code = run(["analyze", source_file, "--at", "d=10,x=0,t=0"], out=out)
        text = out.getvalue()
        assert code == 0
        assert "E[C^1]" in text
        assert "2*d + 4" in text

    def test_profile_flag_prints_stage_hotspots(self, source_file):
        out = io.StringIO()
        code = run(
            ["analyze", source_file, "--at", "d=10,x=0,t=0", "--profile", "5"],
            out=out,
        )
        text = out.getvalue()
        assert code == 0
        for stage in ("static", "context", "constraints", "solve"):
            assert f"profile: {stage} stage" in text
        assert "cumtime" in text  # cProfile table present
        assert "stage split: derivation" in text
        assert "E[C^1]" in text  # bounds still printed after the profile
        # LP reduction presolve statistics ride along with the solve stage.
        assert "lp reduction:" in text
        from repro.lp.reduce import reduce_enabled

        if reduce_enabled():  # the reduce-off CI leg prints the off notice
            assert "columns eliminated:" in text
            assert "components:" in text
        else:
            assert "lp reduction: off" in text

    def test_no_lp_reduce_flag_bypasses_reduction(self, source_file):
        out = io.StringIO()
        code = run(
            [
                "analyze", source_file, "--at", "d=10,x=0,t=0",
                "--no-lp-reduce", "--profile", "3",
            ],
            out=out,
        )
        text = out.getvalue()
        assert code == 0
        assert "lp reduction: off" in text
        assert "E[C^1]" in text

    def test_soundness_flag(self, source_file):
        out = io.StringIO()
        run(["analyze", source_file, "--check", "--at", "d=10,x=0,t=0"], out=out)
        assert "soundness (Thm 4.4): OK" in out.getvalue()

    def test_simulation_flag(self, source_file):
        out = io.StringIO()
        run(
            ["analyze", source_file, "--moments", "1", "--simulate", "500",
             "--at", "d=5,x=0,t=0"],
            out=out,
        )
        assert "simulation (500 runs)" in out.getvalue()

    def test_valuation_parsing(self):
        assert _parse_valuation("a=1,b=-2.5") == {"a": 1.0, "b": -2.5}
        assert _parse_valuation("") == {}
        import argparse

        with pytest.raises(argparse.ArgumentTypeError):
            _parse_valuation("oops")

    def test_parser_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_fuzz_command_verifies_small_corpus(self, tmp_path):
        out = io.StringIO()
        code = run(
            ["fuzz", "--seed", "0", "--count", "3", "--samples", "500",
             "--out", str(tmp_path / "violations")],
            out=out,
        )
        text = out.getvalue()
        assert code == 0, text
        assert "[seeds 0..2]" in text
        assert "differential soundness: 3 cases" in text
        # Nothing escaped its interval: no reproducers were dumped.
        assert not (tmp_path / "violations").exists()

    def test_fuzz_accepts_service_flags(self, tmp_path):
        out = io.StringIO()
        code = run(
            ["fuzz", "--seed", "10", "--count", "2", "--samples", "400",
             "--jobs", "2", "--executor", "thread", "--backend", "dense",
             "--cache-dir", str(tmp_path / "cache"),
             "--out", str(tmp_path / "violations")],
            out=out,
        )
        assert code == 0, out.getvalue()

    def test_analyze_with_cache_dir_is_reproducible(self, source_file, tmp_path):
        args = ["analyze", source_file, "--at", "d=10,x=0,t=0",
                "--cache-dir", str(tmp_path / "cache")]
        first = io.StringIO()
        assert run(args, out=first) == 0
        second = io.StringIO()
        assert run(args, out=second) == 0
        # The second run resolves from the disk cache: identical bytes,
        # including the recorded solve time.
        assert second.getvalue() == first.getvalue()
        assert "E[C^1]" in first.getvalue()


class TestBatchExitCode:
    BROKEN = """
    func main() begin
      call missing
    end
    """

    def _patch_registry(self, monkeypatch, programs):
        from repro.lang.parser import parse_program
        from repro.programs import registry
        from repro.programs.registry import BenchProgram

        benches = {
            name: BenchProgram(name=name, source=source, valuation={"d": 10.0})
            for name, source in programs.items()
        }
        monkeypatch.setattr(registry, "all_benchmarks", lambda: benches)
        monkeypatch.setattr(
            registry, "parsed", lambda name: parse_program(benches[name].source)
        )

    def test_batch_reports_failure_and_exits_nonzero(self, monkeypatch):
        self._patch_registry(monkeypatch, {"bad": self.BROKEN, "good": RDWALK})
        out = io.StringIO()
        code = run(["batch"], out=out)
        text = out.getvalue()
        assert code == 1
        assert "FAILED" in text and "ValidationError" in text
        # The good program still completed and is reported normally.
        assert "good" in text and "1 failed" in text

    def test_batch_all_green_exits_zero(self, monkeypatch):
        self._patch_registry(monkeypatch, {"good": RDWALK})
        out = io.StringIO()
        assert run(["batch"], out=out) == 0
        assert "FAILED" not in out.getvalue()
