"""Backend parity and incremental-assembly regression tests.

The two LP backends must be observably interchangeable: identical optimal
objective values on every registry program (the solutions themselves may
differ on degenerate optimal faces — that is allowed).  The incremental
backend must additionally *append* lexicographic stage cuts to its
persistent model instead of rebuilding it per stage.
"""

import math

import pytest

from repro import AnalysisOptions, AnalysisPipeline, analyze
from repro.lp.affine import AffBuilder, AffForm
from repro.lp.backends import (
    IncrementalBackend,
    ScipyDenseBackend,
    available_backends,
    get_backend,
    highs_available,
)
from repro.lp.problem import LPInfeasibleError, LPProblem
from repro.lp.reduce import reduce_override
from repro.programs import registry


def registry_names():
    return sorted(registry.all_benchmarks())


def bench_options(name: str, backend: str) -> AnalysisOptions:
    bench = registry.get(name)
    return AnalysisOptions(
        moment_degree=2,
        template_degree=bench.template_degree,
        degree_cap=bench.degree_cap,
        objective_valuations=(bench.valuation,) + tuple(bench.extra_valuations),
        backend=backend,
    )


class TestRegistryParity:
    @pytest.mark.parametrize("name", registry_names())
    def test_objectives_match_across_backends(self, name):
        """Stage optima agree to 1e-6 in the objective's own units.

        The stage objective is normalized by ``scale`` before it reaches the
        solver, so the solver's tolerance lives at ``1e-6 * scale``; the
        recorded ``objective_scales`` recover that unit.  Stages after the
        first additionally sit on the previous stages' cut bands (each cut
        pins the prior optimum only up to a 1e-5 margin, and the solvers may
        land anywhere inside the band), so their tolerance widens by 2e-5
        per preceding stage.  Where the *dense* cascade had to degrade
        (regularization / tighter boxes — recorded in ``solver_statuses``)
        its optimum is only an upper estimate, and the incremental backend
        is allowed to do strictly better, never worse.
        """
        dense = analyze(registry.parsed(name), bench_options(name, "dense"))
        incr = analyze(registry.parsed(name), bench_options(name, "incremental"))
        assert len(dense.objective_values) == len(incr.objective_values)
        for stage, (a, b) in enumerate(
            zip(dense.objective_values, incr.objective_values)
        ):
            scale = max(
                dense.objective_scales[stage], incr.objective_scales[stage], 1.0
            )
            tol = (1e-6 + stage * 2e-5) * max(abs(a), abs(b), scale)
            plain = (
                dense.solver_statuses[stage] in ("optimal", "constant")
                and incr.solver_statuses[stage] in ("optimal", "constant")
            )
            if plain:
                assert math.isclose(a, b, rel_tol=1e-6, abs_tol=tol), (
                    f"{name} stage {stage}: dense={a!r} incremental={b!r}"
                )
            else:
                assert b <= a + tol, (
                    f"{name} stage {stage}: incremental={b!r} worse than "
                    f"degraded dense={a!r} ({dense.solver_statuses[stage]})"
                )

    @pytest.mark.parametrize("name", ["rdwalk", "geo", "kura-1-1"])
    def test_first_moment_bounds_match(self, name):
        dense = analyze(registry.parsed(name), bench_options(name, "dense"))
        incr = analyze(registry.parsed(name), bench_options(name, "incremental"))
        d, i = dense.raw_interval(1), incr.raw_interval(1)
        assert d.hi == pytest.approx(i.hi, rel=1e-6, abs=1e-6)
        assert d.lo == pytest.approx(i.lo, rel=1e-6, abs=1e-6)


class TestFuzzCorpusParity:
    """The warm-start drift trap: the incremental backend reuses one HiGHS
    model across stages and batches, so a stale basis could silently shift
    bounds on programs outside the curated registry.  The fuzz corpus
    (arbitrary generated programs, fixed seeds) must produce *identical*
    moment intervals through both backends."""

    CORPUS_SEEDS = list(range(8))

    @pytest.fixture(scope="class")
    def corpus(self):
        from repro.programs.fuzz import generate_corpus

        return generate_corpus(len(self.CORPUS_SEEDS), seed=0)

    def _analyze(self, case, backend, reduce=None):
        options = AnalysisOptions(
            moment_degree=case.moment_degree,
            objective_valuations=(case.valuation,),
            backend=backend,
            lp_reduce=reduce,
        )
        return analyze(case.parse(), options)

    @pytest.mark.parametrize("reduce", [False, True])
    def test_fuzz_bounds_identical_across_backends(self, corpus, reduce):
        """Dense-vs-incremental parity must hold with the LP reduction layer
        both off and on (the reduced path decomposes and presolves the same
        system for either backend)."""
        checked = 0
        for case in corpus:
            try:
                dense = self._analyze(case, "dense", reduce=reduce)
            except Exception:
                continue  # infeasible for the analyzer: parity is vacuous
            incr = self._analyze(case, "incremental", reduce=reduce)
            for k in range(1, case.moment_degree + 1):
                d = dense.raw_interval(k, case.valuation)
                i = incr.raw_interval(k, case.valuation)
                scale = max(1.0, abs(d.lo), abs(d.hi))
                assert i.hi == pytest.approx(d.hi, abs=1e-6 * scale), (
                    case.name, k, "hi",
                )
                assert i.lo == pytest.approx(d.lo, abs=1e-6 * scale), (
                    case.name, k, "lo",
                )
                checked += 1
        assert checked >= 8  # most of the corpus must actually be comparable

    def test_fuzz_bounds_match_with_reduction_on_and_off(self, corpus):
        """The kill-switch contract on generated programs: moment intervals
        through the reduced solve path match the direct backend solves."""
        checked = 0
        for case in corpus:
            try:
                off = self._analyze(case, None, reduce=False)
            except Exception:
                continue
            on = self._analyze(case, None, reduce=True)
            for k in range(1, case.moment_degree + 1):
                a = off.raw_interval(k, case.valuation)
                b = on.raw_interval(k, case.valuation)
                scale = max(1.0, abs(a.lo), abs(a.hi))
                assert b.hi == pytest.approx(a.hi, abs=1e-6 * scale), (
                    case.name, k, "hi",
                )
                assert b.lo == pytest.approx(a.lo, abs=1e-6 * scale), (
                    case.name, k, "lo",
                )
                checked += 1
        assert checked >= 8

    def test_fuzz_bounds_stable_under_repeated_incremental_use(self, corpus):
        """Re-analyzing the same program through a *fresh* incremental
        backend must reproduce the first run bit-for-bit (no hidden state
        leaks through the module-level backend registry)."""
        case = corpus[0]
        first = self._analyze(case, "incremental")
        second = self._analyze(case, "incremental")
        for k in range(1, case.moment_degree + 1):
            a = first.raw_interval(k, case.valuation)
            b = second.raw_interval(k, case.valuation)
            assert (a.lo, a.hi) == (b.lo, b.hi)


class TestIncrementalAssembly:
    @pytest.mark.skipif(
        not highs_available(),
        reason="warm-start counters require a live HiGHS model "
        "(without one, solves route through _fallback_dense)",
    )
    def test_lexicographic_cuts_are_appended_not_rebuilt(self):
        """The regression this backend exists for: across the lexicographic
        stages of one analysis, the HiGHS model is built exactly once and
        each stage cut arrives via addRows on the persistent model.  (The
        reduction layer is forced off — it routes the solves to per-block
        backend instances; the reduced counterpart is tested below.)"""
        pipe = AnalysisPipeline(registry.parsed("rdwalk"))
        options = AnalysisOptions(moment_degree=3, backend="incremental")
        with reduce_override(False):
            pipe.analyze(options)
        stats = pipe.constraint_system(options).lp.backend.stats
        assert stats.solves == 3  # one per moment stage
        assert stats.model_builds == 1
        # m-1 = 2 cut rows pinned previous stage optima.
        assert stats.rows_appended == 2
        assert stats.fallbacks == 0

    def test_reduced_pins_are_appended_to_block_models(self):
        """With the reduction layer on, the lexicographic stage pins land on
        the live per-block models via addRows — no block is ever merged or
        rebuilt by the stage loop."""
        pipe = AnalysisPipeline(registry.parsed("rdwalk"))
        options = AnalysisOptions(moment_degree=3, backend="incremental")
        with reduce_override(True):
            pipe.analyze(options)
        reducer = pipe.constraint_system(options).lp._reducer
        assert reducer is not None and reducer.last_was_reduced
        assert reducer.block_merges == 0
        assert reducer.block_pins >= 1  # at least one non-constant stage pinned
        # The *problem* backend never solved anything itself.
        assert pipe.constraint_system(options).lp.backend.stats.solves == 0

    def test_dense_backend_rebuilds_per_stage(self):
        pipe = AnalysisPipeline(registry.parsed("rdwalk"))
        options = AnalysisOptions(moment_degree=3, backend="dense")
        with reduce_override(False):
            pipe.analyze(options)
        stats = pipe.constraint_system(options).lp.backend.stats
        assert stats.model_builds == stats.solves == 3

    @pytest.mark.parametrize("backend", ["dense", "incremental"])
    def test_cut_rows_added_after_reduction_roll_back_cleanly(self, backend):
        """Rows appended after the reduction snapshot (the lexicographic
        cuts) are projected onto the live blocks; rolling them back must
        restore the pristine partition and reproduce the original optimum."""
        lp = LPProblem(backend=get_backend(backend))
        x, y = lp.fresh("x"), lp.fresh("y")
        lam = lp.fresh_nonneg("lam")
        lp.add_ge(AffForm.of_var(x) - 3.0)
        lp.add_ge(AffForm.of_var(y) - 1.0)
        lp.add_eq(AffForm.of_var(lam) - 2.0)
        with reduce_override(True):
            first = lp.solve(AffForm.of_var(x) + AffForm.of_var(y))
            assert first.objective == pytest.approx(4.0)
            assert first.value_of(lam) == pytest.approx(2.0)
            cp = lp.checkpoint()
            # A cut that spans both blocks (x and y live in separate
            # components) forces a block merge on the reduced path.
            lp.add_ge(AffForm.of_var(x) + AffForm.of_var(y) - 10.0)
            cut = lp.solve(AffForm.of_var(x) + AffForm.of_var(y))
            assert cut.objective == pytest.approx(10.0)
            lp.rollback(cp)
            again = lp.solve(AffForm.of_var(x) + AffForm.of_var(y))
            assert again.objective == pytest.approx(4.0)
            assert again.value_of(lam) == pytest.approx(2.0)

    def test_pipeline_rollback_keeps_cached_system_resolvable_reduced(self):
        """Re-solving one cached constraint system under different
        objectives must give the same bounds as fresh pipelines, with the
        reduction layer on (stage pins roll back between solves)."""
        program = registry.parsed("rdwalk")
        options = AnalysisOptions(moment_degree=2)
        other = AnalysisOptions(
            moment_degree=2, objective_valuations=({"d": 7.0, "x": 0.0},)
        )
        with reduce_override(True):
            shared = AnalysisPipeline(program)
            first = shared.analyze(options)
            second = shared.analyze(other)
            fresh_first = AnalysisPipeline(program).analyze(options)
            fresh_second = AnalysisPipeline(program).analyze(other)
        for k in (1, 2):
            assert first.raw_interval(k).hi == pytest.approx(
                fresh_first.raw_interval(k).hi, rel=1e-9, abs=1e-9
            )
            assert second.raw_interval(k).hi == pytest.approx(
                fresh_second.raw_interval(k).hi, rel=1e-9, abs=1e-9
            )

    def test_checkpoint_rollback_restores_row_counts(self):
        lp = LPProblem(backend=IncrementalBackend())
        x = lp.fresh("x")
        lp.add_ge(AffForm.of_var(x) - 3.0)
        cp = lp.checkpoint()
        first = lp.solve(AffForm.of_var(x))
        assert first.objective == pytest.approx(3.0)
        lp.add_ge(AffForm.of_var(x) - 10.0)
        assert lp.solve(AffForm.of_var(x)).objective == pytest.approx(10.0)
        lp.rollback(cp)
        assert lp.num_constraints == 1
        assert lp.solve(AffForm.of_var(x)).objective == pytest.approx(3.0)

    @pytest.mark.skipif(
        not highs_available(),
        reason="model rebuild counters require a live HiGHS model",
    )
    def test_solve_after_adding_variables_rebuilds(self):
        lp = LPProblem(backend=IncrementalBackend())
        x = lp.fresh("x")
        lp.add_ge(AffForm.of_var(x) - 1.0)
        assert lp.solve(AffForm.of_var(x), reduce=False).objective == pytest.approx(1.0)
        y = lp.fresh("y")
        lp.add_ge(AffForm.of_var(y) - 5.0)
        assert lp.solve(
            AffForm.of_var(x) + AffForm.of_var(y), reduce=False
        ).objective == pytest.approx(6.0)
        assert lp.backend.stats.model_builds == 2

    def test_builder_rows_accepted(self):
        lp = LPProblem(backend=IncrementalBackend())
        x, y = lp.fresh("x"), lp.fresh("y")
        builder = AffBuilder()
        builder += AffForm.of_var(x)
        builder += AffForm.of_var(y)
        builder -= 4.0
        lp.add_eq(builder)
        eq2 = AffBuilder().add_var(x).add_var(y, -1.0)
        lp.add_eq(eq2.to_form())
        solution = lp.solve(AffForm.of_var(x))
        assert solution.value_of(x) == pytest.approx(2.0)
        assert solution.value_of(y) == pytest.approx(2.0)


class TestBackendRegistry:
    def test_default_is_incremental_when_highs_present(self):
        backend = get_backend()
        if highs_available():
            assert isinstance(backend, IncrementalBackend)
        else:  # pragma: no cover - scipy without bundled highspy
            assert isinstance(backend, ScipyDenseBackend)

    def test_aliases_and_unknown_names(self):
        assert isinstance(get_backend("dense"), ScipyDenseBackend)
        assert isinstance(get_backend("scipy-dense"), ScipyDenseBackend)
        assert "incremental" in available_backends()
        with pytest.raises(ValueError, match="unknown LP backend"):
            get_backend("simplex-by-hand")


class TestInfeasibilityDiagnostics:
    def test_ge_constant_contradiction_surfaces_note(self):
        lp = LPProblem()
        with pytest.raises(LPInfeasibleError, match="loop.inv"):
            lp.add_ge(AffForm.constant(-1.0), note="loop.inv")

    @pytest.mark.parametrize("backend", ["dense", "incremental"])
    def test_solver_infeasibility_reports_noted_groups(self, backend):
        lp = LPProblem(backend=get_backend(backend))
        x = lp.fresh("x")
        lp.add_ge(AffForm.of_var(x) - 3.0, note="lower.bound[x]")
        lp.add_le(AffForm.of_var(x) - 2.0, note="upper.bound[x]")
        with pytest.raises(LPInfeasibleError) as excinfo:
            lp.solve(AffForm.of_var(x))
        assert "upper.bound" in excinfo.value.diagnostics
        assert "lower.bound" in excinfo.value.diagnostics
        assert "1 variables" in excinfo.value.diagnostics

    def test_notes_are_rolled_back_with_rows(self):
        lp = LPProblem()
        x = lp.fresh("x")
        lp.add_ge(AffForm.of_var(x) - 1.0, note="keep")
        cp = lp.checkpoint()
        lp.add_ge(AffForm.of_var(x) - 2.0, note="drop")
        lp.rollback(cp)
        assert "drop" not in lp.infeasibility_diagnostics()
        assert "keep" in lp.infeasibility_diagnostics()


class TestWorkerRowReplay:
    """The CSR shipping contract of the parallel solve layer: a worker that
    rebuilds a model from ``row_arrays`` exports must reach the same optimum
    as the backend that owns the original rows — for either backend, and
    incrementally (appending only the suffix past already-ingested rows)."""

    def _build(self, backend_name):
        lp = LPProblem(backend=get_backend(backend_name))
        x, y = lp.fresh_nonneg("x"), lp.fresh_nonneg("y")
        lp.add_eq(AffForm.of_var(x) + AffForm.of_var(y) - 10.0)
        lp.add_ge(AffForm.of_var(x) - 2.0)
        return lp, x, y

    @pytest.mark.parametrize("backend", ["dense", "incremental"])
    def test_replayed_rows_solve_identically(self, backend):
        from repro.lp.parallel import _WorkerShim, _worker_append_rows

        lp, x, y = self._build(backend)
        want = lp.solve(AffForm.of_var(x) + AffForm.of_var(y), reduce=False)

        replica = get_backend(backend)
        shim = _WorkerShim(len(lp.pool), set(lp.nonneg_indices))
        eq_rows = _worker_append_rows(replica, "eq", lp.backend.row_arrays("eq"), 0)
        ge_rows = _worker_append_rows(replica, "ge", lp.backend.row_arrays("ge"), 0)
        assert (eq_rows, ge_rows) == (1, 1)
        got = replica.solve(
            shim, {x.index: 1.0, y.index: 1.0}, 0.0, True, 1e12, 1e-7
        )
        assert got.values.tolist() == want.values.tolist()

    def test_suffix_append_matches_full_rebuild(self):
        from repro.lp.parallel import _WorkerShim, _worker_append_rows

        lp, x, y = self._build("incremental")
        replica = get_backend("incremental")
        shim = _WorkerShim(len(lp.pool), set(lp.nonneg_indices))
        _worker_append_rows(replica, "eq", lp.backend.row_arrays("eq"), 0)
        ge_rows = _worker_append_rows(replica, "ge", lp.backend.row_arrays("ge"), 0)
        # Identical first solves on both sides: parity on degenerate faces
        # needs identical warm-start trajectories, not just identical rows.
        objective = AffForm.of_var(x) + AffForm.of_var(y)
        lp.solve(objective, reduce=False)
        replica.solve(shim, {x.index: 1.0, y.index: 1.0}, 0.0, True, 1e12, 1e-7)

        # New parent row arrives; the worker appends only the suffix.
        lp.add_ge(AffForm.of_var(y) - 4.0)
        ge_rows = _worker_append_rows(
            replica, "ge", lp.backend.row_arrays("ge"), ge_rows
        )
        assert ge_rows == 2
        want = lp.solve(objective, reduce=False)
        got = replica.solve(
            shim, {x.index: 1.0, y.index: 1.0}, 0.0, True, 1e12, 1e-7
        )
        assert got.values.tolist() == want.values.tolist()
