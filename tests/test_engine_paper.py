"""Paper-value regression tests for the analysis engine.

These check the *exact* numbers the paper reports for its own examples:
Fig. 1(b) / Fig. 7 for rdwalk, Counterexample 2.7's geo, and the identified
rows of Table 1 (kura-1-1, kura-2-1).
"""

import pytest

from repro import AnalysisOptions, analyze, analyze_upper_raw, parse_program
from repro.programs import registry


@pytest.fixture(scope="module")
def rdwalk_result():
    bench = registry.get("rdwalk")
    return analyze(
        bench.parse(),
        AnalysisOptions(
            moment_degree=2,
            template_degree=1,
            objective_valuations=({"d": 10.0, "x": 0.0, "t": 0.0},),
        ),
    )


class TestRdwalk:
    """Fig. 1(b): E[tick] <= 2d+4, E[tick^2] <= 4d^2+22d+28, V <= 22d+28."""

    def test_first_moment_upper(self, rdwalk_result):
        poly = rdwalk_result.upper_poly(1)
        for d in (5.0, 10.0, 40.0):
            val = poly.evaluate({"d": d, "x": 0.0, "t": 0.0})
            assert val == pytest.approx(2 * d + 4, abs=1e-4)

    def test_first_moment_lower(self, rdwalk_result):
        """Fig. 7 lower end: 2(d - x) (up to the lexicographic-stage
        tolerance of ~1e-5 relative)."""
        poly = rdwalk_result.lower_poly(1)
        for d in (5.0, 10.0, 40.0):
            val = poly.evaluate({"d": d, "x": 0.0, "t": 0.0})
            assert val == pytest.approx(2 * d, abs=2e-2)

    def test_second_moment_upper(self, rdwalk_result):
        poly = rdwalk_result.upper_poly(2)
        for d in (5.0, 10.0, 40.0):
            val = poly.evaluate({"d": d, "x": 0.0, "t": 0.0})
            assert val == pytest.approx(4 * d * d + 22 * d + 28, abs=1e-3)

    def test_variance_example_2_4(self, rdwalk_result):
        """Ex. 2.4: V[tick] <= 22d + 28."""
        for d in (10.0, 50.0):
            var = rdwalk_result.variance({"d": d, "x": 0.0, "t": 0.0})
            assert var.hi == pytest.approx(22 * d + 28, rel=1e-3)
            assert var.lo >= 0.0

    def test_moments_bracket_simulation(self, rdwalk_result):
        from repro import estimate_cost_statistics

        bench = registry.get("rdwalk")
        stats = estimate_cost_statistics(
            bench.parse(), n=4000, seed=11, initial={"d": 10.0}
        )
        val = {"d": 10.0, "x": 0.0, "t": 0.0}
        e1 = rdwalk_result.raw_interval(1, val)
        e2 = rdwalk_result.raw_interval(2, val)
        assert e1.lo - 0.5 <= stats.mean <= e1.hi + 0.5
        assert e2.lo * 0.9 <= stats.raw[2] <= e2.hi * 1.1
        assert stats.central[2] <= rdwalk_result.variance(val).hi * 1.1


class TestGeo:
    """Counterexample 2.7: sound bounds are E[tick] = 1; the bogus lower
    bound 2^x must not appear (and cannot: templates are polynomial), and
    the Theorem 4.4 side conditions hold for this program."""

    def test_expected_cost_is_one(self):
        bench = registry.get("geo")
        result = analyze(bench.parse(), AnalysisOptions(moment_degree=2))
        interval = result.raw_interval(1, {"x": 0.0})
        assert interval.hi == pytest.approx(1.0, abs=1e-4)
        assert 0.0 - 1e-9 <= interval.lo <= 1.0 + 1e-6

    def test_soundness_conditions_hold(self):
        from repro import check_soundness

        bench = registry.get("geo")
        report = check_soundness(bench.parse(), 2)
        assert report.bounded_update.ok
        assert report.termination.ok
        assert report.ok


class TestKuraIdentifiedRows:
    """Table 1 rows whose cost models the published bounds pin down."""

    def test_coupon_two(self):
        bench = registry.get("kura-1-1")
        result = analyze(
            bench.parse(),
            AnalysisOptions(
                moment_degree=4,
                template_degree=2,
                degree_cap=2,
                objective_valuations=({"c": 0.0},),
            ),
        )
        val = {"c": 0.0}
        assert result.raw_interval(1, val).hi == pytest.approx(13.0, rel=1e-6)
        assert result.raw_interval(2, val).hi == pytest.approx(201.0, rel=1e-6)
        assert result.raw_interval(3, val).hi == pytest.approx(3829.0, rel=1e-6)
        assert result.raw_interval(4, val).hi == pytest.approx(90705.0, rel=1e-6)
        assert result.variance(val).hi == pytest.approx(32.0, rel=1e-4)
        assert result.central_interval(4, val).hi == pytest.approx(9728.0, rel=1e-4)

    def test_walk_int(self):
        bench = registry.get("kura-2-1")
        result = analyze(
            bench.parse(),
            AnalysisOptions(
                moment_degree=4,
                template_degree=1,
                objective_valuations=({"x": 1.0, "t": 0.0},),
            ),
        )
        val = {"x": 1.0, "t": 0.0}
        assert result.raw_interval(1, val).hi == pytest.approx(20.0, rel=1e-6)
        assert result.raw_interval(2, val).hi == pytest.approx(2320.0, rel=1e-6)
        assert result.raw_interval(3, val).hi == pytest.approx(691520.0, rel=1e-5)
        assert result.raw_interval(4, val).hi == pytest.approx(340107520.0, rel=1e-5)
        assert result.variance(val).hi == pytest.approx(1920.0, rel=1e-4)
        assert result.central_interval(4, val).hi == pytest.approx(
            289873920.0, rel=1e-4
        )

    def test_walk_int_symbolic_variance(self):
        """Section 6: V <= 1920x under pre x >= 0."""
        bench = registry.get("kura-2-1")
        result = analyze(
            bench.parse(),
            AnalysisOptions(
                moment_degree=2,
                template_degree=1,
                objective_valuations=({"x": 1.0, "t": 0.0}, {"x": 7.0, "t": 0.0}),
            ),
        )
        for x in (1.0, 3.0, 7.0):
            var = result.variance({"x": x, "t": 0.0})
            assert var.hi == pytest.approx(1920.0 * x, rel=1e-3)


class TestBaselineComparison:
    """Fig. 1(c)'s methodology: central moments beat raw moments for tails."""

    def test_raw_only_mode_matches_upper_bounds(self):
        bench = registry.get("rdwalk")
        options = AnalysisOptions(
            moment_degree=2,
            template_degree=1,
            objective_valuations=({"d": 10.0, "x": 0.0, "t": 0.0},),
        )
        raw_only = analyze_upper_raw(bench.parse(), options)
        val = {"d": 10.0, "x": 0.0, "t": 0.0}
        # Upper-only mode additionally requires nonnegative potentials
        # (ranking-supermartingale setting), costing one unit of slack
        # against the full interval analysis: 2d+5 instead of 2d+4.
        assert raw_only.raw_interval(1, val).hi == pytest.approx(25.0, abs=1e-3)
        assert raw_only.raw_interval(1, val).lo == 0.0  # no lower information
        assert raw_only.raw_interval(2, val).hi <= 730.0
        # The full interval analysis is at least as tight.
        full = analyze(bench.parse(), options)
        assert full.raw_interval(1, val).hi <= raw_only.raw_interval(1, val).hi

    def test_tail_bounds_ordering(self):
        from repro.tail.bounds import (
            cantelli_upper_tail,
            markov_tail,
        )

        bench = registry.get("rdwalk")
        result = analyze(
            bench.parse(),
            AnalysisOptions(
                moment_degree=2,
                template_degree=1,
                objective_valuations=({"d": 40.0, "x": 0.0, "t": 0.0},),
            ),
        )
        val = {"d": 40.0, "x": 0.0, "t": 0.0}
        d = 40.0
        raw1 = result.raw_interval(1, val)
        var = result.variance(val)
        markov1 = markov_tail(raw1.hi, 1, 4 * d)
        cantelli = cantelli_upper_tail(var.hi, raw1.hi, 4 * d)
        assert cantelli < markov1


class TestWarningsAndDiagnostics:
    def test_call_precondition_warning(self):
        program = parse_program(
            """
            func f() pre(x >= 5) begin
              tick(1)
            end
            func main() begin
              x := 0;
              call f
            end
            """
        )
        result = analyze(program, AnalysisOptions(moment_degree=1))
        assert any("pre-condition" in w for w in result.warnings)

    def test_dropped_invariant_warning(self):
        program = parse_program(
            """
            func main() pre(x >= 0) begin
              while x > 0 inv(x >= 100) do
                x := x - 1;
                tick(1)
              od
            end
            """
        )
        result = analyze(program, AnalysisOptions(moment_degree=1))
        assert any("invariant" in w for w in result.warnings)

    def test_summary_renders(self, rdwalk_result):
        text = rdwalk_result.summary()
        assert "E[C^1]" in text and "V[C]" in text
