"""Tests for the analysis service layer: artifact cache, batch executor,
HTTP server, and the canonical program form that content-addresses it all."""

import json
import multiprocessing
import pickle
import threading
import urllib.error
import urllib.request
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro import (
    AnalysisOptions,
    AnalysisPipeline,
    ArtifactCache,
    analyze,
    analyze_many,
    parse_program,
    run_batch,
)
from repro.lang.printer import canonical_program
from repro.lang.varinfo import ValidationError
from repro.service.cache import program_key
from repro.service.server import make_server

RDWALK = """
func rdwalk() pre(x < d + 2) begin
  if x < d then
    t ~ uniform(-1, 2);
    x := x + t;
    call rdwalk;
    tick(1)
  fi
end

func main() pre(d > 0) begin
  x := 0;
  call rdwalk
end
"""

SIMPLE = """
func main() pre(d > 0) begin
  x := 0;
  while x < d inv(x < d + 1) do
    tick(1);
    x := x + 1
  od
end
"""

#: Fails deterministically in the static stage, on every backend.
BROKEN = """
func main() begin
  call missing
end
"""

OPTS = AnalysisOptions(
    moment_degree=2, objective_valuations=({"d": 10.0, "x": 0.0, "t": 0.0},)
)


# ---------------------------------------------------------------------------
# Canonical form / content addressing
# ---------------------------------------------------------------------------


class TestCanonicalForm:
    def test_canonical_is_a_parse_fixpoint(self):
        program = parse_program(RDWALK)
        text = canonical_program(program)
        assert canonical_program(parse_program(text)) == text

    def test_declaration_order_does_not_change_the_address(self):
        a = "func helper() begin tick(1) end\n\nfunc main() begin call helper end"
        b = "func main() begin call helper end\n\nfunc helper() begin tick(1) end"
        assert program_key(parse_program(a)) == program_key(parse_program(b))

    def test_full_float_precision_is_preserved(self):
        a = parse_program("func main() begin tick(0.1234567891234) end")
        b = parse_program("func main() begin tick(0.1234567891235) end")
        # %g-style display formatting would collide these two programs.
        assert f"{0.1234567891234:g}" == f"{0.1234567891235:g}"
        assert program_key(a) != program_key(b)

    def test_no_exponent_notation_in_canonical_floats(self):
        import re

        program = parse_program("func main() begin tick(0.0000001) end")
        text = canonical_program(program)
        assert re.search(r"\de[+-]?\d", text) is None  # repr would say 1e-07
        assert canonical_program(parse_program(text)) == text

    def test_different_programs_different_addresses(self):
        assert program_key(parse_program(RDWALK)) != program_key(parse_program(SIMPLE))

    def test_every_registry_program_roundtrips(self):
        """The process executor ships canonical text to workers; every
        registered benchmark must survive the trip."""
        from repro.programs import registry

        for name in sorted(registry.all_benchmarks()):
            text = canonical_program(registry.parsed(name))
            assert canonical_program(parse_program(text)) == text, name


# ---------------------------------------------------------------------------
# Artifact cache
# ---------------------------------------------------------------------------


class TestArtifactCache:
    def test_memory_roundtrip_and_option_sensitivity(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        cache.put("ab" * 32, "stage", (1, 2), {"x": 1})
        assert cache.get("ab" * 32, "stage", (1, 2)) == {"x": 1}
        assert cache.stats.memory_hits == 1
        assert cache.get("ab" * 32, "stage", (1, 3)) is None
        assert cache.get("ba" * 32, "stage", (1, 2)) is None
        assert cache.stats.misses == 2

    def test_disk_shared_between_instances(self, tmp_path):
        ArtifactCache(tmp_path).put("cd" * 32, "stage", (), [1, 2, 3])
        fresh = ArtifactCache(tmp_path)
        assert fresh.get("cd" * 32, "stage", ()) == [1, 2, 3]
        assert fresh.stats.disk_hits == 1

    def test_corrupted_disk_entry_is_discarded_not_fatal(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        cache.put("ef" * 32, "stage", (), "payload")
        (entry,) = list(cache.directory.rglob("*.pkl"))
        entry.write_bytes(b"\x80\x04 this is not a pickle")
        fresh = ArtifactCache(tmp_path)
        assert fresh.get("ef" * 32, "stage", ()) is None
        assert fresh.stats.discarded == 1
        assert not entry.exists(), "corrupt entry should be unlinked"
        # The slot is usable again.
        fresh.put("ef" * 32, "stage", (), "payload")
        assert ArtifactCache(tmp_path).get("ef" * 32, "stage", ()) == "payload"

    def test_truncated_disk_entry_is_discarded(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        cache.put("aa" * 32, "stage", (), list(range(1000)))
        (entry,) = list(cache.directory.rglob("*.pkl"))
        entry.write_bytes(entry.read_bytes()[:20])
        assert ArtifactCache(tmp_path).get("aa" * 32, "stage", ()) is None

    def test_foreign_pickle_is_discarded(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        cache.put("bb" * 32, "stage", (), "x")
        (entry,) = list(cache.directory.rglob("*.pkl"))
        entry.write_bytes(pickle.dumps({"not": "an entry"}))
        fresh = ArtifactCache(tmp_path)
        assert fresh.get("bb" * 32, "stage", ()) is None
        assert fresh.stats.discarded == 1

    def test_memory_lru_eviction(self, tmp_path):
        cache = ArtifactCache(tmp_path, disk=False, memory_entries=2)
        for i in range(3):
            cache.put("ab" * 32, "stage", (i,), i)
        assert cache.stats.evictions == 1
        assert cache.get("ab" * 32, "stage", (0,)) is None  # evicted
        assert cache.get("ab" * 32, "stage", (2,)) == 2

    def test_memory_only_mode_writes_nothing(self, tmp_path):
        cache = ArtifactCache(disk=False)
        assert cache.directory is None
        cache.put("ab" * 32, "stage", (), "x")
        assert cache.get("ab" * 32, "stage", ()) == "x"


# ---------------------------------------------------------------------------
# Pipeline + cache integration
# ---------------------------------------------------------------------------


class TestCachedPipeline:
    def test_warm_pipeline_hits_disk_and_matches_cold(self, tmp_path):
        cold_cache = ArtifactCache(tmp_path)
        cold = AnalysisPipeline(parse_program(RDWALK), artifacts=cold_cache).analyze(OPTS)
        assert cold_cache.stats.writes > 0
        # New cache instance + freshly parsed program = new session.
        warm_cache = ArtifactCache(tmp_path)
        warm = AnalysisPipeline(parse_program(RDWALK), artifacts=warm_cache).analyze(OPTS)
        assert warm_cache.stats.disk_hits >= 1
        assert warm_cache.stats.misses == 0
        assert warm.summary() == cold.summary()

    def test_option_change_misses_program_edit_misses(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        AnalysisPipeline(parse_program(RDWALK), artifacts=cache).analyze(OPTS)
        writes = cache.stats.writes

        # Any AnalysisOptions field change must produce a different address.
        for changed in (
            AnalysisOptions(moment_degree=1, objective_valuations=OPTS.objective_valuations),
            AnalysisOptions(moment_degree=2, template_degree=2,
                            objective_valuations=OPTS.objective_valuations),
            AnalysisOptions(moment_degree=2, upper_only=True,
                            objective_valuations=OPTS.objective_valuations),
            AnalysisOptions(moment_degree=2, lp_bound=1e9,
                            objective_valuations=OPTS.objective_valuations),
            AnalysisOptions(moment_degree=2,
                            objective_valuations=({"d": 11.0, "x": 0.0, "t": 0.0},)),
        ):
            before = cache.stats.writes
            AnalysisPipeline(parse_program(RDWALK), artifacts=cache).analyze(changed)
            assert cache.stats.writes > before, changed

        # A program edit changes the content address entirely.
        edited = RDWALK.replace("tick(1)", "tick(2)")
        before = cache.stats.writes
        AnalysisPipeline(parse_program(edited), artifacts=cache).analyze(OPTS)
        assert cache.stats.writes > before
        assert writes < cache.stats.writes

    def test_corrupted_entries_recompute_cleanly(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        expected = AnalysisPipeline(parse_program(SIMPLE), artifacts=cache).analyze(OPTS)
        for entry in cache.directory.rglob("*.pkl"):
            entry.write_bytes(b"garbage")
        fresh = ArtifactCache(tmp_path)
        again = AnalysisPipeline(parse_program(SIMPLE), artifacts=fresh).analyze(OPTS)
        assert fresh.stats.discarded > 0
        assert again.objective_values == pytest.approx(expected.objective_values)

    def test_uncached_pipeline_unchanged(self):
        pipe = AnalysisPipeline(parse_program(RDWALK))
        assert pipe.artifacts is None
        result = pipe.analyze(OPTS)
        assert result.objective_values == pytest.approx(
            analyze(parse_program(RDWALK), OPTS).objective_values
        )


def _warm_in_child(directory: str) -> None:
    cache = ArtifactCache(directory)
    AnalysisPipeline(parse_program(SIMPLE), artifacts=cache).analyze(OPTS)


class TestCrossProcessCache:
    def test_disk_cache_shared_across_two_processes(self, tmp_path):
        ctx = multiprocessing.get_context("fork")
        child = ctx.Process(target=_warm_in_child, args=(str(tmp_path),))
        child.start()
        child.join(timeout=120)
        assert child.exitcode == 0
        cache = ArtifactCache(tmp_path)
        result = AnalysisPipeline(parse_program(SIMPLE), artifacts=cache).analyze(OPTS)
        assert cache.stats.disk_hits >= 1
        assert cache.stats.misses == 0
        assert result.objective_values == pytest.approx(
            analyze(parse_program(SIMPLE), OPTS).objective_values
        )


# ---------------------------------------------------------------------------
# Batch executor
# ---------------------------------------------------------------------------


class TestBatchExecutor:
    def _workload(self):
        return {
            "rdwalk": (parse_program(RDWALK), OPTS),
            "simple": (parse_program(SIMPLE), OPTS),
        }

    @pytest.mark.parametrize("executor", ["thread", "process"])
    def test_executors_agree_and_preserve_order(self, executor, tmp_path):
        cache = ArtifactCache(tmp_path)
        report = run_batch(self._workload(), jobs=2, executor=executor, cache=cache)
        assert report.ok
        assert [item.name for item in report.items] == ["rdwalk", "simple"]
        sequential = {
            name: analyze(program, opts)
            for name, (program, opts) in self._workload().items()
        }
        for item in report.items:
            assert item.result.objective_values == pytest.approx(
                sequential[item.name].objective_values
            ), item.name

    @pytest.mark.parametrize("executor", ["thread", "process"])
    def test_per_program_error_isolation(self, executor):
        workload = {
            "good": (parse_program(SIMPLE), OPTS),
            "bad": (parse_program(BROKEN), OPTS),
            "also-good": (parse_program(RDWALK), OPTS),
        }
        report = run_batch(workload, executor=executor, jobs=2)
        assert not report.ok
        assert [item.name for item in report.items] == ["good", "bad", "also-good"]
        assert report.items[0].ok and report.items[2].ok
        failed = report.items[1]
        assert not failed.ok and failed.result is None
        assert "ValidationError" in failed.error
        assert list(report.results) == ["good", "also-good"]

    def test_process_workers_share_the_disk_cache(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        run_batch(self._workload(), executor="process", jobs=2, cache=cache)
        _, disk_entries = cache.entry_count()
        assert disk_entries > 0
        # Second batch in fresh workers: everything is already derived.
        fresh = ArtifactCache(tmp_path)
        report = run_batch(self._workload(), executor="process", jobs=2, cache=fresh)
        assert report.ok
        _, disk_after = cache.entry_count()
        assert disk_after == disk_entries

    def test_analyze_many_raises_on_failure(self):
        with pytest.raises(ValidationError):
            analyze_many({"bad": (parse_program(BROKEN), OPTS)})

    def test_analyze_many_process_mode(self):
        results = analyze_many(
            {"simple": parse_program(SIMPLE)},
            options=OPTS,
            executor="process",
            jobs=1,
        )
        assert results["simple"].raw_interval(1, {"d": 10.0, "x": 0.0}).hi >= 10.0

    def test_unknown_executor_rejected(self):
        with pytest.raises(ValueError, match="unknown executor"):
            run_batch({}, executor="fiber")


# ---------------------------------------------------------------------------
# HTTP server
# ---------------------------------------------------------------------------


@pytest.fixture()
def served(tmp_path):
    cache = ArtifactCache(tmp_path)
    server = make_server(port=0, cache=cache)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    yield server, cache
    server.shutdown()
    server.server_close()


def _post(server, path: str, body: dict):
    port = server.server_address[1]
    request = urllib.request.Request(
        f"http://127.0.0.1:{port}{path}", data=json.dumps(body).encode()
    )
    try:
        with urllib.request.urlopen(request) as response:
            return response.status, response.read(), dict(response.headers)
    except urllib.error.HTTPError as error:
        return error.code, error.read(), dict(error.headers)


def _get(server, path: str):
    port = server.server_address[1]
    try:
        with urllib.request.urlopen(f"http://127.0.0.1:{port}{path}") as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


class TestServer:
    def test_analyze_matches_the_cli_path_byte_for_byte(self, served, tmp_path):
        import io

        from repro.cli import run

        server, _ = served
        source_path = tmp_path / "prog.appl"
        source_path.write_text(SIMPLE)
        out = io.StringIO()
        code = run(
            ["analyze", str(source_path), "--at", "d=10,x=0",
             "--cache-dir", str(tmp_path)],
            out=out,
        )
        assert code == 0

        body = {"program": SIMPLE, "options": {"moments": 2, "at": {"d": 10, "x": 0}}}
        status, raw, _headers = _post(server, "/analyze", body)
        assert status == 200
        assert json.loads(raw)["summary"] + "\n" == out.getvalue()

    def test_concurrent_identical_requests_identical_bytes(self, served):
        server, _ = served
        body = {"program": RDWALK, "options": {"moments": 2, "at": {"d": 10, "x": 0, "t": 0}}}
        with ThreadPoolExecutor(max_workers=4) as pool:
            answers = list(
                pool.map(lambda _: _post(server, "/analyze", body), range(6))
            )
        assert all(status == 200 for status, _, _ in answers)
        assert len({raw for _, raw, _ in answers}) == 1
        warm_flags = {headers["X-Repro-Warm"] for _, _, headers in answers}
        assert "true" in warm_flags  # later requests hit the warm pipeline

    def test_check_endpoint_round_trip(self, served):
        server, _ = served
        spec = (
            "@at d=10, x=0, t=0\n"
            "E[cost] in [19, 41]\n"
            "stddev(cost) <= 17\n"
            "P(cost >= 200) <= 0.05\n"
        )
        body = {"program": RDWALK, "spec": spec}
        status, raw, headers = _post(server, "/check", body)
        assert status == 200
        payload = json.loads(raw)
        assert payload["ok"] and payload["verdict"] == "pass"
        verdicts = [a["verdict"] for a in payload["check"]["assertions"]]
        assert verdicts == ["pass", "pass", "pass"]
        assert headers["X-Repro-Warm"] == "false"

        # Identical request: same bytes off the warm pipeline.
        status, again, headers = _post(server, "/check", body)
        assert status == 200 and again == raw
        assert headers["X-Repro-Warm"] == "true"

    def test_check_endpoint_error_statuses(self, served):
        server, _ = served
        status, raw, _ = _post(server, "/check", {"program": RDWALK})
        assert status == 400 and "spec" in json.loads(raw)["error"]
        status, raw, _ = _post(
            server, "/check", {"spec": "E[cost] <= 1"}
        )
        assert status == 400 and "program" in json.loads(raw)["error"]
        status, raw, _ = _post(
            server, "/check", {"program": RDWALK, "spec": "E[cost] <= <="}
        )
        assert status == 400 and "spec" in json.loads(raw)["error"]
        status, raw, _ = _post(
            server, "/check", {"program": BROKEN, "spec": "E[cost] <= 1"}
        )
        assert status == 422 and "ValidationError" in json.loads(raw)["error"]

    def test_batch_endpoint_isolates_errors(self, served):
        server, _ = served
        status, raw, _ = _post(
            server,
            "/batch",
            {"programs": {"good": SIMPLE, "bad": BROKEN}, "options": {"moments": 1}},
        )
        assert status == 200
        payload = json.loads(raw)
        assert payload["ok"] is False
        by_name = {item["name"]: item for item in payload["items"]}
        assert by_name["good"]["ok"] and "summary" in by_name["good"]
        assert not by_name["bad"]["ok"] and "ValidationError" in by_name["bad"]["error"]

    def test_health_and_cache_stats(self, served):
        server, cache = served
        status, health = _get(server, "/health")
        assert status == 200 and health["status"] == "ok"
        assert "incremental" in health["backends"]
        _post(server, "/analyze", {"program": SIMPLE, "options": {"moments": 1}})
        status, stats = _get(server, "/cache/stats")
        assert status == 200 and stats["enabled"]
        assert stats["directory"] == str(cache.directory)
        assert stats["writes"] > 0
        assert stats["warm_pipelines"] == 1

    def test_error_statuses(self, served):
        server, _ = served
        status, raw, _ = _post(server, "/analyze", {"program": "not appl"})
        assert status == 400 and "parse" in json.loads(raw)["error"]
        status, raw, _ = _post(server, "/analyze", {"options": {}})
        assert status == 400
        status, raw, _ = _post(server, "/analyze", {"program": SIMPLE,
                                                    "options": {"bogus": 1}})
        assert status == 400 and "bogus" in json.loads(raw)["error"]
        status, raw, _ = _post(server, "/analyze", {"program": BROKEN})
        assert status == 422 and "ValidationError" in json.loads(raw)["error"]
        status, _ = _get(server, "/nope")
        assert status == 404

    def test_serve_cli_wiring(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["serve", "--port", "0", "--cache-dir", "/tmp/x", "--max-pipelines", "4"]
        )
        assert args.command == "serve"
        assert args.port == 0 and args.max_pipelines == 4
