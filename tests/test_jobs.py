"""Worker fleet, queue-backed endpoints, metrics, and queue-mode batch.

Complements ``tests/test_jobstore.py`` (pure store properties) with the
layers above it: :mod:`repro.service.jobs` (worker processes, payload
validation), :mod:`repro.service.metrics`, the rewritten HTTP server, the
``queue`` batch executor, and the ``repro jobs`` / ``repro batch --quiet``
CLI surface.
"""

import io
import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.analysis.pipeline import AnalysisOptions
from repro.cli import run as cli_run
from repro.service.cache import ArtifactCache
from repro.service.executor import run_batch
from repro.policy.parser import parse_spec
from repro.service.jobs import (
    JobFailure,
    RequestError,
    WorkerPool,
    analyze_payload,
    check_options,
    check_payload,
    enqueue_analysis,
    execute_job,
    job_idempotency_key,
    options_from_dict,
    options_to_dict,
    wait_for_jobs,
    worker_main,
)
from repro.service.metrics import ServiceMetrics, percentile
from repro.service.server import make_server
from repro.service.store import JobStore

SIMPLE = """
func main() pre(d > 0) begin
  x := 0;
  while x < d inv(x < d + 1) do
    tick(1);
    x := x + 1
  od
end
"""

#: Parses fine, fails deterministically in the static stage.
BROKEN = """
func main() begin
  call missing
end
"""

FAST = {"moments": 1, "at": {"d": 4.0}}


@pytest.fixture()
def store(tmp_path):
    return JobStore(
        tmp_path / "jobs.sqlite3", visibility=5.0, retry_base=0.02, retry_cap=0.1
    )


# ---------------------------------------------------------------------------
# Payloads and options round-trip
# ---------------------------------------------------------------------------


class TestPayloads:
    def test_analyze_payload_validates_up_front(self):
        assert analyze_payload(SIMPLE, FAST)["options"] == FAST
        with pytest.raises(RequestError):
            analyze_payload("not appl at all", {})
        with pytest.raises(RequestError):
            analyze_payload(SIMPLE, {"bogus_option": 1})
        with pytest.raises(RequestError):
            analyze_payload("", {})

    def test_options_roundtrip(self):
        cases = [
            AnalysisOptions(),
            AnalysisOptions(moment_degree=4, template_degree=2, degree_cap=3),
            AnalysisOptions(
                objective_valuations=({"d": 10.0}, {"d": 2.0, "x": 1.0}),
                upper_only=True,
                unit_cost=True,
                lexicographic=False,
                lp_bound=1e9,
            ),
            AnalysisOptions(backend="incremental", lp_reduce=False),
        ]
        for options in cases:
            back = options_from_dict(options_to_dict(options))
            assert back == options, options

    def test_lp_jobs_never_crosses_the_queue(self):
        options = AnalysisOptions(lp_jobs=4)
        assert "lp_jobs" not in options_to_dict(options)

    def test_idempotency_key_is_content_derived(self):
        a = job_idempotency_key("analyze", analyze_payload(SIMPLE, FAST))
        # Whitespace-different program, same canonical content.
        b = job_idempotency_key(
            "analyze", analyze_payload("\n" + SIMPLE + "\n", dict(FAST))
        )
        c = job_idempotency_key("analyze", analyze_payload(SIMPLE, {"moments": 2}))
        assert a == b and a != c

    def test_check_payload_validates_up_front(self):
        payload = check_payload(SIMPLE, "E[cost] <= 10")
        assert payload["spec"] == "E[cost] <= 10"
        with pytest.raises(RequestError):
            check_payload("", "E[cost] <= 10")
        with pytest.raises(RequestError):
            check_payload("not appl at all", "E[cost] <= 10")
        with pytest.raises(RequestError):
            check_payload(SIMPLE, "")
        with pytest.raises(RequestError):
            check_payload(SIMPLE, "E[cost] <= <=")
        with pytest.raises(RequestError):
            check_payload(SIMPLE, "E[cost] <= 10", {"bogus_option": 1})

    def test_check_idempotency_key_is_spec_sensitive(self):
        a = job_idempotency_key("check", check_payload(SIMPLE, "E[cost] <= 10"))
        # Whitespace-different program, same canonical content + same spec.
        b = job_idempotency_key(
            "check", check_payload("\n" + SIMPLE + "\n", "E[cost] <= 10")
        )
        c = job_idempotency_key("check", check_payload(SIMPLE, "E[cost] <= 11"))
        d = job_idempotency_key(
            "check", check_payload(SIMPLE, "E[cost] <= 10", {"moments": 3})
        )
        assert a == b
        assert len({a, c, d}) == 3

    def test_check_options_spec_fills_gaps(self):
        spec = parse_spec("@at d=4, x=0\n@options moments=3\nE[cost] <= 10\n")
        options = check_options(spec, None)
        assert options.moment_degree == 3
        assert options.objective_valuations == ({"d": 4.0, "x": 0.0},)
        # Explicit request options win over spec directives.
        options = check_options(spec, {"moments": 1, "at": {"d": 9.0}})
        assert options.moment_degree == 1
        assert options.objective_valuations == ({"d": 9.0},)
        # Without @options, the assertion forms imply the degree.
        tail_spec = parse_spec("P(cost >= 100) <= 0.5")
        assert check_options(tail_spec, None).moment_degree == 2


class TestExecuteJob:
    def test_analyze_matches_pipeline(self, store):
        job_id, _ = enqueue_analysis(store, SIMPLE, FAST)
        job = store.lease("w")
        doc = execute_job(job)
        assert doc["ok"] and "E[C^1]" in doc["summary"]
        low, high = doc["result"]["evaluated"]["E[C^1]"]
        assert low <= 4.0 <= high

    def test_deterministic_failure_is_not_retryable(self, store):
        job_id, _ = store.enqueue(
            {"program": BROKEN, "options": {}}, kind="analyze"
        )
        job = store.lease("w")
        with pytest.raises(JobFailure) as failure:
            execute_job(job)
        assert not failure.value.retryable

    def test_check_job_round_trip(self, store):
        # The analyzer brackets E[C] in [d, d+1] for this loop shape.
        spec = "@at d=4, x=0\n@options moments=1\nE[cost] in [3.9, 5.1]\n"
        store.enqueue(check_payload(SIMPLE, spec), kind="check")
        job = store.lease("w")
        doc = execute_job(job)
        assert doc["ok"] and doc["verdict"] == "pass"
        assert [a["verdict"] for a in doc["check"]["assertions"]] == ["pass"]

    def test_check_job_static_failure_is_not_retryable(self, store):
        # Parses at enqueue time, fails deterministically in the static
        # stage — a dead letter, not a retry loop.
        store.enqueue(
            {"program": BROKEN, "spec": "E[cost] <= 1", "options": {}},
            kind="check",
        )
        job = store.lease("w")
        with pytest.raises(JobFailure) as failure:
            execute_job(job)
        assert not failure.value.retryable

    def test_unknown_kind_fails_dead(self, store):
        store.enqueue({}, kind="mystery")
        job = store.lease("w")
        with pytest.raises(JobFailure) as failure:
            execute_job(job)
        assert not failure.value.retryable


# ---------------------------------------------------------------------------
# The fleet
# ---------------------------------------------------------------------------


class TestWorkerPool:
    def test_fleet_drains_a_mixed_enqueue(self, store, tmp_path):
        ids = [enqueue_analysis(store, SIMPLE, FAST)[0]]
        ids.append(store.enqueue({"seconds": 0.01}, kind="sleep")[0])
        ids.append(
            store.enqueue(
                {"message": "always", "retryable": True}, kind="fail",
                max_attempts=2,
            )[0]
        )
        with WorkerPool(
            store.path, 2, str(tmp_path / "cache"), visibility=5.0, poll=0.05
        ):
            jobs = wait_for_jobs(store, ids, timeout=90.0)
        assert [job.state for job in jobs] == ["done", "done", "dead"]
        assert jobs[2].attempts == 2 and jobs[2].error == "always"
        assert "E[C^1]" in jobs[0].result["summary"]

    def test_error_isolation_keeps_the_fleet_alive(self, store, tmp_path):
        """A dead-lettering job must not take its worker down with it."""
        bad = store.enqueue(
            {"message": "x", "retryable": False}, kind="fail"
        )[0]
        good = enqueue_analysis(store, SIMPLE, FAST)[0]
        with WorkerPool(store.path, 1, visibility=5.0, poll=0.05):
            jobs = wait_for_jobs(store, [bad, good], timeout=90.0)
        assert [job.state for job in jobs] == ["dead", "done"]

    def test_killed_worker_job_is_retried_and_respawned(self, store):
        """SIGKILL a worker mid-job: the lease expires, the respawned
        fleet re-delivers, and the job still completes."""
        fast_store = JobStore(store.path, visibility=0.4)
        job_id, _ = fast_store.enqueue({"seconds": 30.0}, kind="sleep")
        pool = WorkerPool(store.path, 1, visibility=0.4, poll=0.05)
        pool.start()
        try:
            deadline = time.time() + 15.0
            while (
                fast_store.get(job_id).state != "leased"
                and time.time() < deadline
            ):
                time.sleep(0.02)
            assert fast_store.get(job_id).state == "leased"
            assert pool.kill_worker() is not None
            # Make the re-delivered run short so the test stays fast: the
            # payload is immutable, so instead watch the retry happen and
            # then finish it ourselves as a stand-in successor worker.
            deadline = time.time() + 15.0
            successor = None
            while successor is None and time.time() < deadline:
                successor = fast_store.lease("successor")
                if successor is None:
                    time.sleep(0.05)
            # Beat the respawned worker to the lease often enough: either
            # way the job must have been re-delivered (attempts >= 2).
            job = fast_store.get(job_id)
            assert job.attempts >= 2 and job.retries >= 1
        finally:
            pool.stop(graceful=False, timeout=10.0)
        assert pool.respawned >= 1

    def test_drain_and_exit_fleet_outlives_backoff_retries(self, store):
        """Drain workers must not exit while a retry is parked in backoff."""
        job_id, _ = store.enqueue(
            {"message": "flaky", "retryable": True}, kind="fail",
            max_attempts=3,
        )
        pool = WorkerPool(
            store.path, 1, visibility=5.0, poll=0.05, drain_and_exit=True
        )
        pool.start()
        assert pool.join(timeout=60.0)
        job = store.get(job_id)
        assert job.state == "dead" and job.attempts == 3

    def test_worker_main_in_process_drain(self, store):
        ids = [store.enqueue({"seconds": 0.0}, kind="sleep")[0] for _ in range(3)]
        executed = worker_main(
            str(store.path), visibility=5.0, poll=0.05, drain_and_exit=True
        )
        assert executed == 3
        assert all(job.state == "done" for job in store.iter_jobs(ids))


# ---------------------------------------------------------------------------
# Metrics
# ---------------------------------------------------------------------------


class TestMetrics:
    def test_percentile_nearest_rank(self):
        sample = [5.0, 1.0, 3.0, 2.0, 4.0]
        assert percentile(sample, 0.5) == 3.0
        assert percentile(sample, 0.99) == 5.0
        assert percentile([], 0.5) == 0.0

    def test_snapshot_fields(self, store, tmp_path):
        cache = ArtifactCache(tmp_path / "cache")
        job = store.lease("w") if store.enqueue({"n": 1}) else None
        job = store.lease("w")
        store.enqueue({"n": 2})
        job = store.lease("w")
        store.ack(job.id, "w", {})
        snap = ServiceMetrics(store=store, cache=cache).snapshot()
        assert snap["queue"]["depth"] == 1
        assert snap["queue"]["states"]["done"] == 1
        assert snap["queue"]["enqueued_total"] == 2
        assert snap["latency"]["count"] == 1
        assert snap["latency"]["p50_seconds"] >= 0
        assert snap["latency"]["p99_seconds"] >= snap["latency"]["p50_seconds"]
        assert snap["cache"]["hit_rate"] == 0.0

    def test_prometheus_rendering(self, store):
        store.enqueue({"n": 1})
        text = ServiceMetrics(store=store).render_prometheus()
        assert "# TYPE repro_queue_depth gauge" in text
        assert "repro_queue_depth 1" in text
        assert 'repro_jobs{state="queued"} 1' in text
        assert 'repro_analysis_latency_seconds{quantile="0.5"}' in text
        assert 'repro_analysis_latency_seconds{quantile="0.99"}' in text
        assert "repro_analysis_latency_seconds_count 0" in text
        assert text.endswith("\n")

    def test_degrades_without_store_or_cache(self):
        snap = ServiceMetrics().snapshot()
        assert snap["queue"] == {"enabled": False, "depth": 0, "states": {}}
        text = ServiceMetrics().render_prometheus()
        assert "repro_queue_depth 0" in text


# ---------------------------------------------------------------------------
# HTTP endpoints
# ---------------------------------------------------------------------------


def _post(server, path, body):
    port = server.server_address[1]
    request = urllib.request.Request(
        f"http://127.0.0.1:{port}{path}", data=json.dumps(body).encode()
    )
    try:
        with urllib.request.urlopen(request) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


def _get(server, path, headers=None):
    port = server.server_address[1]
    request = urllib.request.Request(
        f"http://127.0.0.1:{port}{path}", headers=headers or {}
    )
    try:
        with urllib.request.urlopen(request) as response:
            return response.status, response.read()
    except urllib.error.HTTPError as error:
        return error.code, error.read()


@pytest.fixture()
def queue_server(tmp_path):
    db = tmp_path / "jobs.sqlite3"
    store = JobStore(db, visibility=5.0, retry_base=0.02)
    cache_dir = tmp_path / "cache"
    pool = WorkerPool(db, 2, str(cache_dir), visibility=5.0, poll=0.05).start()
    server = make_server(
        port=0, cache=ArtifactCache(cache_dir), store=store, pool=pool,
        max_queued=50,
    )
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    yield server, store, pool
    server.shutdown()
    server.server_close()
    pool.stop(graceful=True, timeout=20.0)


class TestJobEndpoints:
    def test_enqueue_poll_result(self, queue_server):
        server, _store, _pool = queue_server
        status, body = _post(
            server, "/jobs", {"program": SIMPLE, "options": FAST}
        )
        assert status == 202 and body["ok"] and not body["deduped"]
        job_id = body["id"]
        status, raw = _get(server, f"/jobs/{job_id}")
        assert status == 200 and json.loads(raw)["state"] in (
            "queued", "leased", "done",
        )
        deadline = time.time() + 90.0
        while time.time() < deadline:
            status, raw = _get(server, f"/jobs/{job_id}/result")
            if status == 200:
                break
            assert status == 202
            time.sleep(0.05)
        doc = json.loads(raw)
        assert doc["state"] == "done" and "E[C^1]" in doc["summary"]

    def test_check_job_rides_the_queue(self, queue_server):
        server, _store, _pool = queue_server
        spec = "@at d=4, x=0\n@options moments=1\nE[cost] in [3.9, 5.1]\n"
        body = {"kind": "check", "program": SIMPLE, "spec": spec,
                "dedupe": True}
        status, first = _post(server, "/jobs", body)
        assert status == 202 and first["ok"]
        # Dedupe is spec-aware: the same program + spec maps to one job.
        status, second = _post(server, "/jobs", body)
        assert status == 200 and second["id"] == first["id"]
        assert second["deduped"]
        deadline = time.time() + 90.0
        while time.time() < deadline:
            status, raw = _get(server, f"/jobs/{first['id']}/result")
            if status == 200:
                break
            assert status == 202
            time.sleep(0.05)
        doc = json.loads(raw)
        assert doc["state"] == "done" and doc["verdict"] == "pass"
        assert [a["verdict"] for a in doc["check"]["assertions"]] == ["pass"]

    def test_dedupe_returns_the_same_job(self, queue_server):
        server, _store, _pool = queue_server
        body = {"program": SIMPLE, "options": FAST, "dedupe": True}
        _, first = _post(server, "/jobs", body)
        status, second = _post(server, "/jobs", body)
        assert second["id"] == first["id"] and second["deduped"]
        assert status == 200  # dedupe answers 200, fresh enqueue 202

    def test_dead_letter_result_is_structured(self, queue_server):
        server, _store, _pool = queue_server
        status, body = _post(
            server, "/jobs",
            {"kind": "fail", "message": "kaboom", "retryable": False},
        )
        assert status == 202
        deadline = time.time() + 30.0
        while time.time() < deadline:
            status, raw = _get(server, f"/jobs/{body['id']}/result")
            doc = json.loads(raw)
            if doc.get("state") == "dead":
                break
            time.sleep(0.05)
        assert doc["ok"] is False and doc["error"] == "kaboom"

    def test_unknown_job_404_and_bad_requests_400(self, queue_server):
        server, _store, _pool = queue_server
        status, _ = _get(server, "/jobs/99999")
        assert status == 404
        status, _ = _get(server, "/jobs/99999/result")
        assert status == 404
        status, body = _post(server, "/jobs", {"program": "not appl"})
        assert status == 400
        status, body = _post(server, "/jobs", {"kind": "mystery"})
        assert status == 400

    def test_batch_rides_the_queue(self, queue_server):
        server, store, _pool = queue_server
        status, body = _post(
            server, "/batch",
            {"programs": {"a": SIMPLE, "b": BROKEN}, "options": FAST},
        )
        assert status == 200
        assert body["queued"] is True and body["ok"] is False
        by_name = {item["name"]: item for item in body["items"]}
        assert by_name["a"]["ok"] and "job_id" in by_name["a"]
        assert not by_name["b"]["ok"] and "error" in by_name["b"]
        # The jobs are durable rows, not request-scoped state.
        assert store.get(by_name["a"]["job_id"]).state == "done"

    def test_metrics_json_and_prometheus(self, queue_server):
        server, _store, _pool = queue_server
        _post(server, "/jobs", {"program": SIMPLE, "options": FAST})
        status, raw = _get(server, "/metrics")
        snap = json.loads(raw)
        assert status == 200
        for key in ("queue", "latency", "cache", "workers", "service"):
            assert key in snap
        assert "depth" in snap["queue"]
        assert "p50_seconds" in snap["latency"] and "p99_seconds" in snap["latency"]
        assert snap["workers"]["configured"] == 2
        status, raw = _get(server, "/metrics?format=prometheus")
        assert status == 200 and b"repro_queue_depth" in raw
        status, raw = _get(server, "/metrics", headers={"Accept": "text/plain"})
        assert raw.startswith(b"# HELP")

    def test_backpressure_429(self, tmp_path):
        db = tmp_path / "bp.sqlite3"
        store = JobStore(db)
        server = make_server(port=0, store=store, max_queued=2)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            codes = [
                _post(server, "/jobs", {"kind": "sleep", "seconds": 60})[0]
                for _ in range(3)
            ]
            assert codes == [202, 202, 429]
        finally:
            server.shutdown()
            server.server_close()

    def test_jobs_require_a_store(self, tmp_path):
        server = make_server(port=0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            status, body = _post(server, "/jobs", {"program": SIMPLE})
            assert status == 400 and "without a job store" in body["error"]
            status, raw = _get(server, "/metrics")
            assert status == 200  # metrics still served, queue disabled
            assert json.loads(raw)["queue"]["enabled"] is False
        finally:
            server.shutdown()
            server.server_close()


# ---------------------------------------------------------------------------
# Queue-mode batch executor
# ---------------------------------------------------------------------------


class TestQueueBatch:
    def test_matches_thread_executor(self, tmp_path):
        from repro import parse_program

        programs = {"simple": parse_program(SIMPLE)}
        options = AnalysisOptions(
            moment_degree=1, objective_valuations=({"d": 4.0},)
        )
        threaded = run_batch(programs, options=options, executor="thread")
        queued = run_batch(
            programs, options=options, executor="queue", jobs=1,
            cache=ArtifactCache(tmp_path / "cache"),
        )
        assert queued.ok and threaded.ok
        item = queued.items[0]
        assert item.job_id is not None and item.result is None
        bounds = lambda text: [  # noqa: E731 -- summaries embed timings
            line for line in text.splitlines() if " in [" in line
        ]
        assert bounds(item.summary) == bounds(threaded.items[0].summary)
        low, high = item.payload["result"]["evaluated"]["E[C^1]"]
        assert low <= 4.0 <= high

    def test_structured_failures_are_items_not_exceptions(self, tmp_path):
        from repro import parse_program

        programs = {
            "ok": parse_program(SIMPLE),
            "broken": parse_program(BROKEN),
        }
        options = AnalysisOptions(
            moment_degree=1, objective_valuations=({"d": 4.0},)
        )
        report = run_batch(
            programs, options=options, executor="queue", jobs=1, timeout=120.0
        )
        assert not report.ok
        by_name = {item.name: item for item in report.items}
        assert by_name["ok"].ok
        failed = by_name["broken"]
        assert not failed.ok and failed.error and "ValidationError" in failed.error

    def test_external_store_is_shared(self, tmp_path):
        from repro import parse_program

        db = tmp_path / "shared.sqlite3"
        store = JobStore(db, visibility=5.0)
        pool = WorkerPool(db, 1, visibility=5.0, poll=0.05).start()
        try:
            report = run_batch(
                {"simple": parse_program(SIMPLE)},
                options=AnalysisOptions(
                    moment_degree=1, objective_valuations=({"d": 4.0},)
                ),
                executor="queue",
                store=store,
                timeout=90.0,
            )
            assert report.ok
            # The job is visible in the shared store afterwards: durable.
            job = store.get(report.items[0].job_id)
            assert job is not None and job.state == "done"
        finally:
            pool.stop(graceful=True, timeout=20.0)


# ---------------------------------------------------------------------------
# CLI surface
# ---------------------------------------------------------------------------


@pytest.fixture()
def source_file(tmp_path):
    path = tmp_path / "simple.appl"
    path.write_text(SIMPLE)
    return str(path)


class TestJobsCli:
    def test_enqueue_status_drain(self, source_file, tmp_path):
        db = str(tmp_path / "jobs.sqlite3")
        out = io.StringIO()
        code = cli_run(
            ["jobs", "enqueue", source_file, "--db", db, "--moments", "1",
             "--at", "d=4", "--dedupe"],
            out=out,
        )
        assert code == 0 and "job 1 enqueued" in out.getvalue()

        out = io.StringIO()
        code = cli_run(
            ["jobs", "enqueue", source_file, "--db", db, "--moments", "1",
             "--at", "d=4", "--dedupe"],
            out=out,
        )
        assert code == 0 and "deduped" in out.getvalue()

        out = io.StringIO()
        assert cli_run(["jobs", "status", "--db", db, "--json"], out=out) == 0
        status = json.loads(out.getvalue())
        assert status["depth"] == 1 and status["states"]["queued"] == 1

        out = io.StringIO()
        code = cli_run(
            ["jobs", "drain", "--db", db, "--workers", "1"], out=out
        )
        assert code == 0 and "1 done" in out.getvalue()

        out = io.StringIO()
        assert cli_run(["jobs", "status", "1", "--db", db], out=out) == 0
        assert "state: done" in out.getvalue()

        out = io.StringIO()
        assert cli_run(["jobs", "drain", "--db", db], out=out) == 0
        assert "queue already empty" in out.getvalue()

    def test_enqueue_wait_prints_summary(self, source_file, tmp_path):
        db = str(tmp_path / "jobs.sqlite3")
        out = io.StringIO()
        enqueue = threading.Thread(
            target=lambda: cli_run(
                ["jobs", "drain", "--db", db, "--workers", "1", "--timeout",
                 "60"],
                out=io.StringIO(),
            ),
        )
        code = cli_run(
            ["jobs", "enqueue", source_file, "--db", db, "--moments", "1",
             "--at", "d=4"],
            out=out,
        )
        assert code == 0
        enqueue.start()
        enqueue.join(timeout=90.0)
        out = io.StringIO()
        assert cli_run(["jobs", "status", "1", "--db", db, "--json"], out=out) == 0
        assert json.loads(out.getvalue())["state"] == "done"

    def test_status_unknown_job_exits_nonzero(self, tmp_path):
        db = str(tmp_path / "jobs.sqlite3")
        JobStore(db)  # create the schema
        out = io.StringIO()
        assert cli_run(["jobs", "status", "7", "--db", db], out=out) == 1


class TestBatchQuiet:
    def test_quiet_still_surfaces_structured_failures(self, monkeypatch):
        """--quiet hides success rows but a structured per-program failure
        must still print its error and flip the exit code (the bug was
        that error payloads were indistinguishable from success)."""
        from repro.programs import registry

        real = dict(registry.all_benchmarks())
        first_name = sorted(real)[0]
        bench = real[first_name]

        class _Bench:
            moment_degree = 1
            template_degree = 1
            degree_cap = None
            valuation = dict(bench.valuation)
            extra_valuations = ()

        monkeypatch.setattr(
            registry, "all_benchmarks", lambda: {"doomed": _Bench()}
        )
        monkeypatch.setattr(
            registry,
            "parsed",
            lambda name: __import__("repro").parse_program(BROKEN),
        )
        out = io.StringIO()
        code = cli_run(["batch", "--quiet"], out=out)
        text = out.getvalue()
        assert code == 1
        assert "doomed" in text and "FAILED" in text
        assert "ValidationError" in text
        assert "1 failed" in text

    def test_quiet_suppresses_success_rows(self, monkeypatch):
        out_full, out_quiet = io.StringIO(), io.StringIO()
        assert cli_run(["batch", "--prefix", "rdwalk-var1"], out=out_full) == 0
        assert (
            cli_run(["batch", "--prefix", "rdwalk-var1", "--quiet"], out=out_quiet)
            == 0
        )
        assert "rdwalk-var1" in out_full.getvalue()
        assert "E[C] interval" not in out_quiet.getvalue()
        assert "1 programs" in out_quiet.getvalue()

    def test_queue_executor_cli_parity(self, monkeypatch):
        out_thread, out_queue = io.StringIO(), io.StringIO()
        assert (
            cli_run(["batch", "--prefix", "rdwalk-var1"], out=out_thread) == 0
        )
        assert (
            cli_run(
                ["batch", "--prefix", "rdwalk-var1", "--executor", "queue",
                 "--jobs", "1"],
                out=out_queue,
            )
            == 0
        )
        row = lambda text: next(  # noqa: E731
            line for line in text.splitlines() if line.startswith("rdwalk-var1")
        )
        # Same bounds columns; timings differ, so compare up to LP vars.
        assert row(out_thread.getvalue())[:55] == row(out_queue.getvalue())[:55]
