"""Tests for the small-step operational semantics and Monte-Carlo harness."""

import numpy as np
import pytest

from repro.interp.machine import Machine, eval_cond, eval_expr, left_policy
from repro.interp.mc import (
    density_histogram,
    estimate_cost_statistics,
    simulate_costs,
)
from repro.lang.parser import parse_condition, parse_expression, parse_program


def run_once(source, seed=0, initial=None, **kwargs):
    program = parse_program(source)
    machine = Machine(program, **kwargs)
    return machine.run(np.random.default_rng(seed), initial=initial)


class TestEvaluation:
    def test_expr(self):
        expr = parse_expression("2 * x + y - 1")
        assert eval_expr(expr, {"x": 3.0, "y": 4.0}) == 9.0

    def test_missing_variable_defaults_to_zero(self):
        assert eval_expr(parse_expression("x + 1"), {}) == 1.0

    def test_cond(self):
        env = {"x": 1.0, "y": 2.0}
        assert eval_cond(parse_condition("x < y and not (x == y)"), env)
        assert not eval_cond(parse_condition("x >= y or y != 2"), env)


class TestMachine:
    def test_deterministic_cost(self):
        result = run_once(
            """
            func main() begin
              x := 3;
              while x > 0 do
                tick(2);
                x := x - 1
              od;
              tick(-1)
            end
            """
        )
        assert result.terminated
        assert result.cost == 5.0
        assert result.valuation["x"] == 0.0

    def test_call_and_recursion(self):
        result = run_once(
            """
            func down() begin
              if x > 0 then
                tick(1);
                x := x - 1;
                call down
              fi
            end
            func main() begin
              x := 4;
              call down
            end
            """
        )
        assert result.cost == 4.0

    def test_deep_recursion_does_not_overflow(self):
        result = run_once(
            """
            func down() begin
              if x > 0 then
                tick(1);
                x := x - 1;
                call down;
                tick(1)
              fi
            end
            func main() begin
              x := 5000;
              call down
            end
            """,
        )
        assert result.cost == 10_000.0

    def test_initial_valuation(self):
        result = run_once(
            "func main() begin tick(1); y := x end", initial={"x": 7.0}
        )
        assert result.valuation["y"] == 7.0

    def test_max_steps_timeout(self):
        program = parse_program(
            "func main() begin while true do tick(1) od end"
        )
        machine = Machine(program)
        result = machine.run(np.random.default_rng(0), max_steps=500)
        assert not result.terminated
        assert result.steps == 500

    def test_prob_branch_statistics(self):
        program = parse_program(
            "func main() begin if prob(0.25) then tick(1) fi end"
        )
        machine = Machine(program)
        rng = np.random.default_rng(0)
        costs = [machine.run(rng).cost for _ in range(4000)]
        assert np.mean(costs) == pytest.approx(0.25, abs=0.03)

    def test_sampling_statistics(self):
        program = parse_program(
            "func main() begin t ~ uniform(-1, 2); x := t end"
        )
        machine = Machine(program)
        rng = np.random.default_rng(0)
        values = [machine.run(rng).valuation["x"] for _ in range(4000)]
        assert np.mean(values) == pytest.approx(0.5, abs=0.06)
        assert min(values) >= -1.0 and max(values) <= 2.0

    def test_nondet_policies(self):
        source = """
        func main() begin
          if ndet then tick(1) else tick(2) fi
        end
        """
        assert run_once(source, nondet_policy=left_policy).cost == 1.0
        program = parse_program(source)
        rng = np.random.default_rng(0)
        costs = {Machine(program).run(rng).cost for _ in range(50)}
        assert costs == {1.0, 2.0}

    def test_sequencing_order(self):
        result = run_once(
            """
            func main() begin
              x := 1;
              x := x + 1;
              x := x * 3
            end
            """
        )
        assert result.valuation["x"] == 6.0

    def test_geo_expected_cost_is_one(self):
        # Counterexample 2.7's program: true expected cost is 1.
        program = parse_program(
            """
            func geo() begin
              x := x + 1;
              if prob(0.5) then
                tick(1);
                call geo
              fi
            end
            func main() begin
              x := 0;
              call geo
            end
            """
        )
        stats = estimate_cost_statistics(program, n=20_000, seed=5, degree=2)
        assert stats.mean == pytest.approx(1.0, abs=0.05)


class TestMonteCarlo:
    def test_simulate_costs_shape(self):
        program = parse_program("func main() begin tick(3) end")
        costs = simulate_costs(program, 10, seed=0)
        assert costs.shape == (10,)
        assert np.all(costs == 3.0)

    def test_statistics_of_known_distribution(self):
        # Cost ~ 1 + Bernoulli(0.5): mean 1.5, variance 0.25.
        program = parse_program(
            "func main() begin tick(1); if prob(0.5) then tick(1) fi end"
        )
        stats = estimate_cost_statistics(program, n=30_000, seed=2)
        assert stats.mean == pytest.approx(1.5, abs=0.02)
        assert stats.central[2] == pytest.approx(0.25, abs=0.02)
        assert stats.raw[2] == pytest.approx(2.5, abs=0.05)
        assert stats.central[4] == pytest.approx(0.0625, abs=0.02)
        assert stats.timeouts == 0

    def test_skewness_and_kurtosis_of_symmetric_cost(self):
        program = parse_program(
            "func main() begin t ~ discrete(-1: 0.5, 1: 0.5); "
            "if t > 0 then tick(1) else tick(-1) fi end"
        )
        stats = estimate_cost_statistics(program, n=30_000, seed=3)
        assert stats.skewness == pytest.approx(0.0, abs=0.05)
        assert stats.kurtosis == pytest.approx(1.0, abs=0.05)  # two-point law

    def test_density_histogram_normalized(self):
        rng = np.random.default_rng(0)
        costs = rng.normal(10.0, 2.0, size=5000)
        mid, dens = density_histogram(costs, bins=40)
        width = mid[1] - mid[0]
        assert np.sum(dens) * width == pytest.approx(1.0, rel=1e-6)

    def test_no_terminating_runs_raises(self):
        program = parse_program("func main() begin while true do tick(1) od end")
        with pytest.raises(RuntimeError):
            estimate_cost_statistics(program, n=3, seed=0, max_steps=100)
