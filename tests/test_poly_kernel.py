"""The vectorized symbolic kernel must be invisible: same numbers, faster.

Three layers of evidence, from unit to end-to-end:

1. Property suites over seeded random polynomials (dyadic coefficients, as
   in the PR 3 fuzz generator, so float arithmetic round-trips exactly):
   the compiled array kernel and the legacy dict path agree *exactly* on
   add/mul/scale/substitute/moment-replacement, and the plan-routed
   template operations reproduce the legacy results including coefficient
   dict insertion order (which feeds LP row layout).
2. Constraint-system parity: the LP emitted with the kernel enabled is
   byte-identical — same triplets, same row order, same variable names —
   to the one emitted under ``REPRO_DISABLE_POLY_KERNEL``.
3. Analyzer parity: `analyze` bounds are identical (same floats, not just
   close) for the fixed-seed fuzz corpus and registry programs with the
   kernel on and off.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import AnalysisOptions, AnalysisPipeline
from repro.analysis.annotations import MomentAnnotation, PolyInterval
from repro.logic.handelman import (
    certificate_basis,
    certificate_cache_stats,
    clear_certificate_caches,
    emit_nonneg_certificate,
)
from repro.logic.context import Context
from repro.logic.linear import LinExpr, LinIneq
from repro.lp.affine import AffForm
from repro.lp.backends import get_backend
from repro.lp.backends.base import EQ, GE
from repro.lp.core import LPInfeasibleError
from repro.lp.problem import LPProblem
from repro.poly import kernel
from repro.poly.kernel import (
    ExpectationPlan,
    clear_plan_caches,
    kernel_override,
    substitution_plan,
)
from repro.poly.monomial import Monomial, intern_id, monomial_of_id, product_id
from repro.poly.polynomial import Polynomial
from repro.programs.fuzz import generate_corpus
from repro.programs.synthetic import coupon_chain, rdwalk_chain

VARS = ("x", "y", "d")


@pytest.fixture(autouse=True)
def _fresh_memos():
    clear_certificate_caches()
    clear_plan_caches()
    yield
    clear_certificate_caches()
    clear_plan_caches()


def random_poly(rng: np.random.Generator, max_terms: int = 6, max_exp: int = 3) -> Polynomial:
    """A random concrete polynomial with dyadic coefficients."""
    terms = {}
    for _ in range(int(rng.integers(0, max_terms + 1))):
        powers = {
            v: int(rng.integers(0, max_exp + 1))
            for v in VARS
            if rng.random() < 0.6
        }
        mono = Monomial.from_dict(powers)
        coeff = int(rng.integers(-64, 65)) / 16.0
        if coeff:
            terms[mono] = terms.get(mono, 0.0) + coeff
    return Polynomial(terms)


def random_template(rng: np.random.Generator, lp: LPProblem) -> Polynomial:
    """A random template polynomial: AffForm coefficients over fresh vars."""
    poly = random_poly(rng)
    coeffs = {}
    for i, (mono, c) in enumerate(poly.coeffs.items()):
        if i % 2 == 0:
            coeffs[mono] = AffForm.of_var(lp.fresh(f"t{i}"), c)
        else:
            coeffs[mono] = c
    return Polynomial(coeffs)


def poly_items(poly: Polynomial):
    """Coefficient items *in insertion order* — the LP-visible layout."""
    return [(m.powers, c) for m, c in poly.coeffs.items()]


# ---------------------------------------------------------------------------
# Interned monomials
# ---------------------------------------------------------------------------


class TestInternTable:
    def test_product_table_matches_structural_product(self):
        rng = np.random.default_rng(7)
        for _ in range(200):
            a = Monomial.from_dict(
                {v: int(rng.integers(0, 4)) for v in VARS if rng.random() < 0.7}
            )
            b = Monomial.from_dict(
                {v: int(rng.integers(0, 4)) for v in VARS if rng.random() < 0.7}
            )
            prod = a * b
            expected = {v: a.exponent_of(v) + b.exponent_of(v) for v in VARS}
            assert prod == Monomial.from_dict(expected)
            # Commutative, and memoized to the same interned instance.
            assert (b * a) is prod or (b * a) == prod

    def test_interned_ids_are_stable_and_roundtrip(self):
        m = Monomial.from_dict({"x": 2, "y": 1})
        assert monomial_of_id(m.iid) == m
        assert intern_id(Monomial.from_dict({"x": 2, "y": 1})) == m.iid
        assert product_id(m.iid, m.iid) == Monomial.from_dict({"x": 4, "y": 2}).iid

    def test_unit_product_identity(self):
        m = Monomial.of("x", 3)
        assert m * Monomial.unit() is m
        assert Monomial.unit() * m is m

    def test_pickle_drops_process_local_state(self):
        import pickle

        m = Monomial.from_dict({"x": 2})
        _ = m.iid, hash(m), repr(m), m.degree  # populate every cache
        clone = pickle.loads(pickle.dumps(m))
        assert clone == m
        assert not hasattr(clone, "_iid")  # re-derived lazily, not shipped
        assert clone.iid == m.iid  # same process, same table

    def test_unit_monomial_pickle_roundtrip(self):
        import pickle

        clone = pickle.loads(pickle.dumps(Monomial.unit()))
        assert clone == Monomial.unit()
        assert clone.is_unit()

    def test_from_dict_rejects_negative_exponents(self):
        # Regression: the validation used to run *after* the ``e > 0``
        # filter, so negative exponents were silently dropped instead of
        # rejected.
        with pytest.raises(ValueError):
            Monomial.from_dict({"x": -1})
        with pytest.raises(ValueError):
            Monomial.from_dict({"x": 2, "y": -3})


# ---------------------------------------------------------------------------
# Compiled polynomials
# ---------------------------------------------------------------------------


class TestCompiledPoly:
    def test_roundtrip(self):
        rng = np.random.default_rng(11)
        for _ in range(100):
            p = random_poly(rng)
            assert p.compiled().to_polynomial().coeffs == p.coeffs

    def test_add_matches_dict_path(self):
        rng = np.random.default_rng(13)
        for _ in range(150):
            p, q = random_poly(rng), random_poly(rng)
            compiled = p.compiled() + q.compiled()
            assert compiled.to_polynomial().coeffs == (p + q).coeffs

    def test_mul_matches_dict_path(self):
        rng = np.random.default_rng(17)
        with kernel_override(False):  # legacy reference product
            for _ in range(150):
                p, q = random_poly(rng), random_poly(rng)
                compiled = p.compiled() * q.compiled()
                assert compiled.to_polynomial().coeffs == (p * q).coeffs

    def test_scale_matches_dict_path(self):
        rng = np.random.default_rng(19)
        for _ in range(100):
            p = random_poly(rng)
            s = int(rng.integers(-32, 33)) / 8.0
            assert p.compiled().scale(s).to_polynomial().coeffs == p.scale(s).coeffs

    def test_substitute_matches_dict_path(self):
        rng = np.random.default_rng(23)
        for _ in range(100):
            p, repl = random_poly(rng), random_poly(rng, max_terms=3, max_exp=2)
            var = VARS[int(rng.integers(0, len(VARS)))]
            with kernel_override(False):
                expected = p.substitute(var, repl)
            compiled = p.compiled().substitute(var, repl)
            assert compiled.to_polynomial().coeffs == expected.coeffs

    def test_expect_powers_matches_dict_path(self):
        rng = np.random.default_rng(29)
        moments = {k: (k + 1) / 2.0 for k in range(1, 16)}
        for _ in range(100):
            p = random_poly(rng)
            var = VARS[int(rng.integers(0, len(VARS)))]
            expected = p.expect_powers(var, moments.__getitem__)
            compiled = p.compiled().expect_powers(var, moments.__getitem__)
            assert compiled.to_polynomial().coeffs == expected.coeffs

    def test_evaluate_matches(self):
        rng = np.random.default_rng(31)
        env = {"x": 1.5, "y": -2.0, "d": 3.0}
        for _ in range(50):
            p = random_poly(rng)
            assert p.compiled().evaluate(env) == p.evaluate(env)

    def test_template_rejected(self):
        lp = LPProblem(backend=get_backend("dense"))
        poly = Polynomial({Monomial.of("x"): AffForm.of_var(lp.fresh("u"))})
        with pytest.raises(TypeError):
            poly.compiled()


# ---------------------------------------------------------------------------
# Plans: identical values AND identical insertion order
# ---------------------------------------------------------------------------


class TestPlans:
    def test_substitution_plan_matches_legacy_exactly(self):
        rng = np.random.default_rng(37)
        for _ in range(120):
            p, repl = random_poly(rng), random_poly(rng, max_terms=3, max_exp=2)
            var = VARS[int(rng.integers(0, len(VARS)))]
            with kernel_override(False):
                expected = p.substitute(var, repl)
            clear_plan_caches()
            got = substitution_plan(var, repl).apply(p)
            assert poly_items(got) == poly_items(expected)

    def test_substitution_plan_on_templates(self):
        rng = np.random.default_rng(41)
        for _ in range(60):
            lp = LPProblem(backend=get_backend("dense"))
            p = random_template(rng, lp)
            repl = random_poly(rng, max_terms=3, max_exp=2)
            var = VARS[int(rng.integers(0, len(VARS)))]
            with kernel_override(False):
                expected = p.substitute(var, repl)
            clear_plan_caches()
            got = substitution_plan(var, repl).apply(p)
            assert poly_items(got) == poly_items(expected)
            for mono, c in expected.coeffs.items():
                mirror = got.coeffs[mono]
                assert type(mirror) is type(c)
                if isinstance(c, AffForm):
                    assert list(mirror.terms.items()) == list(c.terms.items())

    def test_expectation_plan_matches_legacy_exactly(self):
        rng = np.random.default_rng(43)
        moments = {k: (2.0 ** -k) * 3 for k in range(1, 16)}
        for _ in range(60):
            lp = LPProblem(backend=get_backend("dense"))
            p = random_template(rng, lp)
            var = VARS[int(rng.integers(0, len(VARS)))]
            expected = p.expect_powers(var, moments.__getitem__)
            got = ExpectationPlan(var, moments.__getitem__).apply(p)
            assert poly_items(got) == poly_items(expected)

    def test_plans_are_memoized(self):
        repl = Polynomial({Monomial.of("x"): 1.0, Monomial.unit(): -1.0})
        assert substitution_plan("x", repl) is substitution_plan("x", repl)

    def test_annotation_ops_match_with_kernel_off(self):
        """prefix_cost / prob_mix / oplus_all: fused vs legacy chains."""
        rng = np.random.default_rng(47)
        for _ in range(30):
            lp = LPProblem(backend=get_backend("dense"))

            def ann():
                return MomentAnnotation(
                    [
                        PolyInterval(random_template(rng, lp), random_template(rng, lp))
                        for _ in range(3)
                    ]
                )

            a, b = ann(), ann()
            cost = int(rng.integers(-8, 9)) / 4.0
            prob = int(rng.integers(1, 16)) / 16.0
            with kernel_override(True):
                fused = (
                    a.prefix_cost(cost),
                    a.prob_mix(prob, b),
                    MomentAnnotation.oplus_all([a, b, a]),
                )
            with kernel_override(False):
                legacy = (
                    a.prefix_cost(cost),
                    a.prob_mix(prob, b),
                    MomentAnnotation.oplus_all([a, b, a]),
                )
            for got, want in zip(fused, legacy):
                for iv_g, iv_w in zip(got.intervals, want.intervals):
                    assert poly_items(iv_g.lo) == poly_items(iv_w.lo)
                    assert poly_items(iv_g.hi) == poly_items(iv_w.hi)


# ---------------------------------------------------------------------------
# Certificate emission parity
# ---------------------------------------------------------------------------


def _ctx(*pairs) -> Context:
    return Context(tuple(LinIneq(LinExpr.build(dict(c), k)) for c, k in pairs))


def _lp_fingerprint(lp: LPProblem):
    # The dense backend stores (terms dict, const) per row; listing the
    # items preserves insertion order, so this captures the exact layout the
    # solver would see — and works on every CI leg (no HiGHS required).
    rows = lp.backend._rows
    return (
        [v.name for v in lp.pool.variables],
        sorted(lp.nonneg_indices),
        {
            kind: [(list(terms.items()), const) for terms, const in rows[kind]]
            for kind in (EQ, GE)
        },
    )


class TestEmissionParity:
    def test_emission_is_byte_identical(self):
        rng = np.random.default_rng(53)
        ctx = _ctx(({"x": 1.0}, 0.0), ({"x": -1.0, "d": 1.0}, 2.0))
        for trial in range(25):
            fingerprints = []
            for enabled in (True, False):
                clear_certificate_caches()
                clear_plan_caches()
                lp = LPProblem(backend=get_backend("dense"))
                template_rng = np.random.default_rng(1000 + trial)
                poly = random_template(template_rng, lp)
                minus = random_template(template_rng, lp)
                error = None
                with kernel_override(enabled):
                    try:
                        emit_nonneg_certificate(
                            lp, ctx, poly, 2, label=f"t{trial}", minus=minus
                        )
                    except LPInfeasibleError as err:
                        # A trivially contradictory row (all-constant target)
                        # must surface identically — same message, same
                        # partially emitted system — on both paths.
                        error = str(err)
                fingerprints.append((error, _lp_fingerprint(lp)))
            assert fingerprints[0] == fingerprints[1]

    def test_basis_matches_products(self):
        from repro.logic.handelman import certificate_products

        ctx = _ctx(({"x": 1.0}, 0.0), ({"y": 1.0}, 1.0))
        basis = certificate_basis(ctx, 3)
        products = certificate_products(ctx, 3)
        assert basis.n_products == len(products)
        rebuilt: dict = {}
        for mono, rows, negs in basis.columns:
            for j, neg in zip(rows.tolist(), negs):
                rebuilt.setdefault(j, {})[mono] = -neg
        for j, prod in enumerate(products):
            assert rebuilt.get(j, {}) == dict(prod.coeffs)

    def test_basis_is_cached_per_context_and_degree(self):
        ctx = _ctx(({"x": 1.0}, 0.0))
        b1 = certificate_basis(ctx, 2)
        assert certificate_basis(ctx, 2) is b1
        assert certificate_basis(ctx, 3) is not b1
        # A structurally equal context hits the same entry.
        assert certificate_basis(_ctx(({"x": 1.0}, 0.0)), 2) is b1
        assert certificate_cache_stats()["bases"] == 2


# ---------------------------------------------------------------------------
# End-to-end: analyzer outputs are byte-identical
# ---------------------------------------------------------------------------


def _bounds_fingerprint(result):
    def ann_items(ann):
        return [
            (poly_items(iv.lo), poly_items(iv.hi)) for iv in ann.intervals
        ]

    return (
        ann_items(result.raw),
        {
            name: (
                [ann_items(a) for a in fb.pres],
                [ann_items(a) for a in fb.posts],
            )
            for name, fb in sorted(result.functions.items())
        },
        result.objective_values,
    )


def _analyze_both(program, options):
    outcomes = []
    for enabled in (True, False):
        clear_certificate_caches()
        clear_plan_caches()
        with kernel_override(enabled):
            try:
                outcomes.append(
                    _bounds_fingerprint(AnalysisPipeline(program).analyze(options))
                )
            except LPInfeasibleError as err:
                outcomes.append(("infeasible", str(err)))
    return outcomes


class TestAnalyzerParity:
    def test_fuzz_corpus_bounds_identical(self):
        for case in generate_corpus(8, seed=0):
            on, off = _analyze_both(
                case.parse(), AnalysisOptions(moment_degree=2)
            )
            assert on == off, f"kernel changed bounds for fuzz seed {case.seed}"

    def test_registry_programs_bounds_identical(self):
        from repro.programs import registry

        sample = [
            "rdwalk",
            "geo",
            "absynth-prdwalk",
            "absynth-race",
            "wang-running-example",
            "kura-1-1",
        ]
        available = registry.all_benchmarks()
        for name in sample:
            if name not in available:
                continue
            bench = available[name]
            options = AnalysisOptions(
                moment_degree=min(bench.moment_degree, 2),
                template_degree=bench.template_degree,
                degree_cap=bench.degree_cap,
                objective_valuations=(bench.valuation,),
            )
            on, off = _analyze_both(registry.parsed(name), options)
            assert on == off, f"kernel changed bounds for registry {name!r}"

    def test_synthetic_m4_bounds_identical(self):
        for program in (coupon_chain(3), rdwalk_chain(1)):
            on, off = _analyze_both(program, AnalysisOptions(moment_degree=4))
            assert on == off

    def test_kill_switch_env(self):
        """REPRO_DISABLE_POLY_KERNEL mirrors REPRO_DISABLE_HIGHS at import."""
        import os
        import pathlib
        import subprocess
        import sys

        repo = pathlib.Path(__file__).resolve().parents[1]
        env = dict(os.environ)
        env["REPRO_DISABLE_POLY_KERNEL"] = "1"
        env["PYTHONPATH"] = str(repo / "src")
        code = (
            "from repro.poly.kernel import kernel_enabled; "
            "import sys; sys.exit(0 if not kernel_enabled() else 1)"
        )
        proc = subprocess.run([sys.executable, "-c", code], env=env, cwd=repo)
        assert proc.returncode == 0
        assert kernel.kernel_enabled() in (True, False)  # current process sane
