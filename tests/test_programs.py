"""Integrity tests for the benchmark program registry and generators."""

import numpy as np
import pytest

from repro.interp.machine import Machine, eval_cond
from repro.lang.printer import format_program
from repro.lang.varinfo import analyze_program as static_info
from repro.programs import registry
from repro.programs.synthetic import (
    coupon_chain,
    coupon_chain_source,
    rdwalk_chain,
    rdwalk_chain_source,
)

ALL_NAMES = sorted(registry.all_benchmarks())


class TestRegistry:
    def test_registry_is_populated(self):
        assert len(ALL_NAMES) >= 35
        for prefix in ("rdwalk", "geo", "kura-", "absynth-", "wang-", "timing-"):
            assert any(n.startswith(prefix) for n in ALL_NAMES), prefix

    @pytest.mark.parametrize("name", ALL_NAMES)
    def test_program_parses_and_validates(self, name):
        bench = registry.get(name)
        program = bench.parse()
        info = static_info(program)
        assert program.main in info.reachable
        assert bench.description

    @pytest.mark.parametrize("name", ALL_NAMES)
    def test_print_parse_roundtrip(self, name):
        program = registry.get(name).parse()
        from repro.lang.parser import parse_program

        printed = format_program(program)
        assert format_program(parse_program(printed)) == printed

    @pytest.mark.parametrize("name", ALL_NAMES)
    def test_valuation_satisfies_preconditions(self, name):
        bench = registry.get(name)
        program = bench.parse()
        env = {v: 0.0 for v in static_info(program).variables}
        env.update(bench.valuation)
        for cond in program.main_fun.pre:
            assert eval_cond(cond, env), (name, cond)

    @pytest.mark.parametrize("name", ALL_NAMES)
    def test_simulation_terminates(self, name):
        bench = registry.get(name)
        machine = Machine(bench.parse())
        rng = np.random.default_rng(41)
        result = machine.run(rng, initial=bench.sim_init, max_steps=400_000)
        assert result.terminated, name

    def test_parsed_cache_returns_same_object(self):
        assert registry.parsed("rdwalk") is registry.parsed("rdwalk")

    def test_duplicate_registration_rejected(self):
        from repro.programs.registry import BenchProgram, register

        with pytest.raises(ValueError):
            register(
                BenchProgram(name="rdwalk", source="func main() begin skip end")
            )

    def test_by_prefix(self):
        kura = registry.by_prefix("kura-")
        assert len(kura) == 7


class TestSyntheticGenerators:
    @pytest.mark.parametrize("n", [1, 3, 10])
    def test_coupon_chain_structure(self, n):
        program = coupon_chain(n)
        assert len(program.functions) == n + 1  # states + main

    def test_coupon_chain_expected_draws(self):
        # E[draws] = N * H_N.
        program = coupon_chain(3)
        machine = Machine(program)
        rng = np.random.default_rng(5)
        costs = [machine.run(rng).cost for _ in range(4000)]
        expected = 3 * (1 + 1 / 2 + 1 / 3)
        assert np.mean(costs) == pytest.approx(expected, rel=0.05)

    @pytest.mark.parametrize("n", [1, 2, 4])
    def test_rdwalk_chain_structure(self, n):
        program = rdwalk_chain(n)
        assert len(program.functions) == n + 1

    def test_rdwalk_chain_simulates(self):
        program = rdwalk_chain(3)
        machine = Machine(program)
        rng = np.random.default_rng(6)
        result = machine.run(rng, max_steps=200_000)
        assert result.terminated
        assert result.cost > 0

    def test_sources_grow_linearly(self):
        small = len(coupon_chain_source(10).splitlines())
        large = len(coupon_chain_source(100).splitlines())
        assert 8 <= large / small <= 12
        small = len(rdwalk_chain_source(5).splitlines())
        large = len(rdwalk_chain_source(50).splitlines())
        assert 8 <= large / small <= 12

    def test_invalid_sizes_rejected(self):
        with pytest.raises(ValueError):
            coupon_chain(0)
        with pytest.raises(ValueError):
            rdwalk_chain(0)
