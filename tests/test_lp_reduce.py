"""The structure-exploiting LP reduction layer (:mod:`repro.lp.reduce`).

Three levels of coverage:

* presolve unit tests on hand-built LPs — singleton-equality fixing, free
  and implied-slack column elimination, duplicate/vacuous row dropping,
  zero columns, infeasibility detection, and the block decomposition with
  full-space value recovery;
* the kill-switch contract — ``REPRO_DISABLE_LP_REDUCE`` /
  ``reduce_override`` route solves to the direct backend, and
  ``AnalysisOptions.lp_reduce`` is honored per analysis (including in the
  solve-stage cache key);
* registry-wide parity — resolved moment bounds with the reduction on and
  off agree to solver tolerance on every registry program (the fuzz-corpus
  counterpart lives in ``tests/test_backends.py``).
"""

import math

import numpy as np
import pytest

from repro import AnalysisOptions, AnalysisPipeline, analyze
from repro.lp.affine import AffForm
from repro.lp.problem import LPInfeasibleError, LPProblem
from repro.lp.reduce import (
    ReducedSolver,
    reduce_enabled,
    reduce_override,
    set_reduce_enabled,
)
from repro.programs import registry


def build_problem():
    return LPProblem()


class TestSwitch:
    def test_override_restores_previous_state(self):
        before = reduce_enabled()
        with reduce_override(not before):
            assert reduce_enabled() is (not before)
        assert reduce_enabled() is before

    def test_set_returns_previous(self):
        before = set_reduce_enabled(False)
        try:
            assert reduce_enabled() is False
        finally:
            set_reduce_enabled(before)

    def test_disabled_solve_uses_backend_directly(self):
        lp = build_problem()
        x = lp.fresh("x")
        lp.add_ge(AffForm.of_var(x) - 2.0)
        with reduce_override(False):
            solution = lp.solve(AffForm.of_var(x))
        assert solution.objective == pytest.approx(2.0)
        assert lp._reducer is None  # never attached
        assert lp.backend.stats.solves == 1

    def test_explicit_reduce_argument_wins_over_switch(self):
        lp = build_problem()
        x = lp.fresh("x")
        lp.add_ge(AffForm.of_var(x) - 2.0)
        with reduce_override(False):
            solution = lp.solve(AffForm.of_var(x), reduce=True)
        assert solution.objective == pytest.approx(2.0)
        assert lp._reducer is not None
        assert lp.reduction_stats() is not None


class TestPresolveRules:
    def _stats(self, lp):
        stats = lp.reduction_stats()
        assert stats is not None
        return stats

    def test_singleton_equality_cascade_fixes_chain(self):
        lp = build_problem()
        x, y, z = lp.fresh("x"), lp.fresh("y"), lp.fresh("z")
        lp.add_eq(AffForm.of_var(x) - 4.0)  # x == 4
        lp.add_eq(AffForm.of_var(y) - AffForm.of_var(x))  # y == x -> singleton
        lp.add_eq(AffForm.of_var(z) - AffForm.of_var(y) - 1.0)  # z == y + 1
        solution = lp.solve(AffForm.of_var(z), reduce=True)
        assert solution.value_of(x) == pytest.approx(4.0)
        assert solution.value_of(y) == pytest.approx(4.0)
        assert solution.value_of(z) == pytest.approx(5.0)
        assert solution.objective == pytest.approx(5.0)
        stats = self._stats(lp)
        assert stats["fixed_cols"] == 3
        assert stats["reduced_rows"] == 0

    def test_free_singleton_column_absorbs_row(self):
        lp = build_problem()
        x, y = lp.fresh("x"), lp.fresh("y")
        lp.add_ge(AffForm.of_var(x) - 1.0)  # core row
        # y appears only here: the row is droppable, y recovered in postsolve.
        lp.add_eq(AffForm.of_var(y) + 2.0 * AffForm.of_var(x) - 10.0)
        solution = lp.solve(AffForm.of_var(x), reduce=True)
        assert solution.objective == pytest.approx(1.0)
        assert solution.value_of(y) == pytest.approx(10.0 - 2.0 * 1.0)
        assert self._stats(lp)["free_cols"] == 1

    def test_implied_slack_turns_equality_into_inequality(self):
        lp = build_problem()
        x = lp.fresh("x")
        lam = lp.fresh_nonneg("lam")
        # x - lam == 3 with lam >= 0 projects to x >= 3.
        lp.add_eq(AffForm.of_var(x) - AffForm.of_var(lam) - 3.0)
        solution = lp.solve(AffForm.of_var(x), reduce=True)
        assert solution.objective == pytest.approx(3.0)
        assert solution.value_of(lam) == pytest.approx(0.0)
        stats = self._stats(lp)
        assert stats["slack_cols"] == 1
        # Driving x up must stretch the recovered slack accordingly.
        solution = lp.solve(AffForm.of_var(x), minimize=False, bound=50.0, reduce=True)
        assert solution.objective == pytest.approx(50.0)
        assert solution.value_of(lam) == pytest.approx(47.0)

    def test_lambda_that_only_hurts_is_fixed_to_zero(self):
        lp = build_problem()
        x = lp.fresh("x")
        lam = lp.fresh_nonneg("lam")
        # x - lam >= 1: lam > 0 only weakens the row; any optimum has lam=0.
        lp.add_ge(AffForm.of_var(x) - AffForm.of_var(lam) - 1.0)
        solution = lp.solve(AffForm.of_var(x), reduce=True)
        assert solution.objective == pytest.approx(1.0)
        assert solution.value_of(lam) == 0.0

    def test_optimality_fixed_lambda_resurrects_under_objective(self):
        """λ = 0 is an optimality choice, not a substitution: an objective
        on the column must put it back into the core (review finding)."""
        lp = build_problem()
        x = lp.fresh("x")
        lam = lp.fresh_nonneg("lam")
        lp.add_ge(AffForm.of_var(x) - AffForm.of_var(lam) - 1.0)
        lp.solve(AffForm.of_var(x), reduce=True)
        best = lp.solve(
            AffForm.of_var(lam), minimize=False, bound=100.0, reduce=True
        )
        direct = lp.solve(
            AffForm.of_var(lam), minimize=False, bound=100.0, reduce=False
        )
        assert best.objective == pytest.approx(direct.objective)
        assert best.objective == pytest.approx(99.0)

    def test_optimality_fixed_lambda_resurrects_under_new_row(self):
        """A later row on an optimality-fixed λ invalidates the fix; the
        system stays feasible and the optimum moves (review finding)."""
        lp = build_problem()
        x = lp.fresh("x")
        lam = lp.fresh_nonneg("lam")
        lp.add_ge(AffForm.of_var(x) - AffForm.of_var(lam) - 1.0)
        lp.solve(AffForm.of_var(x), reduce=True)
        lp.add_ge(AffForm.of_var(lam) - 5.0)
        solution = lp.solve(AffForm.of_var(x), reduce=True)
        assert solution.objective == pytest.approx(6.0)
        assert solution.value_of(lam) == pytest.approx(5.0)

    def test_duplicate_rows_are_dropped(self):
        lp = build_problem()
        x, y = lp.fresh("x"), lp.fresh("y")
        for _ in range(3):
            lp.add_ge(AffForm.of_var(x) + AffForm.of_var(y) - 2.0)
        lp.add_ge(AffForm.of_var(x) - AffForm.of_var(y))
        solution = lp.solve(AffForm.of_var(x), reduce=True)
        assert solution.objective == pytest.approx(1.0)
        assert self._stats(lp)["dup_rows"] == 2

    def test_vacuous_inequality_is_dropped(self):
        lp = build_problem()
        lam = lp.fresh_nonneg("lam")
        mu = lp.fresh_nonneg("mu")
        # lam + mu >= -5 holds for every nonnegative point.
        lp.add_ge(AffForm.of_var(lam) + AffForm.of_var(mu) + 5.0)
        lp.add_ge(AffForm.of_var(lam) + AffForm.of_var(mu) - 1.0)
        solution = lp.solve(AffForm.of_var(lam) + AffForm.of_var(mu), reduce=True)
        assert solution.objective == pytest.approx(1.0)
        assert self._stats(lp)["vacuous_rows"] == 1

    def test_zero_column_sits_at_its_optimal_bound(self):
        lp = build_problem()
        x = lp.fresh("x")
        lam = lp.fresh_nonneg("lam")  # in no row at all
        lp.add_ge(AffForm.of_var(x) - 1.0)
        solution = lp.solve(
            AffForm.of_var(x) + AffForm.of_var(lam), bound=100.0, reduce=True
        )
        assert solution.value_of(lam) == pytest.approx(0.0)
        solution = lp.solve(
            AffForm.of_var(x) - AffForm.of_var(lam), bound=100.0, reduce=True
        )
        assert solution.value_of(lam) == pytest.approx(100.0)

    def test_presolve_detects_forced_negative_multiplier(self):
        lp = build_problem()
        lam = lp.fresh_nonneg("lam")
        lp.add_eq(AffForm.of_var(lam) + 2.0)  # lam == -2 contradicts lam >= 0
        with pytest.raises(LPInfeasibleError, match="presolve"):
            lp.solve(AffForm.of_var(lam), reduce=True)

    def test_presolve_detects_contradictory_substitution(self):
        lp = build_problem()
        x, y = lp.fresh("x"), lp.fresh("y")
        lp.add_eq(AffForm.of_var(x) - 1.0)
        lp.add_eq(AffForm.of_var(y) - 2.0)
        lp.add_eq(AffForm.of_var(x) - AffForm.of_var(y))  # 1 == 2
        with pytest.raises(LPInfeasibleError, match="residual"):
            lp.solve(AffForm.of_var(x), reduce=True)


class TestDecomposition:
    def test_independent_blocks_solve_separately_and_map_back(self):
        lp = build_problem()
        x, y = lp.fresh("x"), lp.fresh("y")
        a, b = lp.fresh("a"), lp.fresh("b")
        lp.add_ge(AffForm.of_var(x) - 1.0)
        lp.add_ge(AffForm.of_var(y) - AffForm.of_var(x) - 1.0)
        lp.add_ge(AffForm.of_var(a) - 5.0)
        lp.add_ge(AffForm.of_var(b) - AffForm.of_var(a) - 5.0)
        objective = (
            AffForm.of_var(x) + AffForm.of_var(y) + AffForm.of_var(a) + AffForm.of_var(b)
        )
        solution = lp.solve(objective, reduce=True)
        assert solution.objective == pytest.approx(1 + 2 + 5 + 10)
        stats = lp.reduction_stats()
        assert stats["components"] == 2
        assert sorted(stats["component_sizes"]) == [2, 2]
        assert [bid for bid, _ in stats["block_solve_seconds"]] == [0, 1]
        for var, expected in ((x, 1.0), (y, 2.0), (a, 5.0), (b, 10.0)):
            assert solution.value_of(var) == pytest.approx(expected)

    def test_cut_row_spanning_blocks_merges_them(self):
        lp = build_problem()
        x, y = lp.fresh("x"), lp.fresh("y")
        lp.add_ge(AffForm.of_var(x) - 1.0)
        lp.add_ge(AffForm.of_var(y) - 2.0)
        first = lp.solve(AffForm.of_var(x) + AffForm.of_var(y), reduce=True)
        assert first.objective == pytest.approx(3.0)
        assert lp.reduction_stats()["components"] == 2
        lp.add_ge(AffForm.of_var(x) + AffForm.of_var(y) - 9.0)  # couples blocks
        second = lp.solve(AffForm.of_var(x) + AffForm.of_var(y), reduce=True)
        assert second.objective == pytest.approx(9.0)
        assert lp._reducer.block_merges == 1

    def test_objective_on_eliminated_column_triggers_reprotection(self):
        lp = build_problem()
        x, y = lp.fresh("x"), lp.fresh("y")
        lp.add_ge(AffForm.of_var(x) - 1.0)
        # y is a free singleton: eliminated from the core on the first solve.
        lp.add_eq(AffForm.of_var(y) - AffForm.of_var(x) - 1.0)
        first = lp.solve(AffForm.of_var(x), reduce=True)
        assert first.value_of(y) == pytest.approx(2.0)
        # A later objective on y must resurrect it, transparently.
        second = lp.solve(AffForm.of_var(y), reduce=True)
        assert second.objective == pytest.approx(2.0)
        assert lp._reducer.invalidations >= 1

    def test_protected_row_free_column_gets_a_singleton_block(self):
        """A row-free column in the objective becomes its own block once
        protected, so cut rows on it project normally instead of cycling
        through unsatisfiable protect-and-recompute rounds."""
        lp = build_problem()
        x = lp.fresh("x")
        free = lp.fresh("free")  # appears in no row
        lp.add_ge(AffForm.of_var(x) - 1.0)
        # The pipeline protects every objective column up front.
        lp.protect_columns([x.index, free.index])
        objective = AffForm.of_var(x) + AffForm.of_var(free)
        first = lp.solve(objective, bound=100.0, reduce=True)
        assert first.objective == pytest.approx(1.0 - 100.0)
        assert lp._reducer.invalidations == 0
        # A cut touching the row-free column must not disable the reducer.
        lp.add_ge(AffForm.of_var(free) + 3.0)
        second = lp.solve(objective, bound=100.0, reduce=True)
        assert second.objective == pytest.approx(1.0 - 3.0)
        assert not lp._reducer._disabled

    def test_pin_objective_pins_blocks_separately(self):
        lp = build_problem()
        x, y = lp.fresh("x"), lp.fresh("y")
        lp.add_ge(AffForm.of_var(x) - 1.0)
        lp.add_ge(AffForm.of_var(y) - 2.0)
        checkpoint = lp.checkpoint()
        objective = AffForm.of_var(x) + AffForm.of_var(y)
        first = lp.solve(objective, reduce=True)
        applied = lp.pin_objective(objective, first.objective, 1e-5)
        assert applied <= 2 * 1e-5 * (1.0 + 3.0)
        assert lp._reducer.block_pins == 2
        assert lp._reducer.block_merges == 0
        # Maximizing -(x) under the pin stays within the pinned band.
        second = lp.solve(AffForm.of_var(x) * -1.0, reduce=True)
        assert second.objective == pytest.approx(-1.0, abs=1e-3)
        lp.rollback(checkpoint)
        third = lp.solve(objective, reduce=True)
        assert third.objective == pytest.approx(3.0)


class TestRegistryParity:
    """Reduction on/off must agree on every registry program.

    Two layers of agreement, mirroring the cross-backend parity suite:

    * the lexicographic *stage optima* — the quantities the LP actually
      pins — agree to 1e-6 in the objective's own units;
    * the resolved *interval ends* agree within the documented cut-margin
      bands (``stage_tolerances``): each pin holds later stages only within
      its margin, and both paths may sit anywhere inside the band — the
      per-block pins of the reduced path are in fact strictly tighter, so
      its ends often land closer to the exact lexicographic optimum.
    """

    @pytest.mark.parametrize("name", sorted(registry.all_benchmarks()))
    def test_bounds_agree_with_reduction_on_and_off(self, name):
        bench = registry.get(name)
        options = dict(
            moment_degree=2,
            template_degree=bench.template_degree,
            degree_cap=bench.degree_cap,
            objective_valuations=(bench.valuation,) + tuple(bench.extra_valuations),
        )
        off = analyze(
            registry.parsed(name), AnalysisOptions(lp_reduce=False, **options)
        )
        on = analyze(
            registry.parsed(name), AnalysisOptions(lp_reduce=True, **options)
        )
        assert len(off.objective_values) == len(on.objective_values)
        for stage, (a, b) in enumerate(
            zip(off.objective_values, on.objective_values)
        ):
            scale = max(
                off.objective_scales[stage], on.objective_scales[stage], 1.0
            )
            # Stages after the first sit on the previous stages' cut bands
            # (the two paths allocate their margins differently: one coupled
            # cut vs per-block pins), so the comparison widens by the
            # *recorded* margins of both runs on top of the usual
            # cross-solver tolerance.
            # Factor 30: the drift is the band times the dual sensitivity
            # of the pinned stages, which empirically reaches ~21 on the
            # registry.  Capped at 0.1% of the comparison scale so the
            # allowance cannot balloon on large-optimum programs — real
            # divergences (dropped constraints) are orders of magnitude
            # larger than either limit.
            ref = max(abs(a), abs(b), scale)
            band = min(
                30
                * (
                    sum(off.stage_tolerances[:stage])
                    + sum(on.stage_tolerances[:stage])
                ),
                1e-3 * ref,
            )
            tol = (1e-6 + stage * 2e-5) * ref + band
            plain = (
                off.solver_statuses[stage] in ("optimal", "constant")
                and on.solver_statuses[stage] in ("optimal", "constant")
            )
            if plain:
                assert math.isclose(a, b, rel_tol=1e-6, abs_tol=tol), (
                    name, stage, a, b,
                )
            else:
                # Degraded-rung optima are upper estimates; the reduced
                # path may do strictly better, never worse.
                assert b <= a + tol, (name, stage, a, b)
        if bench.extra_valuations:
            # With several objective valuations only the *sum* of the
            # interval widths is pinned; per-valuation widths are free along
            # the degenerate optimal face (true between any two solvers —
            # the cross-backend suite has the same restriction).
            return
        for k in (1, 2):
            a = off.raw_interval(k)
            b = on.raw_interval(k)
            scale = max(1.0, abs(a.lo), abs(a.hi))
            # The LP pins interval *widths* (the imprecision objective);
            # end positions are only determined up to the optimal face.
            # Widths drift within the documented cut-margin bands.
            band = 1e-5 * scale + min(
                30 * (sum(off.stage_tolerances[:k]) + sum(on.stage_tolerances[:k])),
                1e-3 * scale,
            )
            width_off = a.hi - a.lo
            width_on = b.hi - b.lo
            assert abs(width_off - width_on) <= band, (name, k, a, b, band)

    @pytest.mark.parametrize("name", ["rdwalk", "geo", "kura-1-1"])
    def test_interval_ends_match_on_well_conditioned_programs(self, name):
        """On the programs whose optima pin the ends themselves (the same
        subset the cross-backend suite compares end-wise), the reduction
        must reproduce both interval ends."""
        bench = registry.get(name)
        options = dict(
            moment_degree=2,
            template_degree=bench.template_degree,
            degree_cap=bench.degree_cap,
            objective_valuations=(bench.valuation,) + tuple(bench.extra_valuations),
        )
        off = analyze(
            registry.parsed(name), AnalysisOptions(lp_reduce=False, **options)
        )
        on = analyze(
            registry.parsed(name), AnalysisOptions(lp_reduce=True, **options)
        )
        for k in (1, 2):
            a, b = off.raw_interval(k), on.raw_interval(k)
            scale = max(1.0, abs(a.lo), abs(a.hi))
            band = 1e-5 * scale + min(
                30 * (sum(off.stage_tolerances[:k]) + sum(on.stage_tolerances[:k])),
                1e-3 * scale,
            )
            assert abs(a.hi - b.hi) <= band, (name, k, "hi", a, b)
            assert abs(a.lo - b.lo) <= band, (name, k, "lo", a, b)

    def test_reduce_off_after_reduce_on_shares_the_system(self):
        """A reduce-off lexicographic analyze after a reduce-on one, on the
        same cached constraint system, must solve cleanly and must not
        inherit the reduced run's stats (review findings)."""
        pipe = AnalysisPipeline(registry.parsed("rdwalk"))
        on = pipe.analyze(AnalysisOptions(moment_degree=2, lp_reduce=True))
        off = pipe.analyze(AnalysisOptions(moment_degree=2, lp_reduce=False))
        assert on.lp_reduction is not None
        assert off.lp_reduction is None
        for k in (1, 2):
            a, b = on.raw_interval(k), off.raw_interval(k)
            scale = max(1.0, abs(a.lo), abs(a.hi))
            assert abs(a.hi - b.hi) <= 1e-3 * scale  # within cut bands

    def test_reduction_stats_reach_the_result(self):
        result = analyze(
            registry.parsed("rdwalk"), AnalysisOptions(lp_reduce=True)
        )
        stats = result.lp_reduction
        assert stats is not None
        assert stats["cols"] == result.lp_variables
        assert stats["reduced_cols"] < stats["cols"]
        assert stats["components"] >= 1
        assert result.stage_tolerances[-1] == 0.0
        assert result.stage_tolerances[0] > 0.0  # stage 1 pinned for stage 2
        off = analyze(
            registry.parsed("rdwalk"), AnalysisOptions(lp_reduce=False)
        )
        assert off.lp_reduction is None

    def test_lp_reduce_is_part_of_the_solve_key(self):
        on = AnalysisOptions(lp_reduce=True)
        off = AnalysisOptions(lp_reduce=False)
        assert on.solve_key([{}]) != off.solve_key([{}])
        follow = AnalysisOptions()
        with reduce_override(True):
            assert follow.solve_key([{}]) == on.solve_key([{}])
        with reduce_override(False):
            assert follow.solve_key([{}]) == off.solve_key([{}])


class TestOverlaySemantics:
    def test_row_storage_is_never_mutated(self):
        lp = build_problem()
        x = lp.fresh("x")
        lam = lp.fresh_nonneg("lam")
        lp.add_eq(AffForm.of_var(x) - AffForm.of_var(lam) - 3.0)
        lp.add_ge(AffForm.of_var(x) - 1.0)
        before = (lp.backend.num_rows("eq"), lp.backend.num_rows("ge"))
        lp.solve(AffForm.of_var(x), reduce=True)
        assert (lp.backend.num_rows("eq"), lp.backend.num_rows("ge")) == before

    def test_reducer_is_dropped_on_pickle(self):
        import pickle

        lp = build_problem()
        x = lp.fresh("x")
        lp.add_ge(AffForm.of_var(x) - 2.0)
        lp.solve(AffForm.of_var(x), reduce=True)
        assert lp._reducer is not None
        clone = pickle.loads(pickle.dumps(lp))
        assert clone._reducer is None
        assert clone.solve(AffForm.of_var(x), reduce=True).objective == pytest.approx(2.0)

    def test_values_match_direct_solve_on_forced_system(self):
        """On a system with a unique solution the reduced and direct paths
        must produce identical full-space assignments."""
        lp_a, lp_b = build_problem(), build_problem()
        for lp in (lp_a, lp_b):
            x, y, lam = lp.fresh("x"), lp.fresh("y"), lp.fresh_nonneg("lam")
            lp.add_eq(AffForm.of_var(x) - 5.0)
            lp.add_eq(AffForm.of_var(y) - 2.0 * AffForm.of_var(x))
            lp.add_eq(AffForm.of_var(lam) - 1.0)
        sol_on = lp_a.solve(None, reduce=True)
        sol_off = lp_b.solve(None, reduce=False)
        np.testing.assert_allclose(sol_on.values, sol_off.values, atol=1e-7)

    def test_cert_span_hints_cover_handelman_lambdas(self):
        pipe = AnalysisPipeline(registry.parsed("rdwalk"))
        system = pipe.constraint_system(AnalysisOptions(moment_degree=2))
        spans = system.lp.cert_spans
        assert spans, "certificate emission must record λ spans"
        covered = sum(count for _, count in spans)
        assert covered == len(system.lp.nonneg_indices)
