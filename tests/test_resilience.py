"""Deadline propagation, seeded fault injection, graceful degradation.

Covers the resilience layer end to end:

* :mod:`repro.deadline` — token arithmetic, per-stage timings, the
  context-variable scope, and the byte-identity guarantee (a generous
  deadline changes nothing about the produced bounds);
* :mod:`repro.faults` — the ``REPRO_FAULTS`` grammar, per-seed
  determinism, the unarmed no-op, and single-byte corruption;
* the pipeline degradation ladder — fallback to the highest fully-solved
  moment degree, ``degraded`` provenance, never-cached degraded copies,
  and the policy evaluator mapping missing-moment assertions on degraded
  results to ``inconclusive``;
* the queue's timeout ladder — options round-trip for
  ``deadline``/``degrade``, the half-deadline retry
  (:func:`repro.service.jobs.effective_options`), dead-letter on the
  second timeout, and the heartbeat runtime cap that un-wedges hung jobs;
* the artifact cache's corrupt-entry accounting
  (``corrupt_discarded``) under both real and injected corruption;
* the differential harness's ``analysis-timeout`` outcome.
"""

import copy
import time
import types

import pytest

from repro import faults
from repro.analysis.pipeline import AnalysisOptions, AnalysisPipeline
from repro.deadline import (
    AnalysisTimeout,
    Deadline,
    current_deadline,
    deadline_scope,
)
from repro.policy.evaluate import INCONCLUSIVE, evaluate_spec
from repro.policy.parser import parse_spec
from repro.programs import registry
from repro.service.cache import ArtifactCache
from repro.service.jobs import (
    JobFailure,
    RequestError,
    WorkerPool,
    effective_options,
    execute_job,
    options_from_dict,
    options_to_dict,
)
from repro.service.store import JobStore

SIMPLE = """
func main() pre(d > 0) begin
  x := 0;
  while x < d inv(x < d + 1) do
    tick(1);
    x := x + 1
  od
end
"""


@pytest.fixture(autouse=True)
def disarm_faults():
    """Every test starts and ends with fault injection disarmed."""
    faults.configure("")
    yield
    faults.configure("")


# ---------------------------------------------------------------------------
# Deadline tokens
# ---------------------------------------------------------------------------


class TestDeadline:
    def test_budget_must_be_positive(self):
        with pytest.raises(ValueError):
            Deadline(0.0)
        with pytest.raises(ValueError):
            Deadline(-1.0)

    def test_remaining_clamps_at_zero(self):
        deadline = Deadline(0.01)
        time.sleep(0.03)
        assert deadline.expired()
        assert deadline.remaining() == 0.0
        assert deadline.elapsed() >= 0.01

    def test_fresh_token_has_full_budget(self):
        deadline = Deadline(60.0)
        assert not deadline.expired()
        assert 0.0 < deadline.remaining() <= 60.0
        deadline.check("derive")  # plenty of budget: no raise
        assert "derive" in deadline.timings

    def test_check_raises_with_stage_and_timings(self):
        deadline = Deadline(0.005)
        deadline.mark("derive")
        time.sleep(0.02)
        with pytest.raises(AnalysisTimeout) as excinfo:
            deadline.check("solve")
        err = excinfo.value
        assert err.stage == "solve"
        assert "analysis deadline exceeded" in str(err)
        assert "solve" in str(err)
        assert set(err.timings) == {"derive", "solve"}
        assert err.seconds >= 0.005

    def test_timings_accumulate_per_stage(self):
        deadline = Deadline(60.0)
        deadline.mark("solve")
        first = deadline.timings["solve"]
        time.sleep(0.005)
        deadline.mark("solve")
        assert deadline.timings["solve"] > first

    def test_scope_nesting_and_explicit_clearing(self):
        assert current_deadline() is None
        outer = Deadline(60.0)
        inner = Deadline(30.0)
        with deadline_scope(outer):
            assert current_deadline() is outer
            with deadline_scope(inner):
                assert current_deadline() is inner
            assert current_deadline() is outer
            # None explicitly clears the outer scope (the degradation
            # ladder relies on this to give each rung a fresh budget).
            with deadline_scope(None):
                assert current_deadline() is None
            assert current_deadline() is outer
        assert current_deadline() is None

    def test_timeout_is_not_an_lp_error(self):
        # The restart ladder retries LPError; an exhausted budget must
        # never be retried at the same degree.
        from repro.lp.core import LPError

        assert not issubclass(AnalysisTimeout, LPError)


# ---------------------------------------------------------------------------
# Fault injection
# ---------------------------------------------------------------------------


class TestFaults:
    def test_unarmed_is_a_noop(self):
        assert not faults.armed()
        faults.check("lp.solve")  # no raise
        data = b"untouched"
        assert faults.corrupt("cache.write", data) is data
        assert faults.counters() == {}

    def test_grammar_rejects_bad_specs(self):
        for bad in (
            "nonsense",
            "cache.read:raise:1",  # wrong arity
            "unknown.point:raise:1:0",
            "cache.read:frobnicate:1:0",
            "cache.read:raise:1.5:0",  # prob out of range
        ):
            with pytest.raises(ValueError):
                faults.configure(bad)

    def test_raise_mode_fires_and_counts(self):
        faults.configure("lp.solve:raise:1:0")
        assert faults.armed()
        with pytest.raises(faults.FaultInjected):
            faults.check("lp.solve")
        faults.check("cache.read")  # other points untouched
        assert faults.counters() == {"lp.solve:raise": 1}

    def test_delay_mode_sleeps(self):
        faults.configure("pipeline.stage:delay@0.02:1:0")
        started = time.perf_counter()
        faults.check("pipeline.stage")
        assert time.perf_counter() - started >= 0.02
        assert faults.counters() == {"pipeline.stage:delay": 1}

    def test_same_seed_same_firing_sequence(self):
        def pattern():
            faults.configure("store.tx:raise:0.5:1234")
            fired = []
            for _ in range(64):
                try:
                    faults.check("store.tx")
                    fired.append(False)
                except faults.FaultInjected:
                    fired.append(True)
            return fired

        first, second = pattern(), pattern()
        assert first == second
        assert any(first) and not all(first)  # prob 0.5 actually mixes

    def test_corrupt_flips_exactly_one_byte(self):
        data = bytes(range(64))

        def corrupted():
            faults.configure("cache.write:corrupt:1:7")
            return faults.corrupt("cache.write", data)

        out = corrupted()
        assert len(out) == len(data)
        diffs = [i for i, (a, b) in enumerate(zip(data, out)) if a != b]
        assert len(diffs) == 1
        assert out[diffs[0]] == data[diffs[0]] ^ 0xFF
        assert corrupted() == out  # same seed, same byte
        assert faults.counters() == {"cache.write:corrupt": 1}

    def test_corrupt_specs_do_not_fire_on_check(self):
        faults.configure("cache.write:corrupt:1:7")
        faults.check("cache.write")  # corrupt mode only applies to data
        assert faults.counters() == {}


# ---------------------------------------------------------------------------
# Parity and the degradation ladder
# ---------------------------------------------------------------------------


class TestDeadlineParity:
    def test_generous_deadline_is_byte_identical(self):
        program = registry.all_benchmarks()["absynth-ber"].parse()
        plain = AnalysisPipeline(program).analyze(
            AnalysisOptions(moment_degree=2)
        )
        deadlined = AnalysisPipeline(program).analyze(
            AnalysisOptions(moment_degree=2, deadline_seconds=300.0)
        )

        def bounds(result):
            # Everything but wall-clock timings, which vary run to run.
            def strip(value):
                if isinstance(value, dict):
                    return {
                        k: strip(v)
                        for k, v in value.items()
                        if "seconds" not in k
                    }
                return value

            return strip(result.to_dict())

        assert bounds(plain) == bounds(deadlined)
        assert "degraded" not in deadlined.to_dict()

    def test_tiny_deadline_raises_typed_timeout(self):
        program = registry.all_benchmarks()["absynth-ber"].parse()
        with pytest.raises(AnalysisTimeout) as excinfo:
            AnalysisPipeline(program).analyze(
                AnalysisOptions(moment_degree=2, deadline_seconds=1e-4)
            )
        assert "analysis deadline exceeded" in str(excinfo.value)


class TestDegradationLadder:
    @pytest.fixture()
    def timeout_above_degree_one(self, monkeypatch):
        """Force AnalysisTimeout for every attempt above moment degree 1."""
        real = AnalysisPipeline._deadlined_analyze

        def fake(self, options):
            if options.moment_degree >= 2:
                raise AnalysisTimeout("solve", 1.0, lex_completed=1)
            return real(self, options)

        monkeypatch.setattr(AnalysisPipeline, "_deadlined_analyze", fake)

    def test_falls_back_to_highest_solved_degree(self, timeout_above_degree_one):
        program = registry.all_benchmarks()["absynth-ber"].parse()
        pipeline = AnalysisPipeline(program)
        options = AnalysisOptions(moment_degree=3, degrade=True)
        result = pipeline.analyze(options)
        assert result.degraded == {
            "requested_degree": 3,
            "degree": 1,
            "cause": "AnalysisTimeout",
            "error": result.degraded["error"],
        }
        assert "analysis deadline exceeded" in result.degraded["error"]
        assert result.raw.degree == 1
        assert result.to_dict()["degraded"]["degree"] == 1

    def test_without_degrade_the_timeout_propagates(
        self, timeout_above_degree_one
    ):
        program = registry.all_benchmarks()["absynth-ber"].parse()
        with pytest.raises(AnalysisTimeout):
            AnalysisPipeline(program).analyze(AnalysisOptions(moment_degree=3))

    def test_degraded_results_are_never_cached(self, timeout_above_degree_one):
        program = registry.all_benchmarks()["absynth-ber"].parse()
        pipeline = AnalysisPipeline(program)
        options = AnalysisOptions(moment_degree=3, degrade=True)
        first = pipeline.analyze(options)
        second = pipeline.analyze(options)
        # Both calls ran the ladder (the requested-degree key is never
        # poisoned with the degraded copy), and each returns its own copy.
        assert first is not second
        assert first.degraded is not None and second.degraded is not None
        key = options.result_key(pipeline._objective_valuations(options))
        assert key not in pipeline._results

    def test_exhausted_ladder_reraises_the_cause(self, monkeypatch):
        def always_timeout(self, options):
            raise AnalysisTimeout("solve", 1.0, lex_completed=0)

        monkeypatch.setattr(
            AnalysisPipeline, "_deadlined_analyze", always_timeout
        )
        program = registry.all_benchmarks()["absynth-ber"].parse()
        with pytest.raises(AnalysisTimeout):
            AnalysisPipeline(program).analyze(
                AnalysisOptions(moment_degree=3, degrade=True)
            )

    def test_policy_maps_missing_degraded_moments_to_inconclusive(self):
        from repro.lang.parser import parse_program
        from repro.tail.bounds import costs_nonnegative

        program = parse_program(SIMPLE)
        result = AnalysisPipeline(program).analyze(
            AnalysisOptions(
                moment_degree=2, objective_valuations=({"d": 4.0, "x": 0.0},)
            )
        )
        degraded = copy.copy(result)
        degraded.degraded = {
            "requested_degree": 4,
            "degree": 2,
            "cause": "AnalysisTimeout",
            "error": "analysis deadline exceeded after 1.000s",
        }
        spec = parse_spec("@at d=4, x=0\nE[cost^4] <= 1e9\n")
        check = evaluate_spec(
            spec,
            degraded,
            program="simple",
            nonnegative_cost=costs_nonnegative(program),
        )
        (outcome,) = check.outcomes
        # A degraded analysis never upgrades a missing moment to a pass.
        assert outcome.verdict == INCONCLUSIVE
        assert outcome.evidence["degraded"]["degree"] == 2
        assert "degraded to 2 of 4 requested moments" in outcome.reason


# ---------------------------------------------------------------------------
# Queue: options round-trip, the half-deadline retry, heartbeat cap
# ---------------------------------------------------------------------------


class TestQueueTimeoutLadder:
    def test_options_roundtrip_deadline_and_degrade(self):
        options = options_from_dict(
            {"moments": 2, "deadline": 2.5, "degrade": True}
        )
        assert options.deadline_seconds == 2.5
        assert options.degrade is True
        encoded = options_to_dict(options)
        assert encoded["deadline"] == 2.5
        assert encoded["degrade"] is True
        assert options_from_dict(encoded) == options
        # Unset stays unset (and absent from the wire form).
        bare = options_from_dict({"moments": 1})
        assert bare.deadline_seconds is None and bare.degrade is False
        assert "deadline" not in options_to_dict(bare)
        assert "degrade" not in options_to_dict(bare)

    def test_bad_deadline_is_rejected_up_front(self):
        for bad in (0, -1.0, "soon"):
            with pytest.raises(RequestError):
                options_from_dict({"deadline": bad})

    def test_effective_options_halves_after_a_timeout(self):
        options = options_from_dict({"moments": 1, "deadline": 4.0})
        fresh = types.SimpleNamespace(error=None)
        assert effective_options(fresh, options) is options
        unrelated = types.SimpleNamespace(error="LPInfeasibleError: nope")
        assert effective_options(unrelated, options) is options
        timed_out = types.SimpleNamespace(
            error="AnalysisTimeout: analysis deadline exceeded after 4.001s "
            "(at stage 'solve')"
        )
        retry = effective_options(timed_out, options)
        assert retry.deadline_seconds == 2.0
        # No deadline set: nothing to halve, even after a timeout.
        plain = options_from_dict({"moments": 1})
        assert effective_options(timed_out, plain) is plain

    def test_execute_job_timeout_is_retryable_once(self, tmp_path):
        store = JobStore(
            tmp_path / "jobs.sqlite3",
            visibility=5.0,
            retry_base=0.01,
            retry_cap=0.05,
        )
        payload = {
            "program": SIMPLE,
            "options": {"moments": 2, "deadline": 1e-4},
        }
        job_id, _ = store.enqueue(payload, kind="analyze", max_attempts=5)

        job = store.lease("worker-a")
        assert job is not None and job.id == job_id
        with pytest.raises(JobFailure) as excinfo:
            execute_job(job)
        first = excinfo.value
        assert first.retryable
        assert "analysis deadline exceeded" in str(first)
        store.nack(job.id, "worker-a", error=str(first))

        deadline = time.time() + 10.0
        redelivered = None
        while redelivered is None and time.time() < deadline:
            redelivered = store.lease("worker-b")
            if redelivered is None:
                time.sleep(0.02)
        assert redelivered is not None
        # The redelivery carries the timeout marker and runs at half the
        # deadline; a second timeout dead-letters.
        assert "analysis deadline exceeded" in redelivered.error
        halved = effective_options(
            redelivered, options_from_dict(payload["options"])
        )
        assert halved.deadline_seconds == pytest.approx(5e-5)
        with pytest.raises(JobFailure) as excinfo:
            execute_job(redelivered)
        assert not excinfo.value.retryable

    def test_hung_job_lease_expires_past_the_runtime_cap(self, tmp_path):
        """Satellite regression: a job whose payload ``timeout`` is smaller
        than its runtime stops heartbeating, loses its lease, and is
        re-delivered — no SIGKILL required."""
        db = tmp_path / "jobs.sqlite3"
        fast_store = JobStore(db, visibility=0.4)
        job_id, _ = fast_store.enqueue(
            {"seconds": 30.0, "timeout": 0.3}, kind="sleep"
        )
        pool = WorkerPool(db, 1, visibility=0.4, poll=0.05)
        pool.start()
        try:
            deadline = time.time() + 15.0
            while (
                fast_store.get(job_id).state != "leased"
                and time.time() < deadline
            ):
                time.sleep(0.02)
            assert fast_store.get(job_id).state == "leased"
            # Past the cap the heartbeat stops extending: the lease expires
            # on its own and the job is re-delivered.  The hung *process*
            # is still sleeping, so stand in as the successor worker.
            deadline = time.time() + 15.0
            successor = None
            while successor is None and time.time() < deadline:
                successor = fast_store.lease("successor")
                if successor is None:
                    time.sleep(0.05)
            job = fast_store.get(job_id)
            assert job.attempts >= 2 and job.retries >= 1
        finally:
            pool.stop(graceful=False, timeout=10.0)

    def test_repeatedly_hung_job_dead_letters_on_recovery(self, tmp_path):
        """A job whose lease keeps expiring must not ping-pong between
        stuck workers forever: one grace delivery past the attempt
        budget, then the recovery path dead-letters it."""
        store = JobStore(tmp_path / "jobs.sqlite3", visibility=0.05)
        job_id, _ = store.enqueue({"seconds": 9.0}, kind="sleep", max_attempts=1)
        assert store.lease("w1", visibility=0.05).id == job_id
        time.sleep(0.1)
        # Crash grace: the exhausted job still re-delivers once.
        grace = store.lease("w2", visibility=0.05)
        assert grace is not None and grace.attempts == 2
        time.sleep(0.1)
        # The grace delivery hung too: recovery dead-letters, not re-queues.
        assert store.lease("w3") is None
        final = store.get(job_id)
        assert final.state == "dead"
        assert "presumed hung" in final.error


# ---------------------------------------------------------------------------
# Cache corruption accounting
# ---------------------------------------------------------------------------


class TestCacheCorruption:
    def _one_entry(self, directory):
        cache = ArtifactCache(directory)
        cache.put("ab" * 32, "result", (), {"value": 41})
        (path,) = [p for p in directory.rglob("*.pkl")]
        return path

    def test_flipped_byte_counts_as_corrupt(self, tmp_path):
        path = self._one_entry(tmp_path)
        blob = bytearray(path.read_bytes())
        blob[len(blob) // 2] ^= 0xFF
        path.write_bytes(bytes(blob))
        fresh = ArtifactCache(tmp_path)  # cold memory: must hit disk
        assert fresh.get("ab" * 32, "result", ()) is None
        stats = fresh.stats.snapshot()
        assert stats["discarded"] == 1
        assert stats["corrupt_discarded"] == 1
        assert not path.exists()  # the bad entry is dropped for rewrite

    def test_injected_write_corruption_is_caught_on_read(self, tmp_path):
        # Seed 0 flips a payload byte; the entry unpickles wrong (or not at
        # all) and counts as corrupt.  (Some seeds land on the version
        # field instead, which deliberately classifies as clean skew.)
        faults.configure("cache.write:corrupt:1:0")
        self._one_entry(tmp_path)
        assert faults.counters() == {"cache.write:corrupt": 1}
        faults.configure("")
        fresh = ArtifactCache(tmp_path)
        assert fresh.get("ab" * 32, "result", ()) is None
        assert fresh.stats.snapshot()["corrupt_discarded"] == 1

    def test_injected_read_fault_degrades_to_a_miss(self, tmp_path):
        self._one_entry(tmp_path)
        faults.configure("cache.read:raise:1:0")
        fresh = ArtifactCache(tmp_path)
        assert fresh.get("ab" * 32, "result", ()) is None
        assert fresh.stats.snapshot()["misses"] == 1
        faults.configure("")
        # The entry itself is intact: undisturbed reads still hit.
        assert ArtifactCache(tmp_path).get("ab" * 32, "result", ()) == {
            "value": 41
        }

    def test_corrupt_discarded_reaches_the_stats_surfaces(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        assert "corrupt_discarded" in cache.describe()  # GET /cache/stats
        from repro.service.metrics import ServiceMetrics

        snap = ServiceMetrics(cache=cache).snapshot()
        assert snap["cache"]["corrupt_discarded"] == 0
        text = ServiceMetrics(cache=cache).render_prometheus()
        assert "repro_cache_corrupt_discarded_total 0" in text


# ---------------------------------------------------------------------------
# Durable resilience counters
# ---------------------------------------------------------------------------


class TestResilienceTotals:
    def test_totals_derive_from_job_rows(self, tmp_path):
        store = JobStore(tmp_path / "jobs.sqlite3", visibility=5.0)
        timeout_error = (
            "AnalysisTimeout: analysis deadline exceeded after 1.000s "
            "(at stage 'solve')"
        )
        # A done job carrying degraded provenance.
        store.enqueue({}, kind="sleep")
        job = store.lease("w")
        store.ack(
            job.id, "w", {"ok": True, "result": {"degraded": {"degree": 1}}}
        )
        # A timeout with its retry still pending.
        store.enqueue({}, kind="sleep")
        job = store.lease("w")
        store.nack(job.id, "w", timeout_error)
        # A second timeout dead-letters.
        store.enqueue({}, kind="sleep")
        job = store.lease("w")
        store.nack(job.id, "w", timeout_error, retryable=False)
        # An unrelated failure counts in none of the buckets.
        store.enqueue({}, kind="sleep")
        job = store.lease("w")
        store.nack(job.id, "w", "LPInfeasibleError: nope", retryable=False)

        assert store.resilience_totals() == {
            "timeouts": 2,
            "timeout_dead": 1,
            "degraded": 1,
        }

        from repro.service.metrics import ServiceMetrics

        metrics = ServiceMetrics(store=store)
        assert metrics.snapshot()["resilience"]["timeouts"] == 2
        text = metrics.render_prometheus()
        assert "repro_analysis_timeouts_total 2" in text
        assert "repro_analysis_timeout_dead_total 1" in text
        assert "repro_degraded_results_total 1" in text


# ---------------------------------------------------------------------------
# Differential harness: the analysis-timeout outcome
# ---------------------------------------------------------------------------


class TestDifferentialTimeout:
    def test_over_deadline_case_classifies_as_analysis_timeout(self):
        from repro.programs.fuzz import generate_corpus
        from repro.soundness.differential import (
            ANALYSIS_TIMEOUT,
            STATUSES,
            DifferentialConfig,
            check_case,
        )

        assert ANALYSIS_TIMEOUT == "analysis-timeout"
        assert ANALYSIS_TIMEOUT in STATUSES
        (case,) = generate_corpus(1, seed=0)
        outcome = check_case(
            case, DifferentialConfig(deadline_seconds=1e-4, samples=50)
        )
        assert outcome.status == ANALYSIS_TIMEOUT
        assert "analysis deadline exceeded" in outcome.detail

    def test_no_deadline_config_is_unchanged(self):
        from repro.soundness.differential import DifferentialConfig, _case_options

        assert DifferentialConfig().deadline_seconds is None
        from repro.programs.fuzz import generate_corpus

        (case,) = generate_corpus(1, seed=0)
        assert _case_options(case).deadline_seconds is None
