"""Tests for moment annotations — the symbolic side of the moment semiring.

The key property: on concrete (point-interval, constant) annotations, the
symbolic operations must agree exactly with the reference
:class:`~repro.rings.moment.MomentVector` implementation.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.annotations import (
    MomentAnnotation,
    PolyInterval,
    component_degree,
    fresh_annotation,
)
from repro.lang.ast import Uniform
from repro.lp.problem import LPProblem
from repro.poly.polynomial import Polynomial
from repro.rings.moment import FLOAT_OPS, MomentVector, float_moments

floats = st.integers(-5, 5).map(float)


def point_annotation(values):
    return MomentAnnotation.of_point_vector(list(values))


def as_floats(ann):
    return [iv.hi.constant_value() for iv in ann.intervals]


class TestAgainstMomentVector:
    @given(st.lists(floats, min_size=4, max_size=4), floats)
    @settings(max_examples=80, deadline=None)
    def test_prefix_cost_is_otimes_with_powers(self, values, cost):
        ann = point_annotation(values)
        reference = float_moments(cost, 3).otimes(MomentVector(values, FLOAT_OPS))
        result = ann.prefix_cost(cost)
        assert as_floats(result) == pytest.approx(list(reference.elems))

    @given(
        st.lists(floats, min_size=3, max_size=3),
        st.lists(floats, min_size=3, max_size=3),
    )
    @settings(max_examples=60, deadline=None)
    def test_oplus_matches(self, xs, ys):
        result = point_annotation(xs).oplus(point_annotation(ys))
        reference = MomentVector(xs, FLOAT_OPS).oplus(MomentVector(ys, FLOAT_OPS))
        assert as_floats(result) == pytest.approx(list(reference.elems))

    def test_negative_cost_swaps_interval_ends(self):
        ann = MomentAnnotation(
            [
                PolyInterval.of_constants(1.0, 1.0),
                PolyInterval.of_constants(-2.0, 3.0),
            ]
        )
        result = ann.prefix_cost(-1.0)
        # first moment: [-1, -1] + [-2, 3] = [-3, 2]
        assert result.intervals[1].lo.constant_value() == -3.0
        assert result.intervals[1].hi.constant_value() == 2.0

    def test_paper_nonmonotone_example(self):
        """Section 3.3: <[1,1],[-1,-1],[1,1]> ⊗ <[1,1],[-2,2],[5,5]>."""
        post = MomentAnnotation(
            [
                PolyInterval.of_constants(1.0, 1.0),
                PolyInterval.of_constants(-2.0, 2.0),
                PolyInterval.of_constants(5.0, 5.0),
            ]
        )
        result = post.prefix_cost(-1.0)
        assert result.intervals[1].lo.constant_value() == -3.0
        assert result.intervals[1].hi.constant_value() == 1.0
        assert result.intervals[2].lo.constant_value() == 2.0
        assert result.intervals[2].hi.constant_value() == 10.0


class TestTransfers:
    def test_substitute(self):
        x = Polynomial.var("x")
        ann = MomentAnnotation(
            [PolyInterval.of_constants(1.0, 1.0), PolyInterval.point(2.0 * x)]
        )
        result = ann.substitute("x", x + 1.0)
        assert result.intervals[1].hi == 2.0 * x + 2.0

    def test_expect_uniform(self):
        """Ex. 2.2: E_{t~U(-1,2)}[2(d-x-t)+5] = 2(d-x)+4."""
        d, x, t = (Polynomial.var(v) for v in "dxt")
        ann = MomentAnnotation(
            [
                PolyInterval.of_constants(1.0, 1.0),
                PolyInterval.point(2.0 * (d - x - t) + 5.0),
            ]
        )
        result = ann.expect("t", Uniform(-1.0, 2.0))
        assert result.intervals[1].hi == 2.0 * (d - x) + 4.0

    def test_expect_second_moment(self):
        """Ex. 2.3: E_t[4(d-x-t)^2 + 26(d-x-t) + 37] = 4(d-x)^2+22(d-x)+28."""
        d, x, t = (Polynomial.var(v) for v in "dxt")
        u = d - x - t
        ann = MomentAnnotation(
            [
                PolyInterval.of_constants(1.0, 1.0),
                PolyInterval.point(Polynomial.zero()),
                PolyInterval.point(4.0 * u * u + 26.0 * u + 37.0),
            ]
        )
        result = ann.expect("t", Uniform(-1.0, 2.0))
        v = d - x
        assert result.intervals[2].hi == 4.0 * v * v + 22.0 * v + 28.0

    def test_scale(self):
        ann = point_annotation([1.0, 4.0, 8.0])
        result = ann.scale(0.25)
        assert as_floats(result) == [0.25, 1.0, 2.0]
        with pytest.raises(ValueError):
            ann.scale(-0.5)

    def test_rdwalk_tick_composition(self):
        """Ex. 2.3: <1,1,1> ⊗ <1, 2(d-x)+4, 4(d-x)^2+22(d-x)+28>."""
        d, x = Polynomial.var("d"), Polynomial.var("x")
        u = d - x
        hypothesis = MomentAnnotation(
            [
                PolyInterval.of_constants(1.0, 1.0),
                PolyInterval.point(2.0 * u + 4.0),
                PolyInterval.point(4.0 * u * u + 22.0 * u + 28.0),
            ]
        )
        result = hypothesis.prefix_cost(1.0)
        assert result.intervals[1].hi == 2.0 * u + 5.0
        assert result.intervals[2].hi == 4.0 * u * u + 26.0 * u + 37.0


class TestTemplates:
    def test_component_degree(self):
        assert component_degree(2, 1, None) == 2
        assert component_degree(3, 2, None) == 6
        assert component_degree(3, 2, 4) == 4
        assert component_degree(0, 1, None) == 1  # floor of 1

    def test_fresh_unrestricted(self):
        lp = LPProblem()
        ann = fresh_annotation(lp, 2, 1, ("x",), label="t")
        assert ann.intervals[0].hi.constant_value() == 1.0
        assert ann.intervals[1].hi.degree() == 1
        assert ann.intervals[2].hi.degree() == 2
        # 2 ends * (2 + 3) monomials
        assert lp.num_variables == 2 * (2 + 3)

    def test_fresh_restricted(self):
        lp = LPProblem()
        ann = fresh_annotation(lp, 2, 1, ("x",), label="t", restrict=1)
        assert ann.intervals[0].is_zero()
        assert not ann.intervals[1].is_zero()

    def test_fresh_upper_only(self):
        lp = LPProblem()
        ann = fresh_annotation(lp, 1, 1, ("x",), label="t", upper_only=True)
        assert ann.intervals[1].lo.is_zero()
        assert not ann.intervals[1].hi.is_zero()

    def test_one_is_otimes_identity(self):
        ann = point_annotation([1.0, 3.0, 11.0])
        result = MomentAnnotation.one(2).oplus(MomentAnnotation.zero(2))
        assert as_floats(result) == [1.0, 0.0, 0.0]
        assert as_floats(ann.prefix_cost(0.0)) == pytest.approx([1.0, 3.0, 11.0])

    def test_evaluate_requires_concrete(self):
        lp = LPProblem()
        ann = fresh_annotation(lp, 1, 1, ("x",), label="t")
        with pytest.raises(TypeError):
            ann.evaluate({"x": 1.0})
