"""Tests for the Appl language: AST, parser, printer, distributions."""

import pytest

from repro.lang import ast
from repro.lang.ast import (
    Assign,
    BinOp,
    Call,
    Cmp,
    Discrete,
    IfBranch,
    NondetBranch,
    ProbBranch,
    Sample,
    Seq,
    Skip,
    Tick,
    Uniform,
    Var,
    While,
)
from repro.lang.parser import (
    ParseError,
    parse_condition,
    parse_expression,
    parse_program,
    parse_statement,
)
from repro.lang.printer import format_program, format_stmt


class TestParserStatements:
    def test_skip_tick_call(self):
        stmt = parse_statement("skip; tick(2.5); call f")
        assert isinstance(stmt, Seq)
        tick, call = stmt.stmts  # Skip is normalized away by Seq.of
        assert isinstance(tick, Tick) and tick.cost == 2.5
        assert isinstance(call, Call) and call.func == "f"

    def test_negative_tick(self):
        stmt = parse_statement("tick(-1.5)")
        assert isinstance(stmt, Tick) and stmt.cost == -1.5

    def test_assignment_expression(self):
        stmt = parse_statement("x := 2 * (y + 1) - z / 2")
        assert isinstance(stmt, Assign)
        poly = stmt.expr.to_polynomial()
        assert poly.evaluate({"y": 3.0, "z": 4.0}) == 6.0

    def test_sampling_statements(self):
        stmt = parse_statement("t ~ uniform(-1, 2)")
        assert isinstance(stmt, Sample)
        assert isinstance(stmt.dist, Uniform)
        stmt = parse_statement("t ~ discrete(-1: 0.25, 1: 0.75)")
        assert isinstance(stmt.dist, Discrete)
        stmt = parse_statement("t ~ unifint(0, 3)")
        assert stmt.dist.moment(1) == pytest.approx(1.5)
        stmt = parse_statement("t ~ ber(0.3)")
        assert stmt.dist.moment(1) == pytest.approx(0.3)

    def test_prob_branch(self):
        stmt = parse_statement("if prob(0.25) then tick(1) else skip fi")
        assert isinstance(stmt, ProbBranch)
        assert stmt.prob == 0.25
        assert isinstance(stmt.then_branch, Tick)
        assert isinstance(stmt.else_branch, Skip)

    def test_prob_branch_without_else(self):
        stmt = parse_statement("if prob(0.5) then tick(1) fi")
        assert isinstance(stmt.else_branch, Skip)

    def test_nondet_branch(self):
        stmt = parse_statement("if ndet then tick(1) else tick(2) fi")
        assert isinstance(stmt, NondetBranch)

    def test_conditional(self):
        stmt = parse_statement("if x < y and y <= 3 then x := y fi")
        assert isinstance(stmt, IfBranch)

    def test_while_with_invariant(self):
        stmt = parse_statement("while x > 0 inv(x >= 0, x <= 9) do x := x - 1 od")
        assert isinstance(stmt, While)
        assert len(stmt.invariant) == 2

    def test_nested_statements(self):
        stmt = parse_statement(
            "while x > 0 do if prob(0.5) then x := x - 1; tick(1) fi od"
        )
        assert isinstance(stmt, While)
        assert isinstance(stmt.body, ProbBranch)

    def test_trailing_semicolon_before_end(self):
        program = parse_program("func main() begin tick(1); end")
        assert isinstance(program.main_fun.body, Tick)

    def test_comments(self):
        program = parse_program(
            """
            # a comment
            func main() begin
              tick(1)  # trailing comment
            end
            """
        )
        assert isinstance(program.main_fun.body, Tick)

    def test_pre_and_int_clauses(self):
        program = parse_program(
            "func main() int(n, k) pre(x <= n, n >= 0) begin x := 0 end"
        )
        fun = program.main_fun
        assert fun.integers == ("n", "k")
        assert len(fun.pre) == 2

    def test_missing_main_rejected(self):
        with pytest.raises(ValueError, match="main"):
            parse_program("func helper() begin skip end")

    def test_duplicate_function_rejected(self):
        with pytest.raises(ParseError, match="duplicate"):
            parse_program("func main() begin skip end func main() begin skip end")

    def test_syntax_error_positions(self):
        with pytest.raises(ParseError):
            parse_statement("x := := 3")
        with pytest.raises(ParseError):
            parse_statement("while do od")

    def test_division_by_variable_rejected(self):
        with pytest.raises(ParseError, match="division"):
            parse_statement("x := y / z")

    def test_bad_probability_rejected(self):
        with pytest.raises(ValueError):
            parse_statement("if prob(1.5) then skip fi")


class TestConditionsAndExpressions:
    def test_precedence(self):
        expr = parse_expression("1 + 2 * x")
        assert expr.to_polynomial().evaluate({"x": 10.0}) == 21.0

    def test_unary_minus(self):
        expr = parse_expression("-x + 3")
        assert expr.to_polynomial().evaluate({"x": 1.0}) == 2.0

    def test_condition_connectives(self):
        cond = parse_condition("x < 1 or not (y >= 2) and true")
        assert isinstance(cond, ast.Or)

    def test_negate_comparison(self):
        cond = parse_condition("x < 1")
        assert isinstance(cond, Cmp)
        assert cond.negate().op == ">="
        assert cond.negate().negate().op == "<"

    def test_negate_conjunction_is_disjunction(self):
        cond = parse_condition("x < 1 and y < 1")
        assert isinstance(cond.negate(), ast.Or)

    def test_expression_dsl_operators(self):
        x, y = Var("x"), Var("y")
        expr = 2 * x + y - 1
        assert isinstance(expr, BinOp)
        assert expr.to_polynomial().evaluate({"x": 3.0, "y": 4.0}) == 9.0
        cond = x + 1 <= y
        assert isinstance(cond, Cmp) and cond.op == "<="


class TestDistributions:
    def test_uniform_moments(self):
        d = Uniform(-1.0, 2.0)
        # Ex. 2.3 in the paper: E[t] = 1/2, E[t^2] = 1, E[t^3] = 5/4.
        assert d.moment(0) == pytest.approx(1.0)
        assert d.moment(1) == pytest.approx(0.5)
        assert d.moment(2) == pytest.approx(1.0)
        assert d.moment(3) == pytest.approx(1.25)

    def test_uniform_validation(self):
        with pytest.raises(ValueError):
            Uniform(2.0, 2.0)

    def test_discrete_moments_and_support(self):
        d = Discrete.of((-1.0, 0.6), (1.0, 0.4))
        assert d.moment(1) == pytest.approx(-0.2)
        assert d.moment(2) == pytest.approx(1.0)
        assert d.support() == (-1.0, 1.0)

    def test_discrete_validation(self):
        with pytest.raises(ValueError):
            Discrete.of((0.0, 0.4), (1.0, 0.4))

    def test_uniform_int(self):
        d = ast.uniform_int(1, 4)
        assert d.moment(1) == pytest.approx(2.5)
        assert d.support() == (1.0, 4.0)
        with pytest.raises(ValueError):
            ast.uniform_int(3, 1)

    def test_bernoulli_values(self):
        d = ast.bernoulli_values(0.25, hi=4.0, lo=-1.0)
        assert d.moment(1) == pytest.approx(0.25 * 4.0 - 0.75)

    def test_sampling_within_support(self):
        import numpy as np

        rng = np.random.default_rng(0)
        for dist in (Uniform(-1, 2), Discrete.of((-1, 0.5), (1, 0.5))):
            lo, hi = dist.support()
            samples = [dist.sample(rng) for _ in range(200)]
            assert all(lo - 1e-9 <= s <= hi + 1e-9 for s in samples)

    def test_discrete_sampling_frequencies(self):
        import numpy as np

        rng = np.random.default_rng(1)
        d = Discrete.of((0.0, 0.25), (1.0, 0.75))
        mean = np.mean([d.sample(rng) for _ in range(4000)])
        assert mean == pytest.approx(0.75, abs=0.05)


class TestPrinterRoundTrip:
    SOURCES = [
        "func main() begin tick(1) end",
        """
        func rdwalk() pre(x < d + 2) begin
          if x < d then
            t ~ uniform(-1, 2);
            x := x + t;
            call rdwalk;
            tick(1)
          fi
        end
        func main() pre(d > 0) begin
          x := 0;
          call rdwalk
        end
        """,
        """
        func main() int(n) pre(x <= n) begin
          while x < n inv(x <= n) do
            if prob(0.5) then x := x + 1 else skip fi;
            if ndet then tick(1) else tick(2) fi
          od
        end
        """,
        """
        func main() begin
          t ~ discrete(-1: 0.25, 0: 0.5, 1: 0.25);
          if t <= 0 and not (t < 0) then tick(1) fi
        end
        """,
    ]

    @pytest.mark.parametrize("source", SOURCES)
    def test_print_parse_fixpoint(self, source):
        program = parse_program(source)
        printed = format_program(program)
        reparsed = parse_program(printed)
        assert format_program(reparsed) == printed

    def test_format_stmt_indentation(self):
        stmt = parse_statement("while x > 0 do x := x - 1 od")
        text = format_stmt(stmt)
        assert text.splitlines()[1].startswith("  ")
