"""Property tests for the batched Monte-Carlo engine.

The vectorized engine consumes the seeded random stream in a different
order than the scalar :class:`~repro.interp.machine.Machine` (cohort draws
vs. one stream per trajectory), so parity is *distributional*: exact on
deterministic programs, statistical (CLT-margin moment agreement on
identical programs/seeds) on probabilistic ones.
"""

import numpy as np
import pytest

from repro.interp.machine import Machine
from repro.interp.mc import estimate_cost_statistics, simulate_costs
from repro.interp.vectorized import (
    OP_CALL,
    OP_RET,
    VectorizedMachine,
    collect_variables,
    compile_program,
    simulate_costs_vectorized,
)
from repro.lang.parser import parse_program
from repro.programs import registry
from repro.programs.synthetic import coupon_chain, rdwalk_chain

DET_SOURCE = """
func main() begin
  x := 3;
  while x > 0 do
    tick(2);
    x := x - 1
  od;
  tick(-1)
end
"""


class TestCompilation:
    def test_collect_variables_sorted_and_complete(self):
        program = registry.parsed("rdwalk")
        assert collect_variables(program) == ("d", "t", "x")

    def test_tail_calls_are_eliminated(self):
        """Coupon chains are pure tail recursion: after TCO the bytecode
        contains no CALL/RET except the entry call into main."""
        compiled = compile_program(coupon_chain(6))
        calls = [op for op, _, _ in compiled.ops if op == OP_CALL]
        assert len(calls) == 1  # instruction 0: CALL main
        # RETs survive as dead code after rewritten calls; none reachable
        # matters only for speed, but main's body must end without one live.

    def test_non_tail_recursion_keeps_calls(self):
        """rdwalk ticks *after* the call — the call must stay a real call."""
        compiled = compile_program(registry.parsed("rdwalk"))
        calls = [op for op, _, _ in compiled.ops if op == OP_CALL]
        rets = [op for op, _, _ in compiled.ops if op == OP_RET]
        assert len(calls) >= 2 and rets


class TestExactParity:
    def test_deterministic_program_matches_machine(self):
        program = parse_program(DET_SOURCE)
        scalar = Machine(program).run(np.random.default_rng(0))
        batch = VectorizedMachine(program).run(64, np.random.default_rng(0))
        assert batch.terminated.all()
        assert (batch.costs == scalar.cost).all()
        x_col = batch.variables.index("x")
        assert (batch.valuations[:, x_col] == scalar.valuation["x"]).all()

    def test_initial_valuation_applied(self):
        program = parse_program("func main() begin tick(1); y := x end")
        batch = VectorizedMachine(program).run(
            8, np.random.default_rng(0), initial={"x": 7.0}
        )
        assert (batch.valuations[:, batch.variables.index("y")] == 7.0).all()
        assert batch.valuation_of(3) == {"x": 7.0, "y": 7.0}

    def test_same_seed_reproduces_exactly(self):
        program = registry.parsed("rdwalk")
        a = simulate_costs_vectorized(program, 500, seed=9, initial={"d": 6.0})
        b = simulate_costs_vectorized(program, 500, seed=9, initial={"d": 6.0})
        assert (a == b).all()

    def test_timeout_reported_per_trajectory(self):
        program = parse_program("func main() begin while true do tick(1) od end")
        batch = VectorizedMachine(program).run(
            5, np.random.default_rng(0), max_steps=300
        )
        assert not batch.terminated.any()
        assert (batch.steps >= 300).all()
        assert batch.terminated_costs.size == 0

    def test_mixed_timeout_drops_only_divergent_rows(self):
        # Diverges iff the first coin flip goes to the else-branch.
        program = parse_program(
            """
            func main() begin
              if prob(0.5) then tick(1)
              else while true do tick(1) od
              fi
            end
            """
        )
        batch = VectorizedMachine(program).run(
            200, np.random.default_rng(3), max_steps=2000
        )
        assert 0 < batch.terminated.sum() < 200
        assert (batch.terminated_costs == 1.0).all()


class TestDistributionalParity:
    """Same program + seed through both engines: every tested moment must
    agree within a 5-sigma CLT band (the engines draw different samples
    from the same law)."""

    CASES = [
        ("rdwalk", {"d": 10.0}),
        ("geo", {}),
        ("rdwalk-var2", {"x": 20.0}),
        ("kura-2-3", {"x": 2.0}),  # demonic nondeterminism, random policy
    ]

    @pytest.mark.parametrize("name,init", CASES)
    def test_moments_agree(self, name, init):
        program = registry.parsed(name)
        n = 4000
        scalar = estimate_cost_statistics(
            program, n=n, seed=11, degree=2, initial=init, engine="machine"
        )
        vector = estimate_cost_statistics(
            program, n=n, seed=11, degree=2, initial=init, engine="vectorized"
        )
        assert scalar.timeouts == vector.timeouts == 0
        for k in (1, 2):
            se = max(scalar.moment_stderr(k), vector.moment_stderr(k), 1e-12)
            assert abs(scalar.raw[k] - vector.raw[k]) < 5 * np.sqrt(2) * se, (
                name, k, scalar.raw[k], vector.raw[k],
            )

    def test_chained_walks_match(self):
        program = rdwalk_chain(2)
        scalar = simulate_costs(program, 3000, seed=2, engine="machine")
        vector = simulate_costs(program, 3000, seed=2, engine="vectorized")
        se = np.hypot(
            np.std(scalar) / np.sqrt(len(scalar)),
            np.std(vector) / np.sqrt(len(vector)),
        )
        assert abs(np.mean(scalar) - np.mean(vector)) < 5 * se

    def test_uniform_sampling_respects_support(self):
        program = parse_program(
            "func main() begin t ~ uniform(-1, 2); x := t end"
        )
        batch = VectorizedMachine(program).run(4000, np.random.default_rng(0))
        xs = batch.valuations[:, batch.variables.index("x")]
        assert xs.min() >= -1.0 and xs.max() <= 2.0
        assert abs(xs.mean() - 0.5) < 0.06


class TestNondetPolicies:
    SOURCE = "func main() begin if ndet then tick(1) else tick(2) fi end"

    def test_named_policies(self):
        program = parse_program(self.SOURCE)
        left = VectorizedMachine(program, "left").run(20, np.random.default_rng(0))
        right = VectorizedMachine(program, "right").run(20, np.random.default_rng(0))
        both = VectorizedMachine(program, "random").run(200, np.random.default_rng(0))
        assert set(left.costs) == {1.0}
        assert set(right.costs) == {2.0}
        assert set(both.costs) == {1.0, 2.0}

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError, match="unknown nondet policy"):
            VectorizedMachine(parse_program(self.SOURCE), "angelic")

    def test_mc_facade_maps_machine_policies(self):
        from repro.interp.machine import left_policy

        program = parse_program(self.SOURCE)
        costs = simulate_costs(
            program, 10, nondet_policy=left_policy, engine="vectorized"
        )
        assert set(costs) == {1.0}
        with pytest.raises(TypeError, match="batch-wide"):
            simulate_costs(
                program, 10,
                nondet_policy=lambda s, v, r: True, engine="vectorized",
            )

    def test_mc_facade_accepts_policy_names_for_machine(self):
        program = parse_program(self.SOURCE)
        assert set(simulate_costs(program, 5, nondet_policy="right")) == {2.0}
        with pytest.raises(ValueError, match="unknown nondet policy"):
            simulate_costs(program, 5, nondet_policy="angelic")


class TestMcFacade:
    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError, match="unknown engine"):
            simulate_costs(parse_program(DET_SOURCE), 5, engine="gpu")

    def test_statistics_store_samples(self):
        program = parse_program(DET_SOURCE)
        stats = estimate_cost_statistics(program, n=50, engine="vectorized")
        assert stats.costs.shape == (50,)
        assert stats.tail_probability(5.0) == 1.0
        assert stats.tail_probability(5.1) == 0.0
        assert stats.quantile(0.5) == 5.0
        assert stats.moment_stderr(1) == 0.0
