"""Tests for the staged analysis pipeline and the batch driver."""

import pytest

from repro import AnalysisOptions, AnalysisPipeline, analyze, analyze_many, parse_program
from repro.programs import registry

RDWALK = """
func rdwalk() pre(x < d + 2) begin
  if x < d then
    t ~ uniform(-1, 2);
    x := x + t;
    call rdwalk;
    tick(1)
  fi
end

func main() pre(d > 0) begin
  x := 0;
  call rdwalk
end
"""


@pytest.fixture()
def pipe():
    return AnalysisPipeline(parse_program(RDWALK))


class TestStageCaching:
    def test_static_and_context_stages_are_computed_once(self, pipe):
        info = pipe.static_info()
        cmap = pipe.context_map()
        assert pipe.static_info() is info
        assert pipe.context_map() is cmap

    def test_constraint_system_cached_per_derivation_key(self, pipe):
        opts = AnalysisOptions(moment_degree=2)
        system = pipe.constraint_system(opts)
        assert pipe.constraint_system(AnalysisOptions(moment_degree=2)) is system
        other = pipe.constraint_system(AnalysisOptions(moment_degree=3))
        assert other is not system

    def test_resolve_at_new_valuation_reuses_constraints(self, pipe):
        opts_a = AnalysisOptions(moment_degree=2)
        opts_b = AnalysisOptions(
            moment_degree=2, objective_valuations=({"d": 20.0, "x": 0.0, "t": 0.0},)
        )
        result_a = pipe.analyze(opts_a)
        result_b = pipe.analyze(opts_b)
        # One derivation, two solves.
        assert len(pipe._systems) == 1
        assert len(pipe._solutions) == 2
        # Both resolved against the same templates; bounds stay sound.
        assert result_a.raw_interval(1, {"d": 10.0, "x": 0.0, "t": 0.0}).hi > 0
        assert result_b.raw_interval(1, {"d": 20.0, "x": 0.0, "t": 0.0}).hi > 0

    def test_repeated_analyze_hits_the_solution_cache(self, pipe):
        opts = AnalysisOptions(moment_degree=2)
        first = pipe.analyze(opts)
        again = pipe.analyze(opts)
        assert first.objective_values == again.objective_values
        assert len(pipe._solutions) == 1

    def test_higher_degree_reuses_static_stages(self, pipe):
        pipe.analyze(AnalysisOptions(moment_degree=2))
        info = pipe.static_info()
        pipe.analyze(AnalysisOptions(moment_degree=3))
        assert pipe.static_info() is info
        assert len(pipe._systems) == 2

    def test_lexicographic_cuts_are_rolled_back(self, pipe):
        opts = AnalysisOptions(moment_degree=3)
        system = pipe.constraint_system(opts)
        before = system.lp.num_constraints
        pipe.analyze(opts)
        assert system.lp.num_constraints == before

    def test_pipeline_matches_one_shot_analyze(self, pipe):
        opts = AnalysisOptions(moment_degree=2)
        via_pipe = pipe.analyze(opts)
        one_shot = analyze(parse_program(RDWALK), opts)
        assert via_pipe.objective_values == pytest.approx(one_shot.objective_values)


class TestAnalyzeMany:
    def _workload(self, names):
        workload = {}
        for name in names:
            bench = registry.get(name)
            options = AnalysisOptions(
                moment_degree=2,
                template_degree=bench.template_degree,
                degree_cap=bench.degree_cap,
                objective_valuations=(bench.valuation,)
                + tuple(bench.extra_valuations),
            )
            workload[name] = (registry.parsed(name), options)
        return workload

    def test_full_registry_matches_sequential_analyze(self):
        """Acceptance: the batch driver over the whole program registry
        returns the same per-program bounds as sequential ``analyze``."""
        workload = self._workload(sorted(registry.all_benchmarks()))
        sequential = {
            name: analyze(program, options)
            for name, (program, options) in workload.items()
        }
        concurrent = analyze_many(workload, jobs=4)
        assert list(concurrent) == list(workload)
        for name, result in concurrent.items():
            expected = sequential[name]
            assert result.objective_values == pytest.approx(
                expected.objective_values, rel=1e-9, abs=1e-9
            ), name
            for k in range(1, result.raw.degree + 1):
                got = result.raw_interval(k)
                want = expected.raw_interval(k)
                assert got.lo == pytest.approx(want.lo, rel=1e-9, abs=1e-9), name
                assert got.hi == pytest.approx(want.hi, rel=1e-9, abs=1e-9), name

    def test_accepts_pairs_and_default_options(self):
        program = parse_program(RDWALK)
        results = analyze_many(
            [("a", program), ("b", program)],
            options=AnalysisOptions(moment_degree=1),
            jobs=2,
        )
        assert set(results) == {"a", "b"}
        assert results["a"].raw.degree == 1

    def test_single_job_runs_sequentially(self):
        program = parse_program(RDWALK)
        results = analyze_many({"only": program}, jobs=1)
        assert results["only"].raw_interval(
            1, {"d": 10.0, "x": 0.0, "t": 0.0}
        ).hi == pytest.approx(24.0, rel=1e-3)


class TestSolverMetadata:
    def test_statuses_and_scales_recorded(self):
        result = analyze(parse_program(RDWALK), AnalysisOptions(moment_degree=2))
        assert len(result.solver_statuses) == 2
        assert len(result.objective_scales) == 2
        assert all(s.startswith(("optimal", "constant")) for s in result.solver_statuses)
        assert all(s > 0 for s in result.objective_scales)

    def test_stage_cut_margins_recorded(self):
        """Satellite of the solve-layer PR: ``objective_values`` are the
        un-padded stage optima, and the cut margin actually applied when
        pinning each stage is recorded per stage (0.0 for the final stage,
        which pins nothing)."""
        result = analyze(parse_program(RDWALK), AnalysisOptions(moment_degree=3))
        assert len(result.stage_tolerances) == 3
        assert result.stage_tolerances[-1] == 0.0
        # Stages that pinned something carry a positive margin in the
        # stage objective's own units.
        for stage, status in enumerate(result.solver_statuses[:-1]):
            if status != "constant":
                assert result.stage_tolerances[stage] > 0.0
        assert "stage_tolerances" in result.to_dict()

    def test_non_lexicographic_mode_records_single_stage(self):
        result = analyze(
            parse_program(RDWALK),
            AnalysisOptions(moment_degree=2, lexicographic=False),
        )
        assert result.stage_tolerances == [0.0]

    def test_reduction_stats_cached_with_solution(self):
        """The staged artifact carries the reduction mapping stats, so a
        cache-hitting re-analysis reports the same reduction shape."""
        pipe = AnalysisPipeline(parse_program(RDWALK))
        options = AnalysisOptions(moment_degree=2, lp_reduce=True)
        first = pipe.analyze(options)
        again = pipe.analyze(options)
        assert first.lp_reduction is not None
        assert again.lp_reduction == first.lp_reduction
        assert first.lp_reduction["reduced_cols"] < first.lp_variables
