"""Tests for tail bounds (section 5) and the timing-attack analysis."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rings.interval import Interval
from repro.tail.attack import analyze_attack, paper_t0_bounds, paper_t1_bounds
from repro.tail.bounds import (
    best_lower_tail,
    best_upper_tail,
    cantelli_lower_tail,
    cantelli_upper_tail,
    chebyshev_tail,
    chebyshev_two_sided,
    costs_nonnegative,
    markov_tail,
    tail_curve,
)


class TestInequalities:
    def test_markov(self):
        assert markov_tail(10.0, 1, 20.0) == 0.5
        assert markov_tail(100.0, 2, 20.0) == 0.25
        assert markov_tail(10.0, 1, 5.0) == 1.0  # clipped
        assert markov_tail(10.0, 1, 0.0) == 1.0

    def test_markov_negative_moment_rejected(self):
        with pytest.raises(ValueError):
            markov_tail(-1.0, 1, 5.0)

    def test_cantelli(self):
        # V = 3, mean <= 1, threshold 4: 3 / (3 + 9) = 0.25.
        assert cantelli_upper_tail(3.0, 1.0, 4.0) == 0.25
        assert cantelli_upper_tail(3.0, 5.0, 4.0) == 1.0  # below the mean

    def test_cantelli_lower(self):
        assert cantelli_lower_tail(3.0, 4.0, 1.0) == 0.25
        assert cantelli_lower_tail(3.0, 1.0, 4.0) == 1.0

    def test_cantelli_guard_parity(self):
        """Both Cantelli helpers reject a negative variance bound alike.

        Regression: the lower-tail form used to silently return a
        nonsense negative "probability" where the upper-tail form raised.
        """
        for bad in (-1e-9, -5.0):
            with pytest.raises(ValueError, match="negative variance"):
                cantelli_upper_tail(bad, 1.0, 4.0)
            with pytest.raises(ValueError, match="negative variance"):
                cantelli_lower_tail(bad, 4.0, 1.0)

    @given(
        st.floats(0.0, 1e6), st.floats(-1e3, 1e3), st.floats(-1e4, 1e4)
    )
    @settings(max_examples=100, deadline=None)
    def test_cantelli_both_sides_are_probabilities(self, v, mean, thr):
        assert 0.0 <= cantelli_upper_tail(v, mean, thr) <= 1.0
        assert 0.0 <= cantelli_lower_tail(v, mean, thr) <= 1.0

    def test_chebyshev(self):
        # C4 = 16, mean <= 1, threshold 3: 16 / 2^4 = 1 -> clipped; t=5: 16/256.
        assert chebyshev_tail(16.0, 2, 1.0, 5.0) == pytest.approx(16.0 / 256.0)
        assert chebyshev_two_sided(16.0, 2, 2.0) == 1.0

    def test_paper_fig1b_limits(self):
        """Fig. 1(b): the three tail bounds for rdwalk at threshold 4d."""
        for d in (20.0, 50.0, 200.0):
            markov1 = markov_tail(2 * d + 4, 1, 4 * d)
            markov2 = markov_tail(4 * d * d + 22 * d + 28, 2, 4 * d)
            cantelli = cantelli_upper_tail(22 * d + 28, 2 * d + 4, 4 * d)
            assert markov1 == pytest.approx(0.5, abs=1.2 / d)
            assert markov2 == pytest.approx(0.25, abs=8.0 / d)
            assert cantelli < markov2 < markov1
        # Cantelli tends to 0 as d grows (paper's eq. (10)).
        assert cantelli_upper_tail(22 * 1e6 + 28, 2e6 + 4, 4e6) < 0.01

    def test_paper_crossover_region(self):
        """For d >= ~15 the central-moment bound is the most precise."""
        d = 15.0
        cantelli = cantelli_upper_tail(22 * d + 28, 2 * d + 4, 4 * d)
        markov2 = markov_tail(4 * d * d + 22 * d + 28, 2, 4 * d)
        assert cantelli < markov2

    @given(
        st.floats(0.0, 1e6), st.floats(0.0, 1e3), st.floats(0.1, 1e4)
    )
    @settings(max_examples=100, deadline=None)
    def test_bounds_are_probabilities(self, v, mean, thr):
        assert 0.0 <= cantelli_upper_tail(v, mean, thr) <= 1.0
        assert 0.0 <= markov_tail(v, 2, thr) <= 1.0
        assert 0.0 <= chebyshev_tail(v, 2, mean, thr) <= 1.0

    @given(st.floats(1.0, 100.0))
    @settings(max_examples=50, deadline=None)
    def test_monotone_in_threshold(self, v):
        thresholds = [2.0, 4.0, 8.0, 16.0]
        cant = [cantelli_upper_tail(v, 1.0, t) for t in thresholds]
        assert cant == sorted(cant, reverse=True)
        mark = [markov_tail(v, 1, t) for t in thresholds]
        assert mark == sorted(mark, reverse=True)


class TestBestTail:
    RAW = [
        Interval.point(1.0),
        Interval(9.0, 10.0),
        Interval(100.0, 130.0),
        Interval(1000.0, 1800.0),
        Interval(10_000.0, 30_000.0),
    ]
    CENTRAL = {2: Interval(0.0, 30.0), 4: Interval(0.0, 3000.0)}

    def test_collects_all_bounds(self):
        bounds = best_upper_tail(self.RAW, self.CENTRAL, threshold=40.0)
        assert set(bounds.markov) == {1, 2, 3, 4}
        assert bounds.cantelli is not None
        assert 4 in bounds.chebyshev

    def test_best_is_minimum(self):
        bounds = best_upper_tail(self.RAW, self.CENTRAL, threshold=40.0)
        candidates = list(bounds.markov.values()) + [bounds.cantelli]
        candidates += list(bounds.chebyshev.values())
        assert bounds.best() == min(candidates)

    def test_without_central_moments(self):
        bounds = best_upper_tail(self.RAW, None, threshold=40.0)
        assert bounds.cantelli is None
        assert bounds.chebyshev == {}

    def test_tail_curve(self):
        curve = tail_curve([10, 20, 40], self.RAW, self.CENTRAL)
        values = [b.best() for _, b in curve]
        assert values == sorted(values, reverse=True)
        assert curve[0][0] == 10.0

    def test_entries_name_every_bound(self):
        bounds = best_upper_tail(self.RAW, self.CENTRAL, threshold=40.0)
        entries = bounds.entries()
        assert [(name, k) for name, k, _ in entries] == [
            ("markov", 1), ("markov", 2), ("markov", 3), ("markov", 4),
            ("cantelli", 2), ("chebyshev", 4),
        ]
        name, order, value = bounds.best_entry()
        assert value == bounds.best()
        assert value == min(v for _, _, v in entries)

    @given(st.floats(1.0, 1e5), st.floats(1.0, 1e5))
    @settings(max_examples=60, deadline=None)
    def test_best_monotone_non_increasing_in_threshold(self, t1, t2):
        lo_t, hi_t = min(t1, t2), max(t1, t2)
        lo = best_upper_tail(self.RAW, self.CENTRAL, hi_t).best()
        hi = best_upper_tail(self.RAW, self.CENTRAL, lo_t).best()
        assert lo <= hi
        assert 0.0 <= lo <= 1.0 and 0.0 <= hi <= 1.0


class TestSoundnessGating:
    """Inapplicable inequalities are skipped, not raised or recorded as
    vacuous 1.0 entries (the signed-cost / missing-mean bugfixes)."""

    def test_negative_raw_upper_no_longer_crashes(self):
        # Regression: E[C] = [-15, -15] (wang-bitcoin-mining) used to raise
        # `ValueError: raw moment bound of a nonnegative variable is
        # negative` out of markov_tail.
        raws = [Interval.point(1.0), Interval(-15.0, -15.0)]
        bounds = best_upper_tail(raws, None, 100.0, nonnegative_cost=False)
        assert bounds.markov == {}
        assert bounds.best() == 1.0
        assert bounds.best_entry() is None

    def test_signed_costs_skip_odd_markov_orders(self):
        raws = [
            Interval.point(1.0),
            Interval(-5.0, 5.0),
            Interval(0.0, 100.0),
            Interval(-500.0, 1000.0),
        ]
        signed = best_upper_tail(raws, None, 50.0, nonnegative_cost=False)
        assert set(signed.markov) == {2}  # only the even order survives
        trusted = best_upper_tail(raws, None, 50.0, nonnegative_cost=True)
        assert set(trusted.markov) == {1, 2, 3}

    def test_negative_raw_upper_skipped_even_when_nonnegative(self):
        # A negative upper bound on E[X] for X >= 0 certifies nothing
        # (an over-tight LP artifact must not crash the report path).
        raws = [Interval.point(1.0), Interval(-1.0, -0.5), Interval(0.0, 4.0)]
        bounds = best_upper_tail(raws, None, 10.0)
        assert set(bounds.markov) == {2}

    def test_missing_mean_drops_one_sided_central_bounds(self):
        # Regression: raw of length 1 used to record cantelli = 1.0
        # computed from mean_upper = inf, masking real evidence.
        bounds = best_upper_tail(
            [Interval.point(1.0)], {2: Interval(0.0, 4.0)}, 10.0
        )
        assert bounds.cantelli is None
        assert bounds.chebyshev == {}
        assert bounds.entries() == []
        assert bounds.best() == 1.0

    def test_negative_central_upper_dropped(self):
        raws = [Interval.point(1.0), Interval(0.0, 2.0)]
        bounds = best_upper_tail(raws, {2: Interval(-3.0, -1.0)}, 10.0)
        assert bounds.cantelli is None

    def test_lower_tail_uses_mean_lower(self):
        raws = [Interval.point(1.0), Interval(10.0, 12.0)]
        bounds = best_lower_tail(raws, {2: Interval(0.0, 3.0)}, 7.0)
        # gap = mean_lo - t = 3: 3 / (3 + 9) = 0.25.
        assert bounds.cantelli == pytest.approx(0.25)
        assert bounds.best_entry() == ("cantelli", 2, pytest.approx(0.25))

    def test_costs_nonnegative_walks_the_whole_program(self):
        from repro.lang.parser import parse_program

        positive = parse_program(
            "func main() begin if prob(0.5) then tick(1) else tick(0) fi end"
        )
        assert costs_nonnegative(positive) is True
        signed = parse_program(
            "func main() pre(x >= 0) begin"
            " while x < 3 inv(x >= 0) do x := x + 1; tick(-2) od end"
        )
        assert costs_nonnegative(signed) is False


class TestDifferentialTails:
    """Certified tail bounds vs. empirical tail frequencies on the seed-0
    fuzz corpus: the empirical tail must never exceed the certified bound
    beyond the CLT margin of the Monte-Carlo estimate."""

    SAMPLES = 1500
    CORPUS = 10

    @pytest.fixture(scope="class")
    def corpus_results(self):
        from repro.analysis.pipeline import AnalysisOptions, AnalysisPipeline
        from repro.interp.mc import estimate_cost_statistics
        from repro.lang.varinfo import ValidationError
        from repro.lp.core import LPInfeasibleError
        from repro.programs.fuzz import generate_corpus

        outcomes = []
        for case in generate_corpus(self.CORPUS, seed=0):
            program = case.parse()
            options = AnalysisOptions(
                moment_degree=case.moment_degree,
                objective_valuations=(dict(case.valuation),),
            )
            try:
                result = AnalysisPipeline(program).analyze(options)
            except (ValidationError, LPInfeasibleError):
                continue  # analyzer infeasibility is an accepted verdict
            stats = estimate_cost_statistics(
                program,
                n=self.SAMPLES,
                seed=1,
                initial=case.initial,
                degree=max(2, case.moment_degree),
                engine="vectorized",
            )
            outcomes.append((case, program, result, stats))
        return outcomes

    def test_corpus_is_not_degenerate(self, corpus_results):
        assert len(corpus_results) >= self.CORPUS // 2

    def test_corpus_has_signed_cost_cases(self, corpus_results):
        assert any(
            not costs_nonnegative(program) for _, program, _, _ in corpus_results
        )

    def test_empirical_tail_within_certified_bound(self, corpus_results):
        import math

        # One-sided CLT margin on a frequency estimate at 5 sigma.
        margin = 5 * 0.5 / math.sqrt(self.SAMPLES)
        checked = 0
        for case, program, result, stats in corpus_results:
            raws = result.raw_intervals()
            central = {}
            for order in range(2, result.raw.degree + 1, 2):
                iv = result.central_interval(order)
                central[order] = Interval(max(iv.lo, 0.0), max(iv.hi, 0.0))
            mean_hi = raws[1].hi
            sd_hi = math.sqrt(max(central.get(2, Interval(0, 0)).hi, 0.0))
            for shift in (1.0, 2.0, 4.0):
                threshold = mean_hi + shift * (sd_hi + 1.0)
                bounds = best_upper_tail(
                    raws,
                    central,
                    threshold,
                    nonnegative_cost=costs_nonnegative(program),
                )
                empirical = stats.tail_probability(threshold)
                assert empirical <= bounds.best() + margin, (
                    case.name,
                    threshold,
                    empirical,
                    bounds.entries(),
                )
                checked += 1
        assert checked > 0


class TestAttack:
    def test_paper_success_rates(self):
        analysis = analyze_attack(bits=32, trials=10_000)
        # Appendix I: P >= 0.219413 over all 32 bits.
        assert analysis.success_rate(0) == pytest.approx(0.219413, abs=1e-4)
        # Skipping the 6 low bits gives a much higher rate (paper: 0.830561;
        # our evaluation of the same formula gives 0.8592 — recorded in
        # EXPERIMENTS.md).
        assert analysis.success_rate(6) > 0.8

    def test_brute_force_call_count(self):
        analysis = analyze_attack(bits=32, trials=10_000)
        assert analysis.brute_force_calls(6) == 260_064

    def test_failure_decreases_with_more_trials(self):
        few = analyze_attack(bits=32, trials=100)
        many = analyze_attack(bits=32, trials=100_000)
        assert many.success_rate(0) > few.success_rate(0)

    def test_low_bits_hardest(self):
        analysis = analyze_attack(bits=32, trials=10_000)
        failures = analysis.per_bit_failure
        assert failures[0] > failures[15] > failures[31]

    def test_scenario_bounds_shapes(self):
        lo1, hi1, v1 = paper_t1_bounds(32.0, 5.0)
        assert (lo1, hi1) == (13 * 32, 15 * 32)
        assert v1 == 26 * 32**2 + 42 * 32
        lo0, hi0, _ = paper_t0_bounds(32.0, 5.0)
        assert lo0 < hi0 < lo1
