"""Tests for tail bounds (section 5) and the timing-attack analysis."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rings.interval import Interval
from repro.tail.attack import analyze_attack, paper_t0_bounds, paper_t1_bounds
from repro.tail.bounds import (
    best_upper_tail,
    cantelli_lower_tail,
    cantelli_upper_tail,
    chebyshev_tail,
    chebyshev_two_sided,
    markov_tail,
    tail_curve,
)


class TestInequalities:
    def test_markov(self):
        assert markov_tail(10.0, 1, 20.0) == 0.5
        assert markov_tail(100.0, 2, 20.0) == 0.25
        assert markov_tail(10.0, 1, 5.0) == 1.0  # clipped
        assert markov_tail(10.0, 1, 0.0) == 1.0

    def test_markov_negative_moment_rejected(self):
        with pytest.raises(ValueError):
            markov_tail(-1.0, 1, 5.0)

    def test_cantelli(self):
        # V = 3, mean <= 1, threshold 4: 3 / (3 + 9) = 0.25.
        assert cantelli_upper_tail(3.0, 1.0, 4.0) == 0.25
        assert cantelli_upper_tail(3.0, 5.0, 4.0) == 1.0  # below the mean

    def test_cantelli_lower(self):
        assert cantelli_lower_tail(3.0, 4.0, 1.0) == 0.25
        assert cantelli_lower_tail(3.0, 1.0, 4.0) == 1.0

    def test_chebyshev(self):
        # C4 = 16, mean <= 1, threshold 3: 16 / 2^4 = 1 -> clipped; t=5: 16/256.
        assert chebyshev_tail(16.0, 2, 1.0, 5.0) == pytest.approx(16.0 / 256.0)
        assert chebyshev_two_sided(16.0, 2, 2.0) == 1.0

    def test_paper_fig1b_limits(self):
        """Fig. 1(b): the three tail bounds for rdwalk at threshold 4d."""
        for d in (20.0, 50.0, 200.0):
            markov1 = markov_tail(2 * d + 4, 1, 4 * d)
            markov2 = markov_tail(4 * d * d + 22 * d + 28, 2, 4 * d)
            cantelli = cantelli_upper_tail(22 * d + 28, 2 * d + 4, 4 * d)
            assert markov1 == pytest.approx(0.5, abs=1.2 / d)
            assert markov2 == pytest.approx(0.25, abs=8.0 / d)
            assert cantelli < markov2 < markov1
        # Cantelli tends to 0 as d grows (paper's eq. (10)).
        assert cantelli_upper_tail(22 * 1e6 + 28, 2e6 + 4, 4e6) < 0.01

    def test_paper_crossover_region(self):
        """For d >= ~15 the central-moment bound is the most precise."""
        d = 15.0
        cantelli = cantelli_upper_tail(22 * d + 28, 2 * d + 4, 4 * d)
        markov2 = markov_tail(4 * d * d + 22 * d + 28, 2, 4 * d)
        assert cantelli < markov2

    @given(
        st.floats(0.0, 1e6), st.floats(0.0, 1e3), st.floats(0.1, 1e4)
    )
    @settings(max_examples=100, deadline=None)
    def test_bounds_are_probabilities(self, v, mean, thr):
        assert 0.0 <= cantelli_upper_tail(v, mean, thr) <= 1.0
        assert 0.0 <= markov_tail(v, 2, thr) <= 1.0
        assert 0.0 <= chebyshev_tail(v, 2, mean, thr) <= 1.0

    @given(st.floats(1.0, 100.0))
    @settings(max_examples=50, deadline=None)
    def test_monotone_in_threshold(self, v):
        thresholds = [2.0, 4.0, 8.0, 16.0]
        cant = [cantelli_upper_tail(v, 1.0, t) for t in thresholds]
        assert cant == sorted(cant, reverse=True)
        mark = [markov_tail(v, 1, t) for t in thresholds]
        assert mark == sorted(mark, reverse=True)


class TestBestTail:
    RAW = [
        Interval.point(1.0),
        Interval(9.0, 10.0),
        Interval(100.0, 130.0),
        Interval(1000.0, 1800.0),
        Interval(10_000.0, 30_000.0),
    ]
    CENTRAL = {2: Interval(0.0, 30.0), 4: Interval(0.0, 3000.0)}

    def test_collects_all_bounds(self):
        bounds = best_upper_tail(self.RAW, self.CENTRAL, threshold=40.0)
        assert set(bounds.markov) == {1, 2, 3, 4}
        assert bounds.cantelli is not None
        assert 4 in bounds.chebyshev

    def test_best_is_minimum(self):
        bounds = best_upper_tail(self.RAW, self.CENTRAL, threshold=40.0)
        candidates = list(bounds.markov.values()) + [bounds.cantelli]
        candidates += list(bounds.chebyshev.values())
        assert bounds.best() == min(candidates)

    def test_without_central_moments(self):
        bounds = best_upper_tail(self.RAW, None, threshold=40.0)
        assert bounds.cantelli is None
        assert bounds.chebyshev == {}

    def test_tail_curve(self):
        curve = tail_curve([10, 20, 40], self.RAW, self.CENTRAL)
        values = [b.best() for _, b in curve]
        assert values == sorted(values, reverse=True)
        assert curve[0][0] == 10.0


class TestAttack:
    def test_paper_success_rates(self):
        analysis = analyze_attack(bits=32, trials=10_000)
        # Appendix I: P >= 0.219413 over all 32 bits.
        assert analysis.success_rate(0) == pytest.approx(0.219413, abs=1e-4)
        # Skipping the 6 low bits gives a much higher rate (paper: 0.830561;
        # our evaluation of the same formula gives 0.8592 — recorded in
        # EXPERIMENTS.md).
        assert analysis.success_rate(6) > 0.8

    def test_brute_force_call_count(self):
        analysis = analyze_attack(bits=32, trials=10_000)
        assert analysis.brute_force_calls(6) == 260_064

    def test_failure_decreases_with_more_trials(self):
        few = analyze_attack(bits=32, trials=100)
        many = analyze_attack(bits=32, trials=100_000)
        assert many.success_rate(0) > few.success_rate(0)

    def test_low_bits_hardest(self):
        analysis = analyze_attack(bits=32, trials=10_000)
        failures = analysis.per_bit_failure
        assert failures[0] > failures[15] > failures[31]

    def test_scenario_bounds_shapes(self):
        lo1, hi1, v1 = paper_t1_bounds(32.0, 5.0)
        assert (lo1, hi1) == (13 * 32, 15 * 32)
        assert v1 == 26 * 32**2 + 42 * 32
        lo0, hi0, _ = paper_t0_bounds(32.0, 5.0)
        assert lo0 < hi0 < lo1
