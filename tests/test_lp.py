"""Tests for LP assembly and solving."""

import pytest

from repro.lp.affine import AffForm
from repro.lp.problem import LPError, LPInfeasibleError, LPProblem


class TestLPProblem:
    def test_simple_minimization(self):
        lp = LPProblem()
        x = lp.fresh("x")
        # x >= 3  ->  x - 3 >= 0
        lp.add_ge(AffForm.of_var(x) - 3.0)
        solution = lp.solve(AffForm.of_var(x))
        assert solution.value_of(x) == pytest.approx(3.0)
        assert solution.objective == pytest.approx(3.0)

    def test_maximization(self):
        lp = LPProblem()
        x = lp.fresh("x")
        lp.add_le(AffForm.of_var(x) - 5.0)
        solution = lp.solve(AffForm.of_var(x), minimize=False)
        assert solution.objective == pytest.approx(5.0)

    def test_equalities(self):
        lp = LPProblem()
        x, y = lp.fresh("x"), lp.fresh("y")
        lp.add_eq(AffForm.of_var(x) + AffForm.of_var(y) - 4.0)
        lp.add_eq(AffForm.of_var(x) - AffForm.of_var(y))
        solution = lp.solve(AffForm.of_var(x))
        assert solution.value_of(x) == pytest.approx(2.0)
        assert solution.value_of(y) == pytest.approx(2.0)

    def test_nonneg_variables(self):
        lp = LPProblem()
        lam = lp.fresh_nonneg("lam")
        solution = lp.solve(AffForm.of_var(lam))
        assert solution.value_of(lam) == pytest.approx(0.0)

    def test_infeasible_system(self):
        lp = LPProblem()
        x = lp.fresh("x")
        lp.add_ge(AffForm.of_var(x) - 3.0)
        lp.add_le(AffForm.of_var(x) - 2.0)
        with pytest.raises(LPInfeasibleError):
            lp.solve(AffForm.of_var(x))

    def test_constant_contradiction_caught_at_emission(self):
        lp = LPProblem()
        with pytest.raises(LPInfeasibleError):
            lp.add_eq(AffForm.constant(1.0))
        with pytest.raises(LPInfeasibleError):
            lp.add_ge(AffForm.constant(-1.0))

    def test_trivial_constant_constraints_dropped(self):
        lp = LPProblem()
        lp.add_eq(AffForm.constant(0.0))
        lp.add_ge(AffForm.constant(5.0))
        assert lp.num_constraints == 0

    def test_objective_constant_term(self):
        lp = LPProblem()
        x = lp.fresh("x")
        lp.add_ge(AffForm.of_var(x) - 1.0)
        solution = lp.solve(AffForm.of_var(x) + 10.0)
        assert solution.objective == pytest.approx(11.0)

    def test_boxing_prevents_unboundedness(self):
        lp = LPProblem()
        x = lp.fresh("x")
        solution = lp.solve(AffForm.of_var(x), bound=100.0)
        assert solution.value_of(x) == pytest.approx(-100.0)

    def test_empty_problem(self):
        lp = LPProblem()
        solution = lp.solve()
        assert solution.objective == 0.0

    def test_solution_assignment_roundtrip(self):
        lp = LPProblem()
        x, y = lp.fresh("x"), lp.fresh("y")
        lp.add_eq(AffForm.of_var(x) - 7.0)
        lp.add_eq(AffForm.of_var(y) - 8.0)
        solution = lp.solve(AffForm.of_var(x) + AffForm.of_var(y))
        form = AffForm.of_var(x, 2.0) + AffForm.of_var(y, 3.0)
        assert form.evaluate(solution.assignment()) == pytest.approx(38.0)
