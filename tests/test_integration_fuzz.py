"""Randomized end-to-end soundness testing, in two tiers.

**Tier 1 (this file, runs in every CI leg):** a fixed-seed corpus of
generated Appl programs through the full differential harness
(:mod:`repro.soundness.differential`) at small sample counts — analyzer
vs. vectorized Monte Carlo, bracketing up to the CLT margin — plus the
original hand-rolled random-walk brackets that predate the harness.

**Tier 2 (deep mode, nightly):** ``python -m repro fuzz --budget SECONDS``
fuzzes fresh seeds until the time budget is spent and uploads minimized
reproducers for any violation (``.github/workflows/nightly-fuzz.yml``).
The deep mode's machinery (budget loop, violation artifacts, exit codes)
is smoke-tested here so the nightly job cannot rot silently.
"""

import json
import pathlib

import numpy as np
import pytest

from repro import AnalysisOptions, analyze, estimate_cost_statistics, parse_program
from repro.programs.fuzz import generate_corpus
from repro.soundness.differential import (
    ANALYZER_INFEASIBLE,
    VERIFIED,
    DifferentialConfig,
    DifferentialReport,
    check_case,
    run_differential,
)

# ---------------------------------------------------------------------------
# Tier 1: differential corpus (fixed seeds, small N)
# ---------------------------------------------------------------------------

TIER1_COUNT = 24
TIER1_CONFIG = DifferentialConfig(samples=1500, max_steps=150_000)


@pytest.fixture(scope="module")
def tier1_report() -> DifferentialReport:
    corpus = generate_corpus(TIER1_COUNT, seed=0)
    return run_differential(corpus, TIER1_CONFIG, jobs=4)


class TestTier1Corpus:
    def test_zero_violations(self, tier1_report):
        assert tier1_report.ok, tier1_report.summary()

    def test_mostly_verified(self, tier1_report):
        """Analyzer infeasibility is an acceptable classification, but if
        it dominates the corpus the harness is not testing anything."""
        counts = tier1_report.counts()
        assert counts[VERIFIED] >= TIER1_COUNT * 0.8, tier1_report.summary()
        assert counts[VERIFIED] + counts[ANALYZER_INFEASIBLE] == TIER1_COUNT

    def test_every_verified_case_checked_all_moments(self, tier1_report):
        for outcome in tier1_report.by_status(VERIFIED):
            raw_ks = {
                c.k for c in outcome.checks if c.kind == "raw"
            }
            assert raw_ks == set(range(1, outcome.case.moment_degree + 1))
            if outcome.case.moment_degree >= 2:
                assert any(c.kind == "central" for c in outcome.checks)

    def test_ndet_cases_checked_under_all_policies(self, tier1_report):
        ndet = [
            o for o in tier1_report.by_status(VERIFIED)
            if "ndet" in o.case.features
        ]
        if not ndet:
            pytest.skip("corpus drew no nondeterministic verified case")
        for outcome in ndet:
            assert {c.policy for c in outcome.checks} == {
                "random", "left", "right",
            }


class TestSingleCaseHarness:
    def test_check_case_roundtrip(self):
        case = generate_corpus(1, seed=5)[0]
        outcome = check_case(case, TIER1_CONFIG)
        assert outcome.status in (VERIFIED, ANALYZER_INFEASIBLE)
        assert outcome.analyze_seconds > 0

    def test_violation_detected_minimized_and_dumped(self, tmp_path):
        """Inject a genuine mismatch (analyze at x=1, simulate from x=9):
        the harness must classify it as a violation, shrink the program,
        and dump a reproducer with a machine-readable report."""
        from dataclasses import replace

        base = next(
            c for c in generate_corpus(40, seed=0) if "open" in c.features
        )
        bad = replace(
            base, initial={"x": 9.0}, valuation={**base.valuation, "x": 1.0}
        )
        report = run_differential(
            [bad],
            DifferentialConfig(samples=1200, minimize_budget=60),
            out_dir=str(tmp_path),
        )
        assert not report.ok
        (violation,) = report.violations
        assert violation.minimized is not None
        assert len(violation.minimized) <= len(bad.source)
        case_dir = pathlib.Path(violation.artifact_dir)
        assert (case_dir / "program.appl").exists()
        assert (case_dir / "original.appl").exists()
        payload = json.loads((case_dir / "report.json").read_text())
        assert payload["status"] == "violation"
        assert payload["seed"] == bad.seed
        assert any(not c["ok"] for c in payload["checks"])
        # The minimized reproducer must re-parse and still be a program.
        parse_program((case_dir / "program.appl").read_text())

    def test_unminimized_violation_still_dumps_reproducer(self, tmp_path):
        """program.appl (the documented entry point) must exist even when
        shrinking is disabled — it is then the as-generated source."""
        from dataclasses import replace

        base = next(
            c for c in generate_corpus(40, seed=0) if "open" in c.features
        )
        bad = replace(
            base, initial={"x": 9.0}, valuation={**base.valuation, "x": 1.0}
        )
        report = run_differential(
            [bad],
            DifferentialConfig(samples=1200, minimize=False),
            out_dir=str(tmp_path),
        )
        (violation,) = report.violations
        assert violation.minimized is None
        case_dir = pathlib.Path(violation.artifact_dir)
        assert (case_dir / "program.appl").read_text() == bad.source


# ---------------------------------------------------------------------------
# Tier 2 plumbing: the deep mode the nightly job drives
# ---------------------------------------------------------------------------


class TestDeepModePlumbing:
    def test_budget_mode_runs_multiple_batches(self, tmp_path):
        import io

        from repro.cli import run

        out = io.StringIO()
        code = run(
            [
                "fuzz", "--seed", "7000", "--count", "2", "--budget", "0.01",
                "--samples", "300", "--out", str(tmp_path / "violations"),
            ],
            out=out,
        )
        text = out.getvalue()
        assert code == 0, text
        assert "[seeds 7000..7001]" in text
        assert "deep mode total:" in text

    def test_one_shot_mode_exit_codes(self, tmp_path):
        import io

        from repro.cli import run

        out = io.StringIO()
        code = run(
            [
                "fuzz", "--seed", "3", "--count", "2", "--samples", "400",
                "--out", str(tmp_path / "violations"),
            ],
            out=out,
        )
        assert code == 0, out.getvalue()
        assert "deep mode" not in out.getvalue()


# ---------------------------------------------------------------------------
# The original hand-rolled walks (kept: they predate the generator and
# exercise the symbolic-initial-state path at higher sample counts)
# ---------------------------------------------------------------------------


def make_walk(seed: int) -> tuple[str, dict[str, float]]:
    """A random terminating integer walk with a random cost model."""
    rng = np.random.default_rng(seed)
    p_down = float(rng.choice([0.6, 0.7, 0.75, 0.8]))
    down = int(rng.integers(1, 3))
    up = int(rng.integers(0, 2))  # 0 makes the up-branch a stall
    # Ensure strictly negative drift.
    if p_down * down <= (1 - p_down) * up:
        up = 0
    cost = float(rng.choice([0.5, 1.0, 2.0, 4.0]))
    extra_p = float(rng.choice([0.0, 0.25, 0.5]))
    start = int(rng.integers(3, 12))
    lowest = -down + 1
    source = f"""
    func main() pre(x >= 0) begin
      while x > 0 inv(x >= {lowest}) do
        t ~ discrete(-{down}: {p_down!r}, {up}: {1.0 - p_down!r});
        x := x + t;
        tick({cost!r});
        if prob({extra_p!r}) then tick(1) fi
      od
    end
    """
    return source, {"x": float(start)}


SEEDS = list(range(10))


@pytest.mark.parametrize("seed", SEEDS)
def test_random_walks_bracket_simulation(seed):
    source, init = make_walk(seed)
    program = parse_program(source)
    valuation = {"x": init["x"], "t": 0.0}
    result = analyze(
        program,
        AnalysisOptions(moment_degree=2, objective_valuations=(valuation,)),
    )
    stats = estimate_cost_statistics(
        program, n=3000, seed=seed + 100, initial=init, engine="vectorized"
    )

    e1 = result.raw_interval(1, valuation)
    e2 = result.raw_interval(2, valuation)
    var = result.variance(valuation)

    slack1 = 0.08 * abs(stats.mean) + 0.5
    slack2 = 0.15 * abs(stats.raw[2]) + 1.0
    assert e1.lo - slack1 <= stats.mean <= e1.hi + slack1, (source, e1, stats.mean)
    assert e2.lo - slack2 <= stats.raw[2] <= e2.hi + slack2, (source, e2, stats.raw[2])
    assert stats.central[2] <= var.hi * 1.2 + 1.0, (source, var, stats.central[2])


@pytest.mark.parametrize("seed", SEEDS[:5])
def test_random_walks_soundness_conditions(seed):
    from repro import check_soundness

    source, _ = make_walk(seed)
    report = check_soundness(parse_program(source), 2)
    assert report.bounded_update.ok
    assert report.termination.ok


def test_negative_cost_variant_brackets():
    """Same fuzz shape with rewards (non-monotone costs)."""
    source = """
    func main() pre(x >= 0) begin
      while x > 0 inv(x >= 0) do
        t ~ discrete(-1: 0.75, 1: 0.25);
        x := x + t;
        tick(-2);
        if prob(0.5) then tick(1) fi
      od
    end
    """
    program = parse_program(source)
    valuation = {"x": 8.0, "t": 0.0}
    result = analyze(
        program, AnalysisOptions(moment_degree=2, objective_valuations=(valuation,))
    )
    stats = estimate_cost_statistics(
        program, n=4000, seed=3, initial={"x": 8.0}, engine="vectorized"
    )
    e1 = result.raw_interval(1, valuation)
    assert e1.lo - 1.0 <= stats.mean <= e1.hi + 1.0
    assert stats.mean < 0  # it really is a reward
