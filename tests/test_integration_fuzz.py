"""Randomized end-to-end soundness testing.

Generates random downward-drifting walk programs (random step laws, costs,
guards), analyzes them, and checks that the inferred intervals bracket
Monte-Carlo estimates of the first two raw moments and the variance.  This
is the strongest correctness property the analyzer promises, exercised on
programs nobody hand-tuned.
"""

import numpy as np
import pytest

from repro import AnalysisOptions, analyze, estimate_cost_statistics, parse_program


def make_walk(seed: int) -> tuple[str, dict[str, float]]:
    """A random terminating integer walk with a random cost model."""
    rng = np.random.default_rng(seed)
    p_down = float(rng.choice([0.6, 0.7, 0.75, 0.8]))
    down = int(rng.integers(1, 3))
    up = int(rng.integers(0, 2))  # 0 makes the up-branch a stall
    # Ensure strictly negative drift.
    if p_down * down <= (1 - p_down) * up:
        up = 0
    cost = float(rng.choice([0.5, 1.0, 2.0, 4.0]))
    extra_p = float(rng.choice([0.0, 0.25, 0.5]))
    start = int(rng.integers(3, 12))
    lowest = -down + 1
    source = f"""
    func main() pre(x >= 0) begin
      while x > 0 inv(x >= {lowest}) do
        t ~ discrete(-{down}: {p_down!r}, {up}: {1.0 - p_down!r});
        x := x + t;
        tick({cost!r});
        if prob({extra_p!r}) then tick(1) fi
      od
    end
    """
    return source, {"x": float(start)}


SEEDS = list(range(10))


@pytest.mark.parametrize("seed", SEEDS)
def test_random_walks_bracket_simulation(seed):
    source, init = make_walk(seed)
    program = parse_program(source)
    valuation = {"x": init["x"], "t": 0.0}
    result = analyze(
        program,
        AnalysisOptions(moment_degree=2, objective_valuations=(valuation,)),
    )
    stats = estimate_cost_statistics(program, n=3000, seed=seed + 100, initial=init)

    e1 = result.raw_interval(1, valuation)
    e2 = result.raw_interval(2, valuation)
    var = result.variance(valuation)

    slack1 = 0.08 * abs(stats.mean) + 0.5
    slack2 = 0.15 * abs(stats.raw[2]) + 1.0
    assert e1.lo - slack1 <= stats.mean <= e1.hi + slack1, (source, e1, stats.mean)
    assert e2.lo - slack2 <= stats.raw[2] <= e2.hi + slack2, (source, e2, stats.raw[2])
    assert stats.central[2] <= var.hi * 1.2 + 1.0, (source, var, stats.central[2])


@pytest.mark.parametrize("seed", SEEDS[:5])
def test_random_walks_soundness_conditions(seed):
    from repro import check_soundness

    source, _ = make_walk(seed)
    report = check_soundness(parse_program(source), 2)
    assert report.bounded_update.ok
    assert report.termination.ok


def test_negative_cost_variant_brackets():
    """Same fuzz shape with rewards (non-monotone costs)."""
    source = """
    func main() pre(x >= 0) begin
      while x > 0 inv(x >= 0) do
        t ~ discrete(-1: 0.75, 1: 0.25);
        x := x + t;
        tick(-2);
        if prob(0.5) then tick(1) fi
      od
    end
    """
    program = parse_program(source)
    valuation = {"x": 8.0, "t": 0.0}
    result = analyze(
        program, AnalysisOptions(moment_degree=2, objective_valuations=(valuation,))
    )
    stats = estimate_cost_statistics(program, n=4000, seed=3, initial={"x": 8.0})
    e1 = result.raw_interval(1, valuation)
    assert e1.lo - 1.0 <= stats.mean <= e1.hi + 1.0
    assert stats.mean < 0  # it really is a reward
