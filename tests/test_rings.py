"""Tests for the interval semiring and the moment semirings.

The property tests check the algebraic laws of Definition 3.1 and the
composition property of Lemma 3.2 — the foundations the whole derivation
system rests on.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rings.interval import Interval
from repro.rings.moment import (
    FLOAT_OPS,
    INTERVAL_OPS,
    MomentVector,
    binomial,
    float_moments,
    interval_moments,
    raw_to_central,
    variance_interval,
)

floats = st.integers(-8, 8).map(float)
intervals = st.tuples(floats, floats).map(lambda ab: Interval(min(ab), max(ab)))


class TestInterval:
    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Interval(2.0, 1.0)

    def test_addition(self):
        assert Interval(1, 2) + Interval(-1, 3) == Interval(0, 5)

    def test_multiplication_signs(self):
        assert Interval(-1, 2) * Interval(-3, 1) == Interval(-6, 3)
        assert Interval(2, 3) * Interval(-2, -1) == Interval(-6, -2)

    def test_scale_negative_swaps_ends(self):
        assert Interval(1, 2).scale(-2.0) == Interval(-4, -2)

    def test_even_power_around_zero(self):
        assert Interval(-2, 1) ** 2 == Interval(0, 4)
        assert Interval(-2, -1) ** 2 == Interval(1, 4)

    def test_odd_power_monotone(self):
        assert Interval(-2, 1) ** 3 == Interval(-8, 1)

    def test_contains_and_join(self):
        assert Interval(0, 4).contains(Interval(1, 2))
        assert not Interval(0, 4).contains(Interval(1, 5))
        assert Interval(0, 1).join(Interval(3, 4)) == Interval(0, 4)

    def test_meet(self):
        assert Interval(0, 2).meet(Interval(1, 3)) == Interval(1, 2)
        assert Interval(0, 1).meet(Interval(2, 3)) is None

    def test_zero_times_infinity(self):
        top = Interval.top()
        assert (top * Interval.point(0.0)) == Interval.point(0.0)

    @given(intervals, intervals, st.integers(-3, 3).map(float), st.integers(-3, 3).map(float))
    @settings(max_examples=80, deadline=None)
    def test_arithmetic_soundness(self, a, b, pa, pb):
        """Interval ops over-approximate the pointwise ops."""
        xa = min(max(pa, a.lo), a.hi)
        xb = min(max(pb, b.lo), b.hi)
        assert (a + b).contains(xa + xb)
        assert (a * b).contains(xa * xb)
        assert (a - b).contains(xa - xb)
        assert (a**3).contains(xa**3)
        assert (a**2).contains(xa**2)


class TestMomentSemiring:
    def test_identities(self):
        one = MomentVector.one(3, FLOAT_OPS)
        zero = MomentVector.zero(3, FLOAT_OPS)
        v = float_moments(2.0, 3)
        assert v.otimes(one) == v
        assert one.otimes(v) == v
        assert v.oplus(zero) == v

    def test_powers_vector(self):
        assert float_moments(3.0, 3).elems == (1.0, 3.0, 9.0, 27.0)

    def test_second_moment_composition_formula(self):
        # Eq. (3) of the paper: <1,r1,s1> ⊗ <1,r2,s2> = <1, r1+r2, s1+2r1r2+s2>.
        u = MomentVector([1.0, 2.0, 5.0], FLOAT_OPS)
        v = MomentVector([1.0, 3.0, 11.0], FLOAT_OPS)
        assert u.otimes(v).elems == (1.0, 5.0, 5.0 + 2.0 * 2.0 * 3.0 + 11.0)

    def test_termination_probability_composition(self):
        # Eq. (5): <p1,r1,s1> ⊗ <p2,r2,s2> with nontrivial 0th components.
        u = MomentVector([0.5, 2.0, 5.0], FLOAT_OPS)
        v = MomentVector([0.5, 3.0, 11.0], FLOAT_OPS)
        result = u.otimes(v)
        assert result.elems[0] == 0.25
        assert result.elems[1] == 0.5 * 2.0 + 0.5 * 3.0
        assert result.elems[2] == 0.5 * 5.0 + 2 * 2.0 * 3.0 + 0.5 * 11.0

    def test_mismatched_orders_rejected(self):
        with pytest.raises(ValueError):
            MomentVector.one(2, FLOAT_OPS).oplus(MomentVector.one(3, FLOAT_OPS))

    @given(floats, floats, st.integers(1, 6))
    @settings(max_examples=80, deadline=None)
    def test_lemma_3_2_composition(self, u, v, m):
        """Lemma 3.2: <(u+v)^k> = <u^k> ⊗ <v^k>."""
        left = float_moments(u + v, m)
        right = float_moments(u, m).otimes(float_moments(v, m))
        for a, b in zip(left, right):
            assert a == pytest.approx(b, rel=1e-9, abs=1e-9)

    @given(intervals, intervals, st.integers(1, 4))
    @settings(max_examples=60, deadline=None)
    def test_lemma_3_2_interval_soundness(self, a, b, m):
        """Interval instantiation contains the pointwise instantiation."""
        composed = interval_moments(a, m).otimes(interval_moments(b, m))
        point = float_moments(a.lo + b.lo, m)
        for iv, x in zip(composed, point):
            assert iv.contains(x)

    @given(
        st.lists(floats, min_size=3, max_size=3),
        st.lists(floats, min_size=3, max_size=3),
        st.lists(floats, min_size=3, max_size=3),
    )
    @settings(max_examples=60, deadline=None)
    def test_semiring_laws(self, xs, ys, zs):
        u = MomentVector(xs, FLOAT_OPS)
        v = MomentVector(ys, FLOAT_OPS)
        w = MomentVector(zs, FLOAT_OPS)
        assert u.oplus(v) == v.oplus(u)
        assert u.oplus(v).oplus(w) == u.oplus(v.oplus(w))
        # ⊗ distributes over ⊕ (Remark 2.5 uses this for decomposition).
        left = u.otimes(v.oplus(w))
        right = u.otimes(v).oplus(u.otimes(w))
        for a, b in zip(left, right):
            assert a == pytest.approx(b, rel=1e-9, abs=1e-9)

    def test_binomial(self):
        assert [binomial(4, k) for k in range(5)] == [1, 4, 6, 4, 1]


class TestCentralMoments:
    def _raw_intervals(self, samples, degree):
        return [
            Interval.point(float(np.mean(samples**k))) for k in range(degree + 1)
        ]

    def test_variance_from_point_raw_moments(self):
        rng = np.random.default_rng(0)
        samples = rng.exponential(2.0, size=200_000)
        raw = self._raw_intervals(samples, 2)
        var = variance_interval(raw)
        assert var.lo == pytest.approx(float(np.var(samples)), rel=1e-9)
        assert var.hi == pytest.approx(float(np.var(samples)), rel=1e-9)
        assert var.width < 1e-6  # point inputs give (near-)point output

    def test_variance_nonnegative_lower_end(self):
        raw = [Interval.point(1.0), Interval(0.0, 10.0), Interval(0.0, 4.0)]
        var = variance_interval(raw)
        assert var.lo >= 0.0

    def test_fourth_central_moment(self):
        rng = np.random.default_rng(1)
        samples = rng.normal(3.0, 1.5, size=300_000)
        raw = self._raw_intervals(samples, 4)
        c4 = raw_to_central(raw, 4)
        true_c4 = float(np.mean((samples - samples.mean()) ** 4))
        assert c4.lo - 1e-6 <= true_c4 <= c4.hi + 1e-6

    def test_third_central_moment_sign(self):
        rng = np.random.default_rng(2)
        samples = rng.exponential(1.0, size=300_000)  # right-skewed
        raw = self._raw_intervals(samples, 3)
        c3 = raw_to_central(raw, 3)
        true_c3 = float(np.mean((samples - samples.mean()) ** 3))
        assert c3.lo - 1e-6 <= true_c3 <= c3.hi + 1e-6

    def test_wide_raw_intervals_still_bracket(self):
        rng = np.random.default_rng(3)
        samples = rng.uniform(0.0, 4.0, size=100_000)
        raw = [
            Interval(float(np.mean(samples**k)) * 0.9, float(np.mean(samples**k)) * 1.1)
            for k in range(5)
        ]
        raw[0] = Interval.point(1.0)
        for k in (2, 4):
            central = raw_to_central(raw, k)
            assert central.contains(float(np.mean((samples - samples.mean()) ** k)))

    def test_degree_checks(self):
        with pytest.raises(ValueError):
            raw_to_central([Interval.point(1.0)] * 3, 1)
        with pytest.raises(ValueError):
            raw_to_central([Interval.point(1.0)] * 2, 4)
