"""Tests for the tail-assertion policy language (:mod:`repro.policy`).

Four layers, matching the package:

* parser — every assertion form, directives, error positions, and a
  property suite (`describe()` is a parse fixpoint over generated ASTs);
* evaluator — the pass/fail/inconclusive verdict model on a program whose
  analysis is *exact* (geo: E=1, E[C^2]=3, V=2), so every verdict edge is
  deterministic, plus the soundness gating on signed-cost programs;
* reports — the `--json` document is byte-stable (golden fixture);
* surfaces — `repro check` CLI (single + suite + exit codes) and the
  example suite over the whole registry, including the paper's
  timing-attack assertion.
"""

import io
import json
import pathlib

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.pipeline import AnalysisOptions, AnalysisPipeline
from repro.cli import run
from repro.policy.ast import (
    Assertion,
    AttackSuccess,
    CentralMoment,
    Comparison,
    Membership,
    RawMoment,
    Spec,
    Stddev,
    TailProbability,
)
from repro.policy.evaluate import (
    FAIL,
    INCONCLUSIVE,
    PASS,
    evaluate_assertion,
    evaluate_spec,
)
from repro.policy.parser import ParseError, parse_assertion, parse_spec
from repro.policy.report import check_to_dict, suite_to_dict, to_json
from repro.policy.suite import load_suite, options_for, resolve_programs, run_suite
from repro.programs.registry import get
from repro.tail.bounds import costs_nonnegative

DATA = pathlib.Path(__file__).parent / "data"
EXAMPLES = pathlib.Path(__file__).parent.parent / "examples" / "specs"


# ---------------------------------------------------------------------------
# Parser
# ---------------------------------------------------------------------------


class TestParseForms:
    def test_tail_probability(self):
        a = parse_assertion("P(cost >= 500) <= 1e-3")
        assert a.condition == Comparison(TailProbability(">=", 500.0), "<=", 1e-3)

    def test_strict_tails_normalize_to_closed(self):
        assert parse_assertion("P(cost > 10) <= 0.5").condition.quantity == \
            TailProbability(">=", 10.0)
        assert parse_assertion("P(cost < 10) <= 0.5").condition.quantity == \
            TailProbability("<=", 10.0)

    def test_raw_moments_and_synonyms(self):
        assert parse_assertion("E[C] in [69, 71]").condition == \
            Membership(RawMoment(1), 69.0, 71.0)
        assert parse_assertion("E[cost^3] <= 10").condition.quantity == RawMoment(3)
        assert parse_assertion("mean(cost) >= 2").condition.quantity == RawMoment(1)

    def test_central_moment_and_variance(self):
        assert parse_assertion("E[(C - E[C])^2] <= 25").condition.quantity == \
            CentralMoment(2)
        assert parse_assertion("E[(cost - E[cost])^4] <= 9").condition.quantity == \
            CentralMoment(4)
        assert parse_assertion("variance(C) <= 25").condition.quantity == \
            CentralMoment(2)

    def test_stddev(self):
        assert parse_assertion("stddev(cost) <= 10").condition == \
            Comparison(Stddev(), "<=", 10.0)

    def test_attack_success(self):
        a = parse_assertion("attack_success(bits=32, trials=10000) >= 0.219413")
        assert a.condition.quantity == AttackSuccess(32, 10_000, 0)
        b = parse_assertion("attack_success(skip=6) >= 0.8")
        assert b.condition.quantity == AttackSuccess(32, 10_000, 6)

    def test_negative_and_scientific_numbers(self):
        a = parse_assertion("E[cost] in [-100, 1.5e2]")
        assert a.condition == Membership(RawMoment(1), -100.0, 150.0)

    def test_comments_and_whitespace(self):
        a = parse_assertion("  E[cost]   <=   5   # trailing comment")
        assert a.condition == Comparison(RawMoment(1), "<=", 5.0)


class TestParseErrors:
    @pytest.mark.parametrize(
        "bad",
        [
            "E[cost",
            "E[cost] <=",
            "E[cost] in [5, 1]",  # empty interval
            "P(cost >= 10)",  # no outer comparison
            "P(x >= 10) <= 0.5",  # not the cost accumulator
            "E[cost^0] <= 1",  # exponent must be >= 1
            "E[cost^1.5] <= 1",
            "median(cost) <= 1",  # unknown quantity
            "attack_success(power=9) >= 0",  # unknown kwarg
            "E[cost] <= 5 extra",  # trailing input
            "E[cost] ~ 5",  # unknown character
        ],
    )
    def test_rejected(self, bad):
        with pytest.raises(ParseError):
            parse_assertion(bad)

    def test_error_carries_position(self):
        with pytest.raises(ParseError) as err:
            parse_spec("E[cost] <= 1\nE[cost] in [5, ]\n")
        assert err.value.line == 2
        assert err.value.column > 0


class TestDirectives:
    SPEC = """
    # suite header
    @name my suite
    @programs rdwalk, wang-*
    @options moments=4 degree=2
    @at d=10, x=0
    E[cost] <= 25
    """

    def test_directives_parse(self):
        spec = parse_spec(self.SPEC)
        assert spec.name == "my suite"
        assert spec.programs == ("rdwalk", "wang-*")
        assert spec.options == {"moments": 4, "degree": 2}
        assert spec.valuation == {"d": 10.0, "x": 0.0}
        assert len(spec.assertions) == 1

    @pytest.mark.parametrize(
        "bad",
        [
            "@programs\nE[cost] <= 1",
            "@options speed=9\nE[cost] <= 1",
            "@options moments=0\nE[cost] <= 1",
            "@at d=fast\nE[cost] <= 1",
            "@shard 3\nE[cost] <= 1",
            "E[cost] <= 1\nE[cost] in [5, ]",
        ],
    )
    def test_bad_directives_rejected(self, bad):
        with pytest.raises(ParseError):
            parse_spec(bad)

    def test_empty_spec_rejected(self):
        with pytest.raises(ParseError, match="no assertions"):
            parse_spec("# only a comment\n")

    def test_min_moment_degree(self):
        assert parse_spec("E[cost] <= 1").min_moment_degree() == 1
        assert parse_spec("E[cost^4] <= 1").min_moment_degree() == 4
        assert parse_spec("stddev(cost) <= 1").min_moment_degree() == 2
        assert parse_spec("P(cost >= 9) <= 1").min_moment_degree() == 2
        # An explicit pin wins, even below what assertions want.
        assert (
            parse_spec("@options moments=1\nP(cost >= 9) <= 1").min_moment_degree()
            == 1
        )


# -- property suite: describe() is a parse fixpoint --------------------------

_numbers = st.floats(
    min_value=-1e9, max_value=1e9, allow_nan=False, allow_infinity=False
)
_orders = st.integers(min_value=1, max_value=8)
_quantities = st.one_of(
    _orders.map(RawMoment),
    _orders.map(CentralMoment),
    st.just(Stddev()),
    st.tuples(st.sampled_from([">=", "<="]), _numbers).map(
        lambda t: TailProbability(*t)
    ),
    st.tuples(
        st.integers(1, 64), st.integers(1, 10**6), st.integers(0, 8)
    ).map(lambda t: AttackSuccess(*t)),
)
_conditions = st.one_of(
    st.tuples(_quantities, st.sampled_from(["<=", "<", ">=", ">"]), _numbers).map(
        lambda t: Comparison(*t)
    ),
    st.tuples(_quantities, _numbers, _numbers).map(
        lambda t: Membership(t[0], min(t[1], t[2]), max(t[1], t[2]))
    ),
)


class TestParserProperties:
    @given(condition=_conditions)
    @settings(max_examples=200, deadline=None)
    def test_describe_is_a_parse_fixpoint(self, condition):
        text = condition.describe()
        reparsed = parse_assertion(text).condition
        assert reparsed == condition, text
        # And describing again is stable (canonical form).
        assert reparsed.describe() == text

    @given(condition=_conditions)
    @settings(max_examples=50, deadline=None)
    def test_assertion_carries_source_text(self, condition):
        text = condition.describe()
        assertion = parse_assertion("  " + text + "  # note", line=7)
        assert assertion.text == text + "  # note"
        assert assertion.line == 7


# ---------------------------------------------------------------------------
# Evaluator verdicts (geo analysis is exact: E=1, E[C^2]=3, V=2)
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def geo_result():
    bench = get("geo")
    pipeline = AnalysisPipeline(bench.parse())
    return pipeline.analyze(
        AnalysisOptions(
            moment_degree=2, objective_valuations=(dict(bench.valuation),)
        )
    )


def _verdict(text: str, result, **kwargs) -> str:
    return evaluate_assertion(parse_assertion(text), result, **kwargs).verdict


class TestMomentVerdicts:
    @pytest.mark.parametrize(
        ("text", "expected"),
        [
            ("E[cost] <= 1", PASS),
            ("E[cost] <= 0.5", FAIL),
            ("E[cost] >= 1", PASS),
            ("E[cost] >= 1.5", FAIL),
            ("E[cost] < 1", FAIL),
            ("E[cost] > 0.5", PASS),
            ("E[cost] in [1, 1]", PASS),
            ("E[cost] in [2, 3]", FAIL),
            ("E[cost^2] in [3, 3]", PASS),
            ("variance(cost) in [2, 2]", PASS),
            ("E[(cost - E[cost])^2] <= 2", PASS),
            ("stddev(cost) <= 1.5", PASS),  # sqrt(2) ~ 1.414
            ("stddev(cost) <= 1.4", FAIL),
            ("stddev(cost) >= -1", PASS),  # trivially nonnegative
            ("stddev(cost) <= -1", FAIL),
            ("mean(cost) in [0.9, 1.1]", PASS),
        ],
    )
    def test_exact_intervals_decide(self, geo_result, text, expected):
        assert _verdict(text, geo_result) == expected

    def test_order_above_degree_is_inconclusive_with_hint(self, geo_result):
        outcome = evaluate_assertion(parse_assertion("E[cost^4] <= 100"), geo_result)
        assert outcome.verdict == INCONCLUSIVE
        assert "moments=4" in outcome.reason

    def test_tail_upper_bound_passes_and_refutes(self, geo_result):
        # Markov at order 2: 3/100; Cantelli: 2/(2+81) ~ 0.0247.
        assert _verdict("P(cost >= 10) <= 0.05", geo_result) == PASS
        assert _verdict("P(cost >= 10) >= 0.5", geo_result) == FAIL

    def test_tail_lower_assertion_never_passes_from_upper_evidence(
        self, geo_result
    ):
        # The best upper bound is ~0.0247: it cannot *certify* P >= 0.01,
        # only fail to refute it.
        assert _verdict("P(cost >= 10) >= 0.01", geo_result) == INCONCLUSIVE

    def test_trivial_probability_edges(self, geo_result):
        assert _verdict("P(cost >= 10) <= 1", geo_result) == PASS
        assert _verdict("P(cost >= 10) >= 0", geo_result) == PASS

    def test_lower_tail_via_cantelli(self, geo_result):
        # P(cost <= t) for t below the mean: Cantelli lower bound applies.
        outcome = evaluate_assertion(
            parse_assertion("P(cost <= -10) <= 0.02"), geo_result
        )
        assert outcome.verdict == PASS
        assert outcome.evidence["inequality"] == "cantelli"

    def test_evidence_names_inequality_and_order(self, geo_result):
        outcome = evaluate_assertion(
            parse_assertion("P(cost >= 10) <= 0.05"), geo_result
        )
        assert outcome.evidence["kind"] == "tail_bound"
        assert outcome.evidence["inequality"] == "cantelli"
        assert outcome.evidence["order"] == 2
        assert 0.0 < outcome.evidence["bound"] < 0.05
        assert {c["inequality"] for c in outcome.evidence["candidates"]} == {
            "markov",
            "cantelli",
        }

    def test_attack_success_assertion(self, geo_result):
        assert (
            _verdict(
                "attack_success(bits=32, trials=10000) >= 0.219413", geo_result
            )
            == PASS
        )
        assert (
            _verdict("attack_success(bits=32, trials=10000) >= 0.9", geo_result)
            == INCONCLUSIVE
        )


class TestSignedCostGating:
    """The satellite bugfix, end to end: signed-cost programs must not
    crash the tail layer and must not claim unsound Markov evidence."""

    @pytest.fixture(scope="class")
    def signed_result(self):
        bench = get("wang-bitcoin-mining")  # E[C] = -15 at x=10
        pipeline = AnalysisPipeline(bench.parse())
        return pipeline.analyze(
            AnalysisOptions(
                moment_degree=1, objective_valuations=(dict(bench.valuation),)
            )
        )

    def test_signed_program_detected(self):
        assert costs_nonnegative(get("wang-bitcoin-mining").parse()) is False
        assert costs_nonnegative(get("rdwalk").parse()) is True
        # Nonnegativity is derived per program, not per family: these wang
        # programs only ever tick nonnegative costs.
        assert costs_nonnegative(get("wang-queueing").parse()) is True

    def test_no_crash_and_honest_inconclusive(self, signed_result):
        outcome = evaluate_assertion(
            parse_assertion("P(cost >= 100) <= 0.5"),
            signed_result,
            nonnegative_cost=False,
        )
        assert outcome.verdict == INCONCLUSIVE
        assert outcome.evidence["candidates"] == []
        assert "no sound tail bound" in outcome.reason

    def test_moment_assertions_still_decide(self, signed_result):
        outcome = evaluate_assertion(
            parse_assertion("E[cost] in [-16, -14]"),
            signed_result,
            nonnegative_cost=False,
        )
        assert outcome.verdict == PASS


# ---------------------------------------------------------------------------
# Suite loading, resolution, and the golden JSON fixture
# ---------------------------------------------------------------------------


class TestSuiteResolution:
    def test_globs_resolve_in_mention_order(self):
        spec = Spec(programs=("rdwalk", "kura-1-*"), assertions=[object()])
        assert resolve_programs(spec) == ["rdwalk", "kura-1-1", "kura-1-2"]

    def test_unmatched_pattern_rejected(self):
        spec = Spec(programs=("no-such-*",), assertions=[object()])
        with pytest.raises(ValueError, match="matches no registry program"):
            resolve_programs(spec)

    def test_options_respect_bench_metadata_and_spec_pins(self):
        spec = parse_spec("@programs kura-1-1\nE[cost] <= 51")
        options = options_for(spec, get("kura-1-1"))
        # Registered m=4 d=2 cap=2 win over the assertion's minimum of 1.
        assert options.moment_degree == 4
        assert options.template_degree == 2
        assert options.degree_cap == 2
        pinned = parse_spec(
            "@programs kura-1-1\n@options moments=2 degree=1 cap=1\nE[cost] <= 51"
        )
        options = options_for(pinned, get("kura-1-1"))
        assert options.moment_degree == 2
        assert options.template_degree == 1
        assert options.degree_cap == 1

    def test_load_suite_requires_specs_and_programs(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_suite(tmp_path)
        (tmp_path / "a.spec").write_text("E[cost] <= 1\n")
        with pytest.raises(ValueError, match="@programs"):
            load_suite(tmp_path)


@pytest.fixture(scope="module")
def golden_runs():
    return run_suite(load_suite(DATA / "golden_suite")).runs


class TestGoldenReport:
    def test_json_report_is_byte_stable(self, golden_runs):
        expected = (DATA / "golden_check.json").read_bytes()
        assert to_json(suite_to_dict(golden_runs)).encode() == expected

    def test_golden_contains_all_three_verdict_kinds(self, golden_runs):
        verdicts = {
            a["verdict"]
            for run in golden_runs
            for check in run.checks
            for a in check_to_dict(check)["assertions"]
        }
        assert verdicts == {PASS, FAIL, INCONCLUSIVE}

    def test_no_inconclusive_misreported_as_pass(self, golden_runs):
        for run in golden_runs:
            for check in run.checks:
                has_bad = any(
                    o.verdict in (FAIL, INCONCLUSIVE) for o in check.outcomes
                )
                if has_bad:
                    assert check.verdict != PASS


# ---------------------------------------------------------------------------
# CLI surface
# ---------------------------------------------------------------------------


def _run_cli(args) -> tuple[int, str]:
    out = io.StringIO()
    code = run(args, out=out)
    return code, out.getvalue()


class TestCheckCLI:
    def test_registry_program_pass(self, tmp_path):
        spec = tmp_path / "geo.spec"
        spec.write_text("E[cost] in [1, 1]\nP(cost >= 10) <= 0.05\n")
        code, text = _run_cli(["check", "geo", "--spec", str(spec)])
        assert code == 0
        assert "PASS" in text and "cantelli" in text

    def test_source_file_with_at_directive(self, tmp_path):
        bench = get("rdwalk")
        source = tmp_path / "rdwalk.appl"
        source.write_text(bench.source)
        spec = tmp_path / "rdwalk.spec"
        spec.write_text("@at d=10, x=0, t=0\nE[cost] in [19, 25]\n")
        code, text = _run_cli(["check", str(source), "--spec", str(spec)])
        assert code == 0, text

    def test_fail_exits_nonzero(self, tmp_path):
        spec = tmp_path / "bad.spec"
        spec.write_text("E[cost] >= 100\n")
        code, text = _run_cli(["check", "geo", "--spec", str(spec)])
        assert code == 1
        assert "FAIL" in text

    def test_strict_turns_inconclusive_into_failure(self, tmp_path):
        spec = tmp_path / "wide.spec"
        spec.write_text("@options moments=1\nP(cost >= 100) <= 0.5\n")
        code, _ = _run_cli(
            ["check", "wang-bitcoin-mining", "--spec", str(spec)]
        )
        assert code == 0
        code, text = _run_cli(
            ["check", "wang-bitcoin-mining", "--spec", str(spec), "--strict"]
        )
        assert code == 1
        assert "inconclusive" in text

    def test_mixed_sign_program_completes_without_crash(self, tmp_path):
        """Regression: this used to die with `ValueError: raw moment bound
        of a nonnegative variable is negative` inside markov_tail."""
        spec = tmp_path / "signed.spec"
        spec.write_text(
            "@options moments=1\nE[cost] in [-16, -14]\nP(cost >= 100) <= 0.5\n"
        )
        code, text = _run_cli(
            ["check", "wang-bitcoin-mining", "--spec", str(spec), "--json"]
        )
        assert code == 0
        doc = json.loads(text)
        assert doc["verdict"] == INCONCLUSIVE
        verdicts = [a["verdict"] for a in doc["assertions"]]
        assert verdicts == [PASS, INCONCLUSIVE]

    def test_json_output_parses_and_is_deterministic(self, tmp_path):
        spec = tmp_path / "geo.spec"
        spec.write_text("E[cost] in [1, 1]\n")
        code1, text1 = _run_cli(["check", "geo", "--spec", str(spec), "--json"])
        code2, text2 = _run_cli(["check", "geo", "--spec", str(spec), "--json"])
        assert (code1, code2) == (0, 0)
        assert text1 == text2
        assert json.loads(text1)["verdict"] == PASS

    def test_bad_usage(self, tmp_path):
        code, text = _run_cli(["check", "geo"])
        assert code == 2 and "--spec" in text
        spec = tmp_path / "geo.spec"
        spec.write_text("E[cost] <= 1\n")
        code, text = _run_cli(
            ["check", "geo", "--spec", str(spec), "--suite", str(tmp_path)]
        )
        assert code == 2

    def test_suite_mode_exit_codes(self, tmp_path):
        suite = tmp_path / "suite"
        suite.mkdir()
        (suite / "geo.spec").write_text(
            "@programs geo\nE[cost] in [1, 1]\n"
        )
        code, text = _run_cli(["check", "--suite", str(suite)])
        assert code == 0
        assert "suite: 1 pass" in text
        (suite / "fail.spec").write_text("@programs geo\nE[cost] >= 5\n")
        code, text = _run_cli(["check", "--suite", str(suite), "--json"])
        assert code == 1
        assert json.loads(text)["verdict"] == FAIL


# ---------------------------------------------------------------------------
# The shipped example suite: all 42 registry programs + the paper's attack
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def example_suite_result(tmp_path_factory):
    from repro.service.cache import ArtifactCache

    cache = ArtifactCache(tmp_path_factory.mktemp("cache"))
    return run_suite(load_suite(EXAMPLES), jobs=4, cache=cache)


class TestExampleSuite:
    def test_covers_every_registry_program(self, example_suite_result):
        from repro.programs.registry import all_benchmarks

        covered = {
            check.program
            for run in example_suite_result.runs
            for check in run.checks
        }
        assert covered == set(all_benchmarks())

    def test_no_failures_and_no_analysis_errors(self, example_suite_result):
        assert not example_suite_result.failed
        for run in example_suite_result.runs:
            for check in run.checks:
                assert check.error is None, (check.program, check.error)

    def test_inconclusives_are_only_the_signed_cost_demo(
        self, example_suite_result
    ):
        inconclusive = {
            check.program
            for run in example_suite_result.runs
            for check in run.checks
            if check.verdict == INCONCLUSIVE
        }
        assert inconclusive == {
            "wang-bitcoin-mining",
            "wang-bitcoin-pool",
            "wang-random-walk-neg",
            "wang-pollutant",
        }
        # ... and every one of them is the gated tail assertion, reported
        # inconclusive — never pass.
        for run in example_suite_result.runs:
            for check in run.checks:
                if check.program in inconclusive:
                    tail = check.outcomes[-1]
                    assert tail.verdict == INCONCLUSIVE
                    assert "no sound tail bound" in tail.reason

    def test_timing_attack_spec_reproduces_the_paper(self, example_suite_result):
        attack_runs = [
            run
            for run in example_suite_result.runs
            if run.spec.name == "timing attack (Appendix I)"
        ]
        assert len(attack_runs) == 1
        (check,) = attack_runs[0].checks
        assert check.verdict == PASS
        by_text = {o.assertion.text: o for o in check.outcomes}
        attack = by_text["attack_success(bits=32, trials=10000) >= 0.219413"]
        assert attack.evidence["lower_bound"] == pytest.approx(
            0.219413, abs=1e-4
        )
        cantelli = by_text["P(cost >= 392) <= 0.36"]
        assert cantelli.evidence["inequality"] == "cantelli"
