"""The process-parallel block solve layer (:mod:`repro.lp.parallel`).

Four levels of coverage:

* the dispatch plumbing — ``resolve_jobs`` semantics (``REPRO_LP_JOBS``
  default, ``0`` = per-CPU, kill switch wins), the ``parallel_override``
  switch contract, and the batch executor's single-worker-budget rule
  (process-mode workers force ``lp_jobs=1``);
* **byte-identical parity** — the module's core contract: analyses with
  ``lp_jobs=2`` must reproduce the sequential bounds *bit for bit* (not
  to tolerance) on every registry program and on the seed-0 fuzz corpus,
  because workers replay the exact (build, append, solve) trajectory the
  parent would have run, cleanup riders included;
* worker-crash isolation — a poisoned block (simulated native-solver
  crash via ``_TEST_WORKER_HOOK``) fails only its own solve with
  :class:`WorkerCrashError`; the pool respawns the dead worker and the
  next solve on the same pool succeeds;
* the stacked same-shape batch path — ``_stack_plan`` groups >= 3
  same-shape small blocks into one block-diagonal model, values still
  match the direct (unreduced) solve, and stacking is identical on the
  sequential and parallel paths.
"""

import os
import subprocess
import sys

import pytest

from repro import AnalysisOptions, analyze
from repro.lp import parallel
from repro.lp.affine import AffForm
from repro.lp.parallel import (
    WorkerCrashError,
    parallel_enabled,
    parallel_override,
    pool_stats,
    resolve_jobs,
    set_parallel_enabled,
    shutdown_pool,
)
from repro.lp.problem import LPProblem
from repro.programs import registry


def teardown_module(module):
    # Leave no worker processes behind for unrelated test modules.
    shutdown_pool()


def fingerprint(result):
    """Everything the analysis pins, exactly — for byte-identity checks."""
    return (
        tuple(result.objective_values),
        tuple(result.solver_statuses),
        tuple(result.stage_tolerances),
        tuple(
            (iv.lo, iv.hi)
            for iv in result.raw_intervals()
        ),
    )


# ---------------------------------------------------------------------------
# Switches and job resolution
# ---------------------------------------------------------------------------


class TestSwitch:
    def test_override_restores_previous_state(self):
        before = parallel_enabled()
        with parallel_override(not before):
            assert parallel_enabled() is (not before)
        assert parallel_enabled() is before

    def test_set_returns_previous(self):
        before = set_parallel_enabled(False)
        try:
            assert parallel_enabled() is False
        finally:
            set_parallel_enabled(before)

    def test_env_kill_switch_disables_at_import(self):
        code = (
            "from repro.lp.parallel import parallel_enabled, resolve_jobs;"
            "assert not parallel_enabled();"
            "assert resolve_jobs(8) == 1"
        )
        env = dict(os.environ, REPRO_DISABLE_LP_PARALLEL="1")
        env["PYTHONPATH"] = os.pathsep.join(sys.path)
        subprocess.run([sys.executable, "-c", code], check=True, env=env)

    def test_disabled_layer_never_dispatches(self):
        lp = _independent_blocks(2)
        before = (pool_stats() or {}).get("tasks_dispatched", 0)
        with parallel_override(False):
            solution = lp.solve(_total_objective(lp), jobs=4)
        after = (pool_stats() or {}).get("tasks_dispatched", 0)
        assert after == before
        assert solution.status.startswith("optimal")


class TestResolveJobs:
    def test_none_without_env_is_sequential(self, monkeypatch):
        monkeypatch.delenv("REPRO_LP_JOBS", raising=False)
        assert resolve_jobs(None) == 1

    def test_none_follows_env_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_LP_JOBS", "3")
        assert resolve_jobs(None) == 3

    def test_bad_env_value_is_sequential(self, monkeypatch):
        monkeypatch.setenv("REPRO_LP_JOBS", "many")
        assert resolve_jobs(None) == 1

    def test_zero_means_one_per_cpu(self):
        assert resolve_jobs(0) == max(1, os.cpu_count() or 1)

    def test_explicit_value_wins_over_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_LP_JOBS", "7")
        assert resolve_jobs(2) == 2

    def test_floor_is_one(self):
        assert resolve_jobs(-4) == 1

    def test_kill_switch_forces_sequential(self):
        with parallel_override(False):
            assert resolve_jobs(8) == 1
            assert resolve_jobs(0) == 1


class TestExecutorBudget:
    def test_process_worker_forces_sequential_lp(self):
        """The batch executor's worker job runs with ``lp_jobs`` forced to 1
        (one worker budget: ``--workers`` wins over ``--lp-jobs``), so an
        in-process call with ``lp_jobs=4`` must never create an LP pool."""
        from repro.service.executor import _worker_job

        shutdown_pool()
        from repro.lang.printer import canonical_program
        from repro.programs.synthetic import coupon_chain

        name, result, error, _ = _worker_job(
            "probe",
            canonical_program(coupon_chain(2)),
            AnalysisOptions(moment_degree=1, lp_jobs=4),
        )
        assert error is None, error
        assert result is not None
        assert pool_stats() is None  # forced sequential: no pool spawned


# ---------------------------------------------------------------------------
# Hand-built LPs: dispatch, stacking, crash isolation
# ---------------------------------------------------------------------------


def _independent_blocks(n: int, rows_per_block: int = 2) -> LPProblem:
    """``n`` structurally identical independent blocks: two nonnegative
    variables coupled by one equality plus lower-bound inequalities."""
    lp = LPProblem()
    for b in range(n):
        x = lp.fresh_nonneg(f"x{b}")
        y = lp.fresh_nonneg(f"y{b}")
        lp.add_eq(AffForm.of_var(x) + AffForm.of_var(y) - 10.0)
        lp.add_ge(AffForm.of_var(x) - 2.0)
        for extra in range(rows_per_block - 2):
            lp.add_ge(AffForm.of_var(y) - 1.0 - extra)
    return lp


def _total_objective(lp: LPProblem) -> AffForm:
    return AffForm({index: 1.0 for index in sorted(lp.nonneg_indices)})


class TestParallelDispatch:
    def test_parallel_solution_matches_sequential(self):
        sequential = _independent_blocks(4).solve(
            _total_objective(_independent_blocks(4))
        )
        lp = _independent_blocks(4)
        parallel_solution = lp.solve(_total_objective(lp), jobs=2)
        assert parallel_solution.values.tolist() == sequential.values.tolist()
        assert parallel_solution.objective == sequential.objective
        assert pool_stats() is not None
        assert pool_stats()["jobs"] == 2

    def test_repeated_solves_reuse_the_pool(self):
        lp = _independent_blocks(4)
        obj = _total_objective(lp)
        lp.solve(obj, jobs=2)
        first = pool_stats()["tasks_dispatched"]
        lp2 = _independent_blocks(4)
        lp2.solve(_total_objective(lp2), jobs=2)
        assert pool_stats()["tasks_dispatched"] > first
        assert pool_stats()["respawns"] == 0

    def test_infeasible_block_raises_in_parent(self):
        lp = _independent_blocks(3)
        x = lp.fresh_nonneg("bad")
        lp.add_ge(-AffForm.of_var(x) - 1.0)  # -bad >= 1 with bad >= 0
        from repro.lp.problem import LPInfeasibleError

        with pytest.raises(LPInfeasibleError):
            lp.solve(_total_objective(lp), jobs=2)


class TestStacking:
    def test_same_shape_blocks_are_stacked(self):
        lp = _independent_blocks(4)
        solution = lp.solve(_total_objective(lp))
        assert lp._reducer is not None
        assert lp._reducer.stacked_groups == 1
        assert lp._reducer.stacked_sizes == [4]
        # x >= 2, x + y == 10, y >= 1; min x+y is 10 per block.
        assert solution.objective == pytest.approx(40.0)

    def test_stacked_values_match_direct_solve(self):
        stacked = _independent_blocks(5)
        got = stacked.solve(_total_objective(stacked))
        direct = _independent_blocks(5)
        want = direct.solve(_total_objective(direct), reduce=False)
        assert got.objective == pytest.approx(want.objective, abs=1e-7)

    def test_differently_shaped_blocks_do_not_stack(self):
        lp = _independent_blocks(2)  # only two same-shape blocks: below min
        z = lp.fresh_nonneg("z")
        lp.add_ge(AffForm.of_var(z) - 1.0)
        lp.solve(_total_objective(lp))
        assert lp._reducer.stacked_groups == 0

    def test_stacking_is_identical_under_parallel_dispatch(self):
        a = _independent_blocks(4)
        sa = a.solve(_total_objective(a))
        b = _independent_blocks(4)
        sb = b.solve(_total_objective(b), jobs=2)
        assert a._reducer.stacked_sizes == b._reducer.stacked_sizes
        assert sa.values.tolist() == sb.values.tolist()


class TestCrashIsolation:
    #: Marker smuggled through ``BlockTask.bound``: the poisoned hook kills
    #: the worker only for solves run under this (otherwise unused) box.
    POISON_BOUND = 123456.0

    @pytest.fixture
    def poisoned_pool(self):
        def hook(task):
            if task.bound == self.POISON_BOUND:
                os._exit(13)

        shutdown_pool()  # fresh fork must inherit the hook
        parallel._TEST_WORKER_HOOK = hook
        try:
            yield
        finally:
            parallel._TEST_WORKER_HOOK = None
            shutdown_pool()  # drop the poisoned workers

    def test_crash_raises_and_pool_survives(self, poisoned_pool):
        lp = _independent_blocks(4)
        obj = _total_objective(lp)
        # Healthy solve first: workers are up and caching models.
        lp.solve(obj, jobs=2)
        with pytest.raises(WorkerCrashError):
            lp2 = _independent_blocks(4)
            lp2.solve(_total_objective(lp2), jobs=2, bound=self.POISON_BOUND)
        stats = pool_stats()
        assert stats["crashes"] >= 1
        assert stats["respawns"] >= 1
        # The respawned worker serves the next solve.
        lp3 = _independent_blocks(4)
        solution = lp3.solve(_total_objective(lp3), jobs=2)
        assert solution.objective == pytest.approx(40.0)


# ---------------------------------------------------------------------------
# Byte-identical parity on real analyses
# ---------------------------------------------------------------------------


class TestRegistryParity:
    """``lp_jobs=2`` must reproduce the sequential analysis *bit for bit*.

    Approximate agreement is not enough: the certificate LPs have massively
    degenerate optimal faces, and any divergence in the warm-start
    trajectory (a block solved cold here, warm there) lands on a different
    vertex.  Byte-identity is what proves the workers replay the parent's
    exact solve sequence — cleanup riders and rollback side effects
    included."""

    @pytest.mark.parametrize("name", sorted(registry.all_benchmarks()))
    def test_bounds_identical_with_and_without_workers(self, name):
        bench = registry.get(name)
        common = dict(
            moment_degree=2,
            template_degree=bench.template_degree,
            degree_cap=bench.degree_cap,
            objective_valuations=(bench.valuation,) + tuple(bench.extra_valuations),
        )
        sequential = analyze(
            registry.parsed(name), AnalysisOptions(lp_jobs=1, **common)
        )
        parallel_result = analyze(
            registry.parsed(name), AnalysisOptions(lp_jobs=2, **common)
        )
        assert fingerprint(parallel_result) == fingerprint(sequential)


class TestFuzzCorpusParity:
    """Generated programs (seed 0 corpus) through both dispatch paths."""

    CORPUS_SIZE = 50

    @pytest.fixture(scope="class")
    def corpus(self):
        from repro.programs.fuzz import generate_corpus

        return generate_corpus(self.CORPUS_SIZE, seed=0)

    def test_fuzz_bounds_identical_with_and_without_workers(self, corpus):
        checked = 0
        for case in corpus:
            common = dict(
                moment_degree=case.moment_degree,
                objective_valuations=(case.valuation,),
            )
            try:
                sequential = analyze(
                    case.parse(), AnalysisOptions(lp_jobs=1, **common)
                )
            except Exception:
                continue  # infeasible for the analyzer: parity is vacuous
            parallel_result = analyze(
                case.parse(), AnalysisOptions(lp_jobs=2, **common)
            )
            assert fingerprint(parallel_result) == fingerprint(sequential), (
                case.name,
            )
            checked += 1
        assert checked >= 25  # most of the corpus must actually be comparable

    def test_parallel_stats_reach_the_reduction_stats(self, corpus):
        from repro import AnalysisPipeline

        case = next(c for c in corpus if _analyzes(c))
        options = AnalysisOptions(
            moment_degree=case.moment_degree,
            objective_valuations=(case.valuation,),
            lp_jobs=2,
        )
        pipe = AnalysisPipeline(case.parse())
        pipe.analyze(options)
        stats = pipe.constraint_system(options).lp.reduction_stats()
        if stats is None:
            pytest.skip("reducer fell back to the direct backend")
        par = stats.get("parallel")
        assert par is not None
        assert par["jobs"] == 2
        assert par["tasks"] >= 1
        assert sum(par["worker_blocks"].values()) == par["tasks"]


def _analyzes(case) -> bool:
    try:
        analyze(
            case.parse(),
            AnalysisOptions(
                moment_degree=case.moment_degree,
                objective_valuations=(case.valuation,),
            ),
        )
        return True
    except Exception:
        return False
