"""Tests for the forward context analysis (abstract interpretation)."""

from repro.lang.ast import Call, IfBranch, Sample, Seq, While
from repro.lang.parser import parse_condition, parse_program
from repro.lang.varinfo import analyze_program as static_info
from repro.logic.absint import compute_contexts
from repro.logic.linear import cond_to_ineqs


def contexts_for(source):
    program = parse_program(source)
    info = static_info(program)
    return program, compute_contexts(program, info)


def find_nodes(stmt, kind):
    found = []

    def walk(node):
        if isinstance(node, kind):
            found.append(node)
        if isinstance(node, Seq):
            for s in node.stmts:
                walk(s)
        elif isinstance(node, IfBranch):
            walk(node.then_branch)
            walk(node.else_branch)
        elif isinstance(node, While):
            walk(node.body)

    walk(stmt)
    return found


def entails(ctx, text):
    return ctx.entails_all(cond_to_ineqs(parse_condition(text)))


class TestLoopInvariants:
    def test_decreasing_counter(self):
        program, cmap = contexts_for(
            """
            func main() pre(x >= 0) begin
              while x > 0 inv(x >= 0) do
                x := x - 1;
                tick(1)
              od;
              skip
            end
            """
        )
        (loop,) = find_nodes(program.main_fun.body, While)
        head = cmap.head_of(loop)
        assert entails(head, "x >= 0")
        # Exit: integer x with not(x > 0) pins x = 0.
        exit_ctx = cmap.post_of(loop)
        assert entails(exit_ctx, "x <= 0")
        assert entails(exit_ctx, "x >= 0")

    def test_unpreserved_candidate_dropped(self):
        program, cmap = contexts_for(
            """
            func main() pre(x <= 5) begin
              while x < 100 do
                x := x + 2;
                tick(1)
              od
            end
            """
        )
        (loop,) = find_nodes(program.main_fun.body, While)
        head = cmap.head_of(loop)
        assert not entails(head, "x <= 5")

    def test_sampling_support_in_body(self):
        program, cmap = contexts_for(
            """
            func main() pre(x < d) begin
              t ~ uniform(-1, 2);
              x := x + t
            end
            """
        )
        (sample,) = find_nodes(program.main_fun.body, Sample)
        after = cmap.post_of(sample)
        assert entails(after, "t <= 2")
        assert entails(after, "t >= -1")

    def test_rdwalk_recursive_call_precondition(self):
        """The Fig. 7 chain: x<d, t in [-1,2], x:=x+t entails x < d + 2."""
        from repro.programs import registry

        program = registry.get("rdwalk").parse()
        info = static_info(program)
        cmap = compute_contexts(program, info)
        (call,) = find_nodes(program.fun("rdwalk").body, Call)
        pre_ctx = cmap.pre_of(call)
        assert entails(pre_ctx, "x <= d + 2")
        assert not cmap.warnings


class TestCalls:
    def test_havoc_after_call(self):
        program, cmap = contexts_for(
            """
            func clobber() begin
              x := 100
            end
            func main() pre(x <= 1, y <= 1) begin
              call clobber;
              tick(1)
            end
            """
        )
        (call,) = find_nodes(program.main_fun.body, Call)
        after = cmap.post_of(call)
        assert not entails(after, "x <= 1")
        assert entails(after, "y <= 1")

    def test_exit_context_flows_to_caller(self):
        program, cmap = contexts_for(
            """
            func setx() begin
              x := 3
            end
            func main() begin
              call setx;
              tick(1)
            end
            """
        )
        (call,) = find_nodes(program.main_fun.body, Call)
        after = cmap.post_of(call)
        assert entails(after, "x == 3")

    def test_unmet_precondition_reported(self):
        _, cmap = contexts_for(
            """
            func f() pre(x >= 10) begin
              tick(1)
            end
            func main() pre(x <= 0) begin
              call f
            end
            """
        )
        assert any("pre-condition" in w for w in cmap.warnings)


class TestBranching:
    def test_join_of_branches(self):
        program, cmap = contexts_for(
            """
            func main() pre(x >= 0, x <= 10) begin
              if x <= 5 then
                y := 1
              else
                y := 2
              fi;
              tick(1)
            end
            """
        )
        (branch,) = find_nodes(program.main_fun.body, IfBranch)
        after = cmap.post_of(branch)
        assert entails(after, "x <= 10")
        assert not entails(after, "y == 1")

    def test_unreachable_branch_is_bottom(self):
        program, cmap = contexts_for(
            """
            func main() pre(x >= 10) begin
              if x < 0 then
                y := 1
              fi;
              tick(1)
            end
            """
        )
        (branch,) = find_nodes(program.main_fun.body, IfBranch)
        then_ctx = cmap.pre_of(branch.then_branch)
        assert not then_ctx.is_feasible()
