"""End-to-end service smoke: a real ``repro serve`` process under fire.

Two tiers:

* ``TestInProcessSmoke`` runs in tier-1: a small mixed workload through a
  real HTTP server + worker fleet inside this process, fast enough for the
  default test run.
* ``TestServiceSmoke`` (``@pytest.mark.smoke``, gated behind
  ``REPRO_SERVICE_SMOKE=1``) is the CI ``service-smoke`` drill: boot
  ``python -m repro serve`` as a subprocess on a temp DB, enqueue a
  200-job mix over HTTP, SIGKILL a worker mid-job and assert the lease is
  retried, SIGTERM the server mid-queue and restart it asserting queued
  jobs resume, and scrape ``/metrics`` asserting depth and latency keys.
  Zero jobs may be lost.
"""

import json
import os
import signal
import subprocess
import sys
import threading
import time
import urllib.error
import urllib.request
from pathlib import Path

import pytest

from repro.service.cache import ArtifactCache
from repro.service.jobs import WorkerPool
from repro.service.server import make_server
from repro.service.store import JobStore

SIMPLE = """
func main() pre(d > 0) begin
  x := 0;
  while x < d inv(x < d + 1) do
    tick(1);
    x := x + 1
  od
end
"""

#: Policy spec matching SIMPLE at d=4 (the analyzer brackets E[C] in
#: [d, d+1] for this loop shape), exercised over ``POST /check``.
SPEC = """
@at d=4, x=0
@options moments=1
E[cost] in [3.9, 5.1]
"""

SMOKE = os.environ.get("REPRO_SERVICE_SMOKE") == "1"
CHAOS = os.environ.get("REPRO_SERVICE_CHAOS") == "1"

#: The chaos drill's armed faults: every disk-cache write is corrupted
#: (discarded and recomputed on the next read), a quarter of cache reads
#: fail outright, and every LP worker IPC round-trip raises.  All three
#: are recoverable by design — the drill asserts the service keeps
#: answering correctly *and* that the faults actually fired.
CHAOS_FAULTS = (
    "cache.read:raise:0.25:7,cache.write:corrupt:1:8,lp.worker_ipc:raise:1:9"
)


def _post(port, path, body, timeout=30.0):
    request = urllib.request.Request(
        f"http://127.0.0.1:{port}{path}", data=json.dumps(body).encode()
    )
    with urllib.request.urlopen(request, timeout=timeout) as response:
        return json.loads(response.read())


def _get(port, path, timeout=30.0):
    with urllib.request.urlopen(
        f"http://127.0.0.1:{port}{path}", timeout=timeout
    ) as response:
        return response.status, response.read()


# ---------------------------------------------------------------------------
# Tier-1: in-process smoke
# ---------------------------------------------------------------------------


class TestInProcessSmoke:
    def test_mixed_workload_end_to_end(self, tmp_path):
        db = tmp_path / "jobs.sqlite3"
        store = JobStore(db, visibility=5.0, retry_base=0.02, retry_cap=0.1)
        pool = WorkerPool(
            db, 2, str(tmp_path / "cache"), visibility=5.0, poll=0.05
        ).start()
        server = make_server(
            port=0, cache=ArtifactCache(tmp_path / "cache"), store=store,
            pool=pool,
        )
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        port = server.server_address[1]
        try:
            ids = []
            for i in range(12):
                if i % 6 == 0:
                    body = {
                        "program": SIMPLE,
                        "options": {"moments": 1, "at": {"d": 4.0}},
                        "dedupe": True,
                    }
                elif i % 6 == 1:
                    body = {"kind": "fail", "message": "boom",
                            "retryable": False}
                else:
                    body = {"kind": "sleep", "seconds": 0.01}
                ids.append(_post(port, "/jobs", body)["id"])

            deadline = time.time() + 120.0
            while time.time() < deadline:
                if all(
                    job is not None and job.terminal
                    for job in store.iter_jobs(set(ids))
                ):
                    break
                time.sleep(0.05)
            jobs = {job.id: job for job in store.iter_jobs(set(ids))}
            # Zero lost jobs: every id answers, every job is terminal.
            assert all(jobs[i].terminal for i in ids)
            assert {jobs[i].state for i in ids} == {"done", "dead"}
            assert all(jobs[i].state == "dead" for i in ids[1::6])
            # The two analyze enqueues deduped onto one job.
            assert ids[0] == ids[6]

            # Inline policy check rides the same warm-pipeline path.
            verdict = _post(port, "/check", {"program": SIMPLE, "spec": SPEC})
            assert verdict["ok"] and verdict["verdict"] == "pass"

            _, raw = _get(port, "/metrics")
            snap = json.loads(raw)
            assert snap["queue"]["depth"] == 0
            assert snap["latency"]["count"] >= 1
            assert snap["latency"]["p99_seconds"] >= snap["latency"]["p50_seconds"]
        finally:
            server.shutdown()
            server.server_close()
            pool.stop(graceful=True, timeout=20.0)


# ---------------------------------------------------------------------------
# CI drill: subprocess smoke (REPRO_SERVICE_SMOKE=1)
# ---------------------------------------------------------------------------


_BOOTS = iter(range(1, 1000))


def _boot_serve(
    db, cache_dir, workers=4, visibility=2.0, job_timeout=None, env_extra=None
):
    """Start ``repro serve`` on an ephemeral port, return (proc, port).

    With ``REPRO_SERVICE_LOG_DIR`` set (the CI smoke leg does), all server
    output is mirrored to ``serve-<n>.log`` there so failures upload the
    full transcript as an artifact.  ``env_extra`` entries (the chaos
    drill's ``REPRO_FAULTS``) are injected into the subprocess
    environment; ``job_timeout`` forwards ``--job-timeout``.
    """
    env = dict(os.environ)
    env["PYTHONPATH"] = str(Path(__file__).resolve().parent.parent / "src")
    env["PYTHONUNBUFFERED"] = "1"
    if env_extra:
        env.update(env_extra)
    log_dir = os.environ.get("REPRO_SERVICE_LOG_DIR")
    log = None
    if log_dir:
        Path(log_dir).mkdir(parents=True, exist_ok=True)
        log = open(
            Path(log_dir) / f"serve-{next(_BOOTS)}.log", "w", buffering=1
        )
    argv = [
        sys.executable, "-m", "repro", "serve",
        "--port", "0",
        "--db", str(db),
        "--workers", str(workers),
        "--visibility", str(visibility),
        "--cache-dir", str(cache_dir),
    ]
    if job_timeout is not None:
        argv += ["--job-timeout", str(job_timeout)]
    proc = subprocess.Popen(
        argv,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=env,
    )
    port = None
    deadline = time.time() + 60.0
    while time.time() < deadline:
        line = proc.stdout.readline()
        if not line:
            break
        if log is not None:
            log.write(line)
        if "listening on http://" in line:
            port = int(line.split("listening on http://")[1]
                       .split()[0].rsplit(":", 1)[1])
            break
    if port is None:
        proc.kill()
        raise RuntimeError("repro serve did not announce a port")

    # Drain remaining output in the background so the pipe never fills.
    sink = []

    def _drain():
        for line in proc.stdout:
            sink.append(line)
            if log is not None:
                log.write(line)
        if log is not None:
            log.close()

    threading.Thread(target=_drain, daemon=True).start()
    return proc, port, sink


def _worker_pids(server_pid):
    """Direct children of the serve process (the worker fleet)."""
    out = subprocess.run(
        ["ps", "-o", "pid=", "--ppid", str(server_pid)],
        capture_output=True, text=True,
    ).stdout
    return [int(token) for token in out.split()]


@pytest.mark.smoke
@pytest.mark.skipif(not SMOKE, reason="set REPRO_SERVICE_SMOKE=1 to run")
class TestServiceSmoke:
    def test_two_hundred_job_drill(self, tmp_path):
        db = tmp_path / "jobs.sqlite3"
        cache_dir = tmp_path / "cache"
        proc, port, _sink = _boot_serve(db, cache_dir)
        ids, analyze_ids, fail_ids = [], [], []
        try:
            # 1. Enqueue a 200-job mix over HTTP: mostly short sleeps with
            #    real analyses and bounded-retry failures sprinkled in.
            for i in range(200):
                if i % 40 == 0:
                    body = {
                        "program": SIMPLE,
                        "options": {"moments": 1, "at": {"d": 4.0 + i}},
                    }
                elif i % 40 == 1:
                    body = {"kind": "fail", "message": "flaky",
                            "retryable": True, "max_attempts": 2}
                else:
                    body = {"kind": "sleep", "seconds": 0.02}
                response = _post(port, "/jobs", body)
                assert response["ok"]
                ids.append(response["id"])
                if i % 40 == 0:
                    analyze_ids.append(response["id"])
                elif i % 40 == 1:
                    fail_ids.append(response["id"])
            assert len(ids) == len(set(ids)) == 200

            # 1b. POST /check round trip: an inline policy check against
            #     the live server, while the queue is under load.
            verdict = _post(port, "/check",
                            {"program": SIMPLE, "spec": SPEC})
            assert verdict["ok"] and verdict["verdict"] == "pass"
            counts = verdict["check"]["counts"]
            assert counts["pass"] == 1 and counts["fail"] == 0

            # 2. SIGKILL one worker mid-drill: its lease must be retried,
            #    not lost, and the pool must respawn a replacement.
            time.sleep(0.5)
            victims = _worker_pids(proc.pid)
            assert victims, "no worker processes found under repro serve"
            os.kill(victims[0], signal.SIGKILL)

            # 3. SIGTERM the server mid-queue: graceful drain of in-flight
            #    jobs, everything else stays queued in the DB.
            time.sleep(1.0)
            proc.send_signal(signal.SIGTERM)
            assert proc.wait(timeout=120.0) == 0
        except BaseException:
            proc.kill()
            raise

        store = JobStore(db)
        remaining = sum(
            1 for job in store.iter_jobs(ids)
            if job is not None and not job.terminal
        )
        assert remaining > 0, "drill finished before the restart could matter"
        store.close()

        # 4. Restart: queued jobs must resume without re-enqueueing.
        proc, port, _sink = _boot_serve(db, cache_dir)
        try:
            deadline = time.time() + 420.0
            store = JobStore(db)
            while time.time() < deadline:
                jobs = list(store.iter_jobs(ids))
                if all(job is not None and job.terminal for job in jobs):
                    break
                time.sleep(0.25)
            jobs = {job.id: job for job in store.iter_jobs(ids) if job}

            # 5. Zero lost jobs: all 200 accounted for and terminal.
            assert len(jobs) == 200
            assert all(job.terminal for job in jobs.values())
            for job_id in analyze_ids:
                assert jobs[job_id].state == "done"
                assert "E[C^1]" in jobs[job_id].result["summary"]
            for job_id in fail_ids:
                assert jobs[job_id].state == "dead"
                assert jobs[job_id].attempts == 2
            # The SIGKILLed worker's lease was re-delivered: at least one
            # non-"fail" job ran more than once.
            assert any(
                jobs[i].retries >= 1 for i in ids
                if i not in fail_ids
            ), "no lease retry observed after SIGKILL"

            # 6. Scrape /metrics: depth gauge and latency quantiles.
            _, raw = _get(port, "/metrics")
            snap = json.loads(raw)
            assert snap["queue"]["depth"] == 0
            assert snap["queue"]["states"].get("done", 0) >= 195
            assert snap["latency"]["count"] >= 1
            for key in ("p50_seconds", "p99_seconds", "mean_seconds"):
                assert key in snap["latency"]
            _, raw = _get(port, "/metrics?format=prometheus")
            text = raw.decode()
            assert "repro_queue_depth 0" in text
            assert 'repro_analysis_latency_seconds{quantile="0.99"}' in text
            store.close()

            proc.send_signal(signal.SIGTERM)
            assert proc.wait(timeout=120.0) == 0
        except BaseException:
            proc.kill()
            raise


# ---------------------------------------------------------------------------
# CI drill: chaos leg (REPRO_SERVICE_CHAOS=1)
# ---------------------------------------------------------------------------


@pytest.mark.smoke
@pytest.mark.skipif(not CHAOS, reason="set REPRO_SERVICE_CHAOS=1 to run")
class TestServiceChaos:
    """Armed faults + a hung job against a real ``repro serve`` process.

    The drill demonstrates the full degradation ladder the resilience
    layer promises:

    * cache I/O faults (corrupt writes, failing reads) degrade the cache
      to recompute — analyses still answer correctly;
    * an injected LP worker IPC fault surfaces as a typed parent-side
      error, not a wedged pool (exercised in-process, where parallel LP
      actually dispatches — queue workers deliberately solve
      sequentially);
    * an analyze job with a tiny deadline times out, is re-delivered once
      at *half* the deadline, times out again, and dead-letters;
    * a hung job whose payload ``timeout`` undercuts its runtime loses
      its lease (the heartbeat stops extending), is reclaimed, and
      dead-letters after its attempt budget — no SIGKILL involved;
    * ``/metrics`` reports it all: timeout counters, armed faults, and
      fired-fault counts.
    """

    def test_worker_ipc_fault_is_a_typed_error(self):
        """In-process leg: an armed ``lp.worker_ipc`` fault fails the
        solve with a typed error and leaves the pool reusable."""
        from repro import AnalysisOptions, analyze, faults
        from repro.lp import parallel as par
        from repro.lp.core import LPError
        from repro.programs import registry

        program = registry.all_benchmarks()["absynth-ber"].parse()
        par.shutdown_pool()  # workers must fork *after* arming
        faults.configure("lp.worker_ipc:raise:1:9")
        try:
            with pytest.raises(LPError, match="FaultInjected"):
                analyze(
                    program, AnalysisOptions(moment_degree=2, lp_jobs=2)
                )
            assert faults.counters() == {}  # fired in workers, not here
        finally:
            faults.configure("")
            par.shutdown_pool()
        # Disarmed and respawned, the same call succeeds.
        result = analyze(program, AnalysisOptions(moment_degree=2, lp_jobs=2))
        assert result.raw.degree == 2

    def test_chaos_drill(self, tmp_path):
        db = tmp_path / "jobs.sqlite3"
        cache_dir = tmp_path / "cache"
        proc, port, _sink = _boot_serve(
            db, cache_dir, workers=2, visibility=1.0, job_timeout=1.0,
            env_extra={"REPRO_FAULTS": CHAOS_FAULTS},
        )
        try:
            # 1. Real analyses through the faulted cache: corrupt disk
            #    writes and failing reads must degrade to recompute, never
            #    to wrong answers.
            analyze_ids = []
            for i in range(6):
                response = _post(port, "/jobs", {
                    "program": SIMPLE,
                    "options": {"moments": 1, "at": {"d": 4.0 + i}},
                })
                assert response["ok"]
                analyze_ids.append(response["id"])

            # 2. A deadline-doomed analyze job: the first delivery times
            #    out, the retry runs at half the deadline and times out
            #    again, and the job dead-letters.
            response = _post(port, "/jobs", {
                "program": SIMPLE,
                "options": {"moments": 4, "deadline": 0.001},
            })
            doomed_id = response["id"]

            store = JobStore(db)
            deadline = time.time() + 180.0
            watched = analyze_ids + [doomed_id]
            while time.time() < deadline:
                jobs = list(store.iter_jobs(watched))
                if all(job is not None and job.terminal for job in jobs):
                    break
                time.sleep(0.1)
            jobs = {job.id: job for job in store.iter_jobs(watched) if job}
            for job_id in analyze_ids:
                assert jobs[job_id].state == "done", jobs[job_id].error
                assert "E[C^1]" in jobs[job_id].result["summary"]
            doomed = jobs[doomed_id]
            assert doomed.state == "dead"
            assert doomed.attempts == 2  # exactly one reduced-deadline retry
            assert doomed.retries >= 1
            assert "analysis deadline exceeded" in doomed.error

            # 3. The hung job: 8s of runtime under a 1s cap.  The
            #    heartbeat stops at the cap, the lease expires, the store
            #    reclaims and re-delivers; past the attempt budget (plus
            #    the one crash-grace delivery) the recovery path presumes
            #    the job hung and dead-letters it.  The workers stay stuck
            #    for a while — the *job* must not.
            response = _post(port, "/jobs", {
                "kind": "sleep", "seconds": 8.0, "timeout": 1.0,
                "max_attempts": 2,
            })
            hung_id = response["id"]
            deadline = time.time() + 90.0
            hung = None
            while time.time() < deadline:
                hung = store.get(hung_id)
                if hung is not None and hung.terminal:
                    break
                time.sleep(0.25)
            assert hung is not None and hung.state == "dead"
            assert hung.attempts == 3  # budget of 2, one grace delivery
            assert hung.retries >= 2  # every reclaim was a lease expiry
            assert "presumed hung" in hung.error

            # 4. Inline /check in the serve process: correct through the
            #    corrupted cache, and it fires server-side fault counters.
            verdict = _post(port, "/check", {"program": SIMPLE, "spec": SPEC})
            assert verdict["ok"] and verdict["verdict"] == "pass"

            # 5. /metrics owns the story: armed faults, fired counters,
            #    timeout and dead-letter totals.
            _, raw = _get(port, "/metrics")
            snap = json.loads(raw)
            res = snap["resilience"]
            assert res["faults_armed"] is True
            assert res["timeouts"] >= 1
            assert res["timeout_dead"] >= 1
            assert res["faults"].get("cache.write:corrupt", 0) >= 1
            _, raw = _get(port, "/metrics?format=prometheus")
            text = raw.decode()
            assert "repro_faults_armed 1" in text
            assert "repro_analysis_timeouts_total" in text
            assert "repro_analysis_timeout_dead_total" in text
            assert 'repro_faults_injected_total{point="cache.write"' in text
            store.close()

            # 6. Graceful shutdown: the stuck workers' sleeps run out and
            #    the fleet drains clean.
            proc.send_signal(signal.SIGTERM)
            assert proc.wait(timeout=120.0) == 0
        except BaseException:
            proc.kill()
            raise
