"""End-to-end service smoke: a real ``repro serve`` process under fire.

Two tiers:

* ``TestInProcessSmoke`` runs in tier-1: a small mixed workload through a
  real HTTP server + worker fleet inside this process, fast enough for the
  default test run.
* ``TestServiceSmoke`` (``@pytest.mark.smoke``, gated behind
  ``REPRO_SERVICE_SMOKE=1``) is the CI ``service-smoke`` drill: boot
  ``python -m repro serve`` as a subprocess on a temp DB, enqueue a
  200-job mix over HTTP, SIGKILL a worker mid-job and assert the lease is
  retried, SIGTERM the server mid-queue and restart it asserting queued
  jobs resume, and scrape ``/metrics`` asserting depth and latency keys.
  Zero jobs may be lost.
"""

import json
import os
import signal
import subprocess
import sys
import threading
import time
import urllib.error
import urllib.request
from pathlib import Path

import pytest

from repro.service.cache import ArtifactCache
from repro.service.jobs import WorkerPool
from repro.service.server import make_server
from repro.service.store import JobStore

SIMPLE = """
func main() pre(d > 0) begin
  x := 0;
  while x < d inv(x < d + 1) do
    tick(1);
    x := x + 1
  od
end
"""

#: Policy spec matching SIMPLE at d=4 (the analyzer brackets E[C] in
#: [d, d+1] for this loop shape), exercised over ``POST /check``.
SPEC = """
@at d=4, x=0
@options moments=1
E[cost] in [3.9, 5.1]
"""

SMOKE = os.environ.get("REPRO_SERVICE_SMOKE") == "1"


def _post(port, path, body, timeout=30.0):
    request = urllib.request.Request(
        f"http://127.0.0.1:{port}{path}", data=json.dumps(body).encode()
    )
    with urllib.request.urlopen(request, timeout=timeout) as response:
        return json.loads(response.read())


def _get(port, path, timeout=30.0):
    with urllib.request.urlopen(
        f"http://127.0.0.1:{port}{path}", timeout=timeout
    ) as response:
        return response.status, response.read()


# ---------------------------------------------------------------------------
# Tier-1: in-process smoke
# ---------------------------------------------------------------------------


class TestInProcessSmoke:
    def test_mixed_workload_end_to_end(self, tmp_path):
        db = tmp_path / "jobs.sqlite3"
        store = JobStore(db, visibility=5.0, retry_base=0.02, retry_cap=0.1)
        pool = WorkerPool(
            db, 2, str(tmp_path / "cache"), visibility=5.0, poll=0.05
        ).start()
        server = make_server(
            port=0, cache=ArtifactCache(tmp_path / "cache"), store=store,
            pool=pool,
        )
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        port = server.server_address[1]
        try:
            ids = []
            for i in range(12):
                if i % 6 == 0:
                    body = {
                        "program": SIMPLE,
                        "options": {"moments": 1, "at": {"d": 4.0}},
                        "dedupe": True,
                    }
                elif i % 6 == 1:
                    body = {"kind": "fail", "message": "boom",
                            "retryable": False}
                else:
                    body = {"kind": "sleep", "seconds": 0.01}
                ids.append(_post(port, "/jobs", body)["id"])

            deadline = time.time() + 120.0
            while time.time() < deadline:
                if all(
                    job is not None and job.terminal
                    for job in store.iter_jobs(set(ids))
                ):
                    break
                time.sleep(0.05)
            jobs = {job.id: job for job in store.iter_jobs(set(ids))}
            # Zero lost jobs: every id answers, every job is terminal.
            assert all(jobs[i].terminal for i in ids)
            assert {jobs[i].state for i in ids} == {"done", "dead"}
            assert all(jobs[i].state == "dead" for i in ids[1::6])
            # The two analyze enqueues deduped onto one job.
            assert ids[0] == ids[6]

            # Inline policy check rides the same warm-pipeline path.
            verdict = _post(port, "/check", {"program": SIMPLE, "spec": SPEC})
            assert verdict["ok"] and verdict["verdict"] == "pass"

            _, raw = _get(port, "/metrics")
            snap = json.loads(raw)
            assert snap["queue"]["depth"] == 0
            assert snap["latency"]["count"] >= 1
            assert snap["latency"]["p99_seconds"] >= snap["latency"]["p50_seconds"]
        finally:
            server.shutdown()
            server.server_close()
            pool.stop(graceful=True, timeout=20.0)


# ---------------------------------------------------------------------------
# CI drill: subprocess smoke (REPRO_SERVICE_SMOKE=1)
# ---------------------------------------------------------------------------


_BOOTS = iter(range(1, 1000))


def _boot_serve(db, cache_dir, workers=4, visibility=2.0):
    """Start ``repro serve`` on an ephemeral port, return (proc, port).

    With ``REPRO_SERVICE_LOG_DIR`` set (the CI smoke leg does), all server
    output is mirrored to ``serve-<n>.log`` there so failures upload the
    full transcript as an artifact.
    """
    env = dict(os.environ)
    env["PYTHONPATH"] = str(Path(__file__).resolve().parent.parent / "src")
    env["PYTHONUNBUFFERED"] = "1"
    log_dir = os.environ.get("REPRO_SERVICE_LOG_DIR")
    log = None
    if log_dir:
        Path(log_dir).mkdir(parents=True, exist_ok=True)
        log = open(
            Path(log_dir) / f"serve-{next(_BOOTS)}.log", "w", buffering=1
        )
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            "--port", "0",
            "--db", str(db),
            "--workers", str(workers),
            "--visibility", str(visibility),
            "--cache-dir", str(cache_dir),
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=env,
    )
    port = None
    deadline = time.time() + 60.0
    while time.time() < deadline:
        line = proc.stdout.readline()
        if not line:
            break
        if log is not None:
            log.write(line)
        if "listening on http://" in line:
            port = int(line.split("listening on http://")[1]
                       .split()[0].rsplit(":", 1)[1])
            break
    if port is None:
        proc.kill()
        raise RuntimeError("repro serve did not announce a port")

    # Drain remaining output in the background so the pipe never fills.
    sink = []

    def _drain():
        for line in proc.stdout:
            sink.append(line)
            if log is not None:
                log.write(line)
        if log is not None:
            log.close()

    threading.Thread(target=_drain, daemon=True).start()
    return proc, port, sink


def _worker_pids(server_pid):
    """Direct children of the serve process (the worker fleet)."""
    out = subprocess.run(
        ["ps", "-o", "pid=", "--ppid", str(server_pid)],
        capture_output=True, text=True,
    ).stdout
    return [int(token) for token in out.split()]


@pytest.mark.smoke
@pytest.mark.skipif(not SMOKE, reason="set REPRO_SERVICE_SMOKE=1 to run")
class TestServiceSmoke:
    def test_two_hundred_job_drill(self, tmp_path):
        db = tmp_path / "jobs.sqlite3"
        cache_dir = tmp_path / "cache"
        proc, port, _sink = _boot_serve(db, cache_dir)
        ids, analyze_ids, fail_ids = [], [], []
        try:
            # 1. Enqueue a 200-job mix over HTTP: mostly short sleeps with
            #    real analyses and bounded-retry failures sprinkled in.
            for i in range(200):
                if i % 40 == 0:
                    body = {
                        "program": SIMPLE,
                        "options": {"moments": 1, "at": {"d": 4.0 + i}},
                    }
                elif i % 40 == 1:
                    body = {"kind": "fail", "message": "flaky",
                            "retryable": True, "max_attempts": 2}
                else:
                    body = {"kind": "sleep", "seconds": 0.02}
                response = _post(port, "/jobs", body)
                assert response["ok"]
                ids.append(response["id"])
                if i % 40 == 0:
                    analyze_ids.append(response["id"])
                elif i % 40 == 1:
                    fail_ids.append(response["id"])
            assert len(ids) == len(set(ids)) == 200

            # 1b. POST /check round trip: an inline policy check against
            #     the live server, while the queue is under load.
            verdict = _post(port, "/check",
                            {"program": SIMPLE, "spec": SPEC})
            assert verdict["ok"] and verdict["verdict"] == "pass"
            counts = verdict["check"]["counts"]
            assert counts["pass"] == 1 and counts["fail"] == 0

            # 2. SIGKILL one worker mid-drill: its lease must be retried,
            #    not lost, and the pool must respawn a replacement.
            time.sleep(0.5)
            victims = _worker_pids(proc.pid)
            assert victims, "no worker processes found under repro serve"
            os.kill(victims[0], signal.SIGKILL)

            # 3. SIGTERM the server mid-queue: graceful drain of in-flight
            #    jobs, everything else stays queued in the DB.
            time.sleep(1.0)
            proc.send_signal(signal.SIGTERM)
            assert proc.wait(timeout=120.0) == 0
        except BaseException:
            proc.kill()
            raise

        store = JobStore(db)
        remaining = sum(
            1 for job in store.iter_jobs(ids)
            if job is not None and not job.terminal
        )
        assert remaining > 0, "drill finished before the restart could matter"
        store.close()

        # 4. Restart: queued jobs must resume without re-enqueueing.
        proc, port, _sink = _boot_serve(db, cache_dir)
        try:
            deadline = time.time() + 420.0
            store = JobStore(db)
            while time.time() < deadline:
                jobs = list(store.iter_jobs(ids))
                if all(job is not None and job.terminal for job in jobs):
                    break
                time.sleep(0.25)
            jobs = {job.id: job for job in store.iter_jobs(ids) if job}

            # 5. Zero lost jobs: all 200 accounted for and terminal.
            assert len(jobs) == 200
            assert all(job.terminal for job in jobs.values())
            for job_id in analyze_ids:
                assert jobs[job_id].state == "done"
                assert "E[C^1]" in jobs[job_id].result["summary"]
            for job_id in fail_ids:
                assert jobs[job_id].state == "dead"
                assert jobs[job_id].attempts == 2
            # The SIGKILLed worker's lease was re-delivered: at least one
            # non-"fail" job ran more than once.
            assert any(
                jobs[i].retries >= 1 for i in ids
                if i not in fail_ids
            ), "no lease retry observed after SIGKILL"

            # 6. Scrape /metrics: depth gauge and latency quantiles.
            _, raw = _get(port, "/metrics")
            snap = json.loads(raw)
            assert snap["queue"]["depth"] == 0
            assert snap["queue"]["states"].get("done", 0) >= 195
            assert snap["latency"]["count"] >= 1
            for key in ("p50_seconds", "p99_seconds", "mean_seconds"):
                assert key in snap["latency"]
            _, raw = _get(port, "/metrics?format=prometheus")
            text = raw.decode()
            assert "repro_queue_depth 0" in text
            assert 'repro_analysis_latency_seconds{quantile="0.99"}' in text
            store.close()

            proc.send_signal(signal.SIGTERM)
            assert proc.wait(timeout=120.0) == 0
        except BaseException:
            proc.kill()
            raise
