"""Unit and property tests for monomials and sparse polynomials."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lp.affine import AffForm, VarPool
from repro.poly.monomial import Monomial, monomials_up_to_degree
from repro.poly.polynomial import Polynomial


class TestMonomial:
    def test_unit_degree_zero(self):
        assert Monomial.unit().degree == 0
        assert Monomial.unit().is_unit()

    def test_of_variable(self):
        m = Monomial.of("x", 3)
        assert m.degree == 3
        assert m.exponent_of("x") == 3
        assert m.exponent_of("y") == 0

    def test_of_zero_exponent_is_unit(self):
        assert Monomial.of("x", 0) == Monomial.unit()

    def test_negative_exponent_rejected(self):
        with pytest.raises(ValueError):
            Monomial.of("x", -1)

    def test_from_dict_negative_exponent_rejected(self):
        # Regression: validation used to run after the ``e > 0`` filter, so
        # ``from_dict({'x': -1})`` silently returned the unit monomial.
        with pytest.raises(ValueError):
            Monomial.from_dict({"x": -1})
        with pytest.raises(ValueError):
            Monomial.from_dict({"x": 1, "y": -2})
        assert Monomial.from_dict({"x": 1, "y": 0}) == Monomial.of("x")

    def test_multiplication(self):
        m = Monomial.of("x", 2) * Monomial.of("y") * Monomial.of("x")
        assert m == Monomial.from_dict({"x": 3, "y": 1})
        assert m.degree == 4

    def test_canonical_ordering(self):
        a = Monomial.from_dict({"b": 1, "a": 2})
        b = Monomial.from_dict({"a": 2, "b": 1})
        assert a == b
        assert hash(a) == hash(b)

    def test_without(self):
        m = Monomial.from_dict({"x": 2, "y": 1})
        assert m.without("x") == Monomial.of("y")
        assert m.without("z") == m

    def test_evaluate(self):
        m = Monomial.from_dict({"x": 2, "y": 1})
        assert m.evaluate({"x": 3.0, "y": 5.0}) == 45.0

    def test_enumeration_count(self):
        # C(n+d, d) monomials of degree <= d over n variables.
        monos = monomials_up_to_degree(["x", "y"], 3)
        assert len(monos) == math.comb(2 + 3, 3)
        assert monos[0] == Monomial.unit()
        assert all(m.degree <= 3 for m in monos)

    def test_enumeration_deterministic(self):
        a = monomials_up_to_degree(["y", "x"], 2)
        b = monomials_up_to_degree(["x", "y"], 2)
        assert a == b


def _poly_from(coeffs):
    return Polynomial(
        {Monomial.from_dict(dict(m)): c for m, c in coeffs.items()}
    )


small_polys = st.dictionaries(
    st.tuples(
        st.sampled_from([(), (("x", 1),), (("y", 1),), (("x", 2),), (("x", 1), ("y", 1))])
    ).map(lambda t: t[0]),
    st.integers(-5, 5).map(float),
    max_size=4,
).map(_poly_from)

valuations = st.fixed_dictionaries(
    {"x": st.integers(-3, 3).map(float), "y": st.integers(-3, 3).map(float)}
)


class TestPolynomial:
    def test_constant_and_var(self):
        p = Polynomial.var("x") + Polynomial.constant(2.0)
        assert p.degree() == 1
        assert p.evaluate({"x": 3.0}) == 5.0

    def test_zero_coefficients_dropped(self):
        p = Polynomial.var("x") - Polynomial.var("x")
        assert p.is_zero()
        assert p.coeffs == {}

    def test_multiplication(self):
        x, y = Polynomial.var("x"), Polynomial.var("y")
        p = (x + y) * (x - y)
        assert p == x * x - y * y

    def test_power(self):
        x = Polynomial.var("x")
        p = (x + 1.0) ** 2
        assert p == x * x + 2.0 * x + 1.0
        assert (x**0) == Polynomial.constant(1.0)

    def test_negative_power_rejected(self):
        with pytest.raises(ValueError):
            Polynomial.var("x") ** (-1)

    def test_substitute_linear(self):
        x, t = Polynomial.var("x"), Polynomial.var("t")
        p = x * x + 3.0 * x
        q = p.substitute("x", x + t)
        assert q == (x + t) * (x + t) + 3.0 * (x + t)

    def test_substitute_absent_variable(self):
        p = Polynomial.var("x")
        assert p.substitute("z", Polynomial.constant(0.0)) == p

    def test_expect_powers(self):
        # E[x^2 y + 2x + 5] with E[x] = 1/2, E[x^2] = 1.
        moments = {0: 1.0, 1: 0.5, 2: 1.0}
        x, y = Polynomial.var("x"), Polynomial.var("y")
        p = x * x * y + 2.0 * x + 5.0
        q = p.expect_powers("x", lambda k: moments[k])
        assert q == y + 6.0

    def test_scale(self):
        p = Polynomial.var("x") + 1.0
        assert p.scale(0.0).is_zero()
        assert p.scale(2.0) == 2.0 * Polynomial.var("x") + 2.0

    def test_template_coefficients(self):
        pool = VarPool()
        u = AffForm.of_var(pool.fresh("u"))
        p = Polynomial({Monomial.of("x"): u}) + Polynomial.var("x")
        coeff = p.coefficient(Monomial.of("x"))
        assert isinstance(coeff, AffForm)
        assert coeff == u + 1.0
        assert not p.is_concrete()

    def test_template_times_template_rejected(self):
        pool = VarPool()
        u = Polynomial({Monomial.of("x"): AffForm.of_var(pool.fresh("u"))})
        with pytest.raises(TypeError):
            u * u

    def test_template_evaluate_gives_affform(self):
        pool = VarPool()
        v = pool.fresh("v")
        p = Polynomial({Monomial.of("x"): AffForm.of_var(v)})
        result = p.evaluate({"x": 3.0})
        assert isinstance(result, AffForm)
        assert result.terms == {v.index: 3.0}

    @given(small_polys, small_polys, valuations)
    @settings(max_examples=60, deadline=None)
    def test_addition_agrees_with_evaluation(self, p, q, env):
        assert (p + q).evaluate(env) == pytest.approx(
            p.evaluate(env) + q.evaluate(env)
        )

    @given(small_polys, small_polys, valuations)
    @settings(max_examples=60, deadline=None)
    def test_multiplication_agrees_with_evaluation(self, p, q, env):
        assert (p * q).evaluate(env) == pytest.approx(
            p.evaluate(env) * q.evaluate(env)
        )

    @given(small_polys, small_polys)
    @settings(max_examples=40, deadline=None)
    def test_ring_laws(self, p, q):
        assert p + q == q + p
        assert p * q == q * p
        assert p + Polynomial.zero() == p
        assert p * Polynomial.constant(1.0) == p
        assert (p - p).is_zero()

    @given(small_polys, small_polys, valuations)
    @settings(max_examples=60, deadline=None)
    def test_substitution_agrees_with_evaluation(self, p, q, env):
        substituted = p.substitute("x", q)
        inner = q.evaluate(env)
        assert substituted.evaluate(env) == pytest.approx(
            p.evaluate({"x": inner, "y": env["y"]})
        )
