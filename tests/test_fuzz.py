"""Property tests for the Appl program fuzzer.

Seeded and dependency-free: every generated case must parse, print
canonically (the canonical text is a fixpoint of print-then-parse), be
deterministic in its seed, and satisfy the Theorem 4.4 side conditions its
templates promise by construction.
"""

import numpy as np
import pytest

from repro import check_soundness
from repro.interp.vectorized import collect_variables
from repro.lang.parser import parse_program
from repro.lang.printer import canonical_program
from repro.programs.fuzz import FuzzConfig, generate_case, generate_corpus

SEEDS = list(range(40))

KNOWN_FEATURES = {
    "loop", "recursion", "geo", "straight", "open",
    "prob", "cond", "ndet", "scratch", "neg-cost",
    "discrete", "three-point", "uniform", "unifint", "bernoulli",
}


@pytest.fixture(scope="module")
def corpus():
    return generate_corpus(len(SEEDS), seed=0)


class TestWellFormedness:
    def test_all_cases_parse(self, corpus):
        for case in corpus:
            program = parse_program(case.source)
            assert program.main == "main"

    def test_canonical_text_is_a_fixpoint(self, corpus):
        """print(parse(print(parse(src)))) == print(parse(src)) — the
        round-trip property the artifact cache's content addressing needs."""
        for case in corpus:
            canon = canonical_program(parse_program(case.source))
            assert canonical_program(parse_program(canon)) == canon, case.name

    def test_valuation_covers_every_variable(self, corpus):
        for case in corpus:
            names = set(collect_variables(case.parse()))
            assert names <= set(case.valuation), case.name

    def test_initial_consistent_with_valuation(self, corpus):
        for case in corpus:
            for name, value in case.initial.items():
                assert case.valuation[name] == value

    def test_features_and_degrees_declared(self, corpus):
        config = FuzzConfig()
        for case in corpus:
            assert set(case.features) <= KNOWN_FEATURES, case.features
            assert case.moment_degree in set(config.moment_degrees)


class TestDeterminism:
    def test_same_seed_same_case(self):
        for seed in (0, 7, 123, 99991):
            a, b = generate_case(seed), generate_case(seed)
            assert a.source == b.source
            assert a.moment_degree == b.moment_degree
            assert a.initial == b.initial

    def test_different_seeds_vary(self):
        sources = {generate_case(seed).source for seed in range(30)}
        assert len(sources) >= 25  # near-unique; collisions allowed but rare


class TestSoundnessByConstruction:
    @pytest.mark.parametrize("seed", SEEDS[:12])
    def test_side_conditions_hold(self, seed):
        case = generate_case(seed)
        report = check_soundness(case.parse(), 2)
        assert report.bounded_update.ok, (case.name, report.summary())
        assert report.termination.ok, (case.name, report.summary())

    @pytest.mark.parametrize("seed", SEEDS[:8])
    def test_simulation_terminates(self, seed):
        from repro.interp.mc import simulate_costs

        case = generate_case(seed)
        costs = simulate_costs(
            case.parse(), 400, seed=1, initial=case.initial,
            max_steps=200_000, engine="vectorized",
        )
        assert len(costs) == 400  # no timeouts


class TestConfig:
    def test_feature_toggles_respected(self):
        config = FuzzConfig(
            allow_nondet=False,
            allow_recursion=False,
            allow_continuous=False,
            allow_negative_costs=False,
        )
        for seed in range(25):
            case = generate_case(seed, config)
            feats = set(case.features)
            assert not feats & {"ndet", "recursion", "geo", "neg-cost"}
            assert "uniform" not in feats  # unifint/discrete remain allowed

    def test_moment_degrees_drawn_from_config(self):
        config = FuzzConfig(moment_degrees=(3,))
        assert all(
            generate_case(seed, config).moment_degree == 3 for seed in range(10)
        )

    def test_open_cases_declare_precondition(self):
        opens = [c for c in generate_corpus(60, seed=0) if "open" in c.features]
        assert opens  # the family is exercised
        for case in opens:
            assert "pre(x >= 0)" in case.source
            assert case.initial.get("x", 0) >= 1
            rng_start = case.valuation["x"]
            assert rng_start == case.initial["x"]
