"""Tests for linear assertions, entailment, contexts, and Handelman."""

import pytest

from repro.lang.parser import parse_condition, parse_expression, parse_program
from repro.lang.varinfo import analyze_program as static_info
from repro.lang.varinfo import integer_valued_vars
from repro.logic import entail
from repro.logic.context import Context
from repro.logic.handelman import certificate_products, emit_nonneg_certificate
from repro.logic.linear import LinExpr, LinIneq, cmp_to_ineqs, cond_to_ineqs
from repro.lp.affine import AffForm
from repro.lp.problem import LPInfeasibleError, LPProblem
from repro.poly.polynomial import Polynomial


def ineq(text: str) -> LinIneq:
    """Parse ``e1 <= e2``-style text into e2 - e1 >= 0."""
    (result,) = cond_to_ineqs(parse_condition(text))
    return result


class TestLinExpr:
    def test_from_polynomial(self):
        poly = parse_expression("2 * x - y + 3").to_polynomial()
        lin = LinExpr.from_polynomial(poly)
        assert lin.coeff("x") == 2.0
        assert lin.coeff("y") == -1.0
        assert lin.const == 3.0

    def test_from_polynomial_rejects_nonlinear(self):
        poly = parse_expression("x * x").to_polynomial()
        assert LinExpr.from_polynomial(poly) is None

    def test_substitute(self):
        lin = LinExpr.build({"x": 2.0, "y": 1.0}, 1.0)
        result = lin.substitute("x", LinExpr.build({"z": 1.0}, -1.0))
        assert result == LinExpr.build({"z": 2.0, "y": 1.0}, -1.0)

    def test_evaluate(self):
        lin = LinExpr.build({"x": 2.0}, 1.0)
        assert lin.evaluate({"x": 3.0}) == 7.0


class TestCondToIneqs:
    def test_le(self):
        (g,) = cmp_to_ineqs(parse_condition("x <= 3"))
        assert g.holds({"x": 3.0})
        assert not g.holds({"x": 3.5})

    def test_strict_relaxed_over_reals(self):
        (g,) = cmp_to_ineqs(parse_condition("x < 3"))
        assert g.holds({"x": 3.0})  # closure

    def test_strict_strengthened_over_integers(self):
        (g,) = cmp_to_ineqs(parse_condition("x < 3"), frozenset({"x"}))
        assert g.holds({"x": 2.0})
        assert not g.holds({"x": 2.5})
        (g,) = cmp_to_ineqs(parse_condition("x > 0"), frozenset({"x"}))
        assert not g.holds({"x": 0.5})
        assert g.holds({"x": 1.0})

    def test_mixed_integrality_not_strengthened(self):
        # n is not integer-valued, so no strengthening.
        (g,) = cmp_to_ineqs(parse_condition("x < n"), frozenset({"x"}))
        assert g.holds({"x": 3.0, "n": 3.0})

    def test_equality(self):
        ineqs = cmp_to_ineqs(parse_condition("x == y"))
        assert len(ineqs) == 2

    def test_disequality_empty(self):
        assert cmp_to_ineqs(parse_condition("x != y")) == []

    def test_conjunction(self):
        ineqs = cond_to_ineqs(parse_condition("x <= 1 and y <= 2"))
        assert len(ineqs) == 2

    def test_disjunction_contributes_nothing(self):
        assert cond_to_ineqs(parse_condition("x <= 1 or y <= 2")) == []

    def test_false_is_none(self):
        assert cond_to_ineqs(parse_condition("false")) is None

    def test_nonlinear_comparison_skipped(self):
        (result,) = [cmp_to_ineqs(parse_condition("x * x <= 1"))]
        assert result is None
        # ... but inside a conjunction it just drops out.
        assert cond_to_ineqs(parse_condition("x * x <= 1 and y <= 0")) is not None


class TestEntailment:
    def test_basic(self):
        gamma = (ineq("x >= 1"), ineq("y >= x"))
        assert entail.entails(gamma, ineq("y >= 1"))
        assert entail.entails(gamma, ineq("x + y >= 2"))
        assert not entail.entails(gamma, ineq("y >= 2"))

    def test_empty_context(self):
        assert entail.entails((), ineq("0 <= 1"))
        assert not entail.entails((), ineq("x >= 0"))

    def test_infeasible_context_entails_everything(self):
        gamma = (ineq("x >= 1"), ineq("x <= 0"))
        assert entail.entails(gamma, ineq("x >= 100"))
        assert not entail.is_feasible(gamma)

    def test_feasibility(self):
        assert entail.is_feasible((ineq("x >= 0"), ineq("x <= 10")))

    def test_unbounded_direction(self):
        assert not entail.entails((ineq("x >= 0"),), ineq("y >= 0"))


class TestContext:
    def test_assume_and_entails(self):
        ctx = Context.top().assume(parse_condition("x >= 1 and x <= 5"))
        assert ctx.entails(ineq("x >= 0"))
        assert ctx.entails_cond(parse_condition("x <= 6"))
        assert not ctx.entails_cond(parse_condition("x <= 4"))

    def test_assume_false_is_bottom(self):
        ctx = Context.top().assume(parse_condition("false"))
        assert ctx.bottom
        assert ctx.entails(ineq("x >= 100"))

    def test_invertible_assignment(self):
        ctx = Context.top().assume(parse_condition("x <= 5"))
        moved = ctx.assign("x", parse_expression("x + 2"))
        assert moved.entails(ineq("x <= 7"))
        assert not moved.entails(ineq("x <= 5"))

    def test_assignment_with_other_vars(self):
        ctx = Context.top().assume(parse_condition("x <= 5 and t <= 2"))
        moved = ctx.assign("x", parse_expression("x + t"))
        assert moved.entails(ineq("x <= 7"))

    def test_non_invertible_assignment(self):
        ctx = Context.top().assume(parse_condition("x <= 5 and y <= 1"))
        reset = ctx.assign("x", parse_expression("y + 1"))
        assert reset.entails(ineq("x <= 2"))
        assert reset.entails(ineq("y <= 1"))

    def test_nonlinear_assignment_havocs(self):
        ctx = Context.top().assume(parse_condition("x <= 5"))
        havoced = ctx.assign("x", parse_expression("x * x"))
        assert not havoced.entails(ineq("x <= 25"))

    def test_sample(self):
        ctx = Context.top().assume(parse_condition("t >= 100"))
        sampled = ctx.sample("t", (-1.0, 2.0))
        assert sampled.entails(ineq("t <= 2"))
        assert sampled.entails(ineq("t >= 0 - 1"))
        assert not sampled.entails(ineq("t >= 100"))

    def test_havoc(self):
        ctx = Context.top().assume(parse_condition("x <= 5 and y <= 1"))
        havoced = ctx.havoc({"x"})
        assert not havoced.entails(ineq("x <= 5"))
        assert havoced.entails(ineq("y <= 1"))

    def test_join_keeps_common_facts(self):
        a = Context.top().assume(parse_condition("x >= 0 and x <= 1"))
        b = Context.top().assume(parse_condition("x >= 0 and x <= 3"))
        joined = a.join(b)
        assert joined.entails(ineq("x >= 0"))
        assert joined.entails(ineq("x <= 3"))
        assert not joined.entails(ineq("x <= 1"))

    def test_join_with_bottom(self):
        a = Context.bot()
        b = Context.top().assume(parse_condition("x >= 0"))
        assert a.join(b) is b

    def test_meet(self):
        a = Context.top().assume(parse_condition("x >= 0"))
        b = Context.top().assume(parse_condition("x <= 1"))
        met = a.meet(b)
        assert met.entails(ineq("x >= 0"))
        assert met.entails(ineq("x <= 1"))

    def test_integer_strengthening_through_assume(self):
        ctx = Context.top(frozenset({"x"}))
        body = ctx.assume(parse_condition("x > 0"))
        assert body.entails(ineq("x >= 1"))


class TestHandelman:
    def test_products_include_unit(self):
        ctx = Context.top().assume(parse_condition("x >= 0"))
        products = certificate_products(ctx, 2)
        assert products[0] == Polynomial.constant(1.0)
        # 1, x, x^2
        assert len(products) == 3

    def test_certificate_success(self):
        # x^2 + 2x >= 0 under x >= 0 via x*x + 2*x.
        ctx = Context.top().assume(parse_condition("x >= 0"))
        lp = LPProblem()
        x = Polynomial.var("x")
        emit_nonneg_certificate(lp, ctx, x * x + 2.0 * x, 2)
        lp.solve()  # feasible

    def test_certificate_failure(self):
        # -x - 1 >= 0 is false under x >= 0.
        ctx = Context.top().assume(parse_condition("x >= 0"))
        lp = LPProblem()
        with pytest.raises((LPInfeasibleError, Exception)):
            emit_nonneg_certificate(lp, ctx, -Polynomial.var("x") - 1.0, 1)
            lp.solve()

    def test_certificate_with_template_coefficient(self):
        # (u - 2) * x >= 0 under x >= 0 forces u >= 2.
        ctx = Context.top().assume(parse_condition("x >= 0"))
        lp = LPProblem()
        u = lp.fresh("u")
        poly = Polynomial.var("x").map_coefficients(
            lambda c: AffForm.of_var(u, float(c)) - 2.0
        )
        emit_nonneg_certificate(lp, ctx, poly, 1)
        solution = lp.solve(AffForm.of_var(u), minimize=True)
        assert solution.value_of(u) >= 2.0 - 1e-6

    def test_zero_poly_no_constraints(self):
        lp = LPProblem()
        emit_nonneg_certificate(lp, Context.top(), Polynomial.zero(), 3)
        assert lp.num_constraints == 0

    def test_negative_constant_rejected(self):
        lp = LPProblem()
        with pytest.raises(ValueError):
            emit_nonneg_certificate(lp, Context.top(), Polynomial.constant(-1.0), 1)

    def test_bottom_context_vacuous(self):
        lp = LPProblem()
        emit_nonneg_certificate(
            lp, Context.bot(), -Polynomial.var("x") - 1.0, 1
        )
        assert lp.num_constraints == 0

    def test_paper_else_branch_certificate(self):
        # From section 3.4: 2(d-x)+4 >= 0 under {x >= d, x <= d+2}
        # via 2*(d - x + 2).
        ctx = Context.top().assume(parse_condition("x >= d and x <= d + 2"))
        lp = LPProblem()
        d, x = Polynomial.var("d"), Polynomial.var("x")
        emit_nonneg_certificate(lp, ctx, 2.0 * (d - x) + 4.0, 2)
        lp.solve()


class TestIntegerVars:
    def test_integer_fixpoint(self):
        program = parse_program(
            """
            func main() begin
              x := 0;
              x := x + 1;
              t ~ discrete(-1: 0.5, 1: 0.5);
              y := x + t;
              z ~ uniform(0, 1);
              w := z + 1
            end
            """
        )
        ints = integer_valued_vars(program)
        assert {"x", "t", "y"} <= ints
        assert "z" not in ints
        assert "w" not in ints

    def test_contamination_via_cycle(self):
        program = parse_program(
            """
            func main() begin
              z ~ uniform(0, 1);
              x := z;
              y := x + 1;
              x := y
            end
            """
        )
        ints = integer_valued_vars(program)
        assert "x" not in ints and "y" not in ints

    def test_declared_parameter(self):
        program = parse_program(
            "func main() int(n) begin x := n end"
        )
        info = static_info(program)
        assert "n" in info.integer_vars
        assert "x" in info.integer_vars

    def test_declared_written_var_still_checked(self):
        program = parse_program(
            "func main() int(x) begin z ~ uniform(0, 1); x := z end"
        )
        info = static_info(program)
        assert "x" not in info.integer_vars

    def test_fractional_constant_not_integer(self):
        program = parse_program("func main() begin x := 0.5 end")
        assert "x" not in integer_valued_vars(program)
