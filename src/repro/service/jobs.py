"""The worker fleet: processes that drain the durable job store.

A worker is a process running :func:`worker_main`: lease a job from the
:class:`~repro.service.store.JobStore`, run it through the analysis
pipeline (sharing the content-addressed :class:`ArtifactCache` with every
other worker and the server), and ack the JSON result — all state lives in
the store, so workers are stateless and disposable.

Robustness properties, each tested in ``tests/test_jobstore.py`` /
``tests/test_jobs.py``:

* **Error isolation.**  A job that raises marks *that job* failed (retried
  with backoff, dead-lettered when the budget is exhausted); the worker
  loop survives and moves on.
* **Heartbeats.**  A background thread extends the lease every
  ``visibility / 3`` seconds, so long Handelman solves don't outlive their
  lease; only a genuinely dead worker's lease expires.
* **Crash re-delivery.**  A SIGKILLed worker stops heartbeating; once the
  lease deadline passes, the next ``lease()`` call anywhere re-queues and
  re-delivers the job (store-level guarantee).
* **Graceful drain.**  SIGTERM sets a flag: the worker finishes and acks
  the job it holds, then exits — an acked result is committed to SQLite
  before the process dies, so graceful shutdown never loses work.

Job kinds:

* ``analyze`` — payload ``{"program": <appl source>, "options": {...}}``
  (the HTTP/CLI vocabulary of :func:`options_from_dict`); the result is
  the same document ``POST /analyze`` returns.
* ``fuzz_shard`` — one shard of a fuzzing campaign
  (:mod:`repro.soundness.campaign`): the payload is the shard's durable
  generation recipe; all campaign state commits to the store *before* the
  ack, so shard accounting is exactly-once across crashes.
* ``sleep`` — payload ``{"seconds": s}``: a deterministic-duration job for
  smoke tests and fleet diagnostics.  Any payload's ``timeout`` key caps
  the job's runtime (overriding the worker's ``--job-timeout`` default):
  past the cap the heartbeat stops extending the lease, so a hung job is
  reclaimed and re-delivered instead of holding its worker hostage.
* ``fail`` — payload ``{"message": m, "retryable": bool}``: always fails;
  exercises the retry/dead-letter path end to end.
"""

from __future__ import annotations

import os
import signal
import socket
import threading
import time
import uuid

from repro.analysis.pipeline import AnalysisOptions, AnalysisPipeline
from repro.deadline import AnalysisTimeout
from repro.lang.parser import ParseError, parse_program
from repro.lang.varinfo import ValidationError
from repro.lp.core import LPInfeasibleError
from repro.service.cache import ArtifactCache, program_key
from repro.service.store import Job, JobStore

#: Job kinds the fleet knows how to run.
JOB_KINDS = ("analyze", "check", "fuzz_shard", "sleep", "fail")

_OPTION_KEYS = {
    "moments",
    "degree",
    "degree_cap",
    "at",
    "backend",
    "upper_only",
    "unit_cost",
    "lexicographic",
    "lp_bound",
    "lp_reduce",
    "check",
    "deadline",
    "degrade",
}

#: Substring of every :class:`~repro.deadline.AnalysisTimeout` message; a
#: redelivered job whose recorded error contains it already burned one
#: full-deadline attempt on a timeout (see :func:`effective_options`).
_TIMEOUT_MARKER = "analysis deadline exceeded"


class RequestError(ValueError):
    """Client-side problem: malformed body, unknown option, bad program.

    Deterministic — retrying cannot help, so jobs failing with this go
    straight to the dead-letter state (``retryable=False``).
    """


def options_from_dict(data: "dict | None") -> AnalysisOptions:
    """Build :class:`AnalysisOptions` from a request's ``options`` object.

    Mirrors the CLI flag mapping exactly (``at`` becomes a single objective
    valuation), so a served analysis and ``repro analyze`` construct the
    same cache key and return the same result.
    """
    data = data or {}
    if not isinstance(data, dict):
        raise RequestError("options must be an object")
    unknown = set(data) - _OPTION_KEYS
    if unknown:
        raise RequestError(
            f"unknown options {sorted(unknown)}; expected {sorted(_OPTION_KEYS)}"
        )
    try:
        at = data.get("at") or None
        if at is not None:
            # One valuation object, or a list of them (the registry's
            # multi-valuation benchmarks travel through the queue this way).
            if isinstance(at, dict):
                at = [at]
            if not isinstance(at, list) or not all(
                isinstance(v, dict) for v in at
            ):
                raise RequestError(
                    "options.at must be a {variable: value} object or a list"
                    " of them"
                )
            at = tuple(
                {str(k): float(v) for k, v in one.items()} for one in at
            )
        lp_reduce = data.get("lp_reduce")
        if lp_reduce is not None:
            lp_reduce = bool(lp_reduce)
        deadline = data.get("deadline")
        if deadline is not None:
            deadline = float(deadline)
            if deadline <= 0:
                raise RequestError("options.deadline must be positive seconds")
        return AnalysisOptions(
            moment_degree=int(data.get("moments", 2)),
            template_degree=int(data.get("degree", 1)),
            degree_cap=(
                int(data["degree_cap"]) if data.get("degree_cap") is not None else None
            ),
            objective_valuations=at or None,
            upper_only=bool(data.get("upper_only", False)),
            unit_cost=bool(data.get("unit_cost", False)),
            check_soundness=bool(data.get("check", False)),
            lexicographic=bool(data.get("lexicographic", True)),
            lp_bound=float(data.get("lp_bound", 1e12)),
            backend=data.get("backend"),
            lp_reduce=lp_reduce,
            deadline_seconds=deadline,
            degrade=bool(data.get("degrade", False)),
        )
    except RequestError:
        raise
    except (TypeError, ValueError) as exc:
        raise RequestError(f"bad options: {exc}") from exc


def options_to_dict(options: AnalysisOptions) -> dict:
    """The inverse of :func:`options_from_dict`: the JSON ``options``
    object a job payload carries for these analysis options (defaults
    omitted).  ``lp_jobs`` is intentionally dropped — the fleet is the
    worker budget, and parallelism never changes results."""
    out: dict = {}
    if options.moment_degree != 2:
        out["moments"] = options.moment_degree
    if options.template_degree != 1:
        out["degree"] = options.template_degree
    if options.degree_cap is not None:
        out["degree_cap"] = options.degree_cap
    if options.objective_valuations:
        vals = [dict(v) for v in options.objective_valuations]
        out["at"] = vals[0] if len(vals) == 1 else vals
    if options.upper_only:
        out["upper_only"] = True
    if options.unit_cost:
        out["unit_cost"] = True
    if options.check_soundness:
        out["check"] = True
    if not options.lexicographic:
        out["lexicographic"] = False
    if options.lp_bound != 1e12:
        out["lp_bound"] = options.lp_bound
    if options.backend is not None:
        out["backend"] = options.backend
    if options.lp_reduce is not None:
        out["lp_reduce"] = options.lp_reduce
    if options.deadline_seconds is not None:
        out["deadline"] = options.deadline_seconds
    if options.degrade:
        out["degrade"] = True
    return out


def analyze_payload(source: str, options: "dict | None" = None) -> dict:
    """Validated ``analyze`` job payload (raises :class:`RequestError` on a
    bad program or options, so malformed jobs are rejected at enqueue time
    instead of dead-lettering in the fleet)."""
    if not isinstance(source, str) or not source.strip():
        raise RequestError('an analyze job needs {"program": "<appl source>"}')
    try:
        parse_program(source)
    except ParseError as exc:
        raise RequestError(f"program does not parse: {exc}") from exc
    options_from_dict(options)
    return {"program": source, "options": options or {}}


def check_payload(
    source: str, spec_text: str, options: "dict | None" = None
) -> dict:
    """Validated ``check`` job payload: an Appl program plus a policy spec
    (both parsed at enqueue time, like :func:`analyze_payload`)."""
    from repro.policy.parser import ParseError as SpecParseError
    from repro.policy.parser import parse_spec

    if not isinstance(source, str) or not source.strip():
        raise RequestError('a check job needs {"program": "<appl source>"}')
    try:
        parse_program(source)
    except ParseError as exc:
        raise RequestError(f"program does not parse: {exc}") from exc
    if not isinstance(spec_text, str) or not spec_text.strip():
        raise RequestError('a check job needs {"spec": "<assertions>"}')
    try:
        parse_spec(spec_text)
    except SpecParseError as exc:
        raise RequestError(f"spec does not parse: {exc}") from exc
    options_from_dict(options)
    return {"program": source, "spec": spec_text, "options": options or {}}


def check_options(spec, options_data: "dict | None") -> AnalysisOptions:
    """Analyzer options for a check: explicit request options win, the
    spec's directives fill the gaps (``@options`` / assertion-implied
    moment degree, ``@at`` valuation)."""
    from dataclasses import replace

    options = options_from_dict(options_data)
    data = options_data or {}
    if "moments" not in data:
        options = replace(options, moment_degree=spec.min_moment_degree())
    if "degree" not in data and "degree" in spec.options:
        options = replace(options, template_degree=spec.options["degree"])
    if "degree_cap" not in data and "cap" in spec.options:
        options = replace(options, degree_cap=spec.options["cap"])
    if "at" not in data and spec.valuation:
        options = replace(
            options, objective_valuations=(dict(spec.valuation),)
        )
    return options


def job_idempotency_key(kind: str, payload: dict) -> str:
    """Content-derived idempotency key: two enqueues of the same program at
    the same options dedupe to one job (the ``dedupe`` flag of ``POST
    /jobs``)."""
    import hashlib
    import json

    if kind == "analyze":
        body = program_key(parse_program(payload["program"]))
        opts = json.dumps(payload.get("options") or {}, sort_keys=True)
    elif kind == "check":
        body = program_key(parse_program(payload["program"]))
        opts = json.dumps(
            {"spec": payload.get("spec"), "options": payload.get("options") or {}},
            sort_keys=True,
        )
    else:
        body = json.dumps(payload, sort_keys=True)
        opts = ""
    return hashlib.sha256(f"{kind}|{body}|{opts}".encode()).hexdigest()


class JobFailure(Exception):
    """A job failed; ``retryable`` decides retry-with-backoff vs dead."""

    def __init__(self, message: str, *, retryable: bool = True) -> None:
        super().__init__(message)
        self.retryable = retryable


def _timed_out_before(job: Job) -> bool:
    """Did an earlier delivery of this job fail on its analysis deadline?"""
    return _TIMEOUT_MARKER in (job.error or "")


def effective_options(job: Job, options: AnalysisOptions) -> AnalysisOptions:
    """Apply the redelivery deadline ladder to a job's analysis options.

    A job redelivered after a deadline timeout runs its one retry at *half*
    the deadline: the first attempt proved the full budget insufficient, so
    the retry exists to catch transient slowness (cold caches, machine
    load), not to burn the same wall-clock again.  A second timeout
    dead-letters the job (see :func:`execute_job`)."""
    from dataclasses import replace

    if options.deadline_seconds is None or not _timed_out_before(job):
        return options
    return replace(options, deadline_seconds=options.deadline_seconds / 2.0)


def execute_job(
    job: Job,
    cache: ArtifactCache | None = None,
    db_path: "str | None" = None,
) -> dict:
    """Run one job to its JSON result document (raises on failure).

    ``analyze`` results are byte-compatible with ``POST /analyze``: the
    program's content hash, the CLI ``summary`` text, and the full
    ``result`` dict.  ``db_path`` is the store the job was leased from —
    ``fuzz_shard`` jobs write their campaign state back into it.
    """
    payload = job.payload if isinstance(job.payload, dict) else {}
    if job.kind == "fuzz_shard":
        from repro.soundness.campaign import execute_shard

        return execute_shard(job, cache, db_path=db_path)
    if job.kind == "analyze":
        try:
            program = parse_program(payload.get("program") or "")
        except ParseError as exc:
            raise JobFailure(
                f"program does not parse: {exc}", retryable=False
            ) from exc
        try:
            options = effective_options(job, options_from_dict(payload.get("options")))
        except RequestError as exc:
            raise JobFailure(str(exc), retryable=False) from exc
        pipeline = AnalysisPipeline(program, artifacts=cache)
        try:
            result = pipeline.analyze(options)
        except (ValidationError, LPInfeasibleError) as exc:
            # Deterministic analyzer verdicts: retrying cannot change them,
            # so the job dead-letters on the first delivery.
            raise JobFailure(
                f"{type(exc).__name__}: {exc}", retryable=False
            ) from exc
        except AnalysisTimeout as exc:
            # First timeout: retryable (the redelivery runs at half the
            # deadline, see effective_options).  Second: dead-letter.
            raise JobFailure(
                f"AnalysisTimeout: {exc}", retryable=not _timed_out_before(job)
            ) from exc
        return {
            "ok": True,
            "program": program_key(program),
            "summary": result.summary(),
            "result": result.to_dict(),
        }
    if job.kind == "check":
        from repro.policy.evaluate import evaluate_spec
        from repro.policy.parser import ParseError as SpecParseError
        from repro.policy.parser import parse_spec
        from repro.policy.report import check_to_dict
        from repro.tail.bounds import costs_nonnegative

        try:
            program = parse_program(payload.get("program") or "")
        except ParseError as exc:
            raise JobFailure(
                f"program does not parse: {exc}", retryable=False
            ) from exc
        try:
            spec = parse_spec(payload.get("spec") or "")
        except SpecParseError as exc:
            raise JobFailure(f"spec does not parse: {exc}", retryable=False) from exc
        try:
            options = effective_options(
                job, check_options(spec, payload.get("options"))
            )
        except RequestError as exc:
            raise JobFailure(str(exc), retryable=False) from exc
        pipeline = AnalysisPipeline(program, artifacts=cache)
        try:
            result = pipeline.analyze(options)
        except (ValidationError, LPInfeasibleError) as exc:
            raise JobFailure(
                f"{type(exc).__name__}: {exc}", retryable=False
            ) from exc
        except AnalysisTimeout as exc:
            raise JobFailure(
                f"AnalysisTimeout: {exc}", retryable=not _timed_out_before(job)
            ) from exc
        check = evaluate_spec(
            spec,
            result,
            program=program_key(program),
            nonnegative_cost=costs_nonnegative(program),
        )
        return {
            "ok": True,
            "program": program_key(program),
            "verdict": check.verdict,
            "check": check_to_dict(check),
        }
    if job.kind == "sleep":
        seconds = float(payload.get("seconds", 0.0))
        deadline = time.time() + seconds
        while time.time() < deadline:
            time.sleep(min(0.05, max(deadline - time.time(), 0.0)))
        return {"ok": True, "slept_seconds": seconds}
    if job.kind == "fail":
        raise JobFailure(
            str(payload.get("message", "synthetic failure")),
            retryable=bool(payload.get("retryable", True)),
        )
    raise JobFailure(f"unknown job kind {job.kind!r}", retryable=False)


# ---------------------------------------------------------------------------
# Worker process
# ---------------------------------------------------------------------------


class _Heartbeat:
    """Extends the lease of the in-flight job every ``interval`` seconds.

    ``max_runtime`` caps how long the beats keep the job alive: a wedged
    job (infinite loop, stuck native call) used to heartbeat forever and
    hold its lease until the worker was killed by hand.  Past the cap the
    thread stops extending, the lease runs out, and the store re-delivers
    (or, after a nack budget, dead-letters) the job — the stuck *process*
    is still stuck, but the *job* is no longer hostage to it.
    """

    def __init__(
        self,
        store: JobStore,
        job_id: int,
        owner: str,
        visibility: float,
        max_runtime: "float | None" = None,
    ) -> None:
        self._store = store
        self._job_id = job_id
        self._owner = owner
        self._visibility = visibility
        self._cutoff = (
            None if max_runtime is None else time.monotonic() + max_runtime
        )
        self._stop = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)
        self._thread.start()

    def _run(self) -> None:
        interval = max(self._visibility / 3.0, 0.05)
        while not self._stop.wait(interval):
            if self._cutoff is not None and time.monotonic() >= self._cutoff:
                return  # job outlived its runtime cap: let the lease expire
            try:
                if not self._store.extend_lease(
                    self._job_id, self._owner, visibility=self._visibility
                ):
                    return  # lease lost (expired + re-delivered): stop beating
            except Exception:
                pass  # transient DB contention; the next beat retries

    def stop(self) -> None:
        self._stop.set()
        self._thread.join(timeout=2.0)


def worker_main(
    db_path: str,
    worker_id: int = 0,
    cache_dir: "str | None" = None,
    *,
    visibility: float = 60.0,
    poll: float = 0.2,
    drain_and_exit: bool = False,
    max_jobs: "int | None" = None,
    job_timeout: "float | None" = None,
) -> int:
    """Entry point of one fleet worker (runs in its own process).

    Loops lease → execute → ack/nack until SIGTERM (graceful: the in-flight
    job is finished and acked first) or, with ``drain_and_exit``, until the
    queue is empty.  Returns the number of jobs executed.

    ``job_timeout`` is the default per-job runtime cap (seconds) past
    which the heartbeat stops renewing the lease; a job payload's
    ``timeout`` key overrides it per job.  ``None`` leaves uncapped jobs
    beating for as long as they run.
    """
    stop = {"flag": False}

    def _on_term(signum, frame):  # noqa: ARG001 - signal signature
        stop["flag"] = True

    try:
        signal.signal(signal.SIGTERM, _on_term)
        signal.signal(signal.SIGINT, _on_term)
    except ValueError:
        pass  # not the main thread (in-process tests): rely on max_jobs

    # Workers never nest pools: the fleet is the process budget (mirrors
    # the batch executor's one-worker-budget rule).
    from repro.lp.parallel import forget_pool

    forget_pool()
    os.environ.setdefault("REPRO_LP_JOBS", "1")

    store = JobStore(db_path, visibility=visibility)
    cache = ArtifactCache(cache_dir) if cache_dir else None
    owner = f"{socket.gethostname()}:{os.getpid()}:{worker_id}:{uuid.uuid4().hex[:8]}"
    executed = 0
    try:
        while not stop["flag"]:
            try:
                job = store.lease(owner, visibility=visibility)
            except Exception:
                # DB contention storm: back off, the queue is still there.
                time.sleep(poll)
                continue
            if job is None:
                # Drain mode exits only when nothing is owed at all — a
                # backoff-delayed retry (queued with a future not_before)
                # still counts as work, so the fleet outlives it.
                if drain_and_exit and store.depth() == 0:
                    break
                # Interruptible idle wait (small chunks so SIGTERM lands).
                waited = 0.0
                while waited < poll and not stop["flag"]:
                    time.sleep(0.05)
                    waited += 0.05
                continue
            payload = job.payload if isinstance(job.payload, dict) else {}
            try:
                cap = float(payload["timeout"]) if "timeout" in payload else job_timeout
            except (TypeError, ValueError):
                cap = job_timeout
            beat = _Heartbeat(store, job.id, owner, visibility, max_runtime=cap)
            try:
                result = execute_job(job, cache, db_path=db_path)
            except JobFailure as exc:
                beat.stop()
                store.nack(job.id, owner, str(exc), retryable=exc.retryable)
            except Exception as exc:
                beat.stop()
                store.nack(job.id, owner, f"{type(exc).__name__}: {exc}")
            else:
                beat.stop()
                # The ack commits before the loop continues: a SIGTERM that
                # arrived mid-job exits *after* this point, so graceful
                # shutdown can never lose a finished result.
                store.ack(job.id, owner, result)
            executed += 1
            if max_jobs is not None and executed >= max_jobs:
                break
    finally:
        store.close()
    return executed


# ---------------------------------------------------------------------------
# The fleet
# ---------------------------------------------------------------------------


class WorkerPool:
    """``workers`` processes running :func:`worker_main` over one store.

    A maintenance thread watches the fleet: a worker that dies (OOM,
    SIGKILL, bug) is respawned — its in-flight job is re-delivered by the
    store's lease expiry, so a crash costs one visibility timeout, not the
    job.  ``stop()`` SIGTERMs every worker and waits for the graceful
    drain; stragglers are killed after ``timeout``.
    """

    def __init__(
        self,
        db_path: "str | os.PathLike",
        workers: int = 2,
        cache_dir: "str | None" = None,
        *,
        visibility: float = 60.0,
        poll: float = 0.2,
        respawn: bool = True,
        drain_and_exit: bool = False,
        job_timeout: "float | None" = None,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be at least 1")
        self.db_path = str(db_path)
        self.workers = workers
        self.cache_dir = cache_dir
        self.visibility = visibility
        self.poll = poll
        self.job_timeout = job_timeout
        self.respawn = respawn and not drain_and_exit
        self.drain_and_exit = drain_and_exit
        self.respawned = 0
        self._procs: list = []
        self._stopping = False
        self._lock = threading.Lock()
        self._tender: threading.Thread | None = None

    # -- lifecycle ----------------------------------------------------------

    def _spawn(self, worker_id: int):
        import multiprocessing

        proc = multiprocessing.Process(
            target=worker_main,
            args=(self.db_path, worker_id, self.cache_dir),
            kwargs={
                "visibility": self.visibility,
                "poll": self.poll,
                "drain_and_exit": self.drain_and_exit,
                "job_timeout": self.job_timeout,
            },
            daemon=True,
            name=f"repro-worker-{worker_id}",
        )
        proc.start()
        return proc

    def start(self) -> "WorkerPool":
        with self._lock:
            if self._procs:
                return self
            self._stopping = False
            self._procs = [self._spawn(i) for i in range(self.workers)]
        self._tender = threading.Thread(target=self._tend, daemon=True)
        self._tender.start()
        return self

    def _tend(self) -> None:
        while True:
            time.sleep(0.25)
            with self._lock:
                if self._stopping:
                    return
                for i, proc in enumerate(self._procs):
                    if not proc.is_alive() and self.respawn:
                        self._procs[i] = self._spawn(i)
                        self.respawned += 1

    def stop(self, *, graceful: bool = True, timeout: float = 30.0) -> None:
        with self._lock:
            self._stopping = True
            procs = list(self._procs)
            self._procs = []
        for proc in procs:
            if proc.is_alive():
                if graceful:
                    proc.terminate()  # SIGTERM: finish + ack the held job
                else:
                    proc.kill()
        deadline = time.time() + timeout
        for proc in procs:
            proc.join(timeout=max(deadline - time.time(), 0.1))
            if proc.is_alive():
                proc.kill()
                proc.join(timeout=5.0)

    def join(self, timeout: "float | None" = None) -> bool:
        """Wait for every worker to exit on its own (``drain_and_exit``
        fleets); ``False`` if some worker is still running at timeout."""
        deadline = None if timeout is None else time.time() + timeout
        with self._lock:
            procs = list(self._procs)
        for proc in procs:
            remaining = (
                None if deadline is None else max(deadline - time.time(), 0.0)
            )
            proc.join(timeout=remaining)
        with self._lock:
            self._stopping = True
            still = any(proc.is_alive() for proc in procs)
            if not still:
                self._procs = []
        return not still

    # -- introspection / fault injection ------------------------------------

    def alive(self) -> int:
        with self._lock:
            return sum(1 for proc in self._procs if proc.is_alive())

    def pids(self) -> list[int]:
        with self._lock:
            return [proc.pid for proc in self._procs if proc.is_alive()]

    def kill_worker(self, index: int = 0) -> "int | None":
        """SIGKILL one worker (crash-recovery tests); returns its pid."""
        with self._lock:
            alive = [proc for proc in self._procs if proc.is_alive()]
            if not alive:
                return None
            victim = alive[index % len(alive)]
        pid = victim.pid
        victim.kill()
        victim.join(timeout=5.0)
        return pid

    def __enter__(self) -> "WorkerPool":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()


# ---------------------------------------------------------------------------
# Thin clients
# ---------------------------------------------------------------------------


def enqueue_analysis(
    store: JobStore,
    source: str,
    options: "dict | None" = None,
    *,
    priority: int = 0,
    idempotency_key: "str | None" = None,
    dedupe: bool = False,
    max_attempts: int = 3,
) -> tuple[int, bool]:
    """Validate + enqueue one analysis; returns ``(job_id, deduped)``.

    ``dedupe=True`` derives the idempotency key from the program's content
    hash and the canonical options, so identical work enqueued twice (by
    anyone) runs once.
    """
    payload = analyze_payload(source, options)
    key = idempotency_key
    if key is None and dedupe:
        key = job_idempotency_key("analyze", payload)
    return store.enqueue(
        payload,
        kind="analyze",
        priority=priority,
        idempotency_key=key,
        max_attempts=max_attempts,
    )


def wait_for_jobs(
    store: JobStore,
    ids: "list[int]",
    *,
    timeout: float = 300.0,
    poll: float = 0.05,
) -> "list[Job | None]":
    """Block until every id is terminal (done/dead) or ``timeout`` passes;
    returns the jobs in input order (callers inspect ``state``)."""
    deadline = time.time() + timeout
    while True:
        jobs = store.iter_jobs(ids)
        if all(job is not None and job.terminal for job in jobs):
            return jobs
        if time.time() >= deadline:
            return jobs
        time.sleep(poll)


def drain_queue(
    store: JobStore, *, timeout: "float | None" = None, poll: float = 0.1
) -> bool:
    """Block until the queue has no queued/leased jobs; ``False`` on
    timeout."""
    deadline = None if timeout is None else time.time() + timeout
    while store.depth() > 0:
        if deadline is not None and time.time() >= deadline:
            return False
        time.sleep(poll)
    return True


__all__ = [
    "JOB_KINDS",
    "JobFailure",
    "RequestError",
    "WorkerPool",
    "analyze_payload",
    "check_options",
    "check_payload",
    "drain_queue",
    "effective_options",
    "enqueue_analysis",
    "execute_job",
    "job_idempotency_key",
    "options_from_dict",
    "options_to_dict",
    "wait_for_jobs",
    "worker_main",
]
