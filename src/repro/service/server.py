"""``repro serve``: a stdlib-only HTTP JSON API over the analysis service.

Endpoints:

* ``POST /analyze`` — body ``{"program": "<appl source>", "options": {...}}``;
  responds with the symbolic bounds, numeric intervals, and the exact
  ``summary`` text the CLI prints for the same request.
* ``POST /batch`` — body ``{"programs": {name: source, ...}, "options":
  {...}, "jobs": N}``; runs the named workload through the batch executor
  with per-program error isolation and returns one entry per program in
  input order.
* ``GET /health`` — liveness plus backend/capacity facts.
* ``GET /cache/stats`` — artifact-cache hit/miss counters and sizes.

The server keeps a bounded pool of *warm pipelines* keyed by program
content hash: repeated requests for the same program (at any options) skip
every stage that is already derived, and with a disk-backed
:class:`~repro.service.cache.ArtifactCache` the warmth survives restarts.
Request handling is threaded (:class:`ThreadingHTTPServer`); concurrent
requests for the *same* program share one pipeline, whose solve sections
are internally locked, so identical concurrent requests return identical
bytes.

``options`` accepts the CLI's vocabulary: ``moments``, ``degree``,
``degree_cap``, ``at`` (a ``{var: value}`` valuation), ``backend``,
``upper_only``, ``unit_cost``, ``lexicographic``, ``lp_bound``, ``check``.
Numbers that are infinite survive the JSON encoder in Python's extended
notation (``Infinity``), which ``json.loads`` round-trips.
"""

from __future__ import annotations

import json
import time
from collections import OrderedDict
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from threading import Lock

from repro import __version__
from repro.analysis.pipeline import AnalysisOptions, AnalysisPipeline
from repro.lang.parser import ParseError, parse_program
from repro.lp.backends import available_backends
from repro.lp.backends.incremental import highs_available
from repro.service.cache import ArtifactCache, program_key
from repro.service.executor import run_batch

_OPTION_KEYS = {
    "moments",
    "degree",
    "degree_cap",
    "at",
    "backend",
    "upper_only",
    "unit_cost",
    "lexicographic",
    "lp_bound",
    "check",
}


class RequestError(ValueError):
    """Client-side problem: malformed body, unknown option, bad program."""


def options_from_dict(data: "dict | None") -> AnalysisOptions:
    """Build :class:`AnalysisOptions` from a request's ``options`` object.

    Mirrors the CLI flag mapping exactly (``at`` becomes a single objective
    valuation), so a served analysis and ``repro analyze`` construct the
    same cache key and return the same result.
    """
    data = data or {}
    if not isinstance(data, dict):
        raise RequestError("options must be an object")
    unknown = set(data) - _OPTION_KEYS
    if unknown:
        raise RequestError(
            f"unknown options {sorted(unknown)}; expected {sorted(_OPTION_KEYS)}"
        )
    try:
        at = data.get("at") or None
        if at is not None:
            if not isinstance(at, dict):
                raise RequestError("options.at must be a {variable: value} object")
            at = {str(k): float(v) for k, v in at.items()}
        return AnalysisOptions(
            moment_degree=int(data.get("moments", 2)),
            template_degree=int(data.get("degree", 1)),
            degree_cap=(
                int(data["degree_cap"]) if data.get("degree_cap") is not None else None
            ),
            objective_valuations=(at,) if at else None,
            upper_only=bool(data.get("upper_only", False)),
            unit_cost=bool(data.get("unit_cost", False)),
            check_soundness=bool(data.get("check", False)),
            lexicographic=bool(data.get("lexicographic", True)),
            lp_bound=float(data.get("lp_bound", 1e12)),
            backend=data.get("backend"),
        )
    except RequestError:
        raise
    except (TypeError, ValueError) as exc:
        raise RequestError(f"bad options: {exc}") from exc


class AnalysisService:
    """Warm-pipeline pool + cache, shared by every request thread."""

    def __init__(
        self, cache: ArtifactCache | None = None, max_pipelines: int = 128
    ) -> None:
        self.cache = cache
        self.max_pipelines = max_pipelines
        self.started = time.time()
        self.requests = 0
        self._pipelines: "OrderedDict[str, tuple[AnalysisPipeline, Lock]]" = (
            OrderedDict()
        )
        self._lock = Lock()

    def pipeline_for(self, source: str) -> tuple[AnalysisPipeline, Lock, str, bool]:
        """(pipeline, its request lock, program hash, was it already warm).

        The per-pipeline lock serializes requests for the *same* program:
        the first computes, later identical requests hit the result cache
        and return the identical object — hence identical response bytes.
        Requests for different programs proceed concurrently.
        """
        try:
            program = parse_program(source)
        except ParseError as exc:
            raise RequestError(f"program does not parse: {exc}") from exc
        key = program_key(program)
        with self._lock:
            warm = self._pipelines.get(key)
            if warm is not None:
                self._pipelines.move_to_end(key)
                return (*warm, key, True)
            pipeline = AnalysisPipeline(program, artifacts=self.cache)
            pipeline._program_hash = key
            entry = (pipeline, Lock())
            self._pipelines[key] = entry
            while len(self._pipelines) > self.max_pipelines:
                self._pipelines.popitem(last=False)
            return (*entry, key, False)

    # -- request handlers ---------------------------------------------------

    def analyze_request(self, payload: dict) -> dict:
        source = payload.get("program")
        if not isinstance(source, str) or not source.strip():
            raise RequestError('body must carry {"program": "<appl source>"}')
        options = options_from_dict(payload.get("options"))
        pipeline, lock, key, warm = self.pipeline_for(source)
        with lock:
            result = pipeline.analyze(options)
        # ``warm`` travels as a header (see the handler): response *bodies*
        # for identical requests must be byte-identical.
        return {
            "ok": True,
            "program": key,
            "summary": result.summary(),
            "result": result.to_dict(),
        }, warm

    def batch_request(self, payload: dict) -> dict:
        programs = payload.get("programs")
        if not isinstance(programs, dict) or not programs:
            raise RequestError('body must carry {"programs": {name: source, ...}}')
        options = options_from_dict(payload.get("options"))
        jobs = payload.get("jobs")
        try:
            jobs = int(jobs) if jobs is not None else None
        except (TypeError, ValueError) as exc:
            raise RequestError(f"jobs must be an integer: {exc}") from exc
        workload = {}
        for name, source in programs.items():
            try:
                workload[name] = parse_program(source)
            except ParseError as exc:
                raise RequestError(f"program {name!r} does not parse: {exc}") from exc
        report = run_batch(workload, options=options, jobs=jobs, cache=self.cache)
        return {
            "ok": report.ok,
            "jobs": report.jobs,
            "elapsed_seconds": report.elapsed,
            "items": [
                {
                    "name": item.name,
                    "ok": item.ok,
                    **(
                        {"summary": item.result.summary()}
                        if item.ok
                        else {"error": item.error}
                    ),
                }
                for item in report.items
            ],
        }

    def health(self) -> dict:
        return {
            "status": "ok",
            "version": __version__,
            "uptime_seconds": time.time() - self.started,
            "requests": self.requests,
            "backends": available_backends(),
            "highs": highs_available(),
            "warm_pipelines": len(self._pipelines),
        }

    def cache_stats(self) -> dict:
        stats = {"enabled": self.cache is not None}
        if self.cache is not None:
            stats.update(self.cache.describe())
        stats["warm_pipelines"] = len(self._pipelines)
        return stats


class AnalysisHTTPServer(ThreadingHTTPServer):
    daemon_threads = True

    def __init__(self, address, service: AnalysisService):
        super().__init__(address, _Handler)
        self.service = service


class _Handler(BaseHTTPRequestHandler):
    server_version = f"repro-serve/{__version__}"
    protocol_version = "HTTP/1.1"

    @property
    def service(self) -> AnalysisService:
        return self.server.service  # type: ignore[attr-defined]

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        pass  # keep request logging out of the analysis output

    def _send_json(
        self, code: int, payload: dict, extra_headers: "dict[str, str] | None" = None
    ) -> None:
        body = json.dumps(payload, sort_keys=True).encode()
        self.send_response(code)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in (extra_headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _read_json(self) -> dict:
        length = int(self.headers.get("Content-Length") or 0)
        if length <= 0:
            raise RequestError("empty request body")
        try:
            payload = json.loads(self.rfile.read(length))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise RequestError(f"request body is not JSON: {exc}") from exc
        if not isinstance(payload, dict):
            raise RequestError("request body must be a JSON object")
        return payload

    def do_GET(self) -> None:
        self.service.requests += 1
        if self.path == "/health":
            self._send_json(200, self.service.health())
        elif self.path == "/cache/stats":
            self._send_json(200, self.service.cache_stats())
        else:
            self._send_json(404, {"ok": False, "error": f"no route {self.path}"})

    def do_POST(self) -> None:
        self.service.requests += 1
        if self.path not in ("/analyze", "/batch"):
            self._send_json(404, {"ok": False, "error": f"no route {self.path}"})
            return
        try:
            payload = self._read_json()
            if self.path == "/analyze":
                answer, warm = self.service.analyze_request(payload)
                self._send_json(
                    200, answer, {"X-Repro-Warm": "true" if warm else "false"}
                )
            else:
                self._send_json(200, self.service.batch_request(payload))
        except RequestError as exc:
            self._send_json(400, {"ok": False, "error": str(exc)})
        except Exception as exc:  # analysis failures: the request was valid
            self._send_json(
                422, {"ok": False, "error": f"{type(exc).__name__}: {exc}"}
            )


def make_server(
    host: str = "127.0.0.1",
    port: int = 8000,
    cache: ArtifactCache | None = None,
    max_pipelines: int = 128,
) -> AnalysisHTTPServer:
    """Build (but do not start) the server; port 0 picks a free port."""
    return AnalysisHTTPServer((host, port), AnalysisService(cache, max_pipelines))


def serve(
    host: str = "127.0.0.1",
    port: int = 8000,
    cache: ArtifactCache | None = None,
    max_pipelines: int = 128,
    out=None,
) -> int:
    """Run the server until interrupted (the ``repro serve`` entry point)."""
    server = make_server(host, port, cache, max_pipelines)
    bound = server.server_address
    if out is not None:
        where = cache.directory if cache is not None and cache.directory else "memory-only"
        print(
            f"repro serve listening on http://{bound[0]}:{bound[1]} "
            f"(cache: {where})",
            file=out,
        )
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.server_close()
    return 0


__all__ = [
    "AnalysisHTTPServer",
    "AnalysisService",
    "RequestError",
    "make_server",
    "options_from_dict",
    "serve",
]
