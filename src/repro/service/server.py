"""``repro serve``: the HTTP face of the durable analysis service.

Two serving modes share one process:

* **Synchronous** (always on): ``POST /analyze`` runs the request inline on
  a warm per-program pipeline and returns the bounds — unchanged from the
  original demo server, still byte-identical to the CLI.
* **Queued** (``--workers N`` / ``--db PATH``): requests become durable
  jobs in a SQLite/WAL :class:`~repro.service.store.JobStore` drained by a
  :class:`~repro.service.jobs.WorkerPool` of analysis processes.  A server
  crash loses nothing: on restart, leased-but-unacked jobs are recovered
  and the fleet resumes the queue.

Endpoints:

* ``POST /analyze`` — inline analysis (see above).
* ``POST /check`` — inline policy check: body ``{"program": src,
  "spec": "<assertions>", "options": {...}}``; analyzes on the same warm
  pipeline/cache path as ``/analyze`` and returns the per-assertion
  pass/fail/inconclusive document of ``repro check --json``.  Durable
  checks ride the queue as ``POST /jobs`` with ``"kind": "check"``.
* ``POST /jobs`` — enqueue: body ``{"program": src, "options": {...},
  "priority": 0, "idempotency_key": "...", "dedupe": false,
  "max_attempts": 3}``; responds 202 with the job id (200 when an
  idempotency key deduped to an existing job).  429 when the queue is at
  the ``--max-queued`` backpressure limit.
* ``GET /jobs/{id}`` — job status (state, attempts, retries, timings).
* ``GET /jobs/{id}/result`` — 200 with the result document once done;
  202 while pending/running; 200 with ``ok=false`` + error for
  dead-lettered jobs; 404 for unknown ids.
* ``POST /batch`` — with a fleet: every program is enqueued and the
  handler waits for the queue to finish them (durable fan-out — the jobs
  survive even if the client disconnects); without a fleet it falls back
  to the in-process batch executor.  Response shape is identical either
  way, plus a ``job_id`` per item in queued mode.
* ``GET /metrics`` — queue depth, per-state counts, retry/dead counters,
  cache hit rate, and p50/p99 analysis latency; JSON by default,
  Prometheus text with ``?format=prometheus`` (or ``Accept:
  text/plain``).  See :mod:`repro.service.metrics` for every field.
* ``GET /health`` — liveness plus backend/fleet facts.
* ``GET /cache/stats`` — artifact-cache counters.

``options`` accepts the CLI's vocabulary: ``moments``, ``degree``,
``degree_cap``, ``at`` (a ``{var: value}`` valuation), ``backend``,
``upper_only``, ``unit_cost``, ``lexicographic``, ``lp_bound``, ``check``.
"""

from __future__ import annotations

import json
import re
import signal
import time
from collections import OrderedDict
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from threading import Lock

from repro import __version__
from repro.analysis.pipeline import AnalysisPipeline
from repro.lang.parser import ParseError, parse_program
from repro.lp.backends import available_backends
from repro.lp.backends.incremental import highs_available
from repro.service.cache import ArtifactCache, program_key
from repro.service.executor import run_batch
from repro.service.jobs import (
    RequestError,
    WorkerPool,
    enqueue_analysis,
    job_idempotency_key,
    options_from_dict,
    wait_for_jobs,
)
from repro.service.metrics import ServiceMetrics
from repro.service.store import JobStore

_JOB_PATH = re.compile(r"^/jobs/(\d+)(/result)?$")


class AnalysisService:
    """Warm-pipeline pool + cache + (optionally) the durable queue/fleet,
    shared by every request thread."""

    def __init__(
        self,
        cache: ArtifactCache | None = None,
        max_pipelines: int = 128,
        store: JobStore | None = None,
        pool: WorkerPool | None = None,
        max_queued: int | None = None,
        batch_timeout: float = 600.0,
    ) -> None:
        self.cache = cache
        self.max_pipelines = max_pipelines
        self.store = store
        self.pool = pool
        self.max_queued = max_queued
        self.batch_timeout = batch_timeout
        self.started = time.time()
        self.requests = 0
        self.metrics = ServiceMetrics(
            store=store, cache=cache, pool=pool, service=self
        )
        self._pipelines: "OrderedDict[str, tuple[AnalysisPipeline, Lock]]" = (
            OrderedDict()
        )
        self._lock = Lock()

    # -- warm pipelines ------------------------------------------------------

    def pipeline_for(self, source: str) -> tuple[AnalysisPipeline, Lock, str, bool]:
        """(pipeline, its request lock, program hash, was it already warm).

        The per-pipeline lock serializes requests for the *same* program:
        the first computes, later identical requests hit the result cache
        and return the identical object — hence identical response bytes.
        Requests for different programs proceed concurrently.
        """
        try:
            program = parse_program(source)
        except ParseError as exc:
            raise RequestError(f"program does not parse: {exc}") from exc
        key = program_key(program)
        with self._lock:
            warm = self._pipelines.get(key)
            if warm is not None:
                self._pipelines.move_to_end(key)
                return (*warm, key, True)
            pipeline = AnalysisPipeline(program, artifacts=self.cache)
            pipeline._program_hash = key
            entry = (pipeline, Lock())
            self._pipelines[key] = entry
            while len(self._pipelines) > self.max_pipelines:
                self._pipelines.popitem(last=False)
            return (*entry, key, False)

    # -- synchronous analysis ------------------------------------------------

    def analyze_request(self, payload: dict) -> dict:
        source = payload.get("program")
        if not isinstance(source, str) or not source.strip():
            raise RequestError('body must carry {"program": "<appl source>"}')
        options = options_from_dict(payload.get("options"))
        pipeline, lock, key, warm = self.pipeline_for(source)
        with lock:
            result = pipeline.analyze(options)
        # ``warm`` travels as a header (see the handler): response *bodies*
        # for identical requests must be byte-identical.
        return {
            "ok": True,
            "program": key,
            "summary": result.summary(),
            "result": result.to_dict(),
        }, warm

    def check_request(self, payload: dict) -> tuple[dict, bool]:
        """``POST /check``: run a policy spec against one program, inline.

        Rides the same warm-pipeline + artifact-cache path as ``/analyze``
        (an identical program shares its pipeline and cached stages), and
        returns the byte-stable check document of ``repro check --json``.
        """
        from repro.policy.evaluate import evaluate_spec
        from repro.policy.parser import ParseError as SpecParseError
        from repro.policy.parser import parse_spec
        from repro.policy.report import check_to_dict
        from repro.service.jobs import check_options
        from repro.tail.bounds import costs_nonnegative

        source = payload.get("program")
        if not isinstance(source, str) or not source.strip():
            raise RequestError('body must carry {"program": "<appl source>"}')
        spec_text = payload.get("spec")
        if not isinstance(spec_text, str) or not spec_text.strip():
            raise RequestError('body must carry {"spec": "<assertions>"}')
        try:
            spec = parse_spec(spec_text)
        except SpecParseError as exc:
            raise RequestError(f"spec does not parse: {exc}") from exc
        options = check_options(spec, payload.get("options"))
        pipeline, lock, key, warm = self.pipeline_for(source)
        with lock:
            result = pipeline.analyze(options)
        check = evaluate_spec(
            spec,
            result,
            program=key,
            nonnegative_cost=costs_nonnegative(pipeline.program),
        )
        return {
            "ok": True,
            "program": key,
            "verdict": check.verdict,
            "check": check_to_dict(check),
        }, warm

    # -- job queue -----------------------------------------------------------

    def _require_store(self) -> JobStore:
        if self.store is None:
            raise RequestError(
                "this server runs without a job store; restart with"
                " --workers/--db to enable /jobs"
            )
        return self.store

    def _check_backpressure(self, adding: int = 1) -> None:
        if self.max_queued is None:
            return
        depth = self._require_store().depth()
        if depth + adding > self.max_queued:
            raise BackpressureError(
                f"queue depth {depth} + {adding} would exceed the"
                f" --max-queued limit of {self.max_queued}; retry later"
            )

    def enqueue_request(self, payload: dict) -> tuple[dict, bool]:
        """``POST /jobs`` → (response, deduped)."""
        store = self._require_store()
        self._check_backpressure()
        kind = payload.get("kind", "analyze")
        try:
            priority = int(payload.get("priority", 0))
            max_attempts = int(payload.get("max_attempts", 3))
        except (TypeError, ValueError) as exc:
            raise RequestError(f"bad priority/max_attempts: {exc}") from exc
        key = payload.get("idempotency_key")
        if key is not None and not isinstance(key, str):
            raise RequestError("idempotency_key must be a string")
        if kind == "analyze":
            job_id, deduped = enqueue_analysis(
                store,
                payload.get("program"),
                payload.get("options"),
                priority=priority,
                idempotency_key=key,
                dedupe=bool(payload.get("dedupe", False)),
                max_attempts=max_attempts,
            )
        elif kind == "check":
            from repro.service.jobs import check_payload

            body = check_payload(
                payload.get("program"), payload.get("spec"), payload.get("options")
            )
            if key is None and payload.get("dedupe"):
                key = job_idempotency_key(kind, body)
            job_id, deduped = store.enqueue(
                body,
                kind=kind,
                priority=priority,
                idempotency_key=key,
                max_attempts=max_attempts,
            )
        elif kind in ("sleep", "fail"):
            # Diagnostic kinds: deterministic load / failure injection for
            # smoke tests and fleet drills.
            body = {
                k: v for k, v in payload.items()
                if k in ("seconds", "message", "retryable", "timeout")
            }
            if key is None and payload.get("dedupe"):
                key = job_idempotency_key(kind, body)
            job_id, deduped = store.enqueue(
                body,
                kind=kind,
                priority=priority,
                idempotency_key=key,
                max_attempts=max_attempts,
            )
        else:
            raise RequestError(f"unknown job kind {kind!r}")
        job = store.get(job_id)
        return {
            "ok": True,
            "id": job_id,
            "state": job.state if job is not None else "queued",
            "deduped": deduped,
        }, deduped

    def job_status(self, job_id: int) -> dict | None:
        store = self._require_store()
        job = store.get(job_id)
        if job is None:
            return None
        return {"ok": True, **job.to_dict()}

    def job_result(self, job_id: int) -> tuple[int, dict] | None:
        """``GET /jobs/{id}/result`` → (http status, body) or None (404)."""
        store = self._require_store()
        job = store.get(job_id)
        if job is None:
            return None
        if job.state == "done":
            body = job.result if isinstance(job.result, dict) else {"value": job.result}
            return 200, {**body, "id": job.id, "state": "done"}
        if job.state == "dead":
            return 200, {
                "ok": False,
                "id": job.id,
                "state": "dead",
                "error": job.error or "dead-lettered",
                "attempts": job.attempts,
            }
        return 202, {
            "ok": False,
            "pending": True,
            "id": job.id,
            "state": job.state,
            "attempts": job.attempts,
        }

    # -- batch ---------------------------------------------------------------

    def batch_request(self, payload: dict) -> dict:
        programs = payload.get("programs")
        if not isinstance(programs, dict) or not programs:
            raise RequestError('body must carry {"programs": {name: source, ...}}')
        options = payload.get("options")
        options_from_dict(options)  # validate once, up front
        if self.store is not None and self.pool is not None:
            return self._batch_via_queue(programs, payload)
        return self._batch_inline(programs, payload)

    def _batch_via_queue(self, programs: dict, payload: dict) -> dict:
        """Durable fan-out: one job per program, drained by the fleet."""
        store = self._require_store()
        self._check_backpressure(adding=len(programs))
        try:
            priority = int(payload.get("priority", 0))
        except (TypeError, ValueError) as exc:
            raise RequestError(f"bad priority: {exc}") from exc
        try:
            timeout = float(payload.get("timeout", self.batch_timeout))
        except (TypeError, ValueError) as exc:
            raise RequestError(f"bad timeout: {exc}") from exc
        names = list(programs)
        ids = []
        for name in names:
            job_id, _ = enqueue_analysis(
                store,
                programs[name],
                payload.get("options"),
                priority=priority,
                dedupe=bool(payload.get("dedupe", False)),
            )
            ids.append(job_id)
        started = time.perf_counter()
        jobs = wait_for_jobs(store, ids, timeout=timeout)
        items = []
        for name, job_id, job in zip(names, ids, jobs):
            if job is None or not job.terminal:
                items.append({
                    "name": name,
                    "ok": False,
                    "job_id": job_id,
                    "error": f"timeout: job still {job.state if job else 'missing'}"
                    f" after {timeout:g}s",
                })
            elif job.state == "done" and isinstance(job.result, dict):
                items.append({
                    "name": name,
                    "ok": True,
                    "job_id": job_id,
                    "summary": job.result.get("summary"),
                })
            else:
                items.append({
                    "name": name,
                    "ok": False,
                    "job_id": job_id,
                    "error": job.error or "dead-lettered",
                })
        return {
            "ok": all(item["ok"] for item in items),
            "queued": True,
            "jobs": self.pool.workers if self.pool is not None else 0,
            "elapsed_seconds": time.perf_counter() - started,
            "items": items,
        }

    def _batch_inline(self, programs: dict, payload: dict) -> dict:
        """No fleet: the original in-process batch executor."""
        options = options_from_dict(payload.get("options"))
        jobs = payload.get("jobs")
        try:
            jobs = int(jobs) if jobs is not None else None
        except (TypeError, ValueError) as exc:
            raise RequestError(f"jobs must be an integer: {exc}") from exc
        workload = {}
        for name, source in programs.items():
            try:
                workload[name] = parse_program(source)
            except ParseError as exc:
                raise RequestError(f"program {name!r} does not parse: {exc}") from exc
        report = run_batch(workload, options=options, jobs=jobs, cache=self.cache)
        return {
            "ok": report.ok,
            "queued": False,
            "jobs": report.jobs,
            "elapsed_seconds": report.elapsed,
            "items": [
                {
                    "name": item.name,
                    "ok": item.ok,
                    **(
                        {"summary": item.result.summary()}
                        if item.ok
                        else {"error": item.error}
                    ),
                }
                for item in report.items
            ],
        }

    # -- introspection -------------------------------------------------------

    def health(self) -> dict:
        out = {
            "status": "ok",
            "version": __version__,
            "uptime_seconds": time.time() - self.started,
            "requests": self.requests,
            "backends": available_backends(),
            "highs": highs_available(),
            "warm_pipelines": len(self._pipelines),
            "queue": self.store is not None,
        }
        if self.store is not None:
            out["queue_depth"] = self.store.depth()
            try:
                from repro.soundness.campaign import campaign_metrics

                fuzz = campaign_metrics(self.store.path)
            except Exception:
                fuzz = None
            if fuzz is not None:
                out["fuzz_campaigns"] = {
                    "campaigns": fuzz["campaigns"],
                    "running": fuzz["running"],
                    "shards": fuzz["shards"],
                }
        if self.pool is not None:
            out["workers"] = {
                "configured": self.pool.workers,
                "alive": self.pool.alive(),
            }
        return out

    def cache_stats(self) -> dict:
        stats = {"enabled": self.cache is not None}
        if self.cache is not None:
            stats.update(self.cache.describe())
        stats["warm_pipelines"] = len(self._pipelines)
        return stats


class BackpressureError(RequestError):
    """Queue at the --max-queued limit; mapped to HTTP 429."""


class AnalysisHTTPServer(ThreadingHTTPServer):
    daemon_threads = True

    def __init__(self, address, service: AnalysisService):
        super().__init__(address, _Handler)
        self.service = service


class _Handler(BaseHTTPRequestHandler):
    server_version = f"repro-serve/{__version__}"
    protocol_version = "HTTP/1.1"

    @property
    def service(self) -> AnalysisService:
        return self.server.service  # type: ignore[attr-defined]

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        pass  # keep request logging out of the analysis output

    def _send_json(
        self, code: int, payload: dict, extra_headers: "dict[str, str] | None" = None
    ) -> None:
        body = json.dumps(payload, sort_keys=True).encode()
        self._send_bytes(code, body, "application/json", extra_headers)

    def _send_bytes(
        self,
        code: int,
        body: bytes,
        content_type: str,
        extra_headers: "dict[str, str] | None" = None,
    ) -> None:
        self.send_response(code)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        for name, value in (extra_headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _read_json(self) -> dict:
        length = int(self.headers.get("Content-Length") or 0)
        if length <= 0:
            raise RequestError("empty request body")
        try:
            payload = json.loads(self.rfile.read(length))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise RequestError(f"request body is not JSON: {exc}") from exc
        if not isinstance(payload, dict):
            raise RequestError("request body must be a JSON object")
        return payload

    # -- routing -------------------------------------------------------------

    def do_GET(self) -> None:
        self.service.requests += 1
        path, _, query = self.path.partition("?")
        try:
            if path == "/health":
                self._send_json(200, self.service.health())
            elif path == "/cache/stats":
                self._send_json(200, self.service.cache_stats())
            elif path == "/metrics":
                self._send_metrics(query)
            elif path.startswith("/jobs/"):
                self._get_job(path)
            else:
                self._send_json(404, {"ok": False, "error": f"no route {path}"})
        except BackpressureError as exc:
            self._send_json(429, {"ok": False, "error": str(exc)})
        except RequestError as exc:
            self._send_json(400, {"ok": False, "error": str(exc)})

    def _send_metrics(self, query: str) -> None:
        accept = self.headers.get("Accept", "")
        want_prom = "format=prom" in query or (
            "text/plain" in accept and "application/json" not in accept
        )
        if want_prom:
            text = self.service.metrics.render_prometheus()
            self._send_bytes(
                200, text.encode(), "text/plain; version=0.0.4; charset=utf-8"
            )
        else:
            self._send_json(200, self.service.metrics.snapshot())

    def _get_job(self, path: str) -> None:
        match = _JOB_PATH.match(path)
        if not match:
            self._send_json(404, {"ok": False, "error": f"no route {path}"})
            return
        job_id = int(match.group(1))
        if match.group(2):  # /jobs/{id}/result
            answer = self.service.job_result(job_id)
            if answer is None:
                self._send_json(404, {"ok": False, "error": f"no job {job_id}"})
            else:
                self._send_json(answer[0], answer[1])
        else:
            status = self.service.job_status(job_id)
            if status is None:
                self._send_json(404, {"ok": False, "error": f"no job {job_id}"})
            else:
                self._send_json(200, status)

    def do_POST(self) -> None:
        self.service.requests += 1
        if self.path not in ("/analyze", "/check", "/batch", "/jobs"):
            self._send_json(404, {"ok": False, "error": f"no route {self.path}"})
            return
        try:
            payload = self._read_json()
            if self.path == "/analyze":
                answer, warm = self.service.analyze_request(payload)
                self._send_json(
                    200, answer, {"X-Repro-Warm": "true" if warm else "false"}
                )
            elif self.path == "/check":
                answer, warm = self.service.check_request(payload)
                self._send_json(
                    200, answer, {"X-Repro-Warm": "true" if warm else "false"}
                )
            elif self.path == "/jobs":
                answer, deduped = self.service.enqueue_request(payload)
                self._send_json(200 if deduped else 202, answer)
            else:
                self._send_json(200, self.service.batch_request(payload))
        except BackpressureError as exc:
            self._send_json(429, {"ok": False, "error": str(exc)})
        except RequestError as exc:
            self._send_json(400, {"ok": False, "error": str(exc)})
        except Exception as exc:  # analysis failures: the request was valid
            self._send_json(
                422, {"ok": False, "error": f"{type(exc).__name__}: {exc}"}
            )


def make_server(
    host: str = "127.0.0.1",
    port: int = 8000,
    cache: ArtifactCache | None = None,
    max_pipelines: int = 128,
    store: JobStore | None = None,
    pool: WorkerPool | None = None,
    max_queued: int | None = None,
    batch_timeout: float = 600.0,
) -> AnalysisHTTPServer:
    """Build (but do not start) the server; port 0 picks a free port."""
    service = AnalysisService(
        cache,
        max_pipelines,
        store=store,
        pool=pool,
        max_queued=max_queued,
        batch_timeout=batch_timeout,
    )
    return AnalysisHTTPServer((host, port), service)


def serve(
    host: str = "127.0.0.1",
    port: int = 8000,
    cache: ArtifactCache | None = None,
    max_pipelines: int = 128,
    db: "str | None" = None,
    workers: int = 0,
    visibility: float = 60.0,
    max_queued: int | None = None,
    job_timeout: "float | None" = None,
    out=None,
) -> int:
    """Run the server until SIGINT/SIGTERM (the ``repro serve`` entry point).

    With ``workers > 0`` (or an explicit ``db``) the durable queue is on:
    expired leases from a previous crashed run are recovered before the
    fleet starts, so queued work resumes exactly where it stopped.  On
    SIGTERM the fleet drains gracefully (in-flight jobs are finished and
    acked) before the process exits.

    ``job_timeout`` caps each job's heartbeat runtime (a job payload's
    ``timeout`` key overrides it): past the cap the lease stops being
    renewed, so a hung job is reclaimed and re-delivered instead of
    holding its lease until someone kills the worker.
    """
    store = pool = None
    if workers > 0 or db is not None:
        if db is None:
            from repro.service.cache import default_cache_dir

            db = str(default_cache_dir() / "jobs.sqlite3")
        store = JobStore(db, visibility=visibility)
        resumed = store.recover_expired()
        if out is not None and resumed:
            print(f"recovered {resumed} expired lease(s) from a previous run", file=out)
        if workers > 0:
            cache_dir = (
                str(cache.directory.parent)
                if cache is not None and cache.directory is not None
                else None
            )
            pool = WorkerPool(
                db, workers, cache_dir, visibility=visibility,
                job_timeout=job_timeout,
            ).start()
    server = make_server(
        host, port, cache, max_pipelines, store=store, pool=pool,
        max_queued=max_queued,
    )
    bound = server.server_address
    if out is not None:
        where = (
            cache.directory if cache is not None and cache.directory else "memory-only"
        )
        fleet = f", {workers} workers on {db}" if pool is not None else (
            f", queue on {db}" if store is not None else ""
        )
        print(
            f"repro serve listening on http://{bound[0]}:{bound[1]} "
            f"(cache: {where}{fleet})",
            file=out,
            flush=True,
        )

    stop = {"signal": None}

    def _on_signal(signum, frame):  # noqa: ARG001 - signal signature
        stop["signal"] = signum
        # shutdown() must not run on the serve_forever thread; we're in a
        # signal handler on the main thread, which *is* that thread, so
        # defer to a helper thread.
        import threading

        threading.Thread(target=server.shutdown, daemon=True).start()

    try:
        signal.signal(signal.SIGTERM, _on_signal)
    except ValueError:
        pass  # not the main thread (tests drive serve() directly)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.server_close()
        if pool is not None:
            # Graceful drain: each worker finishes + acks its job first.
            pool.stop(graceful=True)
        if store is not None:
            store.close()
        if out is not None:
            print("repro serve: shut down cleanly", file=out, flush=True)
    return 0


__all__ = [
    "AnalysisHTTPServer",
    "AnalysisService",
    "BackpressureError",
    "RequestError",
    "make_server",
    "options_from_dict",
    "serve",
]
