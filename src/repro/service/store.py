"""Durable job store: a SQLite/WAL-backed queue the worker fleet drains.

The service layer's crash-safety story lives here.  A job is a row; every
state transition is one SQLite transaction, so a killed worker, a killed
server, or a yanked power cord can lose at most the *lease* on a job,
never the job itself and never an acknowledged result.

Job lifecycle::

                 enqueue                    lease
    (idempotency dedupe) --> queued -----------------> leased
                               ^                      |   |  \
                               |  nack (attempts left)|   |   ack
                               |  or visibility expiry|   |    \
                               +----------------------+   |     --> done
                                 (not_before = backoff)   |
                                                          | nack, attempts
                                                          v exhausted
                                                         dead

* **queued** — waiting for a worker; ``not_before`` delays retries
  (exponential backoff).
* **leased** — a worker holds it until ``lease_deadline``; heartbeats
  extend the deadline.  If the worker dies, the lease expires and the next
  ``lease()`` call atomically re-queues it — the job is re-delivered, not
  lost.
* **done** — terminal; ``result`` holds the JSON payload the worker acked.
* **dead** — terminal dead-letter: the job failed ``max_attempts`` times
  (or was nacked as non-retryable); ``error`` records the last failure.

Concurrency model: every mutating read-modify-write runs under ``BEGIN
IMMEDIATE``, which takes the single SQLite write lock up front — two
workers (threads *or* processes; WAL mode is cross-process) can never
lease the same job, double-recover an expired lease, or double-apply an
idempotent enqueue.  ``ack``/``nack``/``extend_lease`` are fenced by the
``(owner, attempt)`` pair recorded at lease time, so a worker whose lease
expired (and whose job was re-delivered elsewhere) gets ``False`` back
instead of clobbering the new owner's run.

The store object is cheap and connection-per-thread; open one per process
against the same path and SQLite arbitrates.
"""

from __future__ import annotations

import json
import os
import sqlite3
import threading
import time
from dataclasses import dataclass
from pathlib import Path

from repro import faults

#: Terminal states — a job here is never picked up again.
TERMINAL_STATES = ("done", "dead")
#: Every state a job row can be in.
JOB_STATES = ("queued", "leased", "done", "dead")

_SCHEMA = """
CREATE TABLE IF NOT EXISTS jobs (
    id              INTEGER PRIMARY KEY AUTOINCREMENT,
    kind            TEXT    NOT NULL DEFAULT 'analyze',
    payload         TEXT    NOT NULL,
    priority        INTEGER NOT NULL DEFAULT 0,
    idempotency_key TEXT,
    state           TEXT    NOT NULL DEFAULT 'queued',
    attempts        INTEGER NOT NULL DEFAULT 0,
    max_attempts    INTEGER NOT NULL DEFAULT 3,
    not_before      REAL    NOT NULL DEFAULT 0,
    lease_owner     TEXT,
    lease_deadline  REAL,
    enqueued_at     REAL    NOT NULL,
    started_at      REAL,
    finished_at     REAL,
    result          TEXT,
    error           TEXT,
    retries         INTEGER NOT NULL DEFAULT 0
);
CREATE UNIQUE INDEX IF NOT EXISTS jobs_idempotency
    ON jobs(idempotency_key) WHERE idempotency_key IS NOT NULL;
CREATE INDEX IF NOT EXISTS jobs_ready
    ON jobs(state, not_before, priority, id);
"""


@dataclass
class Job:
    """One job row, decoded.  ``payload``/``result`` are JSON values."""

    id: int
    kind: str
    payload: object
    priority: int
    idempotency_key: str | None
    state: str
    attempts: int
    max_attempts: int
    not_before: float
    lease_owner: str | None
    lease_deadline: float | None
    enqueued_at: float
    started_at: float | None
    finished_at: float | None
    result: object | None
    error: str | None
    retries: int

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_STATES

    @property
    def run_seconds(self) -> float | None:
        """Wall time of the successful run (analysis latency)."""
        if self.started_at is None or self.finished_at is None:
            return None
        return self.finished_at - self.started_at

    @property
    def wait_seconds(self) -> float | None:
        """Time spent queued before the (last) lease."""
        if self.started_at is None:
            return None
        return self.started_at - self.enqueued_at

    def to_dict(self) -> dict:
        return {
            "id": self.id,
            "kind": self.kind,
            "priority": self.priority,
            "idempotency_key": self.idempotency_key,
            "state": self.state,
            "attempts": self.attempts,
            "max_attempts": self.max_attempts,
            "retries": self.retries,
            "enqueued_at": self.enqueued_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "run_seconds": self.run_seconds,
            "error": self.error,
        }


def _decode(row: sqlite3.Row) -> Job:
    return Job(
        id=row["id"],
        kind=row["kind"],
        payload=json.loads(row["payload"]),
        priority=row["priority"],
        idempotency_key=row["idempotency_key"],
        state=row["state"],
        attempts=row["attempts"],
        max_attempts=row["max_attempts"],
        not_before=row["not_before"],
        lease_owner=row["lease_owner"],
        lease_deadline=row["lease_deadline"],
        enqueued_at=row["enqueued_at"],
        started_at=row["started_at"],
        finished_at=row["finished_at"],
        result=json.loads(row["result"]) if row["result"] is not None else None,
        error=row["error"],
        retries=row["retries"],
    )


class JobStore:
    """Durable priority queue over one SQLite file (see module docstring).

    ``retry_base``/``retry_cap`` shape the exponential backoff applied by
    :meth:`nack`: the n-th retry waits ``min(retry_base * 2**(n-1),
    retry_cap)`` seconds.  ``visibility`` is the default lease length.
    """

    def __init__(
        self,
        path: "str | os.PathLike",
        *,
        visibility: float = 60.0,
        retry_base: float = 0.25,
        retry_cap: float = 60.0,
        busy_timeout: float = 30.0,
    ) -> None:
        self.path = Path(path)
        self.visibility = visibility
        self.retry_base = retry_base
        self.retry_cap = retry_cap
        self._busy_ms = int(busy_timeout * 1000)
        self._local = threading.local()
        if self.path.parent and not self.path.parent.exists():
            self.path.parent.mkdir(parents=True, exist_ok=True)
        # executescript manages its own transaction (implicit COMMIT first).
        self._conn().executescript(_SCHEMA)

    # -- connections --------------------------------------------------------

    def _conn(self) -> sqlite3.Connection:
        conn = getattr(self._local, "conn", None)
        if conn is None:
            conn = sqlite3.connect(
                self.path, timeout=self._busy_ms / 1000.0, isolation_level=None
            )
            conn.row_factory = sqlite3.Row
            conn.execute("PRAGMA journal_mode=WAL")
            conn.execute("PRAGMA synchronous=NORMAL")
            conn.execute(f"PRAGMA busy_timeout={self._busy_ms}")
            self._local.conn = conn
        return conn

    class _tx_ctx:
        """``BEGIN IMMEDIATE`` transaction: the write lock is taken up
        front, so every read inside sees the state it will modify."""

        def __init__(self, conn: sqlite3.Connection):
            self.conn = conn

        def __enter__(self) -> sqlite3.Connection:
            # Injected before BEGIN so a fired fault aborts the transaction
            # cleanly — nothing is left holding the write lock (models a
            # busy/erroring disk at the point SQLite would acquire it).
            faults.check("store.tx")
            self.conn.execute("BEGIN IMMEDIATE")
            return self.conn

        def __exit__(self, exc_type, exc, tb) -> None:
            if exc_type is None:
                self.conn.execute("COMMIT")
            else:
                self.conn.execute("ROLLBACK")

    def _tx(self) -> "_tx_ctx":
        return self._tx_ctx(self._conn())

    def close(self) -> None:
        conn = getattr(self._local, "conn", None)
        if conn is not None:
            conn.close()
            self._local.conn = None

    # -- enqueue ------------------------------------------------------------

    def enqueue(
        self,
        payload: object,
        *,
        kind: str = "analyze",
        priority: int = 0,
        idempotency_key: str | None = None,
        max_attempts: int = 3,
        not_before: float = 0.0,
    ) -> tuple[int, bool]:
        """Add a job; returns ``(job_id, deduped)``.

        With an ``idempotency_key``, a concurrent or repeated enqueue of
        the same key returns the *existing* job's id with ``deduped=True``
        — exactly one row ever exists per key, enforced by a unique index
        inside the same transaction that inserts.
        """
        if max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")
        body = json.dumps(payload, sort_keys=True)
        now = time.time()
        with self._tx() as conn:
            if idempotency_key is not None:
                row = conn.execute(
                    "SELECT id FROM jobs WHERE idempotency_key = ?",
                    (idempotency_key,),
                ).fetchone()
                if row is not None:
                    return row["id"], True
            cursor = conn.execute(
                "INSERT INTO jobs (kind, payload, priority, idempotency_key,"
                " state, max_attempts, not_before, enqueued_at)"
                " VALUES (?, ?, ?, ?, 'queued', ?, ?, ?)",
                (kind, body, priority, idempotency_key, max_attempts,
                 not_before, now),
            )
            return cursor.lastrowid, False

    # -- lease / ack / nack --------------------------------------------------

    def lease(
        self, owner: str, *, visibility: float | None = None, now: float | None = None
    ) -> Job | None:
        """Atomically claim the readiest job (or ``None`` if the queue is
        drained).

        Highest ``priority`` first, then FIFO by id.  Expired leases are
        re-queued *inside the same transaction* before picking, so a
        crashed worker's job is re-delivered to exactly one new owner —
        there is no window where two callers can both see it as
        recoverable.
        """
        if now is None:
            now = time.time()
        timeout = self.visibility if visibility is None else visibility
        with self._tx() as conn:
            self._recover_locked(conn, now)
            row = conn.execute(
                "SELECT * FROM jobs WHERE state = 'queued' AND not_before <= ?"
                " ORDER BY priority DESC, id ASC LIMIT 1",
                (now,),
            ).fetchone()
            if row is None:
                return None
            conn.execute(
                "UPDATE jobs SET state = 'leased', lease_owner = ?,"
                " lease_deadline = ?, attempts = attempts + 1, started_at = ?"
                " WHERE id = ?",
                (owner, now + timeout, now, row["id"]),
            )
            fresh = conn.execute(
                "SELECT * FROM jobs WHERE id = ?", (row["id"],)
            ).fetchone()
            return _decode(fresh)

    def extend_lease(
        self, job_id: int, owner: str, *, visibility: float | None = None
    ) -> bool:
        """Heartbeat: push the deadline out.  ``False`` if the lease is no
        longer ours (expired and re-delivered, or job finished)."""
        timeout = self.visibility if visibility is None else visibility
        with self._tx() as conn:
            cursor = conn.execute(
                "UPDATE jobs SET lease_deadline = ? WHERE id = ? AND"
                " state = 'leased' AND lease_owner = ?",
                (time.time() + timeout, job_id, owner),
            )
            return cursor.rowcount == 1

    def ack(self, job_id: int, owner: str, result: object) -> bool:
        """Commit a successful result.  Owner-fenced: a worker whose lease
        expired (job re-delivered) gets ``False`` and must discard its
        result — the new owner's ack wins.  Once this returns ``True`` the
        result is on disk and survives any crash."""
        body = json.dumps(result, sort_keys=True)
        with self._tx() as conn:
            cursor = conn.execute(
                "UPDATE jobs SET state = 'done', result = ?, finished_at = ?,"
                " lease_owner = NULL, lease_deadline = NULL, error = NULL"
                " WHERE id = ? AND state = 'leased' AND lease_owner = ?",
                (body, time.time(), job_id, owner),
            )
            return cursor.rowcount == 1

    def nack(
        self, job_id: int, owner: str, error: str, *, retryable: bool = True
    ) -> bool:
        """Record a failure.  Retries remaining → back to ``queued`` with
        exponential backoff; exhausted (or ``retryable=False``) → ``dead``.
        Owner-fenced like :meth:`ack`."""
        now = time.time()
        with self._tx() as conn:
            row = conn.execute(
                "SELECT attempts, max_attempts FROM jobs WHERE id = ? AND"
                " state = 'leased' AND lease_owner = ?",
                (job_id, owner),
            ).fetchone()
            if row is None:
                return False
            if retryable and row["attempts"] < row["max_attempts"]:
                delay = min(
                    self.retry_base * (2.0 ** (row["attempts"] - 1)),
                    self.retry_cap,
                )
                conn.execute(
                    "UPDATE jobs SET state = 'queued', lease_owner = NULL,"
                    " lease_deadline = NULL, not_before = ?, error = ?,"
                    " retries = retries + 1 WHERE id = ?",
                    (now + delay, error, job_id),
                )
            else:
                conn.execute(
                    "UPDATE jobs SET state = 'dead', lease_owner = NULL,"
                    " lease_deadline = NULL, finished_at = ?, error = ?"
                    " WHERE id = ?",
                    (now, error, job_id),
                )
            return True

    # -- crash recovery ------------------------------------------------------

    def _recover_locked(self, conn: sqlite3.Connection, now: float) -> int:
        """Re-queue expired leases (caller holds the write transaction).

        An exhausted job whose *lease* expired still gets one more
        delivery — the attempt was charged at lease time but never ran to
        a verdict; dead-lettering is the verdict of a nack, not a crash.
        That grace is bounded, though: a job whose lease expires *again*
        on the delivery past its budget is presumed hung (wedged worker,
        runtime cap exceeded) and dead-letters here, or it would ping-pong
        between stuck workers forever."""
        conn.execute(
            "UPDATE jobs SET state = 'dead', lease_owner = NULL,"
            " lease_deadline = NULL, finished_at = ?,"
            " error = 'lease expired after ' || attempts || ' deliveries;"
            " job presumed hung (runtime cap exceeded or worker wedged)'"
            " WHERE state = 'leased' AND lease_deadline < ?"
            " AND attempts > max_attempts",
            (now, now),
        )
        cursor = conn.execute(
            "UPDATE jobs SET state = 'queued', lease_owner = NULL,"
            " lease_deadline = NULL, not_before = ?, retries = retries + 1"
            " WHERE state = 'leased' AND lease_deadline < ?",
            (now, now),
        )
        return cursor.rowcount

    def recover_expired(self, now: float | None = None) -> int:
        """Re-queue every job whose lease expired; returns how many.
        Called on server start so leased-but-unacked jobs from a crashed
        fleet resume, and implicitly by every :meth:`lease`."""
        if now is None:
            now = time.time()
        with self._tx() as conn:
            return self._recover_locked(conn, now)

    def requeue_dead(self) -> int:
        """Ops escape hatch: give every dead-letter job a fresh budget."""
        with self._tx() as conn:
            cursor = conn.execute(
                "UPDATE jobs SET state = 'queued', attempts = 0,"
                " not_before = 0, finished_at = NULL WHERE state = 'dead'"
            )
            return cursor.rowcount

    # -- queries -------------------------------------------------------------

    def get(self, job_id: int) -> Job | None:
        row = self._conn().execute(
            "SELECT * FROM jobs WHERE id = ?", (job_id,)
        ).fetchone()
        return _decode(row) if row is not None else None

    def counts(self) -> dict[str, int]:
        """``{state: rows}`` over all four states (zeros included)."""
        counts = dict.fromkeys(JOB_STATES, 0)
        for row in self._conn().execute(
            "SELECT state, COUNT(*) AS n FROM jobs GROUP BY state"
        ):
            counts[row["state"]] = row["n"]
        return counts

    def counts_by_kind(self) -> dict[str, dict[str, int]]:
        """``{kind: {state: rows}}`` — the /metrics breakdown that
        separates campaign shard jobs from ordinary analyses."""
        out: dict[str, dict[str, int]] = {}
        for row in self._conn().execute(
            "SELECT kind, state, COUNT(*) AS n FROM jobs GROUP BY kind, state"
        ):
            out.setdefault(row["kind"], dict.fromkeys(JOB_STATES, 0))[
                row["state"]
            ] = row["n"]
        return out

    def depth(self) -> int:
        """Jobs still owed work: queued + leased."""
        row = self._conn().execute(
            "SELECT COUNT(*) AS n FROM jobs WHERE state IN ('queued', 'leased')"
        ).fetchone()
        return row["n"]

    def totals(self) -> dict[str, int]:
        """Lifetime counters for /metrics: enqueued, retried, attempts."""
        row = self._conn().execute(
            "SELECT COUNT(*) AS enqueued, COALESCE(SUM(retries), 0) AS retried,"
            " COALESCE(SUM(attempts), 0) AS attempts FROM jobs"
        ).fetchone()
        return {
            "enqueued": row["enqueued"],
            "retried": row["retried"],
            "attempts": row["attempts"],
        }

    def resilience_totals(self) -> dict[str, int]:
        """Timeout/degradation counters for /metrics, derived from the
        rows themselves (durable, like every other queue metric).

        ``timeouts`` counts jobs whose *last recorded* failure was an
        analysis deadline (the marker string is the fixed prefix of every
        :class:`~repro.deadline.AnalysisTimeout` message); ``timeout_dead``
        is the subset that dead-lettered; ``degraded`` counts done jobs
        whose result carries a graceful-degradation provenance block.
        """
        conn = self._conn()
        marker = "%analysis deadline exceeded%"
        timeouts = conn.execute(
            "SELECT COUNT(*) AS n FROM jobs WHERE error LIKE ?", (marker,)
        ).fetchone()["n"]
        timeout_dead = conn.execute(
            "SELECT COUNT(*) AS n FROM jobs WHERE state = 'dead'"
            " AND error LIKE ?",
            (marker,),
        ).fetchone()["n"]
        degraded = conn.execute(
            "SELECT COUNT(*) AS n FROM jobs WHERE state = 'done'"
            " AND result LIKE ?",
            ('%"degraded"%',),
        ).fetchone()["n"]
        return {
            "timeouts": timeouts,
            "timeout_dead": timeout_dead,
            "degraded": degraded,
        }

    def run_latencies(self, limit: int = 1024) -> list[float]:
        """Run seconds of the most recently finished ``done`` jobs (newest
        first) — the sample /metrics derives p50/p99 analysis latency from.
        Durable: percentiles survive a server restart because the sample
        is the store itself."""
        rows = self._conn().execute(
            "SELECT finished_at - started_at AS dt FROM jobs"
            " WHERE state = 'done' AND started_at IS NOT NULL"
            " ORDER BY finished_at DESC LIMIT ?",
            (limit,),
        ).fetchall()
        return [max(row["dt"], 0.0) for row in rows]

    def iter_jobs(self, ids: "list[int]") -> list[Job | None]:
        """Fetch many jobs by id (order preserved, ``None`` for unknown)."""
        if not ids:
            return []
        marks = ",".join("?" for _ in ids)
        rows = self._conn().execute(
            f"SELECT * FROM jobs WHERE id IN ({marks})", tuple(ids)
        ).fetchall()
        by_id = {row["id"]: _decode(row) for row in rows}
        return [by_id.get(i) for i in ids]

    # -- maintenance ---------------------------------------------------------

    def purge_terminal(self, older_than_seconds: float = 7 * 24 * 3600.0) -> int:
        """Delete done/dead rows finished more than ``older_than_seconds``
        ago (the runbook's retention knob); returns rows removed."""
        cutoff = time.time() - older_than_seconds
        with self._tx() as conn:
            cursor = conn.execute(
                "DELETE FROM jobs WHERE state IN ('done', 'dead')"
                " AND finished_at IS NOT NULL AND finished_at < ?",
                (cutoff,),
            )
            return cursor.rowcount

    def vacuum(self) -> None:
        """Reclaim file space after a purge (WAL checkpoint + VACUUM)."""
        conn = self._conn()
        conn.execute("PRAGMA wal_checkpoint(TRUNCATE)")
        conn.execute("VACUUM")


__all__ = ["Job", "JobStore", "JOB_STATES", "TERMINAL_STATES"]
