"""Sharded batch executor: a registry-scale workload over threads or cores.

``run_batch`` runs a named workload of programs through the analysis
pipeline with three properties the plain ``ThreadPoolExecutor`` loop of
PR 1 lacked:

* **Process sharding.**  ``executor="process"`` distributes programs over a
  :class:`~concurrent.futures.ProcessPoolExecutor`.  The derivation stages
  are pure Python and GIL-bound, so on multi-core machines process workers
  scale where threads cannot.  Workers are handed the *canonical text* of
  each program (:func:`repro.lang.printer.canonical_program`) rather than a
  pickled AST — the text is the program's content address, and re-parsing
  it is far cheaper than one derivation.  Each worker owns a private
  in-memory pipeline cache; when the shared :class:`ArtifactCache` has a
  disk directory, every worker reads and writes the same store, so repeated
  programs (and repeated *batches*) pay each stage once per machine, not
  once per worker.
* **Per-program error isolation.**  One infeasible or ill-formed program
  does not abort the batch: its :class:`BatchItem` records the error and
  the rest of the workload completes.  ``BatchReport.ok`` is False iff
  anything failed (the CLI maps that to a non-zero exit code).
* **Deterministic ordering.**  Results are reported in workload order no
  matter which worker finished first.

**One worker budget.**  The batch pool and the LP block-solve pool
(:mod:`repro.lp.parallel`) never nest: ``--workers`` takes precedence over
``--lp-jobs``.  In process mode every batch worker runs its analyses with
``lp_jobs`` forced to 1 (and drops any fork-inherited pool reference), so
the machine runs at most ``--workers`` solver processes; ``--lp-jobs``
only takes effect in thread mode or single-program runs, where all batch
threads share the one process-wide LP pool — ``--lp-jobs`` workers total,
not per program.
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Iterable, Mapping

from repro.analysis.pipeline import AnalysisOptions, AnalysisPipeline
from repro.analysis.results import MomentBoundResult
from repro.lang.ast import Program
from repro.lang.printer import canonical_program
from repro.service.cache import ArtifactCache

EXECUTORS = ("thread", "process", "queue")


@dataclass
class BatchItem:
    """Outcome of one program in a batch."""

    name: str
    ok: bool
    result: MomentBoundResult | None = None
    error: str | None = None
    #: The original exception object (thread executor only; exceptions from
    #: process workers travel as strings).
    exception: BaseException | None = None
    seconds: float = 0.0
    #: Queue executor only: the durable job id and the worker's JSON result
    #: document (``{"summary": ..., "result": <to_dict()>}``) — the
    #: in-memory ``result`` object never crosses the store.
    job_id: int | None = None
    payload: dict | None = None

    @property
    def summary(self) -> str | None:
        """The result's summary text, whichever executor produced it."""
        if self.result is not None:
            return self.result.summary()
        if self.payload is not None:
            return self.payload.get("summary")
        return None


@dataclass
class BatchReport:
    """All outcomes, in workload order, plus batch-level accounting."""

    items: list[BatchItem] = field(default_factory=list)
    executor: str = "thread"
    jobs: int = 1
    elapsed: float = 0.0

    @property
    def ok(self) -> bool:
        return all(item.ok for item in self.items)

    @property
    def failures(self) -> list[BatchItem]:
        return [item for item in self.items if not item.ok]

    @property
    def results(self) -> dict[str, MomentBoundResult]:
        """Successful results by name (workload order preserved)."""
        return {item.name: item.result for item in self.items if item.ok}


def _normalize(
    programs: "Mapping | Iterable[tuple[str, Program]]",
    defaults: AnalysisOptions,
) -> list[tuple[str, Program, AnalysisOptions]]:
    if not isinstance(programs, Mapping):
        programs = dict(programs)
    workload = []
    for name, entry in programs.items():
        if isinstance(entry, tuple):
            program, options = entry
        else:
            program, options = entry, defaults
        workload.append((name, program, options))
    return workload


def run_batch(
    programs: "Mapping | Iterable[tuple[str, Program]]",
    options: AnalysisOptions | None = None,
    jobs: int | None = None,
    executor: str = "thread",
    cache: ArtifactCache | None = None,
    store=None,
    timeout: float = 600.0,
) -> BatchReport:
    """Analyze a named workload; see the module docstring for semantics.

    ``executor="queue"`` makes the batch a thin client of the durable
    :class:`~repro.service.store.JobStore`: every program is enqueued as a
    job and the call blocks until the queue finishes them.  With ``store``
    given, an external fleet (a running ``repro serve --workers N``) does
    the work; without one, an ephemeral drain-and-exit
    :class:`~repro.service.jobs.WorkerPool` over a temporary database is
    spun up just for this batch.  Either way the work survives worker
    crashes (lease expiry re-delivers) and failed programs come back as
    structured ``BatchItem`` errors, not exceptions.
    """
    if executor not in EXECUTORS:
        raise ValueError(f"unknown executor {executor!r}; expected one of {EXECUTORS}")
    workload = _normalize(programs, options or AnalysisOptions())
    max_workers = jobs if jobs and jobs > 0 else min(8, len(workload) or 1)
    report = BatchReport(executor=executor, jobs=max_workers)
    start = time.perf_counter()
    if executor == "process":
        _run_processes(workload, max_workers, cache, report)
    elif executor == "queue":
        _run_queue(workload, max_workers, cache, report, store, timeout)
    else:
        _run_threads(workload, max_workers, cache, report)
    report.elapsed = time.perf_counter() - start
    return report


# -- thread mode ------------------------------------------------------------


def _run_threads(workload, max_workers, cache, report) -> None:
    def job(program, opts) -> tuple[MomentBoundResult, float]:
        started = time.perf_counter()
        result = AnalysisPipeline(program, artifacts=cache).analyze(opts)
        return result, time.perf_counter() - started

    with ThreadPoolExecutor(max_workers=max_workers) as pool:
        futures = [
            (name, pool.submit(job, program, opts))
            for name, program, opts in workload
        ]
        for name, future in futures:
            try:
                result, seconds = future.result()
                item = BatchItem(name=name, ok=True, result=result, seconds=seconds)
            except Exception as exc:
                item = BatchItem(
                    name=name,
                    ok=False,
                    error=f"{type(exc).__name__}: {exc}",
                    exception=exc,
                )
            report.items.append(item)


# -- process mode ------------------------------------------------------------

#: Per-worker state, built once by the pool initializer: the worker's own
#: ArtifactCache (private memory LRU, shared disk directory).
_WORKER_CACHE: ArtifactCache | None = None


def _init_worker(cache_dir: "str | None", disk: bool) -> None:
    global _WORKER_CACHE
    _WORKER_CACHE = ArtifactCache(cache_dir, disk=disk) if disk or cache_dir else None
    # A forked worker may inherit the parent's LP worker-pool reference;
    # using it would interleave two processes on one pipe, and closing it
    # would tear down the parent's workers.  Drop the reference — batch
    # workers run their LP solves in-process (lp_jobs forced to 1 below).
    from repro.lp.parallel import forget_pool

    forget_pool()


def _worker_job(name: str, source: str, options: AnalysisOptions):
    """Runs in a pool worker; must stay a module-level function (pickled by
    reference) and must not raise — errors travel home as strings."""
    from dataclasses import replace

    from repro.lang.parser import parse_program

    started = time.perf_counter()
    try:
        program = parse_program(source)
        # No nested pools: the batch's process shards are the whole worker
        # budget (--workers wins over --lp-jobs; see the module docstring).
        if options.lp_jobs != 1:
            options = replace(options, lp_jobs=1)
        result = AnalysisPipeline(program, artifacts=_WORKER_CACHE).analyze(options)
        return name, result, None, time.perf_counter() - started
    except Exception as exc:
        return (
            name,
            None,
            f"{type(exc).__name__}: {exc}",
            time.perf_counter() - started,
        )


def _run_processes(workload, max_workers, cache, report) -> None:
    cache_dir = None
    disk = False
    if cache is not None and cache.directory is not None:
        # Hand workers the *parent* of the versioned subdirectory — each
        # worker's ArtifactCache re-derives ``v<format>`` itself.
        cache_dir = str(cache.directory.parent)
        disk = True
    sources = [
        (name, canonical_program(program), opts) for name, program, opts in workload
    ]
    with ProcessPoolExecutor(
        max_workers=max_workers,
        initializer=_init_worker,
        initargs=(cache_dir, disk),
    ) as pool:
        # Executor.map yields results in submission order regardless of
        # which worker finishes first — workload order is preserved.
        for name, result, error, seconds in pool.map(
            _worker_job,
            [s[0] for s in sources],
            [s[1] for s in sources],
            [s[2] for s in sources],
        ):
            report.items.append(
                BatchItem(
                    name=name,
                    ok=error is None,
                    result=result,
                    error=error,
                    seconds=seconds,
                )
            )


# -- queue mode --------------------------------------------------------------


def _run_queue(workload, max_workers, cache, report, store, timeout) -> None:
    """The batch as a thin client of the durable job store.

    With an external ``store`` the jobs are drained by whatever fleet is
    attached to it (e.g. a running ``repro serve --workers N``).  Without
    one, an ephemeral store + drain-and-exit fleet lives exactly as long
    as this batch.
    """
    import tempfile
    from pathlib import Path

    from repro.service.jobs import WorkerPool, options_to_dict, wait_for_jobs
    from repro.service.store import JobStore

    tmp = None
    pool = None
    owned = store is None
    try:
        if owned:
            tmp = tempfile.TemporaryDirectory(prefix="repro-batch-queue-")
            store = JobStore(Path(tmp.name) / "jobs.sqlite3")
        names, ids = [], []
        for name, program, opts in workload:
            payload = {
                "program": canonical_program(program),
                "options": options_to_dict(opts),
            }
            job_id, _ = store.enqueue(payload, kind="analyze")
            names.append(name)
            ids.append(job_id)
        if owned:
            cache_dir = None
            if cache is not None and cache.directory is not None:
                cache_dir = str(cache.directory.parent)
            pool = WorkerPool(
                store.path, max_workers, cache_dir,
                poll=0.05, drain_and_exit=True,
            ).start()
        jobs = wait_for_jobs(store, ids, timeout=timeout)
        for name, job_id, job in zip(names, ids, jobs):
            if job is None or not job.terminal:
                state = job.state if job is not None else "missing"
                item = BatchItem(
                    name=name, ok=False, job_id=job_id,
                    error=f"timeout: job still {state} after {timeout:g}s",
                )
            elif job.state == "done" and isinstance(job.result, dict):
                item = BatchItem(
                    name=name, ok=True, job_id=job_id,
                    payload=job.result, seconds=job.run_seconds or 0.0,
                )
            else:
                item = BatchItem(
                    name=name, ok=False, job_id=job_id,
                    error=job.error or "dead-lettered",
                    seconds=job.run_seconds or 0.0,
                )
            report.items.append(item)
    finally:
        if pool is not None:
            pool.stop(graceful=True, timeout=10.0)
        if owned and store is not None:
            store.close()
        if tmp is not None:
            tmp.cleanup()


__all__ = ["BatchItem", "BatchReport", "EXECUTORS", "run_batch"]
