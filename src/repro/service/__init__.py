"""Analysis service layer: persistent caching, batch execution, serving.

The pipeline (:mod:`repro.analysis.pipeline`) made the per-stage artifacts
explicit; this package makes them *durable* and *shared*:

* :mod:`repro.service.cache` — a content-addressed artifact store: programs
  are keyed by the SHA-256 of their canonical text
  (:func:`repro.lang.printer.canonical_program`) plus the analysis options,
  backed by an in-memory LRU and an on-disk pickle cache that survives the
  process and is shared between processes.
* :mod:`repro.service.executor` — the sharded batch executor: thread- or
  process-pool execution of a named workload with per-program error
  isolation, deterministic result ordering, and a shared disk cache.
* :mod:`repro.service.server` — ``repro serve``: a stdlib-only HTTP JSON
  API (``POST /analyze``, ``POST /batch``, ``GET /health``,
  ``GET /cache/stats``) keeping warm pipelines per program hash.
"""

from repro.service.cache import ArtifactCache, CacheStats, default_cache_dir, program_key
from repro.service.executor import BatchItem, BatchReport, run_batch

__all__ = [
    "ArtifactCache",
    "BatchItem",
    "BatchReport",
    "CacheStats",
    "default_cache_dir",
    "program_key",
    "run_batch",
]
