"""Analysis service layer: persistent caching, batch execution, serving.

The pipeline (:mod:`repro.analysis.pipeline`) made the per-stage artifacts
explicit; this package makes them *durable* and *shared*:

* :mod:`repro.service.cache` — a content-addressed artifact store: programs
  are keyed by the SHA-256 of their canonical text
  (:func:`repro.lang.printer.canonical_program`) plus the analysis options,
  backed by an in-memory LRU and an on-disk pickle cache that survives the
  process and is shared between processes.
* :mod:`repro.service.executor` — the sharded batch executor: thread- or
  process-pool execution of a named workload with per-program error
  isolation, deterministic result ordering, and a shared disk cache.
* :mod:`repro.service.store` — the durable job queue: a SQLite/WAL-backed
  :class:`JobStore` with priorities, idempotent enqueue, leases with
  visibility timeouts, bounded retries with exponential backoff, and a
  dead-letter state.  Every transition is one transaction; an acked result
  survives any crash.
* :mod:`repro.service.jobs` — the worker fleet: :class:`WorkerPool`
  processes drain the store through the analysis pipeline + shared
  artifact cache, with per-job error isolation, lease heartbeats,
  crash re-delivery, and graceful SIGTERM drain.
* :mod:`repro.service.metrics` — ``GET /metrics``: queue depth, per-state
  counts, retry counters, cache hit rate, and p50/p99 analysis latency in
  JSON and Prometheus text formats.
* :mod:`repro.service.server` — ``repro serve``: a stdlib-only HTTP JSON
  API (``POST /analyze``, ``POST /jobs``, ``GET /jobs/{id}[/result]``,
  ``POST /batch``, ``GET /metrics``, ``GET /health``, ``GET
  /cache/stats``) keeping warm pipelines per program hash.
"""

from repro.service.cache import ArtifactCache, CacheStats, default_cache_dir, program_key
from repro.service.executor import BatchItem, BatchReport, run_batch
from repro.service.jobs import WorkerPool
from repro.service.store import Job, JobStore

__all__ = [
    "ArtifactCache",
    "BatchItem",
    "BatchReport",
    "CacheStats",
    "Job",
    "JobStore",
    "WorkerPool",
    "default_cache_dir",
    "program_key",
    "run_batch",
]
