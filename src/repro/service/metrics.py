"""Service observability: the ``GET /metrics`` snapshot, JSON + Prometheus.

Everything here is *derived* state: queue gauges and latency percentiles
come straight from the :class:`JobStore` (so they are durable — a restarted
server reports the same p99 the crashed one would have), cache counters
from the :class:`ArtifactCache`, and fleet/service gauges from the live
process.  There is no separate metrics database to drift out of sync.

Exposed fields (JSON shape; the Prometheus text format carries the same
numbers under ``repro_*`` names — see ``render_prometheus``):

``queue.depth``
    queued + leased jobs: the backlog a new enqueue waits behind.
``queue.states.{queued,leased,done,dead}``
    per-state row counts.
``queue.enqueued_total / retried_total / attempts_total``
    lifetime counters (monotone until ``purge_terminal``).
``latency.{count,mean_seconds,p50_seconds,p99_seconds,max_seconds}``
    analysis run latency over the most recent ≤1024 finished jobs.
``cache.{memory_hits,disk_hits,misses,writes,hit_rate}``
    artifact-cache counters; ``hit_rate`` = hits / (hits + misses).
``workers.{configured,alive,respawned}``
    fleet size, live processes, crash respawns.
``service.{uptime_seconds,requests_total,warm_pipelines}``
    HTTP-process facts.
``resilience.{timeouts,timeout_dead,degraded,faults_armed,faults}``
    deadline/degradation outcomes from the store plus fired
    fault-injection counters (:mod:`repro.faults`) — the numbers a chaos
    drill asserts against.
``fuzz.{campaigns,running,shards,tallies,reproducers,quarantined,buckets}``
    fuzzing-campaign rollup, present only when the store's SQLite file
    also carries campaign tables (:mod:`repro.soundness.campaign`).
"""

from __future__ import annotations

import math
import time

from repro import faults


def percentile(sample: "list[float]", q: float) -> float:
    """Nearest-rank percentile of an unsorted sample (0 for empty)."""
    if not sample:
        return 0.0
    if not 0.0 <= q <= 1.0:
        raise ValueError("q must be in [0, 1]")
    ordered = sorted(sample)
    rank = max(math.ceil(q * len(ordered)), 1) - 1
    return ordered[rank]


class ServiceMetrics:
    """Snapshot assembler over the store / cache / fleet / HTTP service."""

    def __init__(self, store=None, cache=None, pool=None, service=None) -> None:
        self.store = store
        self.cache = cache
        self.pool = pool
        self.service = service
        self.started = time.time()

    # -- JSON ----------------------------------------------------------------

    def snapshot(self) -> dict:
        out: dict = {
            "queue": self._queue(),
            "latency": self._latency(),
            "cache": self._cache(),
            "workers": self._workers(),
            "service": self._service(),
            "resilience": self._resilience(),
        }
        fuzz = self._fuzz()
        if fuzz is not None:
            out["fuzz"] = fuzz
        return out

    def _queue(self) -> dict:
        if self.store is None:
            return {"enabled": False, "depth": 0, "states": {}}
        counts = self.store.counts()
        totals = self.store.totals()
        return {
            "enabled": True,
            "depth": counts["queued"] + counts["leased"],
            "states": counts,
            "kinds": self.store.counts_by_kind(),
            "enqueued_total": totals["enqueued"],
            "retried_total": totals["retried"],
            "attempts_total": totals["attempts"],
        }

    def _latency(self) -> dict:
        sample = self.store.run_latencies() if self.store is not None else []
        return {
            "count": len(sample),
            "mean_seconds": (sum(sample) / len(sample)) if sample else 0.0,
            "p50_seconds": percentile(sample, 0.50),
            "p99_seconds": percentile(sample, 0.99),
            "max_seconds": max(sample) if sample else 0.0,
            "sum_seconds": sum(sample),
        }

    def _cache(self) -> dict:
        if self.cache is None:
            return {"enabled": False, "hit_rate": 0.0}
        stats = self.cache.stats.snapshot()
        hits = stats["memory_hits"] + stats["disk_hits"]
        asked = hits + stats["misses"]
        return {
            "enabled": True,
            "memory_hits": stats["memory_hits"],
            "disk_hits": stats["disk_hits"],
            "misses": stats["misses"],
            "writes": stats["writes"],
            "discarded": stats["discarded"],
            "corrupt_discarded": stats["corrupt_discarded"],
            "hit_rate": (hits / asked) if asked else 0.0,
        }

    def _workers(self) -> dict:
        if self.pool is None:
            return {"configured": 0, "alive": 0, "respawned": 0}
        return {
            "configured": self.pool.workers,
            "alive": self.pool.alive(),
            "respawned": self.pool.respawned,
        }

    def _service(self) -> dict:
        out = {"uptime_seconds": time.time() - self.started}
        if self.service is not None:
            out["requests_total"] = self.service.requests
            out["warm_pipelines"] = len(self.service._pipelines)
        return out

    def _fuzz(self) -> "dict | None":
        """Fuzzing-campaign rollup, when the store's SQLite file also holds
        campaign tables (see :func:`repro.soundness.campaign.campaign_metrics`);
        omitted entirely on queue-only deployments."""
        if self.store is None:
            return None
        try:
            from repro.soundness.campaign import campaign_metrics

            return campaign_metrics(self.store.path)
        except Exception:
            return None

    def _resilience(self) -> dict:
        out: dict = {
            "faults_armed": faults.armed(),
            "faults": faults.counters(),
        }
        if self.store is not None:
            out.update(self.store.resilience_totals())
        else:
            out.update({"timeouts": 0, "timeout_dead": 0, "degraded": 0})
        return out

    # -- Prometheus text format ----------------------------------------------

    def render_prometheus(self) -> str:
        """The snapshot as Prometheus text exposition (version 0.0.4)."""
        snap = self.snapshot()
        lines: list[str] = []

        def metric(name: str, kind: str, help_: str, samples) -> None:
            lines.append(f"# HELP {name} {help_}")
            lines.append(f"# TYPE {name} {kind}")
            for labels, value in samples:
                label = (
                    "{" + ",".join(f'{k}="{v}"' for k, v in labels.items()) + "}"
                    if labels
                    else ""
                )
                lines.append(f"{name}{label} {_num(value)}")

        queue = snap["queue"]
        metric(
            "repro_queue_depth", "gauge",
            "Jobs waiting or running (queued + leased).",
            [({}, queue.get("depth", 0))],
        )
        metric(
            "repro_jobs", "gauge", "Jobs by state.",
            [({"state": s}, n) for s, n in sorted(queue.get("states", {}).items())],
        )
        metric(
            "repro_jobs_by_kind", "gauge", "Jobs by kind and state.",
            [
                ({"kind": kind, "state": s}, n)
                for kind, states in sorted(queue.get("kinds", {}).items())
                for s, n in sorted(states.items())
                if n
            ],
        )
        metric(
            "repro_jobs_enqueued_total", "counter", "Jobs ever enqueued.",
            [({}, queue.get("enqueued_total", 0))],
        )
        metric(
            "repro_jobs_retried_total", "counter",
            "Retry deliveries (nack backoffs + expired-lease re-queues).",
            [({}, queue.get("retried_total", 0))],
        )
        metric(
            "repro_job_attempts_total", "counter", "Lease attempts ever made.",
            [({}, queue.get("attempts_total", 0))],
        )

        lat = snap["latency"]
        metric(
            "repro_analysis_latency_seconds", "summary",
            "Run latency of finished jobs (recent window).",
            [
                ({"quantile": "0.5"}, lat["p50_seconds"]),
                ({"quantile": "0.99"}, lat["p99_seconds"]),
            ],
        )
        lines.append(f"repro_analysis_latency_seconds_sum {_num(lat['sum_seconds'])}")
        lines.append(f"repro_analysis_latency_seconds_count {lat['count']}")

        cache = snap["cache"]
        if cache.get("enabled"):
            metric(
                "repro_cache_hits_total", "counter", "Artifact-cache hits.",
                [
                    ({"layer": "memory"}, cache["memory_hits"]),
                    ({"layer": "disk"}, cache["disk_hits"]),
                ],
            )
            metric(
                "repro_cache_misses_total", "counter", "Artifact-cache misses.",
                [({}, cache["misses"])],
            )
            metric(
                "repro_cache_discarded_total", "counter",
                "Disk entries discarded on load (any reason).",
                [({}, cache["discarded"])],
            )
            metric(
                "repro_cache_corrupt_discarded_total", "counter",
                "Disk entries discarded because their bytes were corrupt.",
                [({}, cache["corrupt_discarded"])],
            )
        metric(
            "repro_cache_hit_rate", "gauge",
            "Artifact-cache hits / lookups (0 when disabled).",
            [({}, cache.get("hit_rate", 0.0))],
        )

        workers = snap["workers"]
        metric(
            "repro_workers", "gauge", "Worker fleet by status.",
            [
                ({"status": "configured"}, workers["configured"]),
                ({"status": "alive"}, workers["alive"]),
            ],
        )
        metric(
            "repro_workers_respawned_total", "counter",
            "Workers respawned after a crash.",
            [({}, workers["respawned"])],
        )

        service = snap["service"]
        metric(
            "repro_uptime_seconds", "gauge", "Seconds since service start.",
            [({}, service["uptime_seconds"])],
        )
        if "requests_total" in service:
            metric(
                "repro_http_requests_total", "counter", "HTTP requests handled.",
                [({}, service["requests_total"])],
            )
            metric(
                "repro_warm_pipelines", "gauge", "Warm per-program pipelines.",
                [({}, service["warm_pipelines"])],
            )

        fuzz = snap.get("fuzz")
        if fuzz is not None:
            metric(
                "repro_fuzz_campaigns", "gauge",
                "Fuzzing campaigns in the store (running subset labeled).",
                [
                    ({"state": "all"}, fuzz["campaigns"]),
                    ({"state": "running"}, fuzz["running"]),
                ],
            )
            metric(
                "repro_fuzz_shards", "gauge", "Campaign shards by state.",
                [({"state": s}, n) for s, n in sorted(fuzz["shards"].items())],
            )
            metric(
                "repro_fuzz_cases_total", "counter",
                "Campaign case verdicts by status.",
                [
                    ({"status": s}, n)
                    for s, n in sorted(fuzz["tallies"].items())
                ],
            )
            metric(
                "repro_fuzz_reproducers_total", "counter",
                "Distinct violation reproducers persisted to the corpus.",
                [({}, fuzz["reproducers"])],
            )
            metric(
                "repro_fuzz_quarantined_total", "counter",
                "Poison cases dead-lettered into quarantine.",
                [({}, fuzz["quarantined"])],
            )
            metric(
                "repro_fuzz_buckets", "gauge",
                "Distinct coverage buckets observed.",
                [({}, fuzz["buckets"])],
            )

        res = snap["resilience"]
        metric(
            "repro_analysis_timeouts_total", "counter",
            "Jobs whose last failure was an analysis deadline.",
            [({}, res["timeouts"])],
        )
        metric(
            "repro_analysis_timeout_dead_total", "counter",
            "Jobs dead-lettered after exhausting the deadline retry.",
            [({}, res["timeout_dead"])],
        )
        metric(
            "repro_degraded_results_total", "counter",
            "Done jobs that returned a gracefully degraded result.",
            [({}, res["degraded"])],
        )
        metric(
            "repro_faults_armed", "gauge",
            "Whether seeded fault injection is armed in this process.",
            [({}, res["faults_armed"])],
        )
        fired = sorted(res["faults"].items())
        if fired:
            metric(
                "repro_faults_injected_total", "counter",
                "Injected faults fired, by point and mode.",
                [
                    (
                        {
                            "point": key.rsplit(":", 1)[0],
                            "mode": key.rsplit(":", 1)[1],
                        },
                        count,
                    )
                    for key, count in fired
                ],
            )
        return "\n".join(lines) + "\n"


def _num(value) -> str:
    """Prometheus number formatting: integers stay integral."""
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    return repr(float(value))


__all__ = ["ServiceMetrics", "percentile"]
