"""Content-addressed artifact store for analysis pipeline stages.

Programs are addressed by content, not identity: the key of every cached
artifact starts with the SHA-256 of the program's *canonical text*
(:func:`repro.lang.printer.canonical_program`), so a program re-parsed in
another process — or next week — maps to the same artifacts.  The rest of
the key is the stage name plus the stage's option tuple (the same tuples
:class:`~repro.analysis.pipeline.AnalysisOptions` already defines for the
in-pipeline caches), so any option that influences an artifact changes its
address and stale hits are impossible by construction.

Two layers, checked in order:

1. an in-memory LRU (``memory_entries`` artifacts, shared by every pipeline
   holding the cache instance, thread-safe);
2. an optional on-disk pickle cache under ``cache_dir`` (default
   ``~/.cache/repro``, override with ``$REPRO_CACHE_DIR`` or ``--cache-dir``)
   laid out as ``v<format>/<hash[:2]>/<hash>/<stage>-<digest>.pkl``.

Disk entries are written atomically (temp file + ``os.replace``) so
concurrent writers — the process-pool executor's workers share one
directory — can never expose a torn pickle.  Reads treat the disk as
untrusted: any unpicklable, truncated, or wrong-version entry is silently
discarded (and deleted) rather than crashing the analysis; the worst case
is always "recompute".
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from pathlib import Path

from repro import faults
from repro.lang.ast import Program
from repro.lang.printer import canonical_program

#: Bump to invalidate every existing disk entry (artifact layout changes).
#: 2: the LP reduction layer — LPProblem carries certificate spans and
#: protected columns, StageSolution carries cut margins and reduction
#: stats, and solve keys include the reduction option.
#: 3: stacked same-shape block solves — the live partition concatenates
#: small same-shape blocks, which moves solution vertices on degenerate
#: optimal faces (bounds agree to solver tolerance, bytes differ); results
#: also carry ``restart_bound`` / parallel-solve stats.
CACHE_FORMAT = 3

_ENV_DIR = "REPRO_CACHE_DIR"


def default_cache_dir() -> Path:
    """``$REPRO_CACHE_DIR``, else ``~/.cache/repro`` (XDG-aware)."""
    env = os.environ.get(_ENV_DIR)
    if env:
        return Path(env).expanduser()
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg).expanduser() if xdg else Path.home() / ".cache"
    return base / "repro"


def program_key(program: Program | str) -> str:
    """SHA-256 hex digest of the program's canonical text."""
    text = program if isinstance(program, str) else canonical_program(program)
    return hashlib.sha256(text.encode()).hexdigest()


@dataclass
class CacheStats:
    """Hit/miss counters; exposed by ``GET /cache/stats`` and in tests."""

    memory_hits: int = 0
    disk_hits: int = 0
    misses: int = 0
    writes: int = 0
    evictions: int = 0
    #: Disk entries that failed to load (corrupt/truncated/wrong version)
    #: and were discarded.
    discarded: int = 0
    #: The subset of ``discarded`` whose *bytes* were bad — unpicklable or
    #: integrity-mismatched blobs, as opposed to cleanly-readable entries
    #: from an older cache format.  A nonzero value means the disk (or a
    #: writer) is actively corrupting data, not just aging out.
    corrupt_discarded: int = 0

    def snapshot(self) -> dict[str, int]:
        return {
            "memory_hits": self.memory_hits,
            "disk_hits": self.disk_hits,
            "misses": self.misses,
            "writes": self.writes,
            "evictions": self.evictions,
            "discarded": self.discarded,
            "corrupt_discarded": self.corrupt_discarded,
        }


@dataclass
class _Entry:
    """What actually goes through pickle: payload plus integrity metadata."""

    format: int
    stage: str
    key: str
    payload: object


class ArtifactCache:
    """In-memory LRU over an optional shared on-disk store.

    ``cache_dir=None`` with ``disk=True`` uses :func:`default_cache_dir`;
    ``disk=False`` keeps the cache purely in-memory (the pipeline then
    behaves like PR 1, just with a bounded shared cache).
    """

    def __init__(
        self,
        cache_dir: "str | os.PathLike | None" = None,
        *,
        disk: bool = True,
        memory_entries: int = 256,
    ) -> None:
        self.directory: Path | None = None
        if disk:
            self.directory = (
                Path(cache_dir).expanduser() if cache_dir else default_cache_dir()
            ) / f"v{CACHE_FORMAT}"
        self.memory_entries = memory_entries
        self.stats = CacheStats()
        self._memory: OrderedDict[str, object] = OrderedDict()
        self._lock = threading.Lock()

    # -- keys ---------------------------------------------------------------

    @staticmethod
    def artifact_key(program_hash: str, stage: str, options_key: tuple) -> str:
        digest = hashlib.sha256(
            f"{stage}|{program_hash}|{options_key!r}".encode()
        ).hexdigest()
        return f"{program_hash}/{stage}-{digest[:20]}"

    def _path(self, key: str) -> Path:
        program_hash, name = key.split("/", 1)
        assert self.directory is not None
        return self.directory / program_hash[:2] / program_hash / f"{name}.pkl"

    # -- lookup -------------------------------------------------------------

    def get(self, program_hash: str, stage: str, options_key: tuple = ()) -> object | None:
        key = self.artifact_key(program_hash, stage, options_key)
        with self._lock:
            if key in self._memory:
                self._memory.move_to_end(key)
                self.stats.memory_hits += 1
                return self._memory[key]
        payload = self._read_disk(key, stage)
        with self._lock:
            if payload is not None:
                self.stats.disk_hits += 1
                self._remember(key, payload)
            else:
                self.stats.misses += 1
        return payload

    def put(
        self, program_hash: str, stage: str, options_key: tuple, payload: object
    ) -> None:
        key = self.artifact_key(program_hash, stage, options_key)
        with self._lock:
            self.stats.writes += 1
            self._remember(key, payload)
        self._write_disk(key, stage, payload)

    def _remember(self, key: str, payload: object) -> None:
        # Caller holds self._lock.
        self._memory[key] = payload
        self._memory.move_to_end(key)
        while len(self._memory) > self.memory_entries:
            self._memory.popitem(last=False)
            self.stats.evictions += 1

    # -- disk layer ---------------------------------------------------------

    def _read_disk(self, key: str, stage: str) -> object | None:
        if self.directory is None:
            return None
        path = self._path(key)
        try:
            # An injected read fault degrades exactly like a real disk
            # error: the lookup becomes a miss and the stage recomputes.
            faults.check("cache.read")
            blob = path.read_bytes()
        except (faults.FaultInjected, OSError):
            return None
        blob = faults.corrupt("cache.read", blob)
        corrupt = True
        try:
            entry = pickle.loads(blob)
            corrupt = not (
                isinstance(entry, _Entry) and entry.key == key
            )
            if (
                not corrupt
                and entry.format == CACHE_FORMAT
                and entry.stage == stage
            ):
                return entry.payload
        except Exception:
            pass
        # Corrupt, truncated, or from an incompatible layout: drop it so the
        # slot is rewritten cleanly after the recompute.
        with self._lock:
            self.stats.discarded += 1
            if corrupt:
                self.stats.corrupt_discarded += 1
        try:
            path.unlink()
        except OSError:
            pass
        return None

    def _write_disk(self, key: str, stage: str, payload: object) -> None:
        if self.directory is None:
            return
        path = self._path(key)
        entry = _Entry(format=CACHE_FORMAT, stage=stage, key=key, payload=payload)
        try:
            blob = pickle.dumps(entry, protocol=pickle.HIGHEST_PROTOCOL)
        except Exception:
            return  # unpicklable payload: memory-only artifact
        try:
            # Injected write faults mirror a full/read-only disk; injected
            # byte corruption is caught (and the entry discarded) by the
            # integrity checks on the next read.
            faults.check("cache.write")
        except faults.FaultInjected:
            return
        blob = faults.corrupt("cache.write", blob)
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
            try:
                with os.fdopen(fd, "wb") as handle:
                    handle.write(blob)
                os.replace(tmp, path)
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
        except OSError:
            pass  # read-only/full disk: cache silently degrades to memory

    # -- maintenance --------------------------------------------------------

    def entry_count(self) -> tuple[int, int]:
        """(memory entries, disk entries) — disk is a directory walk."""
        with self._lock:
            mem = len(self._memory)
        if self.directory is None or not self.directory.exists():
            return mem, 0
        disk = sum(1 for _ in self.directory.rglob("*.pkl"))
        return mem, disk

    def clear_memory(self) -> None:
        with self._lock:
            self._memory.clear()

    def describe(self) -> dict:
        mem, disk = self.entry_count()
        return {
            "directory": str(self.directory) if self.directory else None,
            "format": CACHE_FORMAT,
            "memory_entries": mem,
            "memory_capacity": self.memory_entries,
            "disk_entries": disk,
            **self.stats.snapshot(),
        }


__all__ = [
    "ArtifactCache",
    "CacheStats",
    "CACHE_FORMAT",
    "default_cache_dir",
    "program_key",
]
