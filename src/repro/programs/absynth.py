"""The Absynth suite subset (Ngo et al. [31]) — Table 5.

Expected-cost (first-moment) upper bounds for programs with monotone costs.
Table 5 compares symbolic bounds; where the paper's closed form pins the
cost model down we reconstruct it exactly (``ber``, ``hyper``, ``linear01``,
``sprdwalk``, ``geo``, ``rfind_lv``, ``fcall``, ...), otherwise the program
realizes the same loop/recursion pattern and EXPERIMENTS.md records both
formulas.  All programs use ``moment_degree=1`` in the harness (the table is
about expectations), but remain analyzable at higher moments.
"""

from repro.programs.registry import BenchProgram, register


def _reg(name, source, description, valuation, paper_bound, sim_init=None,
         template_degree=1, degree_cap=None):
    register(
        BenchProgram(
            name=f"absynth-{name}",
            source=source,
            description=description,
            valuation=valuation,
            sim_init=sim_init if sim_init is not None else dict(valuation),
            moment_degree=1,
            template_degree=template_degree,
            degree_cap=degree_cap,
            paper={"bound": paper_bound},
        )
    )


_reg(
    "ber",
    """
    func main() int(n) pre(x <= n) begin
      while x < n inv(x <= n) do
        if prob(0.5) then x := x + 1 fi;
        tick(1)
      od
    end
    """,
    "succeed w.p. 1/2 per unit-cost trial",
    {"x": 0.0, "n": 10.0},
    "2(n - x)",
)

_reg(
    "sprdwalk",
    """
    func main() int(n) pre(x <= n) begin
      while x < n inv(x <= n) do
        t ~ unifint(0, 1);
        x := x + t;
        tick(1)
      od
    end
    """,
    "random walk with unifint(0,1) increments",
    {"x": 0.0, "n": 10.0, "t": 0.0},
    "2(n - x)",
)

_reg(
    "hyper",
    """
    func main() int(n) pre(x <= n) begin
      while x < n inv(x <= n) do
        if prob(0.2) then x := x + 1 fi;
        tick(1)
      od
    end
    """,
    "succeed w.p. 1/5 per unit-cost trial",
    {"x": 0.0, "n": 10.0},
    "5(n - x)",
)

_reg(
    "linear01",
    """
    func main() pre(x >= 0) begin
      while x > 2 inv(x >= 0) do
        if prob(0.333333333333) then
          x := x - 1
        else
          x := x - 2
        fi;
        tick(1)
      od
    end
    """,
    "expected decrement 5/3 per unit-cost iteration",
    {"x": 20.0},
    "0.6x",
)

_reg(
    "prdwalk",
    """
    func main() int(n) pre(x <= n) begin
      while x < n inv(x <= n + 3) do
        t ~ discrete(0: 0.125, 1: 0.625, 4: 0.25);
        x := x + t;
        tick(1)
      od
    end
    """,
    "walk with drift 13/8 and overshoot up to 4",
    {"x": 0.0, "n": 10.0, "t": 0.0},
    "1.1429(n - x + 4)",
)

_reg(
    "race",
    """
    func main() pre(h <= t) begin
      while h <= t inv(h <= t + 5) do
        t := t + 1;
        r ~ unifint(0, 5);
        h := h + r;
        tick(1)
      od
    end
    """,
    "tortoise (t) vs hare (h); hare gains 1.5 per round",
    {"h": 0.0, "t": 10.0, "r": 0.0},
    "0.6667(t - h + 9)",
)

_reg(
    "geo",
    """
    func main() begin
      f := 0;
      while f < 1 inv(f >= 0, f <= 1) do
        if prob(0.2) then f := 1 fi;
        tick(1)
      od
    end
    """,
    "geometric loop, exit w.p. 1/5",
    {"f": 0.0},
    "5",
)

_reg(
    "coupon",
    """
    func state0() begin
      tick(1);
      call state1
    end

    func state1() begin
      tick(1);
      if prob(0.75) then call state2 else call state1 fi
    end

    func state2() begin
      tick(1);
      if prob(0.5) then call state3 else call state2 fi
    end

    func state3() begin
      tick(1);
      if prob(0.25) then skip else call state3 fi
    end

    func main() begin
      call state0
    end
    """,
    "4-coupon collector, unit cost per draw (state-function chain)",
    {},
    "11.6667 (paper, 5-coupon variant); exact here: 25/3",
)

_reg(
    "cowboy_duel",
    """
    func main() begin
      a := 0;
      while a < 1 inv(a >= 0, a <= 1) do
        if prob(0.833333333333) then a := 1 fi;
        tick(1)
      od
    end
    """,
    "duel ends w.p. 5/6 per unit-cost exchange",
    {"a": 0.0},
    "1.2",
)

_reg(
    "fcall",
    """
    func step() pre(x <= n) begin
      if x < n then
        if prob(0.5) then x := x + 1 fi;
        tick(1);
        call step
      fi
    end

    func main() pre(x <= n) begin
      call step
    end
    """,
    "ber as a recursive function",
    {"x": 0.0, "n": 10.0},
    "2(n - x)",
)

_reg(
    "rdseql",
    """
    func main() pre(x >= 0, y >= 0) begin
      while x > 0 inv(x >= 0) do
        x := x - 1;
        tick(2);
        if prob(0.125) then tick(2) fi
      od;
      while y > 0 inv(y >= 0) do
        y := y - 1;
        tick(1)
      od
    end
    """,
    "two sequential loops, 2.25 and 1 expected per iteration",
    {"x": 10.0, "y": 10.0},
    "2.25x + y",
)

_reg(
    "rdspeed",
    """
    func main() int(n, m) pre(y <= m, x <= n) begin
      while y < m inv(y <= m) do
        if prob(0.5) then y := y + 1 fi;
        tick(1)
      od;
      while x < n inv(x <= n + 1) do
        t ~ discrete(1: 0.5, 2: 0.5);
        x := x + t;
        tick(1)
      od
    end
    """,
    "probabilistic then fast-forward loop",
    {"x": 0.0, "n": 10.0, "y": 0.0, "m": 10.0, "t": 0.0},
    "2(m - y) + 0.6667(n - x)",
)

_reg(
    "c4b_t13",
    """
    func main() pre(x >= 0, y >= 0) begin
      while x > 0 inv(x >= 0) do
        x := x - 1;
        tick(1);
        if prob(0.25) then tick(1) fi
      od;
      while y > 0 inv(y >= 0) do
        y := y - 1;
        tick(1)
      od
    end
    """,
    "C4B t13 shape: 1.25 per x-iteration plus y",
    {"x": 10.0, "y": 10.0},
    "1.25x + y",
)

_reg(
    "c4b_t30",
    """
    func main() pre(x >= 0, y >= 0) begin
      while x > 0 inv(x >= -2) do
        t ~ unifint(1, 3);
        x := x - t;
        tick(0.5);
        if prob(0.5) then tick(1) fi
      od;
      while y > 0 inv(y >= -2) do
        t ~ unifint(1, 3);
        y := y - t;
        tick(0.5);
        if prob(0.5) then tick(1) fi
      od
    end
    """,
    "C4B t30 shape: expected decrement 2, expected cost 1",
    {"x": 10.0, "y": 10.0, "t": 0.0},
    "0.5x + 0.5y + 2",
)

_reg(
    "condand",
    """
    func main() pre(n >= 0, m >= 0) begin
      while n > 0 and m > 0 inv(n >= 0, m >= 0) do
        if prob(0.5) then m := m - 1 fi;
        tick(1)
      od
    end
    """,
    "conjunctive guard; only m makes progress",
    {"n": 10.0, "m": 10.0},
    "2m",
)

_reg(
    "bin",
    """
    func main() pre(n >= 0) begin
      while n > 0 inv(n >= -9) do
        t ~ unifint(0, 9);
        n := n - t;
        tick(0.2)
      od
    end
    """,
    "decrement by unifint(0,9), cost 0.2 per iteration",
    {"n": 100.0, "t": 0.0},
    "0.2(n + 9)",
)

_reg(
    "2drdwalk",
    """
    func main() int(n) pre(d <= n) begin
      while d < n inv(d <= n) do
        t ~ discrete(0: 0.5, 1: 0.5);
        d := d + t;
        tick(1)
      od
    end
    """,
    "diagonal progress of the 2D walk, drift 1/2",
    {"d": 0.0, "n": 10.0, "t": 0.0},
    "2(n - d + 1)",
)

_reg(
    "rfind_lv",
    """
    func main() begin
      f := 0;
      while f < 1 inv(f >= 0, f <= 1) do
        if prob(0.5) then f := 1 fi;
        tick(1)
      od
    end
    """,
    "Las-Vegas random find, success w.p. 1/2",
    {"f": 0.0},
    "2",
)

_reg(
    "rfind_mc",
    """
    func main() int(k) pre(k >= 0) begin
      i := 0;
      f := 0;
      while i < k and f < 1 inv(i >= 0, f >= 0, f <= 1) do
        if prob(0.5) then f := 1 fi;
        i := i + 1;
        tick(1)
      od
    end
    """,
    "Monte-Carlo random find with trial budget k",
    {"k": 10.0, "i": 0.0, "f": 0.0},
    "min(2, k); paper reports 2",
)

_reg(
    "trapped_miner",
    """
    func main() int(n) pre(n >= 0) begin
      i := 0;
      while i < n inv(i >= 0, i <= n) do
        i := i + 1;
        if prob(0.2) then
          tick(25)
        else
          tick(3.125)
        fi
      od
    end
    """,
    "n decisions, expensive escape w.p. 1/5",
    {"n": 10.0, "i": 0.0},
    "7.5n",
)

_reg(
    "pol04",
    """
    func main() pre(x >= 0) begin
      while x > 0 inv(x >= 0) do
        x := x - 1;
        j := x;
        while j > 0 inv(j >= 0) do
          if prob(0.5) then j := j - 1 fi;
          tick(3)
        od;
        tick(1)
      od
    end
    """,
    "quadratic: inner geometric loop over a linear counter",
    {"x": 10.0, "j": 0.0},
    "4.5x^2 + 10.5x (paper); exact here 3x^2 - 2x",
    template_degree=2,
)

_reg(
    "rdbub",
    """
    func main() int(n) pre(n >= 0) begin
      i := n;
      while i > 0 inv(i >= 0, i <= n) do
        i := i - 1;
        j := n;
        while j > 0 inv(j >= 0, j <= n) do
          if prob(0.5) then j := j - 1 fi;
          tick(1.5)
        od
      od
    end
    """,
    "randomized bubble-sort sweep pattern",
    {"n": 8.0, "i": 0.0, "j": 0.0},
    "3n^2",
    template_degree=2,
)

ABSYNTH_NAMES = [
    "absynth-ber", "absynth-sprdwalk", "absynth-hyper", "absynth-linear01",
    "absynth-prdwalk", "absynth-race", "absynth-geo", "absynth-coupon",
    "absynth-cowboy_duel", "absynth-fcall", "absynth-rdseql",
    "absynth-rdspeed", "absynth-c4b_t13", "absynth-c4b_t30",
    "absynth-condand", "absynth-bin", "absynth-2drdwalk", "absynth-rfind_lv",
    "absynth-rfind_mc", "absynth-trapped_miner", "absynth-pol04",
    "absynth-rdbub",
]
