"""Synthetic benchmark generators for the scalability study (Fig. 10).

Two families, parameterized by ``N``:

* :func:`coupon_chain` — an N-coupon collector written as N tail-recursive
  state functions (one per number of distinct coupons collected), each
  drawing coupons at unit cost until a fresh one appears.
* :func:`rdwalk_chain` — N consecutive biased random walks written as N
  *non-tail-recursive* functions (each, like Fig. 2's ``rdwalk``, ticks
  after the recursive call); walk ``k+1`` starts at the number of steps
  taken by walk ``k``, tracked in the shared step counter ``s``.

The paper reports analysis time growing linearly in N for both families
(their largest instance is ~16 kLoC of generated code); the benchmark
``benchmarks/bench_fig10_scalability.py`` regenerates the same curves.
"""

from __future__ import annotations

from repro.lang.ast import Program
from repro.lang.parser import parse_program


def coupon_chain_source(n: int) -> str:
    """N-coupon collector as a chain of tail-recursive state functions."""
    if n < 1:
        raise ValueError("need at least one coupon")
    parts: list[str] = []
    for k in range(n):
        fresh = (n - k) / n  # probability the next draw is a new coupon
        if k + 1 < n:
            advance = f"call state{k + 1}"
        else:
            advance = "skip"
        parts.append(
            f"""
func state{k}() begin
  tick(1);
  if prob({fresh!r}) then {advance} else call state{k} fi
end
"""
        )
    parts.append(
        """
func main() begin
  call state0
end
"""
    )
    return "\n".join(parts)


def coupon_chain(n: int) -> Program:
    return parse_program(coupon_chain_source(n))


def rdwalk_chain_source(n: int, start: int = 5) -> str:
    """N chained non-tail-recursive random walks.

    Each walk moves ``x`` down to 0 with P(down) = 3/4 steps of ±1, counts
    its steps in ``s``, and ticks once per step *after* the recursive call
    (non-tail recursion, as in Fig. 2).  The next walk starts at ``x := s``.
    """
    if n < 1:
        raise ValueError("need at least one walk")
    parts: list[str] = []
    for k in range(n):
        parts.append(
            f"""
func walk{k}() pre(x >= 0, s >= 0) begin
  if x > 0 then
    t ~ discrete(-1: 0.75, 1: 0.25);
    x := x + t;
    s := s + 1;
    call walk{k};
    tick(1)
  fi
end
"""
        )
    body = [f"  x := {start};", "  s := 0;"]
    for k in range(n):
        body.append(f"  call walk{k};")
        if k + 1 < n:
            body.append("  x := s;")
            body.append("  s := 0;")
    main_body = "\n".join(body).rstrip(";")
    parts.append(
        f"""
func main() begin
{main_body}
end
"""
    )
    return "\n".join(parts)


def rdwalk_chain(n: int, start: int = 5) -> Program:
    return parse_program(rdwalk_chain_source(n, start))
