"""The Wang et al. [43] suite — Table 6: non-monotone costs, both bounds.

These benchmarks exercise the interval half of the analysis: costs may be
negative (rewards), so *lower* bounds require the full interval machinery
and the Theorem 4.4 side conditions.  The raw-moment baseline
(:func:`repro.analyze_upper_raw`) is inapplicable here — exactly the
"non-monotone costs" row of Fig. 1(a).

Programs are reconstructed from the published descriptions; cost models are
pinned by the reported closed forms where possible (e.g. ``bitcoin-mining``:
expected reward exactly ``-1.5x``).
"""

from repro.programs.registry import BenchProgram, register


def _reg(name, source, description, valuation, paper_upper, paper_lower,
         template_degree=1, degree_cap=None, sim_init=None):
    register(
        BenchProgram(
            name=f"wang-{name}",
            source=source,
            description=description,
            valuation=valuation,
            sim_init=sim_init if sim_init is not None else dict(valuation),
            moment_degree=1,
            template_degree=template_degree,
            degree_cap=degree_cap,
            paper={"upper": paper_upper, "lower": paper_lower},
            monotone=False,
        )
    )


_reg(
    "bitcoin-mining",
    """
    func main() pre(x >= 0) begin
      while x > 0 inv(x >= 0) do
        if prob(0.95) then
          x := x - 1;
          tick(-1.5)
        fi
      od
    end
    """,
    "mine x blocks, reward 1.5 each (negative cost)",
    {"x": 10.0},
    "-1.475x + 1.475",
    "-1.5x",
)

_reg(
    "bitcoin-pool",
    """
    func main() pre(y >= 0) begin
      while y > 0 inv(y >= 0) do
        y := y - 1;
        j := y;
        while j >= 0 inv(j >= -1) do
          j := j - 1;
          if prob(0.75) then tick(-2) fi
        od
      od
    end
    """,
    "pool mining: reward proportional to remaining work (quadratic)",
    {"y": 10.0, "j": 0.0},
    "-7.375y^2 - 41.625y + 49",
    "-7.5y^2 - 67.5y",
    template_degree=2,
)

_reg(
    "queueing",
    """
    func main() int(n) pre(n >= 0) begin
      i := 0;
      while i < n inv(i >= 0, i <= n) do
        i := i + 1;
        if prob(0.1) then tick(0.5) fi
      od
    end
    """,
    "n arrivals, expensive service w.p. 1/10",
    {"n": 100.0, "i": 0.0},
    "0.0531n",
    "0.0384n",
)

_reg(
    "running-example",
    """
    func main() pre(x >= 0) begin
      while x > 0 inv(x >= 0) do
        if prob(0.75) then
          x := x - 1
        else
          x := x + 1
        fi;
        j := x;
        while j > 0 inv(j >= 0) do
          j := j - 1;
          tick(1)
        od
      od
    end
    """,
    "cost equal to current position per iteration (quadratic)",
    {"x": 10.0, "j": 0.0},
    "0.3333x^2 + 0.3333x (paper; different drift/cost constants)",
    "0.3333x^2 + 0.3333x - 0.6667",
    template_degree=2,
)

_reg(
    "nested-loop",
    """
    func main() pre(i >= 0) begin
      while i > 0 inv(i >= 0) do
        i := i - 1;
        j := i;
        while j > 0 inv(j >= 0) do
          if prob(0.5) then j := j - 1 fi;
          tick(0.5)
        od
      od
    end
    """,
    "nested geometric inner loop over a decreasing counter",
    {"i": 10.0, "j": 0.0},
    "0.3333i^2 + i (paper); exact here 0.5i^2 - 0.5i",
    "0.3333i^2 - i",
    template_degree=2,
)

_reg(
    "random-walk-neg",
    """
    func main() int(n) pre(x <= n) begin
      while x <= n inv(x <= n + 1) do
        t ~ discrete(-1: 0.3, 1: 0.7);
        x := x + t;
        tick(-1)
      od
    end
    """,
    "walk toward n accumulating reward -1 per step",
    {"x": 0.0, "n": 10.0, "t": 0.0},
    "2.5x - 2.5n",
    "2.5x - 2.5n - 2.5",
)

_reg(
    "pollutant",
    """
    func main() int(n) pre(n >= 0) begin
      i := 0;
      while i < n inv(i >= 0, i <= n) do
        i := i + 1;
        tick(50);
        j := i;
        while j > 0 inv(j >= -3) do
          t ~ unifint(1, 4);
          j := j - t;
          tick(-1)
        od
      od
    end
    """,
    "disposal fee 50 per load minus recycling credit growing with i",
    {"n": 20.0, "i": 0.0, "j": 0.0, "t": 0.0},
    "-0.2n^2 + 50.2n",
    "-0.2n^2 + 50.2n - 482",
    template_degree=2,
)

WANG_NAMES = [
    "wang-bitcoin-mining", "wang-bitcoin-pool", "wang-queueing",
    "wang-running-example", "wang-nested-loop", "wang-random-walk-neg",
    "wang-pollutant",
]
