"""The paper's own example programs.

* ``rdwalk``     — Fig. 2: the bounded, biased random walk (recursion +
  continuous sampling).  The running example whose bounds Fig. 1(b) reports:
  ``E[tick] <= 2d + 4``, ``E[tick^2] <= 4d^2 + 22d + 28``,
  ``V[tick] <= 22d + 28``.
* ``geo``        — Fig. 4: the purely probabilistic loop of Counterexample
  2.7 (used to exercise the soundness checks; its true expected cost is 1).
* ``rdwalk-var1`` / ``rdwalk-var2`` — the two variants of section 6
  ("Discussion", Tab. 2 / Fig. 11): equal expected runtime, different shape
  (variant 2 takes rarer, larger steps, so its runtime distribution is more
  right-skewed and heavier-tailed).
"""

from repro.programs.registry import BenchProgram, register

RDWALK_SOURCE = """
func rdwalk() pre(x < d + 2) begin
  if x < d then
    t ~ uniform(-1, 2);
    x := x + t;
    call rdwalk;
    tick(1)
  fi
end

func main() pre(d > 0) begin
  x := 0;
  call rdwalk
end
"""

register(
    BenchProgram(
        name="rdwalk",
        source=RDWALK_SOURCE,
        description="Fig. 2 bounded biased random walk (running example)",
        valuation={"d": 10.0, "x": 0.0, "t": 0.0},
        sim_init={"d": 10.0},
        moment_degree=2,
        template_degree=1,
        paper={
            "E_upper": "2d + 4",
            "E2_upper": "4d^2 + 22d + 28",
            "V_upper": "22d + 28",
        },
    )
)

GEO_SOURCE = """
func geo() begin
  x := x + 1;
  if prob(0.5) then
    tick(1);
    call geo
  fi
end

func main() begin
  x := 0;
  call geo
end
"""

register(
    BenchProgram(
        name="geo",
        source=GEO_SOURCE,
        description="Fig. 4 purely probabilistic loop (Counterexample 2.7)",
        valuation={"x": 0.0},
        sim_init={},
        moment_degree=2,
        template_degree=1,
        paper={"E_exact": 1.0},
    )
)

# Two walks with the same expected runtime but different shapes.  Variant 1
# takes steps of size 1 with mild bias; variant 2 usually idles and rarely
# jumps by 4, with the same per-step drift, hence equal E[T] = 2x but a more
# lopsided, heavier-tailed runtime distribution (larger skewness/kurtosis).

RDWALK_VAR1_SOURCE = """
func main() pre(x >= 0) begin
  while x >= 1 inv(x >= 0) do
    t ~ discrete(-1: 0.75, 1: 0.25);
    x := x + t;
    tick(1)
  od
end
"""

RDWALK_VAR2_SOURCE = """
func main() pre(x >= 0) begin
  while x >= 1 inv(x >= 0) do
    t ~ discrete(3: 0.125, -1: 0.875);
    x := x + t;
    tick(1)
  od
end
"""

register(
    BenchProgram(
        name="rdwalk-var1",
        source=RDWALK_VAR1_SOURCE,
        description="Tab. 2 variant 1: +/-1 steps, drift -1/2, E[T] = 2x",
        valuation={"x": 20.0, "t": 0.0},
        sim_init={"x": 20.0},
        moment_degree=4,
        template_degree=1,
        paper={"skewness": 2.1362, "kurtosis": 10.5633},
    )
)

register(
    BenchProgram(
        name="rdwalk-var2",
        source=RDWALK_VAR2_SOURCE,
        description="Tab. 2 variant 2: rare +3 jumps, drift -1/2, E[T] = 2x",
        valuation={"x": 20.0, "t": 0.0},
        sim_init={"x": 20.0},
        moment_degree=4,
        template_degree=1,
        paper={"skewness": 2.9635, "kurtosis": 17.5823},
    )
)
