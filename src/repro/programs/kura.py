"""The Kura et al. [26] benchmark suite (Tables 1/3/4, Figs. 9/15).

Seven programs: two coupon collectors and five random walks.  The original
cost models are reconstructed from the published bounds where the numbers
pin them down:

* (1-1) — 2-coupon collector.  Kura et al. report E[T] <= 13, E[T^2] <= 201,
  E[T^3] <= 3829, E[T^4] <= 90705, which identifies the runtime as
  ``T = 5 + 4*G`` with ``G ~ Geom(1/2)``: a cost-1 prologue, 4 per draw,
  first draw always fresh.  Our program realizes exactly that.
* (2-1) — integer 1D walk.  E[T] <= 20, E[T^2] <= 2320, V <= 1920 (and the
  symbolic ``V <= 1920x``) identify: start ``x = 1``, steps ±1 with
  P(down) = 0.6, cost 4 per step (E = 4x/0.2, V = 16x(1-δ²)/δ³ = 1920x).
* the rest — programs with the published *feature* (4 coupons, continuous
  sampling, adversarial nondeterminism, 2D state); cost models chosen to
  land in the same regime.  EXPERIMENTS.md records paper vs. measured.
"""

from repro.programs.registry import BenchProgram, register

COUPON2_SOURCE = """
func main() begin
  tick(1);
  c := 0;
  while c < 2 inv(c >= 0, c <= 2) do
    tick(4);
    if c < 1 then
      c := 1
    else
      if prob(0.5) then c := 2 fi
    fi
  od
end
"""

register(
    BenchProgram(
        name="kura-1-1",
        source=COUPON2_SOURCE,
        description="(1-1) coupon collector, 2 coupons: T = 5 + 4 Geom(1/2)",
        valuation={"c": 0.0},
        sim_init={},
        moment_degree=4,
        template_degree=2,
        degree_cap=2,
        paper={
            "2nd raw": 201, "3rd raw": 3829, "4th raw": 90705,
            "2nd central": 32, "4th central": 9728, "E": 13,
        },
    )
)

COUPON4_SOURCE = """
func state0() begin
  tick(4);
  call state1
end

func state1() begin
  tick(4);
  if prob(0.75) then call state2 else call state1 fi
end

func state2() begin
  tick(4);
  if prob(0.5) then call state3 else call state2 fi
end

func state3() begin
  tick(4);
  if prob(0.25) then skip else call state3 fi
end

func main() begin
  tick(1);
  call state0
end
"""

register(
    BenchProgram(
        name="kura-1-2",
        source=COUPON4_SOURCE,
        description="(1-2) coupon collector, 4 coupons, 4 per draw, "
        "as a chain of tail-recursive state functions",
        valuation={},
        sim_init={},
        moment_degree=4,
        template_degree=1,
        paper={
            "2nd raw": 2357, "3rd raw": 148847, "4th raw": 11285725,
            "2nd central": 362, "4th central": 955973, "E": 44.6667,
        },
    )
)

WALK_INT_SOURCE = """
func main() pre(x >= 0) begin
  while x > 0 inv(x >= 0) do
    t ~ discrete(-1: 0.6, 1: 0.4);
    x := x + t;
    tick(4)
  od
end
"""

register(
    BenchProgram(
        name="kura-2-1",
        source=WALK_INT_SOURCE,
        description="(2-1) integer 1D walk: P(down)=0.6, cost 4/step, x0=1",
        valuation={"x": 1.0, "t": 0.0},
        sim_init={"x": 1.0},
        moment_degree=4,
        template_degree=1,
        paper={
            "2nd raw": 2320, "3rd raw": 691520, "4th raw": 340107520,
            "2nd central": 1920, "4th central": 289873920, "E": 20,
            "V_symbolic": "1920x",
        },
    )
)

WALK_REAL_SOURCE = """
func main() pre(x >= 0) begin
  while x >= 1 inv(x >= -1) do
    t ~ uniform(-2, 1);
    x := x + t;
    tick(5)
  od
end
"""

register(
    BenchProgram(
        name="kura-2-2",
        source=WALK_REAL_SOURCE,
        description="(2-2) real-valued 1D walk: uniform(-2,1) steps, cost 5",
        valuation={"x": 2.0, "t": 0.0},
        sim_init={"x": 2.0},
        moment_degree=4,
        template_degree=1,
        paper={
            "2nd raw": 8375, "3rd raw": 1362813, "4th raw": 306105209,
            "2nd central": 5875, "4th central": 447053126, "E": 75,
            "V_symbolic": "2166.6667x + 1541.6667",
        },
    )
)

WALK_NDET_SOURCE = """
func main() pre(x >= 0) begin
  while x >= 1 inv(x >= -1) do
    if ndet then
      t ~ discrete(-1: 0.6, 1: 0.4)
    else
      t ~ discrete(-2: 0.7, 1: 0.3)
    fi;
    x := x + t;
    tick(3)
  od
end
"""

register(
    BenchProgram(
        name="kura-2-3",
        source=WALK_NDET_SOURCE,
        description="(2-3) 1D walk with adversarial nondeterministic steps",
        valuation={"x": 2.0, "t": 0.0},
        sim_init={"x": 2.0},
        moment_degree=4,
        template_degree=1,
        paper={
            "2nd raw": 3675, "3rd raw": 618584, "4th raw": 164423336,
            "2nd central": 3048, "4th central": 196748763, "E": 42,
        },
        monotone=True,
    )
)

WALK_2D_INT_SOURCE = """
func main() pre(x >= 0, y >= 0) begin
  while x >= 1 and y >= 1 inv(x >= 0, y >= 0) do
    if prob(0.5) then
      t ~ discrete(-1: 0.7, 1: 0.3);
      x := x + t
    else
      t ~ discrete(-1: 0.7, 1: 0.3);
      y := y + t
    fi;
    tick(2)
  od
end
"""

register(
    BenchProgram(
        name="kura-2-4",
        source=WALK_2D_INT_SOURCE,
        description="(2-4) 2D integer walk, either coordinate moves",
        valuation={"x": 4.0, "y": 4.0, "t": 0.0},
        sim_init={"x": 4.0, "y": 4.0},
        moment_degree=4,
        template_degree=1,
        paper={
            "2nd raw": 6625, "3rd raw": 742825, "4th raw": 101441320,
            "2nd central": 6624, "4th central": 313269063, "E": 73,
        },
    )
)

WALK_2D_REAL_SOURCE = """
func main() pre(x >= 0, y >= 0) begin
  while x >= 1 and y >= 1 inv(x >= -1, y >= -1) do
    if prob(0.6) then
      t ~ uniform(-2, 1);
      x := x + t
    else
      t ~ uniform(-2, 1);
      y := y + t
    fi;
    tick(3)
  od
end
"""

register(
    BenchProgram(
        name="kura-2-5",
        source=WALK_2D_REAL_SOURCE,
        description="(2-5) 2D real-valued walk with continuous sampling",
        valuation={"x": 4.0, "y": 4.0, "t": 0.0},
        sim_init={"x": 4.0, "y": 4.0},
        moment_degree=4,
        template_degree=1,
        paper={
            "2nd raw": 21060, "3rd raw": 9860940, "4th raw": 7298339760,
            "2nd central": 20160, "4th central": 8044220161, "E": 90,
        },
    )
)

KURA_NAMES = [
    "kura-1-1", "kura-1-2", "kura-2-1", "kura-2-2",
    "kura-2-3", "kura-2-4", "kura-2-5",
]
