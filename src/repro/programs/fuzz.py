"""Seeded generator of well-formed Appl programs for differential testing.

Every case is built from templates whose soundness side conditions hold *by
construction*, so the analyzer should succeed on most of them and the
Theorem 4.4 bracketing claim is actually checkable:

* **Drift loops** — ``while x > 0 inv(...) do t ~ step; x := x + t; ... od``
  where ``step`` has bounded support and strictly negative drift, so the
  stopping time has finite moments of every order;
* **Bounded recursion** — the Fig. 2 ``rdwalk`` shape: climb toward a
  threshold ``d`` with strictly positive drift, tick *after* the recursive
  call (non-tail);
* **Geometric recursion** — the Fig. 4 ``geo`` shape: recurse with
  probability ``p < 1``;
* **Straight-line blocks** — samples, assignments and (nested) branches
  with no loops at all.

Loop/recursion bodies and straight-line blocks are filled from a recursive
statement grammar spanning the scenario grid: probabilistic, conditional
and demonic-nondeterministic branches (nested up to a configured depth),
ticks with mixed-sign costs, scratch-variable updates, and sampling from
every supported distribution family.  All assignments keep the
bounded-update criterion of :mod:`repro.soundness.bounded_update`
satisfied (linear, unbounded coefficients summing to at most 1).

Probabilities and constants are dyadic rationals, so the surface text
printed here re-parses to *bit-identical* floats and the canonical printer
round-trips exactly (``tests/test_fuzz.py`` checks this over the corpus).

The generator emits *closed* programs (every variable initialized at the
top of ``main``) except for the ``open`` walk family, which leaves the
counter symbolic with a ``pre`` and pairs the case with a generated initial
valuation — exercising the analyzer's symbolic-in-the-initial-state path.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from repro.lang.ast import Program
from repro.lang.parser import parse_program

#: The block-template kinds coverage-guided campaigns can reweight.
TEMPLATE_KINDS = ("walk", "straight", "climb", "geo")


@dataclass(frozen=True)
class FuzzConfig:
    """Size bounds and feature toggles for the generator."""

    max_blocks: int = 3          #: top-level blocks in main
    max_branch_depth: int = 2    #: nesting depth of the branch grammar
    max_body_stmts: int = 3      #: extra statements per loop/branch body
    allow_nondet: bool = True
    allow_recursion: bool = True
    allow_continuous: bool = True
    allow_negative_costs: bool = True
    #: Moment degrees a case may declare (drawn uniformly).
    moment_degrees: tuple[int, ...] = (1, 2, 2)
    #: Start values for open walk cases.
    max_start: int = 12
    #: Optional coverage bias: ``((kind, weight), ...)`` multipliers over
    #: the block-template kinds (:data:`TEMPLATE_KINDS`).  ``None`` keeps
    #: the historical unweighted draw *and its exact RNG consumption*, so
    #: every pre-existing seed still generates byte-identical programs.
    kind_weights: "tuple[tuple[str, float], ...] | None" = None


@dataclass(frozen=True)
class FuzzCase:
    """One generated scenario: program text plus everything a differential
    check needs to run it."""

    name: str
    seed: int
    source: str
    initial: dict[str, float] = field(hash=False)
    #: Objective valuation for the analyzer (covers every program variable).
    valuation: dict[str, float] = field(hash=False)
    moment_degree: int
    #: Scenario-grid labels ("loop", "recursion", "ndet", "neg-cost", ...).
    features: tuple[str, ...] = ()

    def parse(self) -> Program:
        return parse_program(self.source)


def _dyadic(rng: np.random.Generator, lo: int = 1, hi: int = 15) -> float:
    """A random dyadic probability k/16 in (0, 1) — prints/parses exactly."""
    return int(rng.integers(lo, hi + 1)) / 16.0


class _CaseBuilder:
    """Holds the mutable generation state for one seed."""

    def __init__(self, seed: int, config: FuzzConfig) -> None:
        self.rng = np.random.default_rng(seed)
        self.config = config
        self.features: set[str] = set()
        self.fun_count = 0

    # -- scalar ingredients --------------------------------------------------

    def cost_value(self) -> float:
        rng = self.rng
        magnitudes = (0.5, 1.0, 2.0, 3.0, 4.0)
        value = float(rng.choice(magnitudes))
        if self.config.allow_negative_costs and rng.random() < 0.4:
            self.features.add("neg-cost")
            return -value
        return value

    def down_step_dist(self) -> tuple[str, float]:
        """A distribution with bounded support and strictly negative drift;
        returns (source text, support minimum)."""
        rng = self.rng
        kinds = ["discrete", "three-point"]
        if self.config.allow_continuous:
            kinds.append("uniform")
        kind = rng.choice(kinds)
        if kind == "uniform":
            self.features.add("uniform")
            a, b = float(rng.choice([-3.0, -2.0, -1.5])), float(rng.choice([0.5, 1.0]))
            return f"uniform({a!r}, {b!r})", a
        down = int(rng.integers(1, 3))
        up = int(rng.integers(0, 2))
        p_down = _dyadic(rng, 9, 15)  # > 1/2
        if p_down * down <= (1 - p_down) * up:
            up = 0
        if kind == "three-point":
            self.features.add("three-point")
            p_stall = _dyadic(rng, 1, int(round(16 * (1 - p_down))) or 1)
            p_stall = min(p_stall, 1.0 - p_down - 1 / 16.0)
            if p_stall > 0:
                p_up = 1.0 - p_down - p_stall
                return (
                    f"discrete(-{down}: {p_down!r}, 0: {p_stall!r}, "
                    f"{up}: {p_up!r})",
                    float(-down),
                )
        self.features.add("discrete")
        return f"discrete(-{down}: {p_down!r}, {up}: {1.0 - p_down!r})", float(-down)

    def up_step_dist(self) -> tuple[str, float]:
        """Strictly positive drift with bounded support; returns
        (source text, support maximum) — the recursion templates' climb."""
        rng = self.rng
        if self.config.allow_continuous and rng.random() < 0.5:
            self.features.add("uniform")
            return "uniform(-1, 2)", 2.0
        p_up = _dyadic(rng, 10, 14)
        up = int(rng.integers(1, 3))
        return f"discrete({up}: {p_up!r}, -1: {1.0 - p_up!r})", float(up)

    def scratch_dist(self) -> str:
        """Any bounded-support distribution, for scratch-variable samples."""
        rng = self.rng
        choices = ["ber", "unifint", "discrete"]
        if self.config.allow_continuous:
            choices.append("uniform")
        kind = rng.choice(choices)
        if kind == "ber":
            self.features.add("bernoulli")
            return f"ber({_dyadic(rng)!r})"
        if kind == "unifint":
            self.features.add("unifint")
            a = int(rng.integers(-2, 1))
            return f"unifint({a}, {a + int(rng.integers(1, 4))})"
        if kind == "uniform":
            self.features.add("uniform")
            return "uniform(-1, 1)"
        self.features.add("discrete")
        p = _dyadic(rng)
        return f"discrete({int(rng.integers(-2, 0))}: {p!r}, 1: {1.0 - p!r})"

    # -- statement grammar ---------------------------------------------------

    def cost_stmt(self, depth: int, indent: str) -> str:
        """A statement whose only lasting effect is on cost/scratch state."""
        rng = self.rng
        kinds = ["tick", "tick"]
        if depth > 0:
            kinds += ["prob", "cond"]
            if self.config.allow_nondet:
                kinds.append("ndet")
            kinds.append("scratch")
        kind = rng.choice(kinds)
        inner = indent + "  "
        if kind == "tick":
            return f"{indent}tick({self.cost_value()!r})"
        if kind == "prob":
            self.features.add("prob")
            p = _dyadic(rng)
            then = self.cost_stmt(depth - 1, inner)
            if rng.random() < 0.5:
                return f"{indent}if prob({p!r}) then\n{then}\n{indent}fi"
            other = self.cost_stmt(depth - 1, inner)
            return (
                f"{indent}if prob({p!r}) then\n{then}\n"
                f"{indent}else\n{other}\n{indent}fi"
            )
        if kind == "cond":
            self.features.add("cond")
            guard = rng.choice(["y >= 0", "y <= 0", "y >= 1", "y == 0"])
            then = self.cost_stmt(depth - 1, inner)
            other = self.cost_stmt(depth - 1, inner)
            return (
                f"{indent}if {guard} then\n{then}\n"
                f"{indent}else\n{other}\n{indent}fi"
            )
        if kind == "ndet":
            self.features.add("ndet")
            then = self.cost_stmt(depth - 1, inner)
            other = self.cost_stmt(depth - 1, inner)
            return (
                f"{indent}if ndet then\n{then}\n"
                f"{indent}else\n{other}\n{indent}fi"
            )
        # scratch: resample y, then charge depending on nothing else.
        self.features.add("scratch")
        return (
            f"{indent}y ~ {self.scratch_dist()};\n"
            f"{indent}tick({self.cost_value()!r})"
        )

    def body_extras(self, indent: str) -> list[str]:
        """Bounded-update filler statements for loop/recursion bodies."""
        rng = self.rng
        out = []
        for _ in range(int(rng.integers(0, self.config.max_body_stmts))):
            pick = rng.choice(["cost", "scratch-acc"])
            if pick == "cost":
                out.append(self.cost_stmt(self.config.max_branch_depth, indent))
            else:
                # y := y + t keeps |coeffs on unbounded vars| <= 1.
                self.features.add("scratch")
                out.append(f"{indent}y := y + t")
        return out

    # -- block templates ----------------------------------------------------

    def walk_loop_block(self, *, open_counter: bool = False) -> str:
        """Downward-drifting counter loop; the bread-and-butter template."""
        self.features.add("loop")
        rng = self.rng
        dist, lowest = self.down_step_dist()
        if lowest != int(lowest):
            lowest = float(np.floor(lowest))
        guard = rng.choice(["x > 0", "x >= 1"])
        inv = f"x >= {int(lowest)}"
        body = [
            f"    t ~ {dist};",
            "    x := x + t;",
        ]
        body.extend(s + ";" for s in self.body_extras("    "))
        body.append(self.cost_stmt(self.config.max_branch_depth, "    "))
        lines = []
        if not open_counter:
            start = int(rng.integers(2, self.config.max_start + 1))
            lines.append(f"  x := {start};")
        lines.append(f"  while {guard} inv({inv}) do")
        lines.extend(body)
        lines.append("  od")
        return "\n".join(lines)

    def recursion_block(self) -> tuple[str, str]:
        """(function definition, main-block text) for an rdwalk-style climb."""
        self.features.add("recursion")
        rng = self.rng
        name = f"climb{self.fun_count}"
        self.fun_count += 1
        dist, max_up = self.up_step_dist()
        margin = int(max_up)
        post_call = self.cost_stmt(self.config.max_branch_depth, "    ")
        fun = (
            f"func {name}() pre(x < d + {margin}) begin\n"
            f"  if x < d then\n"
            f"    t ~ {dist};\n"
            f"    x := x + t;\n"
            f"    call {name};\n"
            f"{post_call}\n"
            f"  fi\n"
            f"end"
        )
        d = int(rng.integers(2, 8))
        block = f"  d := {d};\n  x := 0;\n  call {name}"
        return fun, block

    def geo_block(self) -> tuple[str, str]:
        """(function definition, main-block text) for a geometric recursion."""
        self.features.add("geo")
        rng = self.rng
        name = f"retry{self.fun_count}"
        self.fun_count += 1
        p = _dyadic(rng, 4, 12)
        body = self.cost_stmt(self.config.max_branch_depth, "    ")
        fun = (
            f"func {name}() begin\n"
            f"  if prob({p!r}) then\n"
            f"{body};\n"
            f"    call {name}\n"
            f"  fi\n"
            f"end"
        )
        return fun, f"  call {name}"

    def straight_block(self) -> str:
        """Loop-free block: samples, assignments, nested branches."""
        self.features.add("straight")
        rng = self.rng
        lines = [f"  y ~ {self.scratch_dist()};"]
        for _ in range(int(rng.integers(1, 3))):
            lines.append(self.cost_stmt(self.config.max_branch_depth, "  ") + ";")
        lines.append(f"  tick({self.cost_value()!r})")
        return "\n".join(lines)


def _pick_kind(
    rng: np.random.Generator,
    kinds: list[str],
    weights: "tuple[tuple[str, float], ...] | None",
) -> str:
    """One block-kind draw.  Without weights this is *exactly* the historical
    ``rng.choice(kinds)`` call; with weights the base frequencies (walk is
    listed twice) are multiplied by the campaign's coverage bias."""
    if not weights:
        return str(rng.choice(kinds))
    names = sorted(set(kinds))
    bias = dict(weights)
    mass = np.array(
        [kinds.count(n) * max(float(bias.get(n, 1.0)), 0.0) for n in names],
        dtype=float,
    )
    if mass.sum() <= 0.0:
        return str(rng.choice(kinds))
    return str(rng.choice(names, p=mass / mass.sum()))


def generate_case(seed: int, config: FuzzConfig | None = None) -> FuzzCase:
    """Deterministically generate one well-formed scenario for ``seed``."""
    config = config or FuzzConfig()
    builder = _CaseBuilder(seed, config)
    rng = builder.rng

    kinds = ["walk", "walk", "straight"]
    if config.allow_recursion:
        kinds += ["climb", "geo"]
    open_walk = bool(rng.random() < 0.25)

    functions: list[str] = []
    blocks: list[str] = []
    n_blocks = 1 if open_walk else int(rng.integers(1, config.max_blocks + 1))
    for i in range(n_blocks):
        kind = _pick_kind(rng, kinds, config.kind_weights)
        if open_walk:
            kind = "walk"
        if kind == "walk":
            blocks.append(builder.walk_loop_block(open_counter=open_walk))
        elif kind == "climb":
            fun, block = builder.recursion_block()
            functions.append(fun)
            blocks.append(block)
        elif kind == "geo":
            fun, block = builder.geo_block()
            functions.append(fun)
            blocks.append(block)
        else:
            blocks.append(builder.straight_block())

    if open_walk:
        builder.features.add("open")
        header = "func main() pre(x >= 0) begin"
        start = float(rng.integers(1, config.max_start + 1))
        initial = {"x": start}
    else:
        header = "func main() begin"
        initial = {}

    main_body = ";\n".join(blocks)
    source = "\n\n".join(functions + [f"{header}\n{main_body}\nend"]) + "\n"

    program = parse_program(source)  # generator output must always parse
    from repro.interp.vectorized import collect_variables

    valuation = {name: 0.0 for name in collect_variables(program)}
    valuation.update(initial)
    moment_degree = int(rng.choice(config.moment_degrees))
    return FuzzCase(
        name=f"fuzz{seed:05d}",
        seed=seed,
        source=source,
        initial=initial,
        valuation=valuation,
        moment_degree=moment_degree,
        features=tuple(sorted(builder.features)),
    )


def generate_corpus(
    count: int, seed: int = 0, config: FuzzConfig | None = None
) -> list[FuzzCase]:
    """``count`` cases for consecutive seeds starting at ``seed``."""
    return [generate_case(seed + i, config) for i in range(count)]


def bucket_signature(case: FuzzCase) -> str:
    """Coverage bucket of a case: its feature set plus the moment degree.

    Campaigns tally these to measure how evenly the scenario grid is being
    exercised and to reweight generation toward under-covered buckets."""
    feats = "+".join(sorted(case.features)) or "plain"
    return f"{feats}|m{case.moment_degree}"


def shard_rng(campaign_seed: int, shard_index: int) -> np.random.Generator:
    """The per-shard sub-RNG: a :class:`numpy.random.SeedSequence` spawn keyed
    by (campaign seed, shard index), independent of the per-case seed streams.

    Campaigns use it only for shard-local decisions (whether a given case
    applies the coverage bias), so a shard replay is a pure function of its
    durable payload."""
    ss = np.random.SeedSequence(entropy=campaign_seed, spawn_key=(shard_index,))
    return np.random.default_rng(ss)


def generate_shard_corpus(
    seed_lo: int,
    count: int,
    config: FuzzConfig | None = None,
    *,
    campaign_seed: int = 0,
    shard_index: int = 0,
    bias_fraction: float = 0.5,
) -> list[FuzzCase]:
    """Cases for one campaign shard (seeds ``seed_lo .. seed_lo+count-1``).

    When ``config.kind_weights`` is set, each case independently applies the
    bias with probability ``bias_fraction``, decided by :func:`shard_rng` —
    the rest of the shard keeps the unweighted historical draw so coverage
    steering never starves the already-covered buckets entirely.  The result
    is byte-identical across replays of the same (payload-recorded) inputs.
    """
    config = config or FuzzConfig()
    sub = shard_rng(campaign_seed, shard_index)
    unbiased = (
        replace(config, kind_weights=None) if config.kind_weights else config
    )
    cases: list[FuzzCase] = []
    for i in range(count):
        flip = bool(sub.random() < bias_fraction)
        chosen = config if (flip and config.kind_weights) else unbiased
        cases.append(generate_case(seed_lo + i, chosen))
    return cases


__all__ = [
    "FuzzCase",
    "FuzzConfig",
    "TEMPLATE_KINDS",
    "bucket_signature",
    "generate_case",
    "generate_corpus",
    "generate_shard_corpus",
    "shard_rng",
]
