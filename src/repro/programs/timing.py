"""Timing-attack case study (Appendix I, DARPA STAC).

Scalar Appl models of the ``compare(guess, secret)`` password checker of
Fig. 16(b), specialized to the two scenarios the attack distinguishes when
probing bit ``j`` (bits are processed from ``i = n`` down to 1):

* ``timing-t1`` — ``secret[j] = guess[j]`` (and all higher bits equal): the
  comparison stays on the expensive "still comparing" path for all n bits,
  costing 11 per processed bit.
* ``timing-t0`` — ``secret[j] = 0 < guess[j] = 1``: bits above ``j`` cost
  11; at ``j`` the mismatch settles ``cmp``, after which every remaining
  bit takes the cheap 6-cost path.

The inner delay loop of Fig. 16(b) ("if prob(0.5) then break") is modeled
with mutual recursion — ``outer``/``inner`` functions play the role of the
original's CFG blocks, which keeps the exit states of the two loops
distinguishable for the logical contexts (the flag-based while-encoding
merges them behind a disjunction and loses the lower bounds).  Each break
re-enters the outer loop, paying its 2-cost prologue again; hence the
expected cost per processed bit is 11 + 2 = 13 (resp. 6 + 2 = 8 after the
mismatch), reproducing the paper's

    E[T1] in [13N, 15N],            V[T1] <= 26N^2 + 42N,
    E[T0] in [13N - 5j, 13N - 3j],  V[T0] <= 8N - 36j^2 + 52Nj + 24j.

The attack itself (success-rate computation via Cantelli) lives in
:mod:`repro.tail.attack`.
"""

from repro.programs.registry import BenchProgram, register

T1_SOURCE = """
func outer() pre(i >= 0) begin
  if i > 0 then
    tick(2);
    call inner
  fi
end

func inner() pre(i >= 1) begin
  if prob(0.5) then
    call outer
  else
    tick(11);
    i := i - 1;
    if i > 0 then call inner fi
  fi
end

func main() pre(i >= 0) begin
  call outer
end
"""

register(
    BenchProgram(
        name="timing-t1",
        source=T1_SOURCE,
        description="compare() when the probed bit matches: 11 per bit",
        valuation={"i": 32.0},
        extra_valuations=({"i": 5.0},),
        sim_init={"i": 32.0},
        moment_degree=2,
        template_degree=1,
        paper={"E": "[13N, 15N]", "V": "26N^2 + 42N"},
    )
)

T0_SOURCE = """
func outer_hi() int(j) pre(i >= j, j >= 0) begin
  if i > j then
    tick(2);
    call inner_hi
  else
    call outer_lo
  fi
end

func inner_hi() int(j) pre(i >= j + 1, j >= 0) begin
  if prob(0.5) then
    call outer_hi
  else
    tick(11);
    i := i - 1;
    if i > j then
      call inner_hi
    else
      if i > 0 then call inner_lo fi
    fi
  fi
end

func outer_lo() int(j) pre(j >= i, i >= 0) begin
  if i > 0 then
    tick(2);
    call inner_lo
  fi
end

func inner_lo() int(j) pre(i >= 1, j >= i) begin
  if prob(0.5) then
    call outer_lo
  else
    tick(6);
    i := i - 1;
    if i > 0 then call inner_lo fi
  fi
end

func main() int(j) pre(i >= j, j >= 0) begin
  call outer_hi
end
"""
register(
    BenchProgram(
        name="timing-t0",
        source=T0_SOURCE,
        description="compare() when the probed bit mismatches at index j",
        valuation={"i": 32.0, "j": 16.0},
        extra_valuations=({"i": 32.0, "j": 0.0}, {"i": 8.0, "j": 8.0}, {"i": 3.0, "j": 1.0}),
        sim_init={"i": 32.0, "j": 16.0},
        moment_degree=2,
        template_degree=1,
        paper={"E": "[13N - 5j, 13N - 3j]", "V": "8N - 36j^2 + 52Nj + 24j"},
    )
)
