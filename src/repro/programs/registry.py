"""Benchmark program registry.

Every evaluation program in the paper (and the suites it compares against)
is registered here as an Appl surface-syntax source plus the metadata the
benchmark harness needs: which moments to request, the objective/evaluation
valuation, the initial valuation for simulation, and the paper-reported
reference values for EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache

from repro.lang.ast import Program
from repro.lang.parser import parse_program


@dataclass(frozen=True)
class BenchProgram:
    """One benchmark: source text plus harness metadata."""

    name: str
    source: str
    description: str = ""
    #: Valuation at which bounds are evaluated/optimized (program variables
    #: missing here default to 1.0 inside the engine).
    valuation: dict[str, float] = field(default_factory=dict, hash=False, compare=False)
    #: Initial valuation for Monte-Carlo simulation (parameters of main).
    sim_init: dict[str, float] = field(default_factory=dict, hash=False, compare=False)
    #: Additional valuations for the LP objective (pins template coefficients
    #: when a single evaluation point leaves the optimum degenerate).
    extra_valuations: tuple = ()
    moment_degree: int = 2
    template_degree: int = 1
    degree_cap: "int | None" = None
    #: Paper-reported values, free-form, for EXPERIMENTS.md tables.
    paper: dict[str, object] = field(default_factory=dict, hash=False, compare=False)
    #: Costs are nonnegative (raw-moment baseline applicable).
    monotone: bool = True

    def parse(self) -> Program:
        return parse_program(self.source)


_REGISTRY: dict[str, BenchProgram] = {}


def register(bench: BenchProgram) -> BenchProgram:
    if bench.name in _REGISTRY:
        raise ValueError(f"duplicate benchmark {bench.name!r}")
    _REGISTRY[bench.name] = bench
    return bench


def get(name: str) -> BenchProgram:
    _load_all()
    return _REGISTRY[name]


@lru_cache(maxsize=None)
def parsed(name: str) -> Program:
    return get(name).parse()


def all_benchmarks() -> dict[str, BenchProgram]:
    _load_all()
    return dict(_REGISTRY)


def by_prefix(prefix: str) -> list[BenchProgram]:
    _load_all()
    return [b for name, b in sorted(_REGISTRY.items()) if name.startswith(prefix)]


_LOADED = False


def _load_all() -> None:
    """Import all program modules so their ``register`` calls run."""
    global _LOADED
    if _LOADED:
        return
    from repro.programs import absynth, kura, rdwalk, timing, wang  # noqa: F401

    _LOADED = True
