"""The vectorized symbolic kernel: array-backed polynomials over the
interned monomial basis, plus reusable substitution/expectation plans.

The derivation system's hot loops (certificate emission, rule Q-Assign
substitutions) are fixed-basis linear algebra: every polynomial lives in the
span of a small set of monomials that repeats across templates, components,
and contexts.  This module exploits that in three ways:

* :class:`SubstitutionPlan` / :class:`ExpectationPlan` +
  :class:`TermAccumulator` — the analyzer's hot path.  The basis-change
  induced by ``[replacement / var]`` (rule Q-Assign) or by replacing powers
  ``var^k`` with raw moments (rule Q-Sample) is expanded once per source
  monomial and reused across every interval end and moment component that
  substitutes the same thing; contributions accumulate in place instead of
  allocating an affine form per term.  Plans work for template polynomials
  too: the expansion factors are concrete, so coefficients stay affine.
* :class:`CompiledPoly` — a concrete (float-coefficient) polynomial as two
  parallel NumPy arrays ``ids``/``coeffs`` over the interned basis of
  :mod:`repro.poly.monomial` (``Polynomial.compiled()``).  Add/mul/
  substitute are id merges and ``np.add.at`` reductions instead of dict
  churn — the bulk-math representation for concrete polynomial workloads
  (and the reference the parity suite checks the dict path against); the
  analyzer's template loops themselves go through the plans above.
* ``REPRO_DISABLE_POLY_KERNEL`` — a kill switch mirroring
  ``REPRO_DISABLE_HIGHS``: with the environment variable set (or
  :func:`set_kernel_enabled` called), every consumer falls back to the
  legacy dict-path code, which must produce *byte-identical* analysis
  results (the differential suite in ``tests/test_poly_kernel.py`` enforces
  this).

Exactness discipline
--------------------
The kernel is only allowed to change *how fast* numbers are produced, never
*which* numbers: every reduction accumulates float contributions in the same
sequence the legacy dict path uses (row-major pair order for products,
source-term order for substitutions), so coefficient *values* are always
bit-identical.  The analyzer-facing paths (plans, accumulators, certificate
bases) additionally replay the dict path's key *ordering* exactly —
including the delete-on-zero/reinsert-at-end corner — which is what makes
kernel-on/off analyzer outputs byte-identical rather than merely close.
:func:`_reduce_first_encounter` (used only by :class:`CompiledPoly`) keeps
first-encounter order instead: when a coefficient cancels mid-stream and is
later re-contributed, the dict path re-inserts the monomial at the end while
the array reduction leaves it in place.  Values still match exactly; only
iteration order can differ, which is why ``CompiledPoly`` is not used on the
LP-emission path.
"""

from __future__ import annotations

import os
import threading
from contextlib import contextmanager
from typing import Callable

import numpy as np

from repro.lp.affine import AffBuilder, AffForm
from repro.poly.monomial import Monomial, monomial_of_id, product_id
from repro.poly.polynomial import Polynomial

_ENABLED = not os.environ.get("REPRO_DISABLE_POLY_KERNEL")

_EMPTY_IDS = np.empty(0, dtype=np.int64)
_EMPTY_COEFFS = np.empty(0, dtype=np.float64)

_MISSING = object()

_PLAN_CACHE: dict[tuple, "SubstitutionPlan"] = {}
_PLAN_LOCK = threading.Lock()
#: Plans are tiny (a handful of cached rows each); the cap only guards
#: against pathological workloads with unbounded distinct assignments.
_PLAN_CACHE_CAP = 4096


def kernel_enabled() -> bool:
    """Whether the vectorized kernel paths are active in this process."""
    return _ENABLED


def set_kernel_enabled(enabled: bool) -> bool:
    """Toggle the kernel (returns the previous state).  Test/bench lever."""
    global _ENABLED
    previous = _ENABLED
    _ENABLED = bool(enabled)
    return previous


@contextmanager
def kernel_override(enabled: bool):
    """Run a block with the kernel forced on or off."""
    previous = set_kernel_enabled(enabled)
    try:
        yield
    finally:
        set_kernel_enabled(previous)


def clear_plan_caches() -> None:
    """Drop memoized substitution plans (benchmarks measure cold starts)."""
    with _PLAN_LOCK:
        _PLAN_CACHE.clear()


def _reduce_first_encounter(
    ids: np.ndarray, contribs: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Sum ``contribs`` per id, in array order, keeping first-encounter ids.

    ``np.add.at`` applies the additions sequentially in element order, so for
    every output monomial the float sum is accumulated in exactly the order
    the legacy dict path would have used; exact-zero sums are dropped just
    like ``Polynomial._add_term`` deletes cancelled entries.  Output *order*
    is first-encounter, which differs from the dict path only when a
    cancelled monomial is later re-contributed (the dict re-inserts it at
    the end) — see the module docstring's exactness note.
    """
    if len(ids) == 0:
        return _EMPTY_IDS, _EMPTY_COEFFS
    uniq, first, inverse = np.unique(ids, return_index=True, return_inverse=True)
    order = np.argsort(first, kind="stable")
    rank = np.empty_like(order)
    rank[order] = np.arange(len(order))
    totals = np.zeros(len(uniq), dtype=np.float64)
    np.add.at(totals, rank[inverse], contribs)
    out_ids = ids[np.sort(first)]
    keep = totals != 0.0
    return out_ids[keep], totals[keep]


class CompiledPoly:
    """A concrete polynomial compiled over the interned monomial basis.

    ``ids`` and ``coeffs`` are parallel arrays; ids are unique, coefficients
    nonzero, and the order is the source dict's insertion order (so round
    trips through :meth:`to_polynomial` preserve the legacy representation).
    """

    __slots__ = ("ids", "coeffs")

    def __init__(self, ids: np.ndarray, coeffs: np.ndarray):
        self.ids = ids
        self.coeffs = coeffs

    # -- conversions ---------------------------------------------------------

    @staticmethod
    def from_polynomial(poly: Polynomial) -> "CompiledPoly":
        if not poly.is_concrete():
            raise TypeError("only concrete polynomials compile to arrays")
        n = len(poly.coeffs)
        ids = np.fromiter((m.iid for m in poly.coeffs), dtype=np.int64, count=n)
        coeffs = np.fromiter(poly.coeffs.values(), dtype=np.float64, count=n)
        return CompiledPoly(ids, coeffs)

    def to_polynomial(self) -> Polynomial:
        return Polynomial(
            {
                monomial_of_id(iid): c
                for iid, c in zip(self.ids.tolist(), self.coeffs.tolist())
            }
        )

    # -- queries -------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.ids)

    def is_zero(self) -> bool:
        return len(self.ids) == 0

    def degree(self) -> int:
        if len(self.ids) == 0:
            return 0
        return max(monomial_of_id(iid).degree for iid in self.ids.tolist())

    def evaluate(self, valuation: dict[str, float]) -> float:
        total = 0.0
        for iid, c in zip(self.ids.tolist(), self.coeffs.tolist()):
            total += c * monomial_of_id(iid).evaluate(valuation)
        return total

    # -- ring operations -----------------------------------------------------

    def __add__(self, other: "CompiledPoly") -> "CompiledPoly":
        return CompiledPoly(
            *_reduce_first_encounter(
                np.concatenate((self.ids, other.ids)),
                np.concatenate((self.coeffs, other.coeffs)),
            )
        )

    def __sub__(self, other: "CompiledPoly") -> "CompiledPoly":
        return self + other.scale(-1.0)

    def scale(self, scalar: float) -> "CompiledPoly":
        if scalar == 0:
            return CompiledPoly(_EMPTY_IDS, _EMPTY_COEFFS)
        coeffs = self.coeffs * scalar
        keep = coeffs != 0.0  # underflowed products drop, like the dict path
        return CompiledPoly(self.ids[keep], coeffs[keep])

    def __mul__(self, other: "CompiledPoly | float | int") -> "CompiledPoly":
        if isinstance(other, (int, float)):
            return self.scale(float(other))
        n1, n2 = len(self.ids), len(other.ids)
        if n1 == 0 or n2 == 0:
            return CompiledPoly(_EMPTY_IDS, _EMPTY_COEFFS)
        left = self.ids.tolist()
        right = other.ids.tolist()
        pair_ids = np.fromiter(
            (product_id(a, b) for a in left for b in right),
            dtype=np.int64,
            count=n1 * n2,
        )
        contribs = np.multiply.outer(self.coeffs, other.coeffs).ravel()
        return CompiledPoly(*_reduce_first_encounter(pair_ids, contribs))

    # -- analysis operations -------------------------------------------------

    def substitute(self, var: str, replacement: Polynomial) -> "CompiledPoly":
        return substitution_plan(var, replacement).apply_compiled(self)

    def expect_powers(
        self, var: str, moment: Callable[[int], float]
    ) -> "CompiledPoly":
        return ExpectationPlan(var, moment).apply_compiled(self)

    def __repr__(self) -> str:
        return f"CompiledPoly({self.to_polynomial()!r})"


class TermAccumulator:
    """Replays a ``Polynomial._add_term`` sequence of scaled contributions
    without materializing the scaled coefficients.

    The legacy paths compute ``c * factor`` (allocating a scaled
    :class:`AffForm` per contribution) and merge it into the result dict
    (allocating another on every collision).  The accumulator keeps a plain
    float or a mutable :class:`AffBuilder` per monomial and applies the
    identical float operations (``existing + scale * coeff``) in the
    identical sequence, including the dict-semantics corner cases: a
    contribution that is exactly zero is skipped, and a coefficient whose
    merge cancels to zero is *deleted* (so a later contribution re-inserts
    the monomial at the end, exactly like ``_add_term``).

    The one knowing deviation: the legacy path can keep an explicit ``0.0``
    term inside an ``AffForm`` when an individual product underflows
    (``AffForm.__mul__`` does not filter), while the builder drops it.  That
    requires a coefficient product below ~5e-324; the analysis' dyadic
    constants cannot produce one.
    """

    __slots__ = ("accs",)

    def __init__(self) -> None:
        self.accs: dict = {}

    def add(self, mono, c, scale: float = 1.0) -> None:
        """``result[mono] += scale * c`` with ``_add_term`` semantics.

        An AffForm contribution — even a constant-valued one — makes the
        accumulated coefficient an AffForm, exactly as the legacy float/
        AffForm promotion rules do.
        """
        if scale == 0.0:
            return
        accs = self.accs
        acc = accs.get(mono)
        if isinstance(c, AffForm):
            if not c.terms and c.const * scale == 0.0:
                return  # the scaled contribution is the zero form — skipped
            if acc is None:
                builder = AffBuilder()
                builder.add(c, scale)
                if not builder.is_zero():
                    accs[mono] = builder
            elif isinstance(acc, AffBuilder):
                acc.add(c, scale)
                if acc.is_zero():
                    del accs[mono]
            else:  # float accumulator meets an AffForm contribution
                builder = AffBuilder(None, acc)
                builder.add(c, scale)
                if builder.is_zero():
                    del accs[mono]
                else:
                    accs[mono] = builder
            return
        value = c * scale
        if value == 0.0:
            return
        if acc is None:
            accs[mono] = value
        elif isinstance(acc, AffBuilder):
            acc.const += value
            if acc.is_zero():
                del accs[mono]
        else:
            merged = acc + value
            if merged == 0.0:
                del accs[mono]
            else:
                accs[mono] = merged

    def to_polynomial(self) -> Polynomial:
        poly = Polynomial()
        poly.coeffs = {
            mono: acc.to_form() if isinstance(acc, AffBuilder) else acc
            for mono, acc in self.accs.items()
        }
        return poly


class SubstitutionPlan:
    """The basis change induced by ``[replacement / var]`` (rule Q-Assign).

    For every source monomial the expansion ``rest * replacement^e`` is
    computed once and cached as a tuple of ``(output monomial, factor)``
    pairs — the nonzero entries of one row of the basis-change matrix.
    Applying the plan to a polynomial (template or concrete) is then a flat
    scan; the ``2*(m+1)`` interval ends of a moment annotation, and repeated
    assignments across components, all share one plan.

    The factors replay the exact float products of the legacy
    ``Polynomial.substitute`` (same power-computation algorithm, same term
    order), so plan-routed substitution is bit-identical to the dict path.
    """

    __slots__ = ("var", "replacement", "_powers", "_rows")

    def __init__(self, var: str, replacement: Polynomial):
        if not replacement.is_concrete():
            raise TypeError("substitution plans require a concrete replacement")
        self.var = var
        self.replacement = replacement
        self._powers: dict[int, Polynomial] = {0: Polynomial.constant(1.0)}
        self._rows: dict[int, tuple[tuple[Monomial, float], ...] | None] = {}

    def _power(self, e: int) -> Polynomial:
        powers = self._powers
        while e not in powers:
            k = max(powers)
            powers[k + 1] = powers[k] * self.replacement
        return powers[e]

    def row(self, mono: Monomial) -> "tuple[tuple[Monomial, float], ...] | None":
        """The expansion of ``mono``; ``None`` when ``var`` does not occur."""
        row = self._rows.get(mono.iid, _MISSING)
        if row is not _MISSING:
            return row
        e = mono.exponent_of(self.var)
        if e == 0:
            row = None
        else:
            rest = mono.without(self.var)
            row = tuple(
                (rest * sub_mono, sub_c)
                for sub_mono, sub_c in self._power(e).coeffs.items()
            )
        self._rows[mono.iid] = row
        return row

    def apply(self, poly: Polynomial) -> Polynomial:
        """``poly[replacement / var]`` on the dict representation.

        Contributions stream through a :class:`TermAccumulator`, so template
        coefficients are scaled and merged in place instead of allocating an
        ``AffForm`` per (source term, expansion entry) pair.
        """
        acc = TermAccumulator()
        add = acc.add
        for mono, c in poly.coeffs.items():
            row = self.row(mono)
            if row is None:
                add(mono, c)
            else:
                for out_mono, factor in row:
                    add(out_mono, c, factor)
        return acc.to_polynomial()

    def apply_compiled(self, compiled: CompiledPoly) -> CompiledPoly:
        out_ids: list[int] = []
        contribs: list[float] = []
        for iid, c in zip(compiled.ids.tolist(), compiled.coeffs.tolist()):
            row = self.row(monomial_of_id(iid))
            if row is None:
                out_ids.append(iid)
                contribs.append(c)
            else:
                for out_mono, factor in row:
                    out_ids.append(out_mono.iid)
                    contribs.append(c * factor)
        return CompiledPoly(
            *_reduce_first_encounter(
                np.asarray(out_ids, dtype=np.int64),
                np.asarray(contribs, dtype=np.float64),
            )
        )


def substitution_plan(var: str, replacement: Polynomial) -> SubstitutionPlan:
    """A (memoized) plan for ``[replacement / var]``.

    The cache key is order-sensitive in the replacement's terms: two
    polynomials with the same terms in different dict orders compute their
    powers in different float-accumulation orders, and the plans must not be
    conflated if results are to stay bit-identical with the legacy path.
    """
    key = (var, tuple((m.iid, c) for m, c in replacement.coeffs.items()))
    plan = _PLAN_CACHE.get(key)
    if plan is None:
        plan = SubstitutionPlan(var, replacement)
        with _PLAN_LOCK:
            if len(_PLAN_CACHE) >= _PLAN_CACHE_CAP:
                _PLAN_CACHE.clear()
            _PLAN_CACHE[key] = plan
    return plan


class ExpectationPlan:
    """Rule (Q-Sample) as a basis change: ``var^k`` becomes ``moment(k)``.

    Not globally memoized (the moment function is an opaque callable); one
    plan is shared across all interval ends of one ``expect`` application.
    """

    __slots__ = ("var", "moment", "_rows")

    def __init__(self, var: str, moment: Callable[[int], float]):
        self.var = var
        self.moment = moment
        self._rows: dict[int, tuple[Monomial, float] | None] = {}

    def row(self, mono: Monomial) -> "tuple[Monomial, float] | None":
        row = self._rows.get(mono.iid, _MISSING)
        if row is not _MISSING:
            return row
        e = mono.exponent_of(self.var)
        row = None if e == 0 else (mono.without(self.var), self.moment(e))
        self._rows[mono.iid] = row
        return row

    def apply(self, poly: Polynomial) -> Polynomial:
        acc = TermAccumulator()
        add = acc.add
        for mono, c in poly.coeffs.items():
            row = self.row(mono)
            if row is None:
                add(mono, c)
            else:
                add(row[0], c, row[1])
        return acc.to_polynomial()

    def apply_compiled(self, compiled: CompiledPoly) -> CompiledPoly:
        out_ids: list[int] = []
        contribs: list[float] = []
        for iid, c in zip(compiled.ids.tolist(), compiled.coeffs.tolist()):
            row = self.row(monomial_of_id(iid))
            if row is None:
                out_ids.append(iid)
                contribs.append(c)
            else:
                out_ids.append(row[0].iid)
                contribs.append(c * row[1])
        return CompiledPoly(
            *_reduce_first_encounter(
                np.asarray(out_ids, dtype=np.int64),
                np.asarray(contribs, dtype=np.float64),
            )
        )
