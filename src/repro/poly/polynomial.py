"""Sparse multivariate polynomials with exchangeable coefficient rings.

Coefficients are either plain ``float`` (concrete polynomials: program
expressions, Handelman certificate products, extracted bounds) or
:class:`repro.lp.affine.AffForm` (template polynomials whose coefficients are
LP unknowns, section 3.4 of the paper).  The operations required by the
derivation system keep templates *linear* in the LP unknowns:

* template + template, template - template
* template * concrete scalar / concrete polynomial
* substitution of a program variable by a *concrete* polynomial
* replacement of powers ``x^k`` by the k-th moment of a distribution

Products of two templates are rejected by ``AffForm.__mul__`` — by design,
since they would leave the LP fragment.

Concrete polynomials additionally compile to an array form over the interned
monomial basis (:meth:`Polynomial.compiled`, :mod:`repro.poly.kernel`), and
substitution routes through memoized basis-change plans when the kernel is
enabled; both are bit-exact replays of the dict-path arithmetic here, so the
``REPRO_DISABLE_POLY_KERNEL`` escape hatch toggles speed, never results.
"""

from __future__ import annotations

from typing import Callable, Iterable, Union

from repro.lp.affine import AffForm
from repro.poly.monomial import Monomial

Coeff = Union[float, AffForm]


def _is_zero_coeff(c: Coeff) -> bool:
    if isinstance(c, AffForm):
        return c.is_zero()
    return c == 0.0


class Polynomial:
    """A sparse polynomial ``sum_m coeff_m * m`` over program variables."""

    __slots__ = ("coeffs",)

    def __init__(self, coeffs: dict[Monomial, Coeff] | None = None):
        self.coeffs: dict[Monomial, Coeff] = {}
        if coeffs:
            for mono, c in coeffs.items():
                if not _is_zero_coeff(c):
                    self.coeffs[mono] = c

    # -- constructors --------------------------------------------------------

    @staticmethod
    def zero() -> "Polynomial":
        return Polynomial()

    @staticmethod
    def constant(value: Coeff) -> "Polynomial":
        return Polynomial({Monomial.unit(): value})

    @staticmethod
    def var(name: str) -> "Polynomial":
        return Polynomial({Monomial.of(name): 1.0})

    @staticmethod
    def from_terms(terms: Iterable[tuple[Monomial, Coeff]]) -> "Polynomial":
        poly = Polynomial()
        for mono, c in terms:
            poly._add_term(mono, c)
        return poly

    # -- queries -------------------------------------------------------------

    def is_zero(self) -> bool:
        return not self.coeffs

    def is_constant(self) -> bool:
        return all(m.is_unit() for m in self.coeffs)

    def constant_value(self) -> Coeff:
        return self.coeffs.get(Monomial.unit(), 0.0)

    def degree(self) -> int:
        if not self.coeffs:
            return 0
        return max(m.degree for m in self.coeffs)

    def variables(self) -> set[str]:
        names: set[str] = set()
        for mono in self.coeffs:
            names.update(mono.variables())
        return names

    def coefficient(self, mono: Monomial) -> Coeff:
        return self.coeffs.get(mono, 0.0)

    def is_concrete(self) -> bool:
        """True when every coefficient is a plain float."""
        return all(not isinstance(c, AffForm) for c in self.coeffs.values())

    # -- mutation helper (private) --------------------------------------------

    def _add_term(self, mono: Monomial, c: Coeff) -> None:
        if _is_zero_coeff(c):
            return
        if mono in self.coeffs:
            merged = self.coeffs[mono] + c
            if _is_zero_coeff(merged):
                del self.coeffs[mono]
            else:
                self.coeffs[mono] = merged
        else:
            self.coeffs[mono] = c

    # -- ring operations -------------------------------------------------------

    def __add__(self, other: "Polynomial | float | int") -> "Polynomial":
        other = _coerce(other)
        result = Polynomial(dict(self.coeffs))
        for mono, c in other.coeffs.items():
            result._add_term(mono, c)
        return result

    __radd__ = __add__

    def __neg__(self) -> "Polynomial":
        return Polynomial({m: -c for m, c in self.coeffs.items()})

    def __sub__(self, other: "Polynomial | float | int") -> "Polynomial":
        return self + (-_coerce(other))

    def __rsub__(self, other: "Polynomial | float | int") -> "Polynomial":
        return _coerce(other) + (-self)

    def scale(self, scalar: float) -> "Polynomial":
        if scalar == 0:
            return Polynomial.zero()
        return Polynomial({m: c * scalar for m, c in self.coeffs.items()})

    def __mul__(self, other: "Polynomial | float | int") -> "Polynomial":
        if isinstance(other, (int, float)):
            return self.scale(float(other))
        result = Polynomial()
        for m1, c1 in self.coeffs.items():
            for m2, c2 in other.coeffs.items():
                result._add_term(m1 * m2, c1 * c2)
        return result

    def __rmul__(self, other: "Polynomial | float | int") -> "Polynomial":
        if isinstance(other, (int, float)):
            return self.scale(float(other))
        return NotImplemented

    def __pow__(self, exponent: int) -> "Polynomial":
        if exponent < 0:
            raise ValueError("negative polynomial powers are not defined")
        result = Polynomial.constant(1.0)
        for _ in range(exponent):
            result = result * self
        return result

    # -- analysis-specific operations -------------------------------------------

    def compiled(self):
        """This polynomial as a :class:`repro.poly.kernel.CompiledPoly`.

        Concrete polynomials only; the arrays index the process-wide
        interned monomial basis.
        """
        from repro.poly.kernel import CompiledPoly

        return CompiledPoly.from_polynomial(self)

    def substitute(self, var: str, replacement: "Polynomial") -> "Polynomial":
        """Capture-free substitution ``self[replacement / var]``.

        ``replacement`` must be concrete when ``self`` is a template, so that
        the result stays affine in the LP unknowns.  With the symbolic
        kernel enabled the expansion is routed through a memoized
        :class:`repro.poly.kernel.SubstitutionPlan`, which replays the exact
        float products of the loop below (bit-identical results) while
        reusing the per-monomial expansions across calls.
        """
        if replacement.is_concrete():
            from repro.poly.kernel import kernel_enabled, substitution_plan

            if kernel_enabled():
                return substitution_plan(var, replacement).apply(self)
        result = Polynomial()
        powers: dict[int, Polynomial] = {0: Polynomial.constant(1.0)}

        def replacement_power(e: int) -> Polynomial:
            while e not in powers:
                k = max(powers)
                powers[k + 1] = powers[k] * replacement
            return powers[e]

        for mono, c in self.coeffs.items():
            e = mono.exponent_of(var)
            if e == 0:
                result._add_term(mono, c)
                continue
            rest = mono.without(var)
            for sub_mono, sub_c in replacement_power(e).coeffs.items():
                result._add_term(rest * sub_mono, c * sub_c)
        return result

    def expect_powers(self, var: str, moment: Callable[[int], float]) -> "Polynomial":
        """Replace each power ``var^k`` by the scalar ``moment(k)``.

        This implements rule (Q-Sample): taking the expectation of the
        polynomial with respect to a distribution for ``var`` with raw
        moments ``moment(k)``, using linearity of expectation.
        """
        result = Polynomial()
        for mono, c in self.coeffs.items():
            e = mono.exponent_of(var)
            if e == 0:
                result._add_term(mono, c)
            else:
                result._add_term(mono.without(var), c * moment(e))
        return result

    def evaluate(self, valuation: dict[str, float]) -> Coeff:
        """Evaluate program variables; the result is a coefficient."""
        total: Coeff = 0.0
        for mono, c in self.coeffs.items():
            total = total + c * mono.evaluate(valuation)
        return total

    def map_coefficients(self, fn: Callable[[Coeff], Coeff]) -> "Polynomial":
        return Polynomial({m: fn(c) for m, c in self.coeffs.items()})

    # -- comparison / display ------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if isinstance(other, (int, float)):
            other = Polynomial.constant(float(other))
        if not isinstance(other, Polynomial):
            return NotImplemented
        return (self - other).is_zero()

    def __hash__(self) -> int:
        return hash(tuple(sorted(((repr(m), repr(c)) for m, c in self.coeffs.items()))))

    def __repr__(self) -> str:
        return format_polynomial(self)


def _coerce(value: "Polynomial | float | int") -> Polynomial:
    if isinstance(value, Polynomial):
        return value
    if isinstance(value, (int, float)):
        return Polynomial.constant(float(value))
    raise TypeError(f"cannot coerce {value!r} to Polynomial")


def format_polynomial(poly: Polynomial, precision: int = 6) -> str:
    """Human-readable rendering, ordered by decreasing degree."""
    if poly.is_zero():
        return "0"
    parts: list[str] = []
    ordered = sorted(poly.coeffs.items(), key=lambda kv: (-kv[0].degree, repr(kv[0])))
    for mono, c in ordered:
        if isinstance(c, AffForm):
            coeff_str = f"({c!r})"
        else:
            coeff_str = f"{round(c, precision):g}"
        if mono.is_unit():
            parts.append(coeff_str)
        elif coeff_str in ("1", "1.0"):
            parts.append(repr(mono))
        elif coeff_str in ("-1", "-1.0"):
            parts.append(f"-{mono!r}")
        else:
            parts.append(f"{coeff_str}*{mono!r}")
    text = " + ".join(parts)
    return text.replace("+ -", "- ")
