"""Monomials over program variables, interned in a process-wide basis table.

A monomial is a finite map from variable names to positive integer exponents,
stored as a sorted tuple so it is hashable and has a canonical form.  These
are the index set of the sparse polynomials in :mod:`repro.poly.polynomial`,
which in turn are the interval ends of the moment annotations (section 3.3 of
the paper: "we represent the ends of intervals by polynomials over program
variables").

The symbolic kernel (:mod:`repro.poly.kernel`) treats monomials as *small
integer ids* instead of tuples: every canonical power product is interned
once per process (:func:`intern_id`), and pairwise products are memoized in
an ``id x id -> id`` table, so ``Monomial.__mul__`` is a dict probe instead
of a merge-sort-validate pass.  Interning is exact (no floats are involved)
and therefore shared by the kernel and the legacy dict paths alike.

Ids are process-local: they are assigned in first-intern order and never
serialized.  Pickling a :class:`Monomial` transports only the canonical
``powers`` tuple; the id (and the cached hash) are re-derived lazily in the
receiving process.
"""

from __future__ import annotations

import itertools
import threading


class Monomial:
    """A power product ``prod_i x_i^{e_i}`` with all ``e_i >= 1``.

    Immutable by convention (the analysis never mutates ``powers``); the
    ``_iid`` / ``_hash`` slots cache the interned id and the tuple hash, both
    derived from ``powers`` on first use.
    """

    __slots__ = ("powers", "_iid", "_hash", "_repr", "_degree")

    def __init__(self, powers: tuple[tuple[str, int], ...]):
        self.powers = powers

    # -- constructors -------------------------------------------------------

    @staticmethod
    def unit() -> "Monomial":
        """The empty product (degree 0)."""
        return _UNIT

    @staticmethod
    def of(var: str, exponent: int = 1) -> "Monomial":
        if exponent < 0:
            raise ValueError("monomial exponents must be nonnegative")
        if exponent == 0:
            return _UNIT
        return Monomial(((var, exponent),))

    @staticmethod
    def from_dict(powers: dict[str, int]) -> "Monomial":
        if any(e < 0 for e in powers.values()):
            raise ValueError("monomial exponents must be nonnegative")
        return Monomial(tuple(sorted((v, e) for v, e in powers.items() if e > 0)))

    # -- queries -------------------------------------------------------------

    @property
    def degree(self) -> int:
        # Cached: certificate emission takes the max target degree per
        # certificate, and interned instances are shared process-wide.
        try:
            return self._degree
        except AttributeError:
            d = sum(e for _, e in self.powers)
            self._degree = d
            return d

    def exponent_of(self, var: str) -> int:
        for v, e in self.powers:
            if v == var:
                return e
        return 0

    def variables(self) -> tuple[str, ...]:
        return tuple(v for v, _ in self.powers)

    def is_unit(self) -> bool:
        return not self.powers

    @property
    def iid(self) -> int:
        """The interned id of this monomial (process-local, lazily assigned)."""
        try:
            return self._iid
        except AttributeError:
            iid = intern_id(self)
            self._iid = iid
            return iid

    # -- algebra -------------------------------------------------------------

    def __mul__(self, other: "Monomial") -> "Monomial":
        if not self.powers:
            return other
        if not other.powers:
            return self
        return _TABLE.monomials[product_id(self.iid, other.iid)]

    def without(self, var: str) -> "Monomial":
        """Drop ``var`` entirely from the power product."""
        return Monomial(tuple((v, e) for v, e in self.powers if v != var))

    def evaluate(self, valuation: dict[str, float]) -> float:
        result = 1.0
        for v, e in self.powers:
            result *= valuation[v] ** e
        return result

    # -- identity ------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Monomial):
            return self.powers == other.powers
        return NotImplemented

    def __hash__(self) -> int:
        try:
            return self._hash
        except AttributeError:
            h = hash(self.powers)
            self._hash = h
            return h

    def __getstate__(self):
        # Only the canonical powers travel; ids and hashes are process-local.
        return self.powers

    def __setstate__(self, state):
        self.powers = state

    def __repr__(self) -> str:
        # Cached: certificate emission formats a note label per LP row, and
        # interned instances are shared process-wide.
        try:
            return self._repr
        except AttributeError:
            if not self.powers:
                text = "1"
            else:
                text = "*".join(
                    v if e == 1 else f"{v}^{e}" for v, e in self.powers
                )
            self._repr = text
            return text


_UNIT = Monomial(())


class _InternTable:
    """Process-wide monomial basis: powers -> id, id -> monomial, products.

    Reads are lock-free (a dict probe under the GIL); the lock only guards
    id assignment so concurrent batch/fuzz threads cannot race two ids for
    one canonical form.  The table grows monotonically and is never cleared:
    compiled polynomials and certificate matrices embed ids, so clearing
    would invalidate every cached artifact in the process.
    """

    __slots__ = ("ids", "monomials", "products", "lock")

    def __init__(self) -> None:
        self.ids: dict[tuple[tuple[str, int], ...], int] = {}
        self.monomials: list[Monomial] = []
        self.products: dict[tuple[int, int], int] = {}
        self.lock = threading.Lock()


_TABLE = _InternTable()


def intern_id(mono: Monomial) -> int:
    """The id of ``mono``'s canonical form, assigning a fresh one if new."""
    iid = _TABLE.ids.get(mono.powers)
    if iid is not None:
        return iid
    with _TABLE.lock:
        iid = _TABLE.ids.get(mono.powers)
        if iid is None:
            iid = len(_TABLE.monomials)
            _TABLE.monomials.append(mono)
            _TABLE.ids[mono.powers] = iid
    return iid


def monomial_of_id(iid: int) -> Monomial:
    """The canonical monomial instance interned under ``iid``."""
    return _TABLE.monomials[iid]


def product_id(a: int, b: int) -> int:
    """The id of the product of the monomials with ids ``a`` and ``b``.

    Memoized symmetrically: certificate emission and polynomial products
    multiply the same small basis over and over, so after warm-up this is a
    single dict probe.
    """
    key = (a, b) if a <= b else (b, a)
    pid = _TABLE.products.get(key)
    if pid is not None:
        return pid
    left = _TABLE.monomials[key[0]]
    merged = dict(left.powers)
    for v, e in _TABLE.monomials[key[1]].powers:
        merged[v] = merged.get(v, 0) + e
    pid = intern_id(Monomial(tuple(sorted(merged.items()))))
    _TABLE.products[key] = pid
    return pid


def intern_stats() -> dict[str, int]:
    """Sizes of the intern tables (diagnostics for ``--profile`` and tests)."""
    return {
        "monomials": len(_TABLE.monomials),
        "products": len(_TABLE.products),
    }


_ENUM_CACHE: dict[tuple, list[Monomial]] = {}


def monomials_up_to_degree(variables: list[str], degree: int) -> list[Monomial]:
    """All monomials over ``variables`` of total degree at most ``degree``.

    Ordered by (degree, lexicographic) so that template construction and
    reporting are deterministic.  Results are interned, so repeated template
    construction reuses the canonical instances (and their cached hashes);
    the enumeration itself is memoized per (variables, degree) — template
    allocation asks for the same basis for every component of every fresh
    annotation.  Callers receive a fresh list; the interned elements are
    shared.
    """
    variables = sorted(variables)
    key = (tuple(variables), degree)
    cached = _ENUM_CACHE.get(key)
    if cached is not None:
        return list(cached)
    result: list[Monomial] = [Monomial.unit()]
    for deg in range(1, degree + 1):
        for combo in itertools.combinations_with_replacement(variables, deg):
            powers: dict[str, int] = {}
            for v in combo:
                powers[v] = powers.get(v, 0) + 1
            mono = Monomial.from_dict(powers)
            result.append(_TABLE.monomials[mono.iid])
    if len(_ENUM_CACHE) >= 1024:
        _ENUM_CACHE.clear()
    _ENUM_CACHE[key] = result
    return list(result)
