"""Monomials over program variables.

A monomial is a finite map from variable names to positive integer exponents,
stored as a sorted tuple so it is hashable and has a canonical form.  These
are the index set of the sparse polynomials in :mod:`repro.poly.polynomial`,
which in turn are the interval ends of the moment annotations (section 3.3 of
the paper: "we represent the ends of intervals by polynomials over program
variables").
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass


@dataclass(frozen=True)
class Monomial:
    """A power product ``prod_i x_i^{e_i}`` with all ``e_i >= 1``."""

    powers: tuple[tuple[str, int], ...]

    # -- constructors -------------------------------------------------------

    @staticmethod
    def unit() -> "Monomial":
        """The empty product (degree 0)."""
        return _UNIT

    @staticmethod
    def of(var: str, exponent: int = 1) -> "Monomial":
        if exponent < 0:
            raise ValueError("monomial exponents must be nonnegative")
        if exponent == 0:
            return _UNIT
        return Monomial(((var, exponent),))

    @staticmethod
    def from_dict(powers: dict[str, int]) -> "Monomial":
        items = tuple(sorted((v, e) for v, e in powers.items() if e > 0))
        if any(e < 0 for _, e in items):
            raise ValueError("monomial exponents must be nonnegative")
        return Monomial(items)

    # -- queries -------------------------------------------------------------

    @property
    def degree(self) -> int:
        return sum(e for _, e in self.powers)

    def exponent_of(self, var: str) -> int:
        for v, e in self.powers:
            if v == var:
                return e
        return 0

    def variables(self) -> tuple[str, ...]:
        return tuple(v for v, _ in self.powers)

    def is_unit(self) -> bool:
        return not self.powers

    # -- algebra -------------------------------------------------------------

    def __mul__(self, other: "Monomial") -> "Monomial":
        if self.is_unit():
            return other
        if other.is_unit():
            return self
        merged: dict[str, int] = dict(self.powers)
        for v, e in other.powers:
            merged[v] = merged.get(v, 0) + e
        return Monomial.from_dict(merged)

    def without(self, var: str) -> "Monomial":
        """Drop ``var`` entirely from the power product."""
        return Monomial(tuple((v, e) for v, e in self.powers if v != var))

    def evaluate(self, valuation: dict[str, float]) -> float:
        result = 1.0
        for v, e in self.powers:
            result *= valuation[v] ** e
        return result

    def __repr__(self) -> str:
        if self.is_unit():
            return "1"
        return "*".join(v if e == 1 else f"{v}^{e}" for v, e in self.powers)


_UNIT = Monomial(())


def monomials_up_to_degree(variables: list[str], degree: int) -> list[Monomial]:
    """All monomials over ``variables`` of total degree at most ``degree``.

    Ordered by (degree, lexicographic) so that template construction and
    reporting are deterministic.
    """
    variables = sorted(variables)
    result: list[Monomial] = [Monomial.unit()]
    for deg in range(1, degree + 1):
        for combo in itertools.combinations_with_replacement(variables, deg):
            powers: dict[str, int] = {}
            for v in combo:
                powers[v] = powers.get(v, 0) + 1
            result.append(Monomial.from_dict(powers))
    return result
