"""Crash-safe corpus-scale fuzzing campaigns.

A *campaign* turns the in-memory ``repro fuzz`` sweep into a durable,
resumable system: a seed range is partitioned into fixed-size **shards**,
each shard rides the SQLite/WAL :class:`~repro.service.store.JobStore` as a
``fuzz_shard`` job, and the existing crash-isolated worker fleet executes
them (generate → canonicalize → dedupe → analyze → MC-differential check).
All campaign state lives in the *same* SQLite file as the queue, so the
campaign inherits the store's durability story wholesale.

Guarantees, each exercised in ``tests/test_fuzz_campaign.py``:

* **Exactly-once shard accounting.**  Shard jobs carry idempotent keys
  (campaign name, shard index, config digest), so re-enqueues dedupe to
  one row; shard *completion* is committed to the campaign tables in its
  own transaction **before** the job acks, and a re-delivered job whose
  shard row is already ``done`` short-circuits to the recorded tallies —
  a finished shard is never analyzed twice, no matter how the job layer
  retries.
* **Byte-identical resume.**  A shard's durable payload records everything
  generation depends on (seed range, fuzz config, coverage weights); the
  per-shard sub-RNG (:func:`repro.programs.fuzz.shard_rng`) is keyed by the
  payload alone, so a replay after SIGKILL regenerates the same programs.
* **Reproducers survive anything.**  A violation is minimized (under the
  deadline/budget caps of the differential config) and persisted to the
  campaign's content-addressed regression corpus *before* the shard
  completes — the crash window between "found" and "recorded" is closed,
  and content addressing makes the write idempotent across re-deliveries.
* **Poison quarantine.**  A program that hard-crashes or OOMs a worker
  kills the process, not the campaign: the shard row tracks the case being
  executed; on re-delivery that case is re-checked in a guarded probe
  subprocess (:mod:`repro.soundness.probe`, rlimits via
  ``resource.setrlimit``); if the probe also dies, the case is minimized
  under a wall-clock deadline (still through probes) and dead-lettered
  into the ``quarantine`` table + corpus with full provenance, and the
  shard carries on.
* **Coverage-guided generation.**  Completed shards tally bucket
  signatures (feature set × moment degree); each new wave of shards is
  enqueued with kind weights biased toward the under-covered block
  templates, baked into the payload so the bias is durable too.

``chaos_*_seeds`` in the config inject deterministic worker deaths
(``os._exit``) and OOMs (``MemoryError``) for specific seeds — the drill
machinery behind the quarantine tests and the nightly kill+resume drill.
"""

from __future__ import annotations

import hashlib
import json
import math
import os
import sqlite3
import threading
import time
from collections import Counter
from dataclasses import dataclass, field, fields, replace
from pathlib import Path

from repro.programs.fuzz import (
    TEMPLATE_KINDS,
    FuzzCase,
    FuzzConfig,
    bucket_signature,
    generate_shard_corpus,
)
from repro.service.jobs import JobFailure, wait_for_jobs
from repro.service.store import Job, JobStore
from repro.soundness import corpus as corpus_store
from repro.soundness.differential import (
    STATUSES,
    VIOLATION,
    DifferentialConfig,
    check_case,
    minimize_case,
)

#: Shard-level statuses beyond the differential ones.
QUARANTINED = "quarantined"
DEDUPED = "deduped"
TALLY_KEYS = STATUSES + (QUARANTINED, DEDUPED)

CAMPAIGN_STATES = ("running", "complete")
SHARD_STATES = ("pending", "done", "failed")

_SCHEMA = """
CREATE TABLE IF NOT EXISTS campaigns (
    id          INTEGER PRIMARY KEY,
    name        TEXT NOT NULL UNIQUE,
    config      TEXT NOT NULL,
    dir         TEXT NOT NULL,
    state       TEXT NOT NULL DEFAULT 'running',
    created_at  REAL NOT NULL,
    finished_at REAL
);
CREATE TABLE IF NOT EXISTS campaign_shards (
    campaign    INTEGER NOT NULL,
    idx         INTEGER NOT NULL,
    seed_lo     INTEGER NOT NULL,
    count       INTEGER NOT NULL,
    payload     TEXT,
    job_id      INTEGER,
    state       TEXT NOT NULL DEFAULT 'pending',
    tallies     TEXT,
    wall_seconds REAL,
    completed_at REAL,
    last_case_seed INTEGER,
    error       TEXT,
    PRIMARY KEY (campaign, idx)
);
CREATE TABLE IF NOT EXISTS campaign_cases (
    campaign    INTEGER NOT NULL,
    case_key    TEXT NOT NULL,
    shard       INTEGER NOT NULL,
    PRIMARY KEY (campaign, case_key)
);
CREATE TABLE IF NOT EXISTS campaign_buckets (
    campaign    INTEGER NOT NULL,
    signature   TEXT NOT NULL,
    count       INTEGER NOT NULL DEFAULT 0,
    PRIMARY KEY (campaign, signature)
);
CREATE TABLE IF NOT EXISTS campaign_quarantine (
    campaign    INTEGER NOT NULL,
    seed        INTEGER NOT NULL,
    shard       INTEGER NOT NULL,
    case_key    TEXT NOT NULL,
    reason      TEXT NOT NULL,
    provenance  TEXT NOT NULL,
    created_at  REAL NOT NULL,
    PRIMARY KEY (campaign, seed)
);
CREATE TABLE IF NOT EXISTS campaign_reproducers (
    campaign    INTEGER NOT NULL,
    digest      TEXT NOT NULL,
    seed        INTEGER NOT NULL,
    shard       INTEGER NOT NULL,
    report      TEXT NOT NULL,
    created_at  REAL NOT NULL,
    PRIMARY KEY (campaign, digest)
);
"""


# ---------------------------------------------------------------------------
# Configuration
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class CampaignConfig:
    """Durable knobs of one campaign (stored as JSON in the DB)."""

    seed_start: int = 0
    seed_count: int = 500
    shard_size: int = 25
    samples: int = 2000
    z: float = 5.0
    max_steps: int = 200_000
    #: Per-case analysis/simulation deadline (``None`` = unbounded).
    deadline_seconds: "float | None" = 30.0
    minimize_budget: int = 80
    #: Wall-clock cap on one minimization (violations and poison alike).
    minimize_seconds: float = 60.0
    #: Wall-clock cap on one quarantine probe subprocess.
    probe_timeout: float = 120.0
    #: RSS cap (MiB) applied to workers and probes; ``None`` = unguarded.
    max_rss_mb: "int | None" = None
    #: Fraction of each shard generated with the coverage bias applied.
    bias_fraction: float = 0.5
    #: Job-layer delivery budget per shard.
    max_attempts: int = 4
    #: Drill hooks: seeds that OOM (MemoryError) / hard-kill the worker.
    chaos_oom_seeds: tuple[int, ...] = ()
    chaos_crash_seeds: tuple[int, ...] = ()

    def __post_init__(self) -> None:
        if self.seed_count < 1:
            raise ValueError("seed_count must be at least 1")
        if self.shard_size < 1:
            raise ValueError("shard_size must be at least 1")

    @property
    def shard_count(self) -> int:
        return math.ceil(self.seed_count / self.shard_size)

    def shard_range(self, idx: int) -> tuple[int, int]:
        """(seed_lo, count) of shard ``idx``."""
        lo = self.seed_start + idx * self.shard_size
        hi = min(self.seed_start + self.seed_count, lo + self.shard_size)
        return lo, hi - lo

    def to_dict(self) -> dict:
        out = {f.name: getattr(self, f.name) for f in fields(self)}
        out["chaos_oom_seeds"] = list(self.chaos_oom_seeds)
        out["chaos_crash_seeds"] = list(self.chaos_crash_seeds)
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "CampaignConfig":
        known = {f.name for f in fields(cls)}
        kwargs = {k: v for k, v in data.items() if k in known}
        kwargs["chaos_oom_seeds"] = tuple(kwargs.get("chaos_oom_seeds") or ())
        kwargs["chaos_crash_seeds"] = tuple(kwargs.get("chaos_crash_seeds") or ())
        return cls(**kwargs)

    def digest(self) -> str:
        """Config content hash — part of every shard's idempotency key, so
        two campaigns that share a name but differ in config cannot alias
        each other's shard jobs."""
        body = json.dumps(self.to_dict(), sort_keys=True)
        return hashlib.sha256(body.encode()).hexdigest()[:16]

    def differential(self) -> DifferentialConfig:
        return DifferentialConfig(
            samples=self.samples,
            z=self.z,
            max_steps=self.max_steps,
            minimize=True,
            minimize_budget=self.minimize_budget,
            minimize_seconds=self.minimize_seconds,
            deadline_seconds=self.deadline_seconds,
        )

    def chaos(self) -> "dict | None":
        if not self.chaos_oom_seeds and not self.chaos_crash_seeds:
            return None
        return {
            "oom": list(self.chaos_oom_seeds),
            "crash": list(self.chaos_crash_seeds),
        }


def chaos_check(seed: int, chaos: "dict | None") -> None:
    """Deterministic fault injection keyed by case seed (drills only)."""
    if not chaos:
        return
    if seed in (chaos.get("oom") or ()):
        raise MemoryError(f"chaos oom injection (seed {seed})")
    if seed in (chaos.get("crash") or ()):
        os._exit(137)  # simulate a hard worker death (OOM-killer style)


def case_key(case: FuzzCase) -> str:
    """Content address of one *check*: program text plus everything that
    changes the verdict (initial state, valuation, moment degree).  Two
    seeds that generate the same check dedupe campaign-wide on this key."""
    meta = json.dumps(
        {
            "initial": case.initial,
            "valuation": case.valuation,
            "m": case.moment_degree,
        },
        sort_keys=True,
    )
    return hashlib.sha256((case.source + "\n" + meta).encode()).hexdigest()


def apply_worker_guards(max_rss_mb: "int | None") -> None:
    """Best-effort RSS cap for the current (worker) process."""
    if not max_rss_mb:
        return
    try:
        import resource
    except ImportError:
        return
    cap = int(max_rss_mb) << 20
    try:
        resource.setrlimit(resource.RLIMIT_AS, (cap, cap))
    except (ValueError, OSError):
        pass


# ---------------------------------------------------------------------------
# Campaign store
# ---------------------------------------------------------------------------


class CampaignStore:
    """Campaign tables in the queue's SQLite file (WAL, BEGIN IMMEDIATE).

    Sharing the file with :class:`JobStore` means a shard-completion
    transaction and the job ack hit the same durable medium; the ordering
    (complete first, ack second) plus the done-shard short-circuit in
    :func:`execute_shard` is what yields exactly-once accounting.
    """

    def __init__(self, path: "str | os.PathLike", *, busy_timeout: float = 30.0):
        self.path = Path(path)
        self._busy_ms = int(busy_timeout * 1000)
        self._local = threading.local()
        if self.path.parent and not self.path.parent.exists():
            self.path.parent.mkdir(parents=True, exist_ok=True)
        self._conn().executescript(_SCHEMA)

    def _conn(self) -> sqlite3.Connection:
        conn = getattr(self._local, "conn", None)
        if conn is None:
            conn = sqlite3.connect(
                self.path, timeout=self._busy_ms / 1000.0, isolation_level=None
            )
            conn.row_factory = sqlite3.Row
            conn.execute("PRAGMA journal_mode=WAL")
            conn.execute("PRAGMA synchronous=NORMAL")
            conn.execute(f"PRAGMA busy_timeout={self._busy_ms}")
            self._local.conn = conn
        return conn

    class _tx_ctx:
        def __init__(self, conn: sqlite3.Connection):
            self.conn = conn

        def __enter__(self) -> sqlite3.Connection:
            self.conn.execute("BEGIN IMMEDIATE")
            return self.conn

        def __exit__(self, exc_type, exc, tb) -> None:
            if exc_type is None:
                self.conn.execute("COMMIT")
            else:
                self.conn.execute("ROLLBACK")

    def _tx(self) -> "_tx_ctx":
        return self._tx_ctx(self._conn())

    def close(self) -> None:
        conn = getattr(self._local, "conn", None)
        if conn is not None:
            conn.close()
            self._local.conn = None

    # -- campaigns ----------------------------------------------------------

    def create_campaign(
        self, name: str, config: CampaignConfig, directory: "str | os.PathLike"
    ) -> dict:
        """Create the campaign row + its full shard partition (idempotent
        per name; a config mismatch on an existing name is an error)."""
        body = json.dumps(config.to_dict(), sort_keys=True)
        with self._tx() as conn:
            row = conn.execute(
                "SELECT * FROM campaigns WHERE name = ?", (name,)
            ).fetchone()
            if row is not None:
                if row["config"] != body:
                    raise ValueError(
                        f"campaign {name!r} already exists with a different"
                        " config; pick a new name or resume the old one"
                    )
                return self._decode_campaign(row)
            cursor = conn.execute(
                "INSERT INTO campaigns (name, config, dir, state, created_at)"
                " VALUES (?, ?, ?, 'running', ?)",
                (name, body, str(directory), time.time()),
            )
            cid = cursor.lastrowid
            for idx in range(config.shard_count):
                lo, count = config.shard_range(idx)
                conn.execute(
                    "INSERT OR IGNORE INTO campaign_shards"
                    " (campaign, idx, seed_lo, count) VALUES (?, ?, ?, ?)",
                    (cid, idx, lo, count),
                )
        got = self.get_campaign(name)
        assert got is not None
        return got

    @staticmethod
    def _decode_campaign(row: sqlite3.Row) -> dict:
        return {
            "id": row["id"],
            "name": row["name"],
            "config": CampaignConfig.from_dict(json.loads(row["config"])),
            "dir": row["dir"],
            "state": row["state"],
            "created_at": row["created_at"],
            "finished_at": row["finished_at"],
        }

    def get_campaign(self, name: str) -> "dict | None":
        row = self._conn().execute(
            "SELECT * FROM campaigns WHERE name = ?", (name,)
        ).fetchone()
        return self._decode_campaign(row) if row is not None else None

    def campaign_names(self) -> list[str]:
        return [
            row["name"]
            for row in self._conn().execute(
                "SELECT name FROM campaigns ORDER BY id"
            )
        ]

    def set_campaign_state(self, campaign_id: int, state: str) -> None:
        finished = time.time() if state == "complete" else None
        with self._tx() as conn:
            conn.execute(
                "UPDATE campaigns SET state = ?, finished_at = ? WHERE id = ?",
                (state, finished, campaign_id),
            )

    # -- shards -------------------------------------------------------------

    def get_shard(self, campaign_id: int, idx: int) -> "sqlite3.Row | None":
        return self._conn().execute(
            "SELECT * FROM campaign_shards WHERE campaign = ? AND idx = ?",
            (campaign_id, idx),
        ).fetchone()

    def pending_shards(
        self, campaign_id: int, limit: "int | None" = None
    ) -> list[sqlite3.Row]:
        sql = (
            "SELECT * FROM campaign_shards WHERE campaign = ?"
            " AND state = 'pending' ORDER BY idx"
        )
        if limit is not None:
            sql += f" LIMIT {int(limit)}"
        return self._conn().execute(sql, (campaign_id,)).fetchall()

    def set_shard_payload(
        self, campaign_id: int, idx: int, payload: dict, job_id: int
    ) -> None:
        """Record the durable generation payload (first writer wins — a
        resume must replay the payload the original run enqueued, not
        recompute coverage weights from post-hoc state)."""
        body = json.dumps(payload, sort_keys=True)
        with self._tx() as conn:
            conn.execute(
                "UPDATE campaign_shards SET payload = COALESCE(payload, ?),"
                " job_id = ? WHERE campaign = ? AND idx = ?",
                (body, job_id, campaign_id, idx),
            )

    def mark_case(self, campaign_id: int, idx: int, seed: int) -> None:
        """Poison tracking: the case a shard is about to execute.  If the
        worker dies here, the re-delivered shard treats it as suspect."""
        with self._tx() as conn:
            conn.execute(
                "UPDATE campaign_shards SET last_case_seed = ?"
                " WHERE campaign = ? AND idx = ?",
                (seed, campaign_id, idx),
            )

    def claim_cases(
        self, campaign_id: int, idx: int, keys: list[str]
    ) -> set[str]:
        """Campaign-wide dedupe: atomically claim ``keys`` for shard
        ``idx``; returns the subset this shard owns (first claimant wins,
        replays re-observe their old claims)."""
        with self._tx() as conn:
            for key in keys:
                conn.execute(
                    "INSERT OR IGNORE INTO campaign_cases"
                    " (campaign, case_key, shard) VALUES (?, ?, ?)",
                    (campaign_id, key, idx),
                )
            marks = ",".join("?" for _ in keys) or "''"
            rows = conn.execute(
                f"SELECT case_key FROM campaign_cases WHERE campaign = ?"
                f" AND shard = ? AND case_key IN ({marks})",
                (campaign_id, idx, *keys),
            ).fetchall()
        return {row["case_key"] for row in rows}

    def complete_shard(
        self,
        campaign_id: int,
        idx: int,
        tallies: dict,
        signatures: dict,
        wall_seconds: float,
    ) -> bool:
        """Commit a shard's results (tallies + bucket coverage) in one
        transaction; idempotent — ``False`` if the shard was already done
        (a racing duplicate delivery), in which case nothing changes."""
        with self._tx() as conn:
            row = conn.execute(
                "SELECT state FROM campaign_shards WHERE campaign = ?"
                " AND idx = ?",
                (campaign_id, idx),
            ).fetchone()
            if row is None or row["state"] == "done":
                return False
            conn.execute(
                "UPDATE campaign_shards SET state = 'done', tallies = ?,"
                " wall_seconds = ?, completed_at = ?, last_case_seed = NULL,"
                " error = NULL WHERE campaign = ? AND idx = ?",
                (
                    json.dumps(tallies, sort_keys=True),
                    wall_seconds,
                    time.time(),
                    campaign_id,
                    idx,
                ),
            )
            for signature, count in signatures.items():
                conn.execute(
                    "INSERT INTO campaign_buckets (campaign, signature, count)"
                    " VALUES (?, ?, ?) ON CONFLICT (campaign, signature)"
                    " DO UPDATE SET count = count + excluded.count",
                    (campaign_id, signature, int(count)),
                )
        return True

    def fail_shard(self, campaign_id: int, idx: int, error: str) -> None:
        """Mark a shard failed (its job dead-lettered) without completing
        it — the campaign carries on and `status` surfaces the failure."""
        with self._tx() as conn:
            conn.execute(
                "UPDATE campaign_shards SET state = 'failed', error = ?"
                " WHERE campaign = ? AND idx = ? AND state != 'done'",
                (error, campaign_id, idx),
            )

    def shard_counts(self, campaign_id: int) -> dict[str, int]:
        counts = dict.fromkeys(SHARD_STATES, 0)
        for row in self._conn().execute(
            "SELECT state, COUNT(*) AS n FROM campaign_shards"
            " WHERE campaign = ? GROUP BY state",
            (campaign_id,),
        ):
            counts[row["state"]] = row["n"]
        return counts

    def shard_attempts(self, campaign_id: int, store: JobStore) -> dict[int, int]:
        """``{shard idx: job attempts}`` for shards with an enqueued job."""
        rows = self._conn().execute(
            "SELECT idx, job_id FROM campaign_shards WHERE campaign = ?"
            " AND job_id IS NOT NULL",
            (campaign_id,),
        ).fetchall()
        out: dict[int, int] = {}
        for row in rows:
            job = store.get(row["job_id"])
            if job is not None:
                out[row["idx"]] = job.attempts
        return out

    # -- rollups ------------------------------------------------------------

    def tallies(self, campaign_id: int) -> dict[str, int]:
        """Campaign-wide case tallies summed over completed shards."""
        totals: Counter = Counter({key: 0 for key in TALLY_KEYS})
        for row in self._conn().execute(
            "SELECT tallies FROM campaign_shards WHERE campaign = ?"
            " AND state = 'done' AND tallies IS NOT NULL",
            (campaign_id,),
        ):
            totals.update(json.loads(row["tallies"]))
        return dict(totals)

    def bucket_counts(self, campaign_id: int) -> dict[str, int]:
        return {
            row["signature"]: row["count"]
            for row in self._conn().execute(
                "SELECT signature, count FROM campaign_buckets"
                " WHERE campaign = ? ORDER BY signature",
                (campaign_id,),
            )
        }

    def record_quarantine(
        self,
        campaign_id: int,
        seed: int,
        shard: int,
        key: str,
        reason: str,
        provenance: dict,
    ) -> None:
        with self._tx() as conn:
            conn.execute(
                "INSERT OR REPLACE INTO campaign_quarantine"
                " (campaign, seed, shard, case_key, reason, provenance,"
                " created_at) VALUES (?, ?, ?, ?, ?, ?, ?)",
                (
                    campaign_id,
                    seed,
                    shard,
                    key,
                    reason,
                    json.dumps(provenance, sort_keys=True),
                    time.time(),
                ),
            )

    def quarantine_entries(self, campaign_id: int) -> list[dict]:
        return [
            {
                "seed": row["seed"],
                "shard": row["shard"],
                "case_key": row["case_key"],
                "reason": row["reason"],
                "provenance": json.loads(row["provenance"]),
                "created_at": row["created_at"],
            }
            for row in self._conn().execute(
                "SELECT * FROM campaign_quarantine WHERE campaign = ?"
                " ORDER BY seed",
                (campaign_id,),
            )
        ]

    def record_reproducer(
        self, campaign_id: int, digest: str, seed: int, shard: int, report: dict
    ) -> None:
        with self._tx() as conn:
            conn.execute(
                "INSERT OR IGNORE INTO campaign_reproducers"
                " (campaign, digest, seed, shard, report, created_at)"
                " VALUES (?, ?, ?, ?, ?, ?)",
                (
                    campaign_id,
                    digest,
                    seed,
                    shard,
                    json.dumps(report, sort_keys=True),
                    time.time(),
                ),
            )

    def reproducer_digests(self, campaign_id: int) -> list[str]:
        return [
            row["digest"]
            for row in self._conn().execute(
                "SELECT digest FROM campaign_reproducers WHERE campaign = ?"
                " ORDER BY digest",
                (campaign_id,),
            )
        ]

    def wall_seconds(self, campaign_id: int) -> float:
        row = self._conn().execute(
            "SELECT COALESCE(SUM(wall_seconds), 0.0) AS s FROM campaign_shards"
            " WHERE campaign = ? AND state = 'done'",
            (campaign_id,),
        ).fetchone()
        return float(row["s"])


# ---------------------------------------------------------------------------
# Coverage-guided weights
# ---------------------------------------------------------------------------

#: Which bucket feature each block-template kind feeds.
_KIND_FEATURES = {
    "walk": "loop",
    "straight": "straight",
    "climb": "recursion",
    "geo": "geo",
}


def coverage_weights(buckets: dict[str, int]) -> "tuple[tuple[str, float], ...] | None":
    """Kind weights inversely proportional to observed feature coverage.

    ``None`` until any coverage exists (the first wave runs unbiased)."""
    if not buckets:
        return None
    per_kind = {kind: 0 for kind in TEMPLATE_KINDS}
    for signature, count in buckets.items():
        feats = signature.split("|", 1)[0].split("+")
        for kind, feature in _KIND_FEATURES.items():
            if feature in feats:
                per_kind[kind] += count
    total = sum(per_kind.values())
    if total <= 0:
        return None
    # weight = (1 + mean) / (1 + observed): under-covered kinds get > 1.
    mean = total / len(per_kind)
    return tuple(
        (kind, (1.0 + mean) / (1.0 + per_kind[kind]))
        for kind in TEMPLATE_KINDS
    )


# ---------------------------------------------------------------------------
# Shard execution (runs inside fleet workers)
# ---------------------------------------------------------------------------


def shard_idempotency_key(name: str, idx: int, config: CampaignConfig) -> str:
    return f"fuzz-shard:{name}:{idx}:{config.digest()}"


def _fuzz_config(payload: dict) -> FuzzConfig:
    weights = payload.get("kind_weights")
    if weights:
        weights = tuple((str(k), float(v)) for k, v in weights)
    else:
        weights = None
    return FuzzConfig(kind_weights=weights)


def _case_report(outcome, config: CampaignConfig) -> dict:
    return {
        "case": outcome.case.name,
        "seed": outcome.case.seed,
        "status": outcome.status,
        "detail": outcome.detail,
        "moment_degree": outcome.case.moment_degree,
        "initial": outcome.case.initial,
        "valuation": outcome.case.valuation,
        "features": list(outcome.case.features),
        "samples": config.samples,
        "z": config.z,
        "max_steps": config.max_steps,
        "checks": [
            {
                "kind": c.kind, "k": c.k, "policy": c.policy,
                "lo": float(c.lo), "hi": float(c.hi),
                "estimate": float(c.estimate), "margin": float(c.margin),
                "ok": c.ok,
            }
            for c in outcome.checks
        ],
    }


def minimize_poison(
    case: FuzzCase,
    diff_config: DifferentialConfig,
    *,
    chaos: "dict | None",
    limits: dict,
    probe_timeout: float,
    budget_seconds: float,
    max_candidates: int = 12,
) -> tuple[FuzzCase, int]:
    """Shrink a poison case while it still kills the probe.

    Every candidate evaluation is a fresh guarded subprocess, so the
    minimizer itself can never be taken down; the wall-clock budget bounds
    the whole scan (subprocess startup dominates, hence the small
    candidate cap)."""
    from repro.lang.printer import canonical_program
    from repro.soundness.differential import _shrink_candidates
    from repro.soundness.probe import probe_case

    best = case
    spent = 0
    stop_at = time.perf_counter() + budget_seconds
    improved = True
    while improved and spent < max_candidates:
        improved = False
        for candidate_program in _shrink_candidates(best.parse()):
            if spent >= max_candidates or time.perf_counter() >= stop_at:
                return best, spent
            spent += 1
            candidate = replace(best, source=canonical_program(candidate_program))
            verdict = probe_case(
                candidate,
                diff_config,
                chaos=chaos,
                limits=limits,
                timeout=probe_timeout,
            )
            if not verdict.get("ok"):
                best = candidate
                improved = True
                break
    return best, spent


def _quarantine(
    cstore: CampaignStore,
    campaign_id: int,
    shard_idx: int,
    case: FuzzCase,
    key: str,
    reason: str,
    config: CampaignConfig,
    payload: dict,
    job: Job,
    *,
    probe_evidence: "dict | None" = None,
    minimize: bool = True,
) -> None:
    """Dead-letter one poison case with provenance; persisted before the
    shard's tallies are committed, so quarantine survives any later crash."""
    diff_config = replace(config.differential(), minimize=False)
    limits = {
        "max_rss_mb": config.max_rss_mb,
        "max_cpu_seconds": config.deadline_seconds,
    }
    minimized = case
    probes_spent = 0
    if minimize:
        minimized, probes_spent = minimize_poison(
            case,
            diff_config,
            chaos=config.chaos(),
            limits=limits,
            probe_timeout=config.probe_timeout,
            budget_seconds=config.minimize_seconds,
        )
    provenance = {
        "reason": reason,
        "shard": shard_idx,
        "job_id": job.id,
        "attempts": job.attempts,
        "probe": probe_evidence or {},
        "minimize_probes": probes_spent,
        "minimized_sha256": corpus_store.program_key(minimized.source),
    }
    quarantine_dir = Path(payload["dir"]) / "quarantine"
    corpus_store.save_entry(
        quarantine_dir,
        minimized.source,
        {
            "seed": case.seed,
            "status": QUARANTINED,
            "detail": reason,
            "initial": case.initial,
            "valuation": case.valuation,
            "moment_degree": case.moment_degree,
            "features": list(case.features),
            "original_sha256": corpus_store.program_key(case.source),
            "provenance": provenance,
        },
    )
    cstore.record_quarantine(
        campaign_id, case.seed, shard_idx, key, reason, provenance
    )


def execute_shard(job: Job, cache=None, db_path: "str | None" = None) -> dict:
    """Run one ``fuzz_shard`` job (inside a fleet worker).

    The contract with the job layer: all campaign-table writes (case
    claims, reproducers, quarantine, shard completion) commit *before*
    this function returns, i.e. before the worker acks.  A crash at any
    point re-delivers the job; the done-shard short-circuit and the
    content-addressed corpus writes make the replay idempotent.
    """
    payload = job.payload if isinstance(job.payload, dict) else {}
    if db_path is None:
        db_path = payload.get("db")
    if db_path is None:
        raise JobFailure("fuzz_shard job without a store path", retryable=False)
    cstore = CampaignStore(db_path)
    try:
        campaign_id = int(payload["campaign_id"])
        shard_idx = int(payload["shard"])
        shard = cstore.get_shard(campaign_id, shard_idx)
        if shard is None:
            raise JobFailure(
                f"unknown shard {shard_idx} of campaign {campaign_id}",
                retryable=False,
            )
        if shard["state"] == "done":
            # Exactly-once: a re-delivered, already-completed shard returns
            # its recorded tallies without re-checking anything.
            return {
                "ok": True,
                "shard": shard_idx,
                "replayed": True,
                "tallies": json.loads(shard["tallies"] or "{}"),
            }
        config = CampaignConfig.from_dict(payload.get("config") or {})
        apply_worker_guards(config.max_rss_mb)
        suspect_seed = shard["last_case_seed"] if job.attempts > 1 else None
        diff_config = config.differential()
        cases = generate_shard_corpus(
            int(payload["seed_lo"]),
            int(payload["count"]),
            _fuzz_config(payload),
            campaign_seed=config.seed_start,
            shard_index=shard_idx,
            bias_fraction=config.bias_fraction,
        )
        keyed = [(case_key(c), c) for c in cases]
        owned = cstore.claim_cases(campaign_id, shard_idx, [k for k, _ in keyed])
        tallies: Counter = Counter()
        signatures: Counter = Counter()
        started = time.perf_counter()
        seen_in_shard: set[str] = set()
        for key, case in keyed:
            signatures[bucket_signature(case)] += 1
            if key not in owned or key in seen_in_shard:
                tallies[DEDUPED] += 1
                continue
            seen_in_shard.add(key)
            status = _run_case(
                cstore, campaign_id, shard_idx, case, key,
                config, diff_config, payload, job,
                suspect=(suspect_seed is not None and case.seed == suspect_seed),
            )
            tallies[status] += 1
        wall = time.perf_counter() - started
        cstore.complete_shard(
            campaign_id, shard_idx, dict(tallies), dict(signatures), wall
        )
        return {
            "ok": True,
            "shard": shard_idx,
            "tallies": dict(tallies),
            "wall_seconds": wall,
            "cases": len(keyed),
        }
    finally:
        cstore.close()


def _run_case(
    cstore: CampaignStore,
    campaign_id: int,
    shard_idx: int,
    case: FuzzCase,
    key: str,
    config: CampaignConfig,
    diff_config: DifferentialConfig,
    payload: dict,
    job: Job,
    *,
    suspect: bool,
) -> str:
    """Check one case; returns its tally status.  Handles the poison
    machinery: marker update, suspect probing, quarantine, reproducer
    persistence."""
    cstore.mark_case(campaign_id, shard_idx, case.seed)
    if suspect:
        # The worker previously died on exactly this case: never run it
        # in-process again.  A guarded probe decides innocent vs poison.
        from repro.soundness.probe import probe_case

        limits = {
            "max_rss_mb": config.max_rss_mb,
            "max_cpu_seconds": config.deadline_seconds,
        }
        verdict = probe_case(
            case,
            replace(diff_config, minimize=False),
            chaos=config.chaos(),
            limits=limits,
            timeout=config.probe_timeout,
        )
        if not verdict.get("ok"):
            _quarantine(
                cstore, campaign_id, shard_idx, case, key,
                f"worker died on this case; probe confirmed: "
                f"{verdict.get('reason', 'unknown')}",
                config, payload, job,
                probe_evidence=verdict,
            )
            return QUARANTINED
        status = str(verdict.get("status", ""))
        if status != VIOLATION:
            # Innocent and fully classified by the probe.
            return status if status in STATUSES else QUARANTINED
        # A violating (but non-crashing) case: fall through to the normal
        # in-process path so minimization + reproducer persistence run.
    try:
        chaos_check(case.seed, config.chaos())
        outcome = check_case(case, replace(diff_config, minimize=False))
    except MemoryError as exc:
        # The RSS guard fired in-process: quarantine directly — re-running
        # would OOM again, possibly less gracefully.
        _quarantine(
            cstore, campaign_id, shard_idx, case, key,
            f"MemoryError under rss guard: {exc}",
            config, payload, job,
        )
        return QUARANTINED
    if outcome.status == VIOLATION:
        if diff_config.minimize_budget > 0:
            minimized, _ = minimize_case(case, diff_config, lp_jobs=1)
            outcome.minimized = minimized.source
        reproducer = (
            outcome.minimized if outcome.minimized is not None else case.source
        )
        report = _case_report(outcome, config)
        # Persist to the content-addressed corpus and the reproducers
        # table *now* — both are committed before the shard completes and
        # long before the job acks, so no crash can lose this find.
        entry = corpus_store.save_entry(
            Path(payload["dir"]) / "corpus",
            reproducer,
            {
                "seed": case.seed,
                "status": VIOLATION,
                "detail": outcome.detail,
                "initial": case.initial,
                "valuation": case.valuation,
                "moment_degree": case.moment_degree,
                "features": list(case.features),
                "original_sha256": corpus_store.program_key(case.source),
                "report": report,
            },
        )
        cstore.record_reproducer(
            campaign_id, entry.digest, case.seed, shard_idx, report
        )
    return outcome.status


# ---------------------------------------------------------------------------
# Driver
# ---------------------------------------------------------------------------


@dataclass
class CampaignReport:
    """Rollup of one campaign's durable state."""

    name: str
    state: str
    config: CampaignConfig
    shards: dict[str, int]
    tallies: dict[str, int]
    buckets: dict[str, int]
    reproducers: list[str]
    quarantine: list[dict] = field(default_factory=list)
    wall_seconds: float = 0.0
    elapsed: float = 0.0

    @property
    def complete(self) -> bool:
        return self.shards.get("pending", 0) == 0

    @property
    def checked(self) -> int:
        """Cases that got a verdict (everything except dedupe skips)."""
        return sum(v for k, v in self.tallies.items() if k != DEDUPED)

    @property
    def verified_per_second(self) -> float:
        wall = self.wall_seconds or self.elapsed
        if wall <= 0:
            return 0.0
        return self.tallies.get("verified", 0) / wall

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "state": self.state,
            "config": self.config.to_dict(),
            "shards": self.shards,
            "tallies": self.tallies,
            "buckets": self.buckets,
            "reproducers": self.reproducers,
            "quarantine": self.quarantine,
            "wall_seconds": self.wall_seconds,
            "elapsed": self.elapsed,
            "checked": self.checked,
            "verified_per_second": self.verified_per_second,
        }

    def summary(self) -> str:
        parts = ", ".join(
            f"{v} {k}" for k, v in sorted(self.tallies.items()) if v
        ) or "no cases checked yet"
        lines = [
            f"campaign {self.name} [{self.state}]: "
            f"{self.shards.get('done', 0)}/{sum(self.shards.values())} shards"
            f" — {parts}",
            f"  buckets covered: {len(self.buckets)};"
            f" throughput: {self.verified_per_second:.2f} verified/s"
            f" over {self.wall_seconds:.1f}s shard-wall",
        ]
        for digest in self.reproducers:
            lines.append(f"  [VIOLATION] reproducer {digest[:16]}")
        for entry in self.quarantine:
            lines.append(
                f"  [QUARANTINE] seed {entry['seed']} (shard {entry['shard']}):"
                f" {entry['reason']}"
            )
        return "\n".join(lines)


def start_campaign(
    db_path: "str | os.PathLike",
    name: str,
    config: CampaignConfig,
    directory: "str | os.PathLike | None" = None,
) -> dict:
    """Create (or re-open, if config-identical) a campaign; makes the
    output directory skeleton."""
    if directory is None:
        directory = Path(str(db_path) + ".campaigns") / name
    directory = Path(directory)
    (directory / "corpus").mkdir(parents=True, exist_ok=True)
    (directory / "quarantine").mkdir(parents=True, exist_ok=True)
    cstore = CampaignStore(db_path)
    try:
        return cstore.create_campaign(name, config, directory)
    finally:
        cstore.close()


def enqueue_wave(
    store: JobStore,
    cstore: CampaignStore,
    campaign: dict,
    *,
    limit: "int | None" = None,
) -> list[tuple[int, int]]:
    """Enqueue up to ``limit`` pending shards; returns [(shard idx, job id)].

    Coverage weights are computed from the buckets observed *so far* and
    baked into each new shard's durable payload; shards that already have
    a payload (a resume) re-enqueue it verbatim — the idempotency key
    dedupes against any still-live job row.
    """
    config: CampaignConfig = campaign["config"]
    weights = coverage_weights(cstore.bucket_counts(campaign["id"]))
    out: list[tuple[int, int]] = []
    for shard in cstore.pending_shards(campaign["id"], limit):
        idx = shard["idx"]
        if shard["payload"]:
            payload = json.loads(shard["payload"])
        else:
            payload = {
                "campaign": campaign["name"],
                "campaign_id": campaign["id"],
                "shard": idx,
                "seed_lo": shard["seed_lo"],
                "count": shard["count"],
                "config": config.to_dict(),
                "dir": campaign["dir"],
                "kind_weights": (
                    [[k, v] for k, v in weights] if weights else None
                ),
            }
        job_id, _ = store.enqueue(
            payload,
            kind="fuzz_shard",
            idempotency_key=shard_idempotency_key(campaign["name"], idx, config),
            max_attempts=config.max_attempts,
        )
        cstore.set_shard_payload(campaign["id"], idx, payload, job_id)
        out.append((idx, job_id))
    return out


def _reap_wave(
    store: JobStore, cstore: CampaignStore, campaign: dict,
    enqueued: list[tuple[int, int]],
) -> None:
    """After a wave settles, surface dead-lettered shard jobs as failed
    shards (with the job error as provenance) so the campaign terminates
    instead of spinning on them forever."""
    for idx, job_id in enqueued:
        job = store.get(job_id)
        if job is not None and job.state == "dead":
            cstore.fail_shard(
                campaign["id"], idx,
                f"shard job {job_id} dead-lettered after {job.attempts}"
                f" attempts: {job.error}",
            )


def build_report(
    db_path: "str | os.PathLike", name: str, *, elapsed: float = 0.0
) -> CampaignReport:
    cstore = CampaignStore(db_path)
    try:
        campaign = cstore.get_campaign(name)
        if campaign is None:
            raise ValueError(f"no campaign named {name!r} in {db_path}")
        cid = campaign["id"]
        return CampaignReport(
            name=name,
            state=campaign["state"],
            config=campaign["config"],
            shards=cstore.shard_counts(cid),
            tallies=cstore.tallies(cid),
            buckets=cstore.bucket_counts(cid),
            reproducers=cstore.reproducer_digests(cid),
            quarantine=cstore.quarantine_entries(cid),
            wall_seconds=cstore.wall_seconds(cid),
            elapsed=elapsed,
        )
    finally:
        cstore.close()


def run_campaign(
    db_path: "str | os.PathLike",
    name: str,
    *,
    workers: int = 2,
    cache_dir: "str | None" = None,
    visibility: float = 60.0,
    wave: "int | None" = None,
    wave_timeout: float = 900.0,
    log=None,
) -> CampaignReport:
    """Drive a campaign to completion (start it first with
    :func:`start_campaign`); safe to call again after any crash — only
    unfinished shards run.

    The driver enqueues shards in waves (so coverage weights can steer
    later generation), runs a worker fleet over the queue, and recovers
    expired leases up front — a SIGKILLed previous run's in-flight shards
    are re-delivered immediately instead of after a visibility timeout.
    """
    started = time.perf_counter()
    store = JobStore(db_path, visibility=visibility)
    cstore = CampaignStore(db_path)
    from repro.service.jobs import WorkerPool

    pool = None
    try:
        campaign = cstore.get_campaign(name)
        if campaign is None:
            raise ValueError(f"no campaign named {name!r} in {db_path}")
        store.recover_expired()
        wave_size = wave or max(4 * workers, 8)
        if cstore.pending_shards(campaign["id"], 1):
            pool = WorkerPool(
                db_path, workers, cache_dir, visibility=visibility
            ).start()
            last_pending = None
            while True:
                pending = cstore.shard_counts(campaign["id"])["pending"]
                if pending == 0:
                    break
                if last_pending is not None and pending >= last_pending:
                    # A full wave timed out with zero shards retired: stop
                    # driving rather than spin; the campaign stays
                    # 'running' and a later resume picks it back up.
                    if log:
                        log(
                            f"wave stalled with {pending} shards pending;"
                            " stopping (resume to continue)"
                        )
                    break
                last_pending = pending
                enqueued = enqueue_wave(
                    store, cstore, campaign, limit=wave_size
                )
                if not enqueued:
                    break
                if log:
                    log(
                        f"wave: {len(enqueued)} shards"
                        f" (first {enqueued[0][0]}, last {enqueued[-1][0]})"
                    )
                wait_for_jobs(
                    store, [job_id for _, job_id in enqueued],
                    timeout=wave_timeout,
                )
                _reap_wave(store, cstore, campaign, enqueued)
        counts = cstore.shard_counts(campaign["id"])
        if counts["pending"] == 0 and campaign["state"] != "complete":
            cstore.set_campaign_state(campaign["id"], "complete")
    finally:
        if pool is not None:
            pool.stop(graceful=True, timeout=30.0)
        store.close()
        cstore.close()
    return build_report(db_path, name, elapsed=time.perf_counter() - started)


# ---------------------------------------------------------------------------
# Metrics
# ---------------------------------------------------------------------------


def campaign_metrics(db_path: "str | os.PathLike") -> "dict | None":
    """Aggregate campaign facts for ``/metrics``; ``None`` when the store
    has no campaign tables (a queue-only deployment)."""
    path = Path(db_path)
    if not path.exists():
        return None
    conn = sqlite3.connect(path, timeout=5.0)
    conn.row_factory = sqlite3.Row
    try:
        present = conn.execute(
            "SELECT name FROM sqlite_master WHERE type = 'table'"
            " AND name = 'campaigns'"
        ).fetchone()
        if present is None:
            return None
        campaigns = conn.execute(
            "SELECT COUNT(*) AS n FROM campaigns"
        ).fetchone()["n"]
        running = conn.execute(
            "SELECT COUNT(*) AS n FROM campaigns WHERE state = 'running'"
        ).fetchone()["n"]
        shards = dict.fromkeys(SHARD_STATES, 0)
        for row in conn.execute(
            "SELECT state, COUNT(*) AS n FROM campaign_shards GROUP BY state"
        ):
            shards[row["state"]] = row["n"]
        tallies: Counter = Counter({key: 0 for key in TALLY_KEYS})
        for row in conn.execute(
            "SELECT tallies FROM campaign_shards WHERE state = 'done'"
            " AND tallies IS NOT NULL"
        ):
            tallies.update(json.loads(row["tallies"]))
        reproducers = conn.execute(
            "SELECT COUNT(*) AS n FROM campaign_reproducers"
        ).fetchone()["n"]
        quarantined = conn.execute(
            "SELECT COUNT(*) AS n FROM campaign_quarantine"
        ).fetchone()["n"]
        buckets = conn.execute(
            "SELECT COUNT(*) AS n FROM campaign_buckets"
        ).fetchone()["n"]
        wall = conn.execute(
            "SELECT COALESCE(SUM(wall_seconds), 0.0) AS s"
            " FROM campaign_shards WHERE state = 'done'"
        ).fetchone()["s"]
        return {
            "campaigns": campaigns,
            "running": running,
            "shards": shards,
            "tallies": dict(tallies),
            "reproducers": reproducers,
            "quarantined": quarantined,
            "buckets": buckets,
            "wall_seconds": float(wall),
        }
    finally:
        conn.close()


__all__ = [
    "CAMPAIGN_STATES",
    "CampaignConfig",
    "CampaignReport",
    "CampaignStore",
    "DEDUPED",
    "QUARANTINED",
    "SHARD_STATES",
    "TALLY_KEYS",
    "apply_worker_guards",
    "build_report",
    "campaign_metrics",
    "case_key",
    "chaos_check",
    "coverage_weights",
    "enqueue_wave",
    "execute_shard",
    "minimize_poison",
    "run_campaign",
    "shard_idempotency_key",
    "start_campaign",
]
