"""Content-addressed regression corpus of fuzz reproducers.

A corpus directory holds one pair of files per distinct program:

* ``<sha256>.appl`` — the canonical program text (the content address is
  :func:`repro.service.cache.program_key` over exactly these bytes);
* ``<sha256>.json`` — a metadata sidecar (seed, initial state, objective
  valuation, moment degree, the status that put it here, free-form detail).

Content addressing makes writes idempotent: a campaign shard that is
re-delivered after a crash, or two shards minimizing to the same program,
re-write the same bytes to the same path instead of colliding.  Writes go
through a same-directory temp file + :func:`os.replace`, so a reader never
observes a torn entry.

Two consumers share this format:

* campaign reproducer/quarantine corpora under the campaign directory
  (:mod:`repro.soundness.campaign`), persisted *before* the shard job acks;
* the seeded regression corpus in ``tests/data/fuzz_corpus/``, replayed by
  the tier-1 suite so once-found reproducers stay fixed forever.
"""

from __future__ import annotations

import json
import os
import tempfile
from dataclasses import dataclass, field
from pathlib import Path

from repro.programs.fuzz import FuzzCase
from repro.service.cache import program_key


@dataclass(frozen=True)
class CorpusEntry:
    """One stored reproducer: program text plus its replay metadata."""

    digest: str
    source: str
    meta: dict = field(hash=False, default_factory=dict)

    def case(self) -> FuzzCase:
        """Rebuild a replayable :class:`FuzzCase` from the stored entry.

        Falls back to a zero valuation over the program's variables when the
        sidecar is missing or partial, so a bare ``.appl`` file still replays.
        """
        valuation = dict(self.meta.get("valuation") or {})
        if not valuation:
            from repro.interp.vectorized import collect_variables
            from repro.lang.parser import parse_program

            valuation = {
                name: 0.0 for name in collect_variables(parse_program(self.source))
            }
        initial = dict(self.meta.get("initial") or {})
        valuation.update(initial)
        return FuzzCase(
            name=f"corpus-{self.digest[:12]}",
            seed=int(self.meta.get("seed", 0)),
            source=self.source,
            initial=initial,
            valuation=valuation,
            moment_degree=int(self.meta.get("moment_degree", 2)),
            features=tuple(self.meta.get("features") or ()),
        )


def _write_atomic(path: Path, text: str) -> None:
    fd, tmp = tempfile.mkstemp(dir=path.parent, prefix=f".{path.name}.")
    try:
        with os.fdopen(fd, "w") as handle:
            handle.write(text)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def save_entry(directory: "str | Path", source: str, meta: dict) -> CorpusEntry:
    """Persist ``source`` (+ sidecar) under its content address; idempotent."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    digest = program_key(source)
    _write_atomic(directory / f"{digest}.appl", source)
    sidecar = dict(meta)
    sidecar["sha256"] = digest
    _write_atomic(
        directory / f"{digest}.json",
        json.dumps(sidecar, indent=2, sort_keys=True) + "\n",
    )
    return CorpusEntry(digest=digest, source=source, meta=sidecar)


def load_corpus(directory: "str | Path") -> list[CorpusEntry]:
    """All entries in ``directory``, digest-sorted; `[]` if it doesn't exist.

    Tolerates a missing sidecar (empty metadata) and skips entries whose
    stored text no longer matches its filename digest — a truncated file
    must not silently replay as the wrong program.
    """
    directory = Path(directory)
    if not directory.is_dir():
        return []
    entries: list[CorpusEntry] = []
    for appl in sorted(directory.glob("*.appl")):
        source = appl.read_text()
        digest = appl.stem
        if program_key(source) != digest:
            continue
        meta: dict = {}
        sidecar = directory / f"{digest}.json"
        if sidecar.exists():
            try:
                meta = json.loads(sidecar.read_text())
            except (OSError, ValueError):
                meta = {}
        entries.append(CorpusEntry(digest=digest, source=source, meta=meta))
    return entries


__all__ = ["CorpusEntry", "load_corpus", "save_entry"]
