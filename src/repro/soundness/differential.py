"""Differential soundness testing: analyzer vs. vectorized Monte Carlo.

The paper's central claim (Theorem 4.4) is that every inferred interval on a
raw or central moment *brackets the true moment*.  This module checks that
claim mechanically, at scale, on programs nobody hand-tuned:

1. each :class:`~repro.programs.fuzz.FuzzCase` is analyzed through the
   standard pipeline — fanned out over the sharded batch executor
   (:func:`repro.service.executor.run_batch`) and, when a cache is attached,
   the content-addressed artifact store, so repeated corpora are cheap;
2. the same program is simulated with the batched engine
   (:class:`~repro.interp.vectorized.VectorizedMachine`) at ``n`` samples;
3. every inferred interval must bracket its empirical moment up to an
   explicit sampling-error margin (below);
4. each case is classified ``verified`` / ``analyzer-infeasible`` /
   ``simulation-timeout`` / ``violation``; violations are shrunk to a
   minimal reproducer and dumped to disk.

**The bracketing margin.**  The empirical k-th raw moment is the sample
mean of ``C^k``, so by the CLT its sampling error is asymptotically normal
with scale ``se = sd(C^k) / sqrt(n)``.  We flag a violation only when the
estimate escapes the interval by more than ``z * se`` (default ``z = 5``,
one-sided tail probability < 3e-7) plus a small float-noise cushion.  A
Hoeffding bound would be assumption-free but needs an a-priori bound on
``C^k``'s range, which non-monotone costs and unbounded stopping times do
not give us; the generated programs have finite moments of every order
(negative-drift loops, geometric recursion), so the CLT margin is the
sharper and still-conservative choice.  Runs that hit ``max_steps`` would
bias the surviving sample (termination-conditioned costs), so any timeout
reclassifies the case as ``simulation-timeout`` rather than risking a false
verdict either way.

**Nondeterminism.**  The analyzer's nondet join contains *both* branch
intervals, so the inferred bounds must bracket the outcome distribution
under every resolution policy; cases that use ``ndet`` are simulated under
the random, all-left, and all-right policies and checked against each.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field, replace

import numpy as np

from repro.analysis.pipeline import AnalysisOptions
from repro.deadline import AnalysisTimeout, Deadline, deadline_scope
from repro.interp.mc import statistics_from_costs
from repro.interp.vectorized import VectorizedMachine
from repro.lang.ast import (
    IfBranch,
    NondetBranch,
    ProbBranch,
    Program,
    Seq,
    Skip,
    Stmt,
    While,
)
from repro.lang.printer import canonical_program
from repro.programs.fuzz import FuzzCase
from repro.service.cache import ArtifactCache
from repro.service.executor import run_batch

VERIFIED = "verified"
ANALYZER_INFEASIBLE = "analyzer-infeasible"
SIMULATION_TIMEOUT = "simulation-timeout"
#: The case blew its per-case wall-clock deadline (analysis or simulation)
#: — distinct from ``simulation-timeout``, which is a *step*-budget
#: exhaustion inside an otherwise timely simulation.
ANALYSIS_TIMEOUT = "analysis-timeout"
VIOLATION = "violation"

STATUSES = (
    VERIFIED,
    ANALYZER_INFEASIBLE,
    SIMULATION_TIMEOUT,
    ANALYSIS_TIMEOUT,
    VIOLATION,
)


@dataclass(frozen=True)
class DifferentialConfig:
    """Knobs of the differential check."""

    samples: int = 4000
    #: CLT sigma multiplier: escape beyond ``z * se`` is a violation.
    z: float = 5.0
    #: Absolute float-noise cushion added to every margin.
    abs_slack: float = 1e-6
    max_steps: int = 200_000
    #: Also check the derived central-moment (variance) interval.
    check_central: bool = True
    #: Shrink violating programs before dumping them.
    minimize: bool = True
    #: Cap on candidate evaluations during minimization.
    minimize_budget: int = 120
    #: Wall-clock cap in seconds on one whole minimization (``None`` =
    #: unbounded).  Each candidate re-analysis already runs under
    #: ``deadline_seconds``; this bounds the greedy scan itself, so a slow
    #: violating program cannot hang a campaign shard in the shrinker.
    minimize_seconds: "float | None" = None
    #: Per-case wall-clock deadline in seconds (``None`` = unbounded): the
    #: analysis runs under an :class:`~repro.deadline.Deadline` of this
    #: length and the simulation under a fresh one, so one pathological
    #: case cannot stall a whole corpus run.
    deadline_seconds: "float | None" = None


@dataclass
class MomentCheck:
    """One interval-vs-estimate comparison."""

    kind: str        # "raw" | "central"
    k: int
    policy: str      # nondet policy the samples used
    lo: float
    hi: float
    estimate: float
    margin: float

    @property
    def ok(self) -> bool:
        return bool(self.lo - self.margin <= self.estimate <= self.hi + self.margin)

    def describe(self) -> str:
        rel = "within" if self.ok else "OUTSIDE"
        return (
            f"{self.kind}[{self.k}] ({self.policy}): estimate "
            f"{self.estimate:.6g} {rel} [{self.lo:.6g}, {self.hi:.6g}] "
            f"± {self.margin:.3g}"
        )


@dataclass
class CaseOutcome:
    """Classification of one fuzz case."""

    case: FuzzCase
    status: str
    detail: str = ""
    checks: list[MomentCheck] = field(default_factory=list)
    analyze_seconds: float = 0.0
    simulate_seconds: float = 0.0
    #: Canonical text of the minimized reproducer (violations only).
    minimized: str | None = None
    artifact_dir: str | None = None

    @property
    def failed_checks(self) -> list[MomentCheck]:
        return [c for c in self.checks if not c.ok]


@dataclass
class DifferentialReport:
    """Aggregate outcome of one corpus run."""

    outcomes: list[CaseOutcome] = field(default_factory=list)
    elapsed: float = 0.0

    def by_status(self, status: str) -> list[CaseOutcome]:
        return [o for o in self.outcomes if o.status == status]

    @property
    def violations(self) -> list[CaseOutcome]:
        return self.by_status(VIOLATION)

    @property
    def ok(self) -> bool:
        return not self.violations

    def counts(self) -> dict[str, int]:
        return {status: len(self.by_status(status)) for status in STATUSES}

    def summary(self) -> str:
        counts = self.counts()
        lines = [
            f"differential soundness: {len(self.outcomes)} cases in "
            f"{self.elapsed:.1f}s — "
            + ", ".join(f"{v} {k}" for k, v in counts.items() if v)
        ]
        for outcome in self.by_status(ANALYZER_INFEASIBLE):
            lines.append(f"  [infeasible] {outcome.case.name}: {outcome.detail}")
        for outcome in self.by_status(SIMULATION_TIMEOUT):
            lines.append(f"  [timeout]    {outcome.case.name}: {outcome.detail}")
        for outcome in self.by_status(ANALYSIS_TIMEOUT):
            lines.append(f"  [deadline]   {outcome.case.name}: {outcome.detail}")
        for outcome in self.violations:
            lines.append(f"  [VIOLATION]  {outcome.case.name}: {outcome.detail}")
            for check in outcome.failed_checks:
                lines.append(f"      {check.describe()}")
            if outcome.artifact_dir:
                lines.append(f"      reproducer: {outcome.artifact_dir}")
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# Single-case check
# ---------------------------------------------------------------------------


def _policies(program_uses_ndet: bool) -> tuple[str, ...]:
    return ("random", "left", "right") if program_uses_ndet else ("random",)


def _uses_ndet(stmt: Stmt) -> bool:
    if isinstance(stmt, NondetBranch):
        return True
    if isinstance(stmt, Seq):
        return any(_uses_ndet(s) for s in stmt.stmts)
    if isinstance(stmt, (ProbBranch, IfBranch)):
        return _uses_ndet(stmt.then_branch) or _uses_ndet(stmt.else_branch)
    if isinstance(stmt, While):
        return _uses_ndet(stmt.body)
    return False


def program_uses_ndet(program: Program) -> bool:
    return any(_uses_ndet(f.body) for f in program.functions.values())


def compare_bounds(
    result,
    case: FuzzCase,
    program: Program,
    config: DifferentialConfig,
) -> tuple[list[MomentCheck], int, float]:
    """Simulate ``program`` and compare every interval against its estimate.

    Returns ``(checks, timeouts, simulate_seconds)``.
    """
    checks: list[MomentCheck] = []
    timeouts = 0
    started = time.perf_counter()
    degree = max(2, case.moment_degree)
    for policy in _policies(program_uses_ndet(program)):
        machine = VectorizedMachine(program, nondet_policy=policy)
        run = machine.run(
            config.samples,
            np.random.default_rng(case.seed + 17),
            initial=case.initial,
            max_steps=config.max_steps,
        )
        timeouts += int(config.samples - run.terminated.sum())
        if not run.terminated.all():
            continue
        stats = statistics_from_costs(run.costs, degree=degree)
        for k in range(1, case.moment_degree + 1):
            interval = result.raw_interval(k, case.valuation)
            se = stats.moment_stderr(k)
            margin = config.z * se + config.abs_slack * max(
                1.0, abs(interval.lo), abs(interval.hi)
            )
            checks.append(
                MomentCheck(
                    kind="raw", k=k, policy=policy,
                    lo=interval.lo, hi=interval.hi,
                    estimate=stats.raw[k], margin=margin,
                )
            )
        if config.check_central and case.moment_degree >= 2:
            interval = result.variance(case.valuation)
            centered = (stats.costs - stats.mean) ** 2
            se = float(np.std(centered) / np.sqrt(len(centered)))
            margin = config.z * se + config.abs_slack * max(
                1.0, abs(interval.lo), abs(interval.hi)
            )
            checks.append(
                MomentCheck(
                    kind="central", k=2, policy=policy,
                    lo=interval.lo, hi=interval.hi,
                    estimate=stats.central[2], margin=margin,
                )
            )
    return checks, timeouts, time.perf_counter() - started


def check_case(
    case: FuzzCase,
    config: DifferentialConfig | None = None,
    backend: str | None = None,
    lp_reduce: "bool | None" = None,
    lp_jobs: "int | None" = None,
) -> CaseOutcome:
    """Run the full differential check on a single case, in-process."""
    config = config or DifferentialConfig()
    program = case.parse()
    from repro.analysis.pipeline import AnalysisPipeline

    started = time.perf_counter()
    try:
        result = AnalysisPipeline(program).analyze(
            _case_options(case, backend, lp_reduce, lp_jobs, config)
        )
    except AnalysisTimeout as exc:
        return CaseOutcome(
            case=case,
            status=ANALYSIS_TIMEOUT,
            detail=f"AnalysisTimeout: {exc}",
            analyze_seconds=time.perf_counter() - started,
        )
    except Exception as exc:
        return CaseOutcome(
            case=case,
            status=ANALYZER_INFEASIBLE,
            detail=f"{type(exc).__name__}: {exc}",
            analyze_seconds=time.perf_counter() - started,
        )
    analyze_seconds = time.perf_counter() - started
    return _classify(case, program, result, analyze_seconds, config)


def _case_options(
    case: FuzzCase,
    backend: str | None = None,
    lp_reduce: "bool | None" = None,
    lp_jobs: "int | None" = None,
    config: "DifferentialConfig | None" = None,
) -> AnalysisOptions:
    return AnalysisOptions(
        moment_degree=case.moment_degree,
        objective_valuations=(case.valuation,),
        backend=backend,
        lp_reduce=lp_reduce,
        lp_jobs=lp_jobs,
        deadline_seconds=config.deadline_seconds if config is not None else None,
    )


def _classify(
    case: FuzzCase,
    program: Program,
    result,
    analyze_seconds: float,
    config: DifferentialConfig,
) -> CaseOutcome:
    # The simulation runs under its own fresh deadline (the analysis spent
    # the other one); ``deadline_scope(None)`` also isolates it from any
    # ambient deadline the caller may still have armed.
    sim_deadline = (
        Deadline(config.deadline_seconds)
        if config.deadline_seconds is not None
        else None
    )
    try:
        with deadline_scope(sim_deadline):
            checks, timeouts, sim_seconds = compare_bounds(
                result, case, program, config
            )
    except AnalysisTimeout as exc:
        return CaseOutcome(
            case=case,
            status=ANALYSIS_TIMEOUT,
            detail=f"AnalysisTimeout (simulation): {exc}",
            analyze_seconds=analyze_seconds,
        )
    outcome = CaseOutcome(
        case=case,
        status=VERIFIED,
        checks=checks,
        analyze_seconds=analyze_seconds,
        simulate_seconds=sim_seconds,
    )
    failed = outcome.failed_checks
    # A failed check from a fully-terminated policy is a confirmed
    # violation even if another policy timed out: compare_bounds only emits
    # checks for policies whose every run terminated, so timeouts elsewhere
    # cannot excuse these.
    if failed:
        outcome.status = VIOLATION
        outcome.detail = (
            f"{len(failed)} of {len(checks)} moment checks escaped their "
            f"interval (seed {case.seed}, degree {case.moment_degree})"
        )
    elif timeouts:
        outcome.status = SIMULATION_TIMEOUT
        outcome.detail = (
            f"{timeouts} of {config.samples} runs hit max_steps="
            f"{config.max_steps}; termination-conditioned estimates "
            "would be biased"
        )
    return outcome


# ---------------------------------------------------------------------------
# Reproducer minimization
# ---------------------------------------------------------------------------


def _rewrite(stmt: Stmt, state: dict, target: int, mode: str) -> Stmt:
    """Rebuild ``stmt`` with one structural reduction applied at the
    ``target``-th reduction point (pre-order); ``state['i']`` is the running
    counter shared across the traversal."""

    def visit(node: Stmt) -> Stmt:
        index = state["i"]
        state["i"] += 1
        if index == target:
            if mode == "drop":
                return Skip()
            if mode == "then" and isinstance(
                node, (ProbBranch, IfBranch, NondetBranch)
            ):
                return (
                    node.left if isinstance(node, NondetBranch) else node.then_branch
                )
            if mode == "else" and isinstance(
                node, (ProbBranch, IfBranch, NondetBranch)
            ):
                return (
                    node.right if isinstance(node, NondetBranch) else node.else_branch
                )
            # Mode inapplicable at this node: fall through unchanged.
        if isinstance(node, Seq):
            return Seq.of(*[visit(s) for s in node.stmts])
        if isinstance(node, ProbBranch):
            return ProbBranch(node.prob, visit(node.then_branch), visit(node.else_branch))
        if isinstance(node, IfBranch):
            return IfBranch(node.cond, visit(node.then_branch), visit(node.else_branch))
        if isinstance(node, NondetBranch):
            return NondetBranch(visit(node.left), visit(node.right))
        if isinstance(node, While):
            return While(node.cond, visit(node.body), node.invariant)
        return node

    return visit(stmt)


def _count_points(stmt: Stmt) -> int:
    count = 1
    if isinstance(stmt, Seq):
        count += sum(_count_points(s) for s in stmt.stmts)
    elif isinstance(stmt, (ProbBranch, IfBranch)):
        count += _count_points(stmt.then_branch) + _count_points(stmt.else_branch)
    elif isinstance(stmt, NondetBranch):
        count += _count_points(stmt.left) + _count_points(stmt.right)
    elif isinstance(stmt, While):
        count += _count_points(stmt.body)
    return count


def _referenced_functions(program: Program) -> set[str]:
    from repro.lang.ast import Call

    seen: set[str] = set()

    def visit(stmt: Stmt) -> None:
        if isinstance(stmt, Call):
            if stmt.func not in seen:
                seen.add(stmt.func)
                if stmt.func in program.functions:
                    visit(program.functions[stmt.func].body)
        elif isinstance(stmt, Seq):
            for s in stmt.stmts:
                visit(s)
        elif isinstance(stmt, (ProbBranch, IfBranch)):
            visit(stmt.then_branch)
            visit(stmt.else_branch)
        elif isinstance(stmt, NondetBranch):
            visit(stmt.left)
            visit(stmt.right)
        elif isinstance(stmt, While):
            visit(stmt.body)

    seen.add(program.main)
    visit(program.main_fun.body)
    return seen


def _shrink_candidates(program: Program):
    """Yield structurally smaller variants of ``program`` (one reduction
    each).  Unreferenced functions are dropped from every candidate."""
    from repro.lang.ast import FunDef

    for fname, fun in program.functions.items():
        points = _count_points(fun.body)
        for target in range(points):
            for mode in ("drop", "then", "else"):
                body = _rewrite(fun.body, {"i": 0}, target, mode)
                if canonical_program_body_same(body, fun.body):
                    continue
                functions = dict(program.functions)
                functions[fname] = FunDef(
                    name=fun.name, body=body, pre=fun.pre, integers=fun.integers
                )
                candidate = Program(functions=functions, main=program.main)
                live = _referenced_functions(candidate)
                candidate = Program(
                    functions={n: f for n, f in functions.items() if n in live},
                    main=program.main,
                )
                yield candidate


def canonical_program_body_same(a: Stmt, b: Stmt) -> bool:
    from repro.lang.printer import format_stmt

    return format_stmt(a) == format_stmt(b)


def minimize_case(
    case: FuzzCase,
    config: DifferentialConfig,
    backend: str | None = None,
    lp_reduce: "bool | None" = None,
    lp_jobs: "int | None" = None,
) -> tuple[FuzzCase, int]:
    """Greedily shrink a violating case while the violation reproduces.

    Returns the smallest reproducing case and the number of candidate
    evaluations spent.  Each accepted reduction restarts the scan, so the
    result is 1-minimal w.r.t. the reduction operators within budget.
    ``backend`` must be the backend the violation was detected with —
    backend-specific bugs (warm-start drift) do not reproduce elsewhere.
    Candidate re-analyses inherit ``config.deadline_seconds`` and the
    caller's ``lp_jobs`` budget, and ``config.minimize_seconds`` caps the
    whole scan, so minimization is bounded even on pathological programs.
    """
    best = case
    spent = 0
    improved = True
    stop_at = (
        None
        if config.minimize_seconds is None
        else time.perf_counter() + config.minimize_seconds
    )
    while improved and spent < config.minimize_budget:
        improved = False
        for candidate_program in _shrink_candidates(best.parse()):
            if spent >= config.minimize_budget:
                break
            if stop_at is not None and time.perf_counter() >= stop_at:
                return best, spent
            spent += 1
            candidate = replace(
                best, source=canonical_program(candidate_program)
            )
            try:
                outcome = check_case(
                    candidate,
                    replace(config, minimize=False),
                    backend,
                    lp_reduce,
                    lp_jobs,
                )
            except Exception:
                continue
            if outcome.status == VIOLATION:
                best = candidate
                improved = True
                break
    return best, spent


# ---------------------------------------------------------------------------
# Corpus driver
# ---------------------------------------------------------------------------


def _dump_violation(
    outcome: CaseOutcome, out_dir: str, config: DifferentialConfig
) -> None:
    import pathlib

    from repro.service.cache import program_key

    # Content-addressed by the reproducer program text: two shards (or two
    # runs) that find the same minimized program land in the same directory
    # and write the same bytes, instead of positional `fuzzNNNNN` names
    # silently overwriting distinct reproducers across runs.
    reproducer = (
        outcome.minimized if outcome.minimized is not None else outcome.case.source
    )
    case_dir = pathlib.Path(out_dir) / program_key(reproducer)[:16]
    case_dir.mkdir(parents=True, exist_ok=True)
    (case_dir / "original.appl").write_text(outcome.case.source)
    # program.appl is the documented reproducer entry point: the minimized
    # source when shrinking ran, the as-generated source otherwise.
    (case_dir / "program.appl").write_text(
        outcome.minimized if outcome.minimized is not None else outcome.case.source
    )
    (case_dir / "report.json").write_text(
        json.dumps(
            {
                "case": outcome.case.name,
                "reproducer_sha256": program_key(reproducer),
                "seed": outcome.case.seed,
                "status": outcome.status,
                "detail": outcome.detail,
                "moment_degree": outcome.case.moment_degree,
                "initial": outcome.case.initial,
                "valuation": outcome.case.valuation,
                "features": list(outcome.case.features),
                "samples": config.samples,
                "z": config.z,
                "max_steps": config.max_steps,
                "checks": [
                    {
                        "kind": c.kind, "k": c.k, "policy": c.policy,
                        "lo": float(c.lo), "hi": float(c.hi),
                        "estimate": float(c.estimate), "margin": float(c.margin),
                        "ok": c.ok,
                    }
                    for c in outcome.checks
                ],
            },
            indent=2,
        )
        + "\n"
    )
    outcome.artifact_dir = str(case_dir)


def run_differential(
    cases: list[FuzzCase],
    config: DifferentialConfig | None = None,
    jobs: int | None = None,
    executor: str = "thread",
    backend: str | None = None,
    cache: ArtifactCache | None = None,
    out_dir: str | None = None,
    lp_reduce: "bool | None" = None,
    lp_jobs: "int | None" = None,
) -> DifferentialReport:
    """Differential-check a corpus; see the module docstring.

    The analysis fan-out goes through :func:`repro.service.executor.run_batch`
    (``executor``/``jobs``/``cache`` have their batch-executor meanings); the
    Monte-Carlo and comparison phases run in the calling process, where the
    vectorized engine makes them a small fraction of the analysis cost.
    """
    config = config or DifferentialConfig()
    started = time.perf_counter()
    workload = {
        case.name: (
            case.parse(),
            _case_options(case, backend, lp_reduce, lp_jobs, config),
        )
        for case in cases
    }
    batch = run_batch(workload, jobs=jobs, executor=executor, cache=cache)

    report = DifferentialReport()
    by_name = {case.name: case for case in cases}
    for item in batch.items:
        case = by_name[item.name]
        if not item.ok:
            error = item.error or "analysis failed"
            # Batch items travel as (ok, error-string); the fixed message
            # prefix of AnalysisTimeout is the classification marker.
            timed_out = "analysis deadline exceeded" in error
            report.outcomes.append(
                CaseOutcome(
                    case=case,
                    status=ANALYSIS_TIMEOUT if timed_out else ANALYZER_INFEASIBLE,
                    detail=error,
                    analyze_seconds=item.seconds,
                )
            )
            continue
        outcome = _classify(
            case, case.parse(), item.result, item.seconds, config
        )
        if outcome.status == VIOLATION:
            if config.minimize:
                minimized, _ = minimize_case(
                    case, config, backend, lp_reduce, lp_jobs
                )
                outcome.minimized = minimized.source
            if out_dir is not None:
                _dump_violation(outcome, out_dir, config)
        report.outcomes.append(outcome)
    report.elapsed = time.perf_counter() - started
    return report


__all__ = [
    "ANALYSIS_TIMEOUT",
    "ANALYZER_INFEASIBLE",
    "CaseOutcome",
    "DifferentialConfig",
    "DifferentialReport",
    "MomentCheck",
    "SIMULATION_TIMEOUT",
    "STATUSES",
    "VERIFIED",
    "VIOLATION",
    "check_case",
    "compare_bounds",
    "minimize_case",
    "program_uses_ndet",
    "run_differential",
]
