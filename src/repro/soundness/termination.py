"""Termination-moment finiteness: ``E[T^k] < inf`` (Appendix G).

Theorem 4.4(i) requires the ``md``-th moment of the stopping time to be
finite.  Appendix G shows the expected-potential method specialised to
stopping times — unit cost per evaluation step, upper bounds only — is sound
*unconditionally* (Theorem G.2 needs no OST side conditions, by monotone
convergence), so the checker may reuse the analysis engine in unit-cost /
upper-only mode without circularity.

A feasible derivation at moment degree ``k`` yields a polynomial bound on
``E[T^k]``; finiteness follows.  Infeasibility of the template search is
*not* a proof of divergence — the report says so.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.lang.ast import Program
from repro.lp.problem import LPError


@dataclass
class TerminationReport:
    ok: bool
    moment_degree: int
    template_degree: int | None
    bound_str: str | None
    detail: str


def check_termination_moment(
    program: Program,
    moment_degree: int,
    template_degrees: tuple[int, ...] = (1, 2),
) -> TerminationReport:
    """Try to certify ``E[T^moment_degree] < inf`` for ``program``."""
    from repro.analysis.engine import AnalysisOptions, analyze
    from repro.analysis.transformer import AnalysisError

    last_error = "no template degree attempted"
    for degree in template_degrees:
        options = AnalysisOptions(
            moment_degree=moment_degree,
            template_degree=degree,
            unit_cost=True,
            upper_only=True,
            check_soundness=False,
        )
        try:
            result = analyze(program, options)
        except (LPError, AnalysisError, ValueError) as exc:
            last_error = f"degree {degree}: {exc}"
            continue
        return TerminationReport(
            ok=True,
            moment_degree=moment_degree,
            template_degree=degree,
            bound_str=result.upper_str(moment_degree),
            detail=(
                f"E[T^{moment_degree}] <= {result.upper_str(moment_degree)} "
                f"(unit-cost derivation, template degree {degree})"
            ),
        )
    return TerminationReport(
        ok=False,
        moment_degree=moment_degree,
        template_degree=None,
        bound_str=None,
        detail=(
            f"no unit-cost potential found for E[T^{moment_degree}] "
            f"(tried template degrees {template_degrees}): {last_error}. "
            "This does not prove divergence; try higher degrees or invariants."
        ),
    )
