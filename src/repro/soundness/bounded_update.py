"""The bounded-update check (section 4.3 of the paper).

Theorem 4.4(ii) needs ``||Y_n||_inf <= C (n+1)^{md}`` almost surely, which
holds when every assignment changes its variable by at most a constant
(Lemma F.3): then ``|x| = O(n)`` along every trace and the polynomial
potentials grow polynomially in ``n``.

The syntactic criterion implemented here accepts an assignment when its
right-hand side is

* a *bounded expression* (constants and variables whose value always lies
  in a fixed bounded range) — a bounded reset; or
* linear, with the absolute coefficients of the *unbounded* variables
  summing to at most 1 (e.g. ``x := x + t``, ``j := i``, ``x := x - 2``).

Then every step changes the maximal variable magnitude by at most an
additive constant, so ``|x| = O(n)`` along every trace — the premise of
Lemma F.3.  ``x := 2 * x`` or ``z := x + y`` (both unbounded) can compound
and fail the check.  Samples from bounded-support distributions are bounded
resets; variables are classified "bounded-valued" by a greatest fixpoint.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.lang.ast import (
    Assign,
    BinOp,
    Call,
    Const,
    Expr,
    IfBranch,
    NondetBranch,
    ProbBranch,
    Program,
    Sample,
    Seq,
    Skip,
    Stmt,
    Tick,
    Var,
    While,
)


@dataclass
class BoundedUpdateReport:
    ok: bool
    violations: list[str] = field(default_factory=list)


def _collect_writes(stmt: Stmt, out: list[Stmt]) -> None:
    if isinstance(stmt, (Assign, Sample)):
        out.append(stmt)
    elif isinstance(stmt, Seq):
        for s in stmt.stmts:
            _collect_writes(s, out)
    elif isinstance(stmt, ProbBranch):
        _collect_writes(stmt.then_branch, out)
        _collect_writes(stmt.else_branch, out)
    elif isinstance(stmt, NondetBranch):
        _collect_writes(stmt.left, out)
        _collect_writes(stmt.right, out)
    elif isinstance(stmt, IfBranch):
        _collect_writes(stmt.then_branch, out)
        _collect_writes(stmt.else_branch, out)
    elif isinstance(stmt, While):
        _collect_writes(stmt.body, out)
    elif isinstance(stmt, (Skip, Tick, Call)):
        pass
    else:
        raise TypeError(f"unknown statement {stmt!r}")


def _is_bounded_expr(expr: Expr, bounded_vars: set[str]) -> bool:
    if isinstance(expr, Const):
        return True
    if isinstance(expr, Var):
        return expr.name in bounded_vars
    if isinstance(expr, BinOp):
        left = _is_bounded_expr(expr.left, bounded_vars)
        right = _is_bounded_expr(expr.right, bounded_vars)
        return left and right
    return False


def _unbounded_weight(expr: Expr, bounded_vars: set[str]) -> float | None:
    """Sum of |coefficients| of unbounded variables in a linear RHS.

    None when the expression is not linear with concrete coefficients
    (nonlinear terms over unbounded variables cannot be additive-bounded).
    """
    from repro.logic.linear import LinExpr

    poly = expr.to_polynomial()
    lin = LinExpr.from_polynomial(poly)
    if lin is None:
        return None
    return sum(
        abs(c) for v, c in lin.coeffs if v not in bounded_vars
    )


def check_bounded_update(program: Program) -> BoundedUpdateReport:
    writes: list[Stmt] = []
    for fun in program.functions.values():
        _collect_writes(fun.body, writes)

    # Least fixpoint of the bounded-valued classification (start optimistic,
    # remove variables whose writes are not bounded resets).
    all_written = {
        w.var for w in writes  # type: ignore[union-attr]
    }
    bounded_vars = set(all_written)
    changed = True
    while changed:
        changed = False
        for write in writes:
            if isinstance(write, Sample):
                lo, hi = write.dist.support()
                if lo == float("-inf") or hi == float("inf"):
                    if write.var in bounded_vars:
                        bounded_vars.discard(write.var)
                        changed = True
                continue
            assert isinstance(write, Assign)
            if write.var not in bounded_vars:
                continue
            if not _is_bounded_expr(write.expr, bounded_vars - {write.var}):
                bounded_vars.discard(write.var)
                changed = True

    violations: list[str] = []
    for write in writes:
        if isinstance(write, Sample):
            lo, hi = write.dist.support()
            if lo == float("-inf") or hi == float("inf"):
                violations.append(
                    f"{write.var} ~ {write.dist!r}: unbounded support"
                )
            continue
        assert isinstance(write, Assign)
        if _is_bounded_expr(write.expr, bounded_vars):
            continue  # reset to a bounded value
        weight = _unbounded_weight(write.expr, bounded_vars)
        if weight is not None and weight <= 1.0 + 1e-9:
            continue  # additive-bounded linear update
        violations.append(
            f"{write.var} := ... : neither a bounded reset nor an "
            f"additive-bounded linear update (unbounded weight {weight})"
        )

    return BoundedUpdateReport(ok=not violations, violations=violations)
