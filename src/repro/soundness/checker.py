"""Combined soundness side conditions of Theorem 4.4.

The expected-potential method is *not* unconditionally sound for moment
bounds on probabilistic programs (Counterexample 2.7: the ``geo`` loop
admits the bogus lower bound ``2^x``).  Theorem 4.4 restores soundness
under two checkable conditions, both automated here:

(i)  ``E[T^{md}] < inf`` — certified by the unit-cost upper-bound analysis
     (:mod:`repro.soundness.termination`, Appendix G);
(ii) bounded updates — the syntactic check of
     :mod:`repro.soundness.bounded_update` (section 4.3).

A failed report means inferred bounds — *lower* bounds especially — must
not be trusted.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.lang.ast import Program
from repro.soundness.bounded_update import BoundedUpdateReport, check_bounded_update
from repro.soundness.termination import TerminationReport, check_termination_moment


@dataclass
class SoundnessReport:
    bounded_update: BoundedUpdateReport
    termination: TerminationReport

    @property
    def ok(self) -> bool:
        return self.bounded_update.ok and self.termination.ok

    def summary(self) -> str:
        lines = [f"soundness (Thm 4.4): {'OK' if self.ok else 'NOT ESTABLISHED'}"]
        status = "OK" if self.bounded_update.ok else "FAILED"
        lines.append(f"  bounded updates: {status}")
        for violation in self.bounded_update.violations:
            lines.append(f"    - {violation}")
        status = "OK" if self.termination.ok else "FAILED"
        lines.append(f"  termination moments: {status} — {self.termination.detail}")
        return "\n".join(lines)


def check_soundness(program: Program, stopping_moment_degree: int) -> SoundnessReport:
    """Check both Theorem 4.4 side conditions for ``program``.

    ``stopping_moment_degree`` is ``m * d`` of the main analysis: the degree
    of the stopping-time moment whose finiteness condition (i) needs.
    """
    return SoundnessReport(
        bounded_update=check_bounded_update(program),
        termination=check_termination_moment(program, stopping_moment_degree),
    )
