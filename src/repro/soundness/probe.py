"""Guarded out-of-process probe for suspect fuzz cases.

A campaign shard that is re-delivered after a worker died mid-case treats
the case it died on as *poison-suspect*: instead of re-running it in the
worker (and risking another crash/OOM), it is re-checked here, in a
disposable subprocess with hard resource limits:

* ``RLIMIT_AS`` caps the address space (OOMing programs raise
  :class:`MemoryError` or die, instead of taking the worker down);
* ``RLIMIT_CPU`` backs up the wall-clock timeout enforced by the parent.

The protocol is one JSON task on stdin, one JSON verdict on stdout.  A
clean exit with a status means the case is innocent (the worker death had
another cause); a non-zero exit, a signal death, or a timeout confirms the
poison and the campaign quarantines the case with the probe's provenance.

The module doubles as the executable: ``python -m repro.soundness.probe``.
Workers are daemonic multiprocessing children and cannot fork their own
:mod:`multiprocessing` helpers, which is why this is a plain subprocess.
"""

from __future__ import annotations

import json
import subprocess
import sys

from repro.programs.fuzz import FuzzCase
from repro.soundness.differential import DifferentialConfig


def case_to_dict(case: FuzzCase) -> dict:
    return {
        "name": case.name,
        "seed": case.seed,
        "source": case.source,
        "initial": case.initial,
        "valuation": case.valuation,
        "moment_degree": case.moment_degree,
        "features": list(case.features),
    }


def case_from_dict(data: dict) -> FuzzCase:
    return FuzzCase(
        name=str(data["name"]),
        seed=int(data["seed"]),
        source=str(data["source"]),
        initial={k: float(v) for k, v in (data.get("initial") or {}).items()},
        valuation={k: float(v) for k, v in (data.get("valuation") or {}).items()},
        moment_degree=int(data["moment_degree"]),
        features=tuple(data.get("features") or ()),
    )


def config_to_dict(config: DifferentialConfig) -> dict:
    return {
        "samples": config.samples,
        "z": config.z,
        "abs_slack": config.abs_slack,
        "max_steps": config.max_steps,
        "check_central": config.check_central,
        "deadline_seconds": config.deadline_seconds,
    }


def config_from_dict(data: dict) -> DifferentialConfig:
    return DifferentialConfig(
        samples=int(data.get("samples", 4000)),
        z=float(data.get("z", 5.0)),
        abs_slack=float(data.get("abs_slack", 1e-6)),
        max_steps=int(data.get("max_steps", 200_000)),
        check_central=bool(data.get("check_central", True)),
        minimize=False,
        deadline_seconds=(
            None
            if data.get("deadline_seconds") is None
            else float(data["deadline_seconds"])
        ),
    )


def _tail(text: str, limit: int = 800) -> str:
    text = (text or "").strip()
    return text[-limit:]


def probe_case(
    case: FuzzCase,
    config: DifferentialConfig,
    *,
    chaos: "dict | None" = None,
    limits: "dict | None" = None,
    timeout: float = 120.0,
) -> dict:
    """Re-check ``case`` in a guarded subprocess.

    Returns ``{"ok": True, "status": ..., "detail": ...}`` when the probe
    survives, or ``{"ok": False, "reason": ..., "stderr": ...}`` when it
    crashes, OOMs, or times out — i.e. when the poison is confirmed.
    """
    task = {
        "case": case_to_dict(case),
        "config": config_to_dict(config),
        "chaos": chaos,
        "limits": limits or {},
    }
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.soundness.probe"],
        stdin=subprocess.PIPE,
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
    )
    try:
        out, err = proc.communicate(json.dumps(task), timeout=timeout)
    except subprocess.TimeoutExpired:
        proc.kill()
        proc.wait()
        return {"ok": False, "reason": f"probe timeout after {timeout:g}s"}
    if proc.returncode != 0:
        return {
            "ok": False,
            "reason": f"probe exited with code {proc.returncode}",
            "stderr": _tail(err),
        }
    try:
        verdict = json.loads(out)
    except ValueError:
        return {
            "ok": False,
            "reason": "probe emitted unparseable output",
            "stderr": _tail(err or out),
        }
    return {"ok": True, **verdict}


def _apply_limits(limits: dict) -> None:
    try:
        import resource
    except ImportError:  # non-POSIX: run unguarded rather than not at all
        return
    max_rss_mb = limits.get("max_rss_mb")
    if max_rss_mb:
        cap = int(max_rss_mb) << 20
        try:
            resource.setrlimit(resource.RLIMIT_AS, (cap, cap))
        except (ValueError, OSError):
            pass
    max_cpu = limits.get("max_cpu_seconds")
    if max_cpu:
        cap = max(1, int(max_cpu))
        try:
            resource.setrlimit(resource.RLIMIT_CPU, (cap, cap + 5))
        except (ValueError, OSError):
            pass


def main() -> int:
    task = json.load(sys.stdin)
    _apply_limits(task.get("limits") or {})
    case = case_from_dict(task["case"])
    chaos = task.get("chaos")
    if chaos:
        # Deterministic fault injection for drills: the probe must die the
        # same way the worker did, so the quarantine path is exercised
        # end-to-end without a genuinely pathological program.
        from repro.soundness.campaign import chaos_check

        chaos_check(case.seed, chaos)
    from repro.soundness.differential import check_case

    outcome = check_case(case, config_from_dict(task.get("config") or {}))
    json.dump({"status": outcome.status, "detail": outcome.detail}, sys.stdout)
    return 0


if __name__ == "__main__":
    sys.exit(main())


__all__ = [
    "case_from_dict",
    "case_to_dict",
    "config_from_dict",
    "config_to_dict",
    "probe_case",
]
