"""Linear-program assembly and solving.

The derivation system emits (a) equalities between affine forms — polynomial
coefficient matching — and (b) sign constraints on certificate multipliers.
The objective minimizes the imprecision of the main pre-annotation evaluated
at user-supplied concrete valuations (section 3.4, "Solving linear
constraints").

:class:`LPProblem` is a thin façade: it owns the variable pool, performs the
constant-row feasibility checks at emission time, and keeps the ``note``
annotations used for infeasibility diagnostics.  Row storage and solving are
delegated to a pluggable backend (:mod:`repro.lp.backends`) — by default the
incremental warm-started HiGHS backend; ``backend="dense"`` selects the
legacy rebuild-per-solve scipy path.

Solves normally route through the structure-exploiting reduction layer
(:mod:`repro.lp.reduce`): a vectorized presolve over the backend's row
buffers plus a connected-component block decomposition, with lexicographic
cut rows appended to the live block models in reduced coordinates.  The
layer is an overlay over the backend's row storage — checkpoints and
rollbacks keep their semantics — and is disabled per solve
(``solve(reduce=False)``), per options (``AnalysisOptions.lp_reduce``), or
process-wide (``REPRO_DISABLE_LP_REDUCE``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.lp.affine import AffBuilder, AffForm, LinVar, VarPool
from repro.lp.backends import Checkpoint, LPBackend, get_backend
from repro.lp.backends.base import EQ, GE
from repro.lp.core import LPError, LPInfeasibleError, LPSolution
from repro.lp.reduce import ReducedSolver, reduce_enabled

__all__ = [
    "LPError",
    "LPInfeasibleError",
    "LPProblem",
    "LPSolution",
]

#: How many note labels the infeasibility diagnostics mention per row kind.
_DIAGNOSTIC_NOTES = 6


@dataclass
class LPProblem:
    pool: VarPool = field(default_factory=VarPool)
    backend: LPBackend = field(default_factory=get_backend)
    _nonneg: set[int] = field(default_factory=set)
    _eq_notes: dict[int, str] = field(default_factory=dict)
    _ge_notes: dict[int, str] = field(default_factory=dict)
    #: Contiguous λ-column spans recorded by certificate emission
    #: (:func:`repro.logic.handelman.emit_nonneg_certificate`); the reduction
    #: layer builds its nonnegativity mask from these without scanning the
    #: Python-level index set.
    _cert_spans: list[tuple[int, int]] = field(default_factory=list)
    #: Columns the reduction layer must keep in its solved core (objective
    #: and cut-row columns); see :meth:`protect_columns`.
    _protected: set[int] = field(default_factory=set)
    _reducer: "ReducedSolver | None" = field(default=None, repr=False)

    def __getstate__(self):
        """Artifact-cache hook: the reducer holds live solver models (and a
        back-reference to this problem); it is rebuilt lazily on the first
        reduced solve after deserialization."""
        state = self.__dict__.copy()
        state["_reducer"] = None
        return state

    # -- variables -------------------------------------------------------------

    def fresh(self, name: str) -> LinVar:
        return self.pool.fresh(name)

    def fresh_nonneg(self, name: str) -> LinVar:
        var = self.pool.fresh(name)
        self._nonneg.add(var.index)
        return var

    @property
    def nonneg_indices(self) -> set[int]:
        return self._nonneg

    def note_cert_span(self, start: int, count: int) -> None:
        """Record a contiguous run of certificate multiplier columns.

        An emission hint: ``count`` λ-variables were just allocated at
        indices ``start..start+count-1``.  Presolve uses the spans to build
        its column masks vectorized instead of scanning the nonneg set.
        """
        if count > 0:
            self._cert_spans.append((start, count))

    @property
    def cert_spans(self) -> list[tuple[int, int]]:
        return self._cert_spans

    def protect_columns(self, indices) -> None:
        """Declare columns that upcoming objectives or cut rows will touch.

        The reduction layer may only eliminate unprotected columns from its
        solved core.  The declaration is a performance hint, not a safety
        requirement: touching an undeclared eliminated column triggers an
        automatic presolve recompute with that column protected.
        """
        self._protected.update(indices)

    @property
    def protected_columns(self) -> set[int]:
        return self._protected

    # -- constraints -------------------------------------------------------------

    def add_eq(self, form: AffForm | AffBuilder, note: str = "") -> None:
        """Require ``form == 0``."""
        if form.is_constant():
            if abs(form.const) > 1e-9:
                raise LPInfeasibleError(
                    f"contradictory constant constraint {form.const} == 0"
                    + (f" ({note})" if note else "")
                )
            return
        row = self.backend.add_row(EQ, form.terms, form.const)
        if note:
            self._eq_notes[row] = note

    def add_ge(self, form: AffForm | AffBuilder, note: str = "") -> None:
        """Require ``form >= 0``."""
        if form.is_constant():
            if form.const < -1e-9:
                raise LPInfeasibleError(
                    f"contradictory constant constraint {form.const} >= 0"
                    + (f" ({note})" if note else "")
                )
            return
        row = self.backend.add_row(GE, form.terms, form.const)
        if note:
            self._ge_notes[row] = note

    def add_le(self, form: AffForm | AffBuilder, note: str = "") -> None:
        if isinstance(form, AffBuilder):
            # Negate a copy — the caller's builder must stay usable.
            form = AffBuilder(dict(form.terms), form.const).negate()
            self.add_ge(form, note)
        else:
            self.add_ge(-form, note)

    @property
    def num_variables(self) -> int:
        return len(self.pool)

    @property
    def num_constraints(self) -> int:
        return self.backend.num_rows(EQ) + self.backend.num_rows(GE)

    # -- checkpoints ----------------------------------------------------------------

    def checkpoint(self) -> Checkpoint:
        """Snapshot the row counts; see :meth:`rollback`."""
        return self.backend.checkpoint()

    def rollback(self, checkpoint: Checkpoint) -> None:
        """Drop every constraint added after ``checkpoint``.

        Used by the pipeline to undo lexicographic stage cuts so a cached
        constraint system can be re-solved under different objectives.
        Variables are never rolled back — cuts add only rows.
        """
        self.backend.rollback(checkpoint)
        if self._reducer is not None:
            self._reducer.on_rollback(checkpoint)
        for notes, keep in (
            (self._eq_notes, checkpoint.eq),
            (self._ge_notes, checkpoint.ge),
        ):
            for row in [r for r in notes if r >= keep]:
                del notes[row]

    # -- diagnostics ----------------------------------------------------------------

    def infeasibility_diagnostics(self) -> str:
        """Summarize the noted constraint groups for error messages.

        The LP has no cheap way to name the *offending* rows, but the note
        labels carry the derivation-side provenance (certificate labels,
        polynomial monomials), which is what one needs to locate the
        modelling problem.
        """
        lines = [
            f"system: {self.num_variables} variables, "
            f"{self.backend.num_rows(EQ)} equalities, "
            f"{self.backend.num_rows(GE)} inequalities"
        ]
        for kind, notes in (("eq", self._eq_notes), ("ge", self._ge_notes)):
            if not notes:
                continue
            groups: dict[str, int] = {}
            for note in notes.values():
                groups[note.split("[", 1)[0]] = groups.get(note.split("[", 1)[0], 0) + 1
            sample = sorted(groups.items(), key=lambda kv: -kv[1])[:_DIAGNOSTIC_NOTES]
            shown = ", ".join(f"{label} ({count})" for label, count in sample)
            more = len(groups) - len(sample)
            lines.append(
                f"noted {kind} groups: {shown}" + (f", +{more} more" if more else "")
            )
        return "\n".join(lines)

    # -- solving ----------------------------------------------------------------------

    def solve(
        self,
        objective: AffForm | None = None,
        minimize: bool = True,
        bound: float = 1e12,
        regularization: float = 1e-7,
        reduce: bool | None = None,
        jobs: int = 1,
    ) -> LPSolution:
        """Solve the accumulated system, optimizing ``objective``.

        Free variables are boxed at ``±bound`` to rule out unbounded rays
        (an unbounded objective means the bound template is degenerate;
        boxing keeps the solution meaningful and finite).

        ``regularization`` adds a tiny cost on every nonnegative variable
        (the Handelman certificate multipliers): certificates are massively
        non-unique, and the resulting degenerate optimal faces are what
        occasionally drives HiGHS to give up; preferring small certificates
        breaks the ties at negligible cost to the optimum.

        ``reduce`` selects the structure-exploiting reduction layer
        (:mod:`repro.lp.reduce`): ``None`` follows the process-wide switch
        (on unless ``REPRO_DISABLE_LP_REDUCE`` is set), ``False`` forces the
        direct backend solve, ``True`` forces reduction.  Either path
        returns full-variable-space values.

        ``jobs`` > 1 dispatches independent reduced blocks across the
        process-parallel solve layer (:mod:`repro.lp.parallel`); it has no
        effect on unreduced solves and never changes results — callers
        resolve it via :func:`repro.lp.parallel.resolve_jobs`.
        """
        from repro import faults

        faults.check("lp.solve")
        terms = None
        const = 0.0
        if objective is not None:
            terms = objective.terms
            const = objective.const
        use_reduce = reduce_enabled() if reduce is None else reduce
        if use_reduce:
            if self._reducer is None:
                self._reducer = ReducedSolver(self)
            return self._reducer.solve(
                terms, const, minimize, bound, regularization, jobs=jobs
            )
        if self._reducer is not None:
            # A direct solve supersedes whatever the reducer last produced;
            # per-block pinning against its stale state would be invalid.
            self._reducer.last_was_reduced = False
        return self.backend.solve(
            self, terms, const, minimize, bound, regularization
        )

    def pin_objective(
        self,
        objective: AffForm,
        optimum: float,
        tolerance: float,
        note: str = "",
    ) -> float:
        """Pin the just-solved ``objective`` at ``optimum`` for later stages.

        The lexicographic driver calls this between stages.  A cut row
        ``objective <= optimum + tolerance`` is recorded in the row storage
        (so rollbacks, diagnostics, and unreduced re-solves see it); when
        the previous solve went through the reduction layer, the live block
        models are instead constrained by *per-block* pins — each block's
        objective slice held at its own optimum, with the ``tolerance``
        budget split across the blocks so the pinned region is a subset of
        the cut row's — and the stored row is marked as already
        materialized.  Returns the margin actually applied.
        """
        self.add_le(objective - (optimum + tolerance), note=note)
        reducer = self._reducer
        if reducer is not None and reducer.last_was_reduced:
            applied = reducer.pin_last_objective(tolerance)
            if applied is not None:
                reducer.absorb_external_row(GE)
                return applied
        return tolerance

    def reduction_stats(self, include_times: bool = True) -> dict | None:
        """Presolve/decomposition stats of the last solve, if it actually
        went through the reduction layer (None after direct solves)."""
        if self._reducer is None or not self._reducer.last_was_reduced:
            return None
        return self._reducer.stats_dict(include_times=include_times)
