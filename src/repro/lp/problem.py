"""Linear-program assembly and solving.

The derivation system emits (a) equalities between affine forms — polynomial
coefficient matching — and (b) sign constraints on certificate multipliers.
The objective minimizes the imprecision of the main pre-annotation evaluated
at user-supplied concrete valuations (section 3.4, "Solving linear
constraints").

:class:`LPProblem` is a thin façade: it owns the variable pool, performs the
constant-row feasibility checks at emission time, and keeps the ``note``
annotations used for infeasibility diagnostics.  Row storage and solving are
delegated to a pluggable backend (:mod:`repro.lp.backends`) — by default the
incremental warm-started HiGHS backend; ``backend="dense"`` selects the
legacy rebuild-per-solve scipy path.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.lp.affine import AffBuilder, AffForm, LinVar, VarPool
from repro.lp.backends import Checkpoint, LPBackend, get_backend
from repro.lp.backends.base import EQ, GE
from repro.lp.core import LPError, LPInfeasibleError, LPSolution

__all__ = [
    "LPError",
    "LPInfeasibleError",
    "LPProblem",
    "LPSolution",
]

#: How many note labels the infeasibility diagnostics mention per row kind.
_DIAGNOSTIC_NOTES = 6


@dataclass
class LPProblem:
    pool: VarPool = field(default_factory=VarPool)
    backend: LPBackend = field(default_factory=get_backend)
    _nonneg: set[int] = field(default_factory=set)
    _eq_notes: dict[int, str] = field(default_factory=dict)
    _ge_notes: dict[int, str] = field(default_factory=dict)

    # -- variables -------------------------------------------------------------

    def fresh(self, name: str) -> LinVar:
        return self.pool.fresh(name)

    def fresh_nonneg(self, name: str) -> LinVar:
        var = self.pool.fresh(name)
        self._nonneg.add(var.index)
        return var

    @property
    def nonneg_indices(self) -> set[int]:
        return self._nonneg

    # -- constraints -------------------------------------------------------------

    def add_eq(self, form: AffForm | AffBuilder, note: str = "") -> None:
        """Require ``form == 0``."""
        if form.is_constant():
            if abs(form.const) > 1e-9:
                raise LPInfeasibleError(
                    f"contradictory constant constraint {form.const} == 0"
                    + (f" ({note})" if note else "")
                )
            return
        row = self.backend.add_row(EQ, form.terms, form.const)
        if note:
            self._eq_notes[row] = note

    def add_ge(self, form: AffForm | AffBuilder, note: str = "") -> None:
        """Require ``form >= 0``."""
        if form.is_constant():
            if form.const < -1e-9:
                raise LPInfeasibleError(
                    f"contradictory constant constraint {form.const} >= 0"
                    + (f" ({note})" if note else "")
                )
            return
        row = self.backend.add_row(GE, form.terms, form.const)
        if note:
            self._ge_notes[row] = note

    def add_le(self, form: AffForm | AffBuilder, note: str = "") -> None:
        if isinstance(form, AffBuilder):
            # Negate a copy — the caller's builder must stay usable.
            form = AffBuilder(dict(form.terms), form.const).negate()
            self.add_ge(form, note)
        else:
            self.add_ge(-form, note)

    @property
    def num_variables(self) -> int:
        return len(self.pool)

    @property
    def num_constraints(self) -> int:
        return self.backend.num_rows(EQ) + self.backend.num_rows(GE)

    # -- checkpoints ----------------------------------------------------------------

    def checkpoint(self) -> Checkpoint:
        """Snapshot the row counts; see :meth:`rollback`."""
        return self.backend.checkpoint()

    def rollback(self, checkpoint: Checkpoint) -> None:
        """Drop every constraint added after ``checkpoint``.

        Used by the pipeline to undo lexicographic stage cuts so a cached
        constraint system can be re-solved under different objectives.
        Variables are never rolled back — cuts add only rows.
        """
        self.backend.rollback(checkpoint)
        for notes, keep in (
            (self._eq_notes, checkpoint.eq),
            (self._ge_notes, checkpoint.ge),
        ):
            for row in [r for r in notes if r >= keep]:
                del notes[row]

    # -- diagnostics ----------------------------------------------------------------

    def infeasibility_diagnostics(self) -> str:
        """Summarize the noted constraint groups for error messages.

        The LP has no cheap way to name the *offending* rows, but the note
        labels carry the derivation-side provenance (certificate labels,
        polynomial monomials), which is what one needs to locate the
        modelling problem.
        """
        lines = [
            f"system: {self.num_variables} variables, "
            f"{self.backend.num_rows(EQ)} equalities, "
            f"{self.backend.num_rows(GE)} inequalities"
        ]
        for kind, notes in (("eq", self._eq_notes), ("ge", self._ge_notes)):
            if not notes:
                continue
            groups: dict[str, int] = {}
            for note in notes.values():
                groups[note.split("[", 1)[0]] = groups.get(note.split("[", 1)[0], 0) + 1
            sample = sorted(groups.items(), key=lambda kv: -kv[1])[:_DIAGNOSTIC_NOTES]
            shown = ", ".join(f"{label} ({count})" for label, count in sample)
            more = len(groups) - len(sample)
            lines.append(
                f"noted {kind} groups: {shown}" + (f", +{more} more" if more else "")
            )
        return "\n".join(lines)

    # -- solving ----------------------------------------------------------------------

    def solve(
        self,
        objective: AffForm | None = None,
        minimize: bool = True,
        bound: float = 1e12,
        regularization: float = 1e-7,
    ) -> LPSolution:
        """Solve the accumulated system, optimizing ``objective``.

        Free variables are boxed at ``±bound`` to rule out unbounded rays
        (an unbounded objective means the bound template is degenerate;
        boxing keeps the solution meaningful and finite).

        ``regularization`` adds a tiny cost on every nonnegative variable
        (the Handelman certificate multipliers): certificates are massively
        non-unique, and the resulting degenerate optimal faces are what
        occasionally drives HiGHS to give up; preferring small certificates
        breaks the ties at negligible cost to the optimum.
        """
        terms = None
        const = 0.0
        if objective is not None:
            terms = objective.terms
            const = objective.const
        return self.backend.solve(
            self, terms, const, minimize, bound, regularization
        )
