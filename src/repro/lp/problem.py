"""Linear-program assembly and solving (HiGHS via scipy).

The derivation system emits (a) equalities between affine forms — polynomial
coefficient matching — and (b) sign constraints on certificate multipliers.
The objective minimizes the imprecision of the main pre-annotation evaluated
at user-supplied concrete valuations (section 3.4, "Solving linear
constraints").
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
from scipy import sparse
from scipy.optimize import linprog

from repro.lp.affine import AffForm, LinVar, VarPool


class LPError(Exception):
    pass


class LPInfeasibleError(LPError):
    """No potential annotation of the requested shape exists.

    Raising the template degree, adding loop invariants / pre-conditions, or
    lowering the target moment degree are the standard remedies.
    """


@dataclass
class LPSolution:
    values: np.ndarray
    objective: float
    status: str

    def value_of(self, var: LinVar) -> float:
        return float(self.values[var.index])

    def assignment(self) -> np.ndarray:
        return self.values


@dataclass
class LPProblem:
    pool: VarPool = field(default_factory=VarPool)
    _eq_rows: list[AffForm] = field(default_factory=list)
    _ge_rows: list[AffForm] = field(default_factory=list)
    _nonneg: set[int] = field(default_factory=set)
    _notes: dict[int, str] = field(default_factory=dict)

    # -- variables -------------------------------------------------------------

    def fresh(self, name: str) -> LinVar:
        return self.pool.fresh(name)

    def fresh_nonneg(self, name: str) -> LinVar:
        var = self.pool.fresh(name)
        self._nonneg.add(var.index)
        return var

    # -- constraints -------------------------------------------------------------

    def add_eq(self, form: AffForm, note: str = "") -> None:
        """Require ``form == 0``."""
        if form.is_constant():
            if abs(form.const) > 1e-9:
                raise LPInfeasibleError(
                    f"contradictory constant constraint {form.const} == 0"
                    + (f" ({note})" if note else "")
                )
            return
        if note:
            self._notes[len(self._eq_rows)] = note
        self._eq_rows.append(form)

    def add_ge(self, form: AffForm, note: str = "") -> None:
        """Require ``form >= 0``."""
        if form.is_constant():
            if form.const < -1e-9:
                raise LPInfeasibleError(
                    f"contradictory constant constraint {form.const} >= 0"
                    + (f" ({note})" if note else "")
                )
            return
        self._ge_rows.append(form)

    def add_le(self, form: AffForm, note: str = "") -> None:
        self.add_ge(-form, note)

    @property
    def num_variables(self) -> int:
        return len(self.pool)

    @property
    def num_constraints(self) -> int:
        return len(self._eq_rows) + len(self._ge_rows)

    # -- solving ----------------------------------------------------------------------

    def _matrix(self, rows: list[AffForm]) -> tuple[sparse.csr_matrix, np.ndarray]:
        data: list[float] = []
        row_idx: list[int] = []
        col_idx: list[int] = []
        rhs = np.zeros(len(rows))
        for r, form in enumerate(rows):
            rhs[r] = -form.const
            for idx, coeff in form.terms.items():
                row_idx.append(r)
                col_idx.append(idx)
                data.append(coeff)
        mat = sparse.csr_matrix(
            (data, (row_idx, col_idx)), shape=(len(rows), len(self.pool))
        )
        return mat, rhs

    def solve(
        self,
        objective: AffForm | None = None,
        minimize: bool = True,
        bound: float = 1e12,
        regularization: float = 1e-7,
    ) -> LPSolution:
        """Solve the accumulated system, optimizing ``objective``.

        Free variables are boxed at ``±bound`` to rule out unbounded rays
        (an unbounded objective means the bound template is degenerate;
        boxing keeps the solution meaningful and finite).

        ``regularization`` adds a tiny cost on every nonnegative variable
        (the Handelman certificate multipliers): certificates are massively
        non-unique, and the resulting degenerate optimal faces are what
        occasionally drives HiGHS to give up; preferring small certificates
        breaks the ties at negligible cost to the optimum.
        """
        n = len(self.pool)
        if n == 0:
            return LPSolution(np.zeros(0), 0.0, "optimal")

        base_cost = np.zeros(n)
        const_term = 0.0
        if objective is not None:
            const_term = objective.const
            for idx, coeff in objective.terms.items():
                base_cost[idx] = coeff if minimize else -coeff

        a_eq, b_eq = self._matrix(self._eq_rows)
        kwargs = {}
        if self._ge_rows:
            a_ge, b_ge = self._matrix(self._ge_rows)
            kwargs["A_ub"] = -a_ge
            kwargs["b_ub"] = -b_ge

        # HiGHS occasionally reports "unknown" on the massively degenerate
        # optimal faces these certificate systems have.  The cascade tries:
        # the plain problem with each HiGHS variant, then a tiny ridge on
        # the certificate multipliers (ties broken toward small
        # certificates), then tighter variable boxes.
        attempts = [
            (0.0, bound, "highs"),
            (0.0, bound, "highs-ds"),
            (regularization, bound, "highs"),
            (regularization, min(bound, 1e9), "highs"),
            (100 * regularization, min(bound, 1e8), "highs"),
            (0.0, bound, "highs-ipm"),
        ]
        result = None
        for reg, box, method in attempts:
            cost = base_cost.copy()
            if reg and objective is not None:
                for idx in self._nonneg:
                    cost[idx] += reg
            bounds = [
                (0.0, box) if i in self._nonneg else (-box, box) for i in range(n)
            ]
            result = linprog(
                cost,
                A_eq=a_eq if len(self._eq_rows) else None,
                b_eq=b_eq if len(self._eq_rows) else None,
                bounds=bounds,
                method=method,
                **kwargs,
            )
            if result.status == 2 and box == bound:
                raise LPInfeasibleError(
                    "LP infeasible: no potential annotation of this shape exists "
                    "(try a higher polynomial degree or stronger invariants)"
                )
            if result.success:
                break
        if not result.success:
            raise LPError(f"LP solver failed: {result.message}")
        value = float(result.fun) + (const_term if minimize else -const_term)
        if not minimize:
            value = -value
        return LPSolution(np.asarray(result.x), value, "optimal")
