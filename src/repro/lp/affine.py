"""Affine forms over LP unknowns.

The template-based analysis of the paper (section 3.4) represents the
coefficients of potential-annotation polynomials as *unknowns of a linear
program*.  An :class:`AffForm` is an affine combination of such unknowns,
``const + sum_i coeff_i * var_i``.  All constraint generation in the analysis
bottoms out in equalities and inequalities between affine forms.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class LinVar:
    """A single LP unknown, identified by a dense integer index."""

    index: int
    name: str

    def __repr__(self) -> str:
        return self.name


class VarPool:
    """Allocator for LP unknowns with dense indices.

    The dense indexing lets the LP backend build coefficient matrices
    directly, without an extra renaming pass.
    """

    def __init__(self) -> None:
        self._vars: list[LinVar] = []
        self._snapshot: tuple[LinVar, ...] | None = None

    def fresh(self, name: str) -> LinVar:
        var = LinVar(len(self._vars), f"{name}#{len(self._vars)}")
        self._vars.append(var)
        self._snapshot = None
        return var

    def __len__(self) -> int:
        return len(self._vars)

    def __getitem__(self, index: int) -> LinVar:
        return self._vars[index]

    @property
    def variables(self) -> tuple[LinVar, ...]:
        """An immutable view of the allocated unknowns.

        Cached between allocations: repeated access (every solver
        diagnostic, every resolve pass) must not copy the whole pool.
        """
        if self._snapshot is None:
            self._snapshot = tuple(self._vars)
        return self._snapshot


class AffForm:
    """``const + sum_i coeff_i * x_i`` with float coefficients.

    Supports addition, subtraction, negation and multiplication by a float
    scalar.  Multiplying two non-constant forms is a type error by design:
    the analysis must stay linear in the LP unknowns (this is what makes the
    whole inference an LP instead of an SDP; see DESIGN.md section 5).
    """

    __slots__ = ("terms", "const")

    def __init__(self, terms: dict[int, float] | None = None, const: float = 0.0):
        self.terms: dict[int, float] = terms if terms is not None else {}
        self.const: float = float(const)

    # -- constructors -----------------------------------------------------

    @staticmethod
    def constant(value: float) -> "AffForm":
        return AffForm({}, value)

    @staticmethod
    def of_var(var: LinVar, coeff: float = 1.0) -> "AffForm":
        if coeff == 0.0:
            return AffForm({}, 0.0)
        return AffForm({var.index: float(coeff)}, 0.0)

    # -- predicates --------------------------------------------------------

    def is_constant(self) -> bool:
        return not self.terms

    def is_zero(self) -> bool:
        return not self.terms and self.const == 0.0

    # -- arithmetic ---------------------------------------------------------

    def __add__(self, other: "AffForm | float | int") -> "AffForm":
        other = _coerce(other)
        terms = dict(self.terms)
        for idx, coeff in other.terms.items():
            new = terms.get(idx, 0.0) + coeff
            if new == 0.0:
                terms.pop(idx, None)
            else:
                terms[idx] = new
        return AffForm(terms, self.const + other.const)

    __radd__ = __add__

    def __neg__(self) -> "AffForm":
        return AffForm({i: -c for i, c in self.terms.items()}, -self.const)

    def __sub__(self, other: "AffForm | float | int") -> "AffForm":
        return self + (-_coerce(other))

    def __rsub__(self, other: "AffForm | float | int") -> "AffForm":
        return _coerce(other) + (-self)

    def __mul__(self, scalar: object) -> "AffForm":
        if isinstance(scalar, AffForm):
            if scalar.is_constant():
                scalar = scalar.const
            elif self.is_constant():
                return scalar * self.const
            else:
                raise TypeError(
                    "product of two non-constant affine forms is non-linear; "
                    "the analysis must keep one operand concrete"
                )
        if not isinstance(scalar, (int, float)):
            return NotImplemented
        if scalar == 0:
            return AffForm({}, 0.0)
        return AffForm(
            {i: c * scalar for i, c in self.terms.items()}, self.const * scalar
        )

    __rmul__ = __mul__

    # -- evaluation ----------------------------------------------------------

    def evaluate(self, assignment: "list[float] | dict[int, float]") -> float:
        total = self.const
        for idx, coeff in self.terms.items():
            total += coeff * assignment[idx]
        return total

    # -- misc ---------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if isinstance(other, (int, float)):
            other = AffForm.constant(other)
        if not isinstance(other, AffForm):
            return NotImplemented
        return self.const == other.const and self.terms == other.terms

    def __hash__(self) -> int:
        # Constant forms compare equal to plain numbers (``__eq__`` above),
        # so they must hash like them: ``hash(AffForm.constant(2.0)) ==
        # hash(2.0) == hash(2)``.
        if not self.terms:
            return hash(self.const)
        return hash((self.const, tuple(sorted(self.terms.items()))))

    def __repr__(self) -> str:
        parts = []
        if self.const or not self.terms:
            parts.append(f"{self.const:g}")
        for idx, coeff in sorted(self.terms.items()):
            parts.append(f"{coeff:+g}*v{idx}")
        return " ".join(parts)


class AffBuilder:
    """Mutable accumulator for affine forms.

    ``AffForm`` is immutable — every ``+`` allocates a fresh dict, which is
    fine for expression-level arithmetic but quadratic when a constraint is
    the sum of hundreds of certificate terms.  The builder accumulates
    in place and is consumed once (``to_form`` or direct ingestion by an LP
    backend).  Supports ``+=`` / ``-=`` with forms, builders, and numbers.
    """

    __slots__ = ("terms", "const")

    def __init__(self, terms: dict[int, float] | None = None, const: float = 0.0):
        self.terms: dict[int, float] = terms if terms is not None else {}
        self.const: float = float(const)

    # -- in-place accumulation ---------------------------------------------

    def add_const(self, value: float) -> "AffBuilder":
        self.const += value
        return self

    def add_var(self, var: "LinVar | int", coeff: float = 1.0) -> "AffBuilder":
        if coeff == 0.0:
            return self
        idx = var.index if isinstance(var, LinVar) else var
        terms = self.terms
        new = terms.get(idx, 0.0) + coeff
        if new == 0.0:
            terms.pop(idx, None)
        else:
            terms[idx] = new
        return self

    def add(self, other: "AffForm | AffBuilder | float | int", scale: float = 1.0) -> "AffBuilder":
        """``self += scale * other`` without allocating intermediates."""
        if isinstance(other, (int, float)):
            self.const += scale * other
            return self
        if not isinstance(other, (AffForm, AffBuilder)):
            raise TypeError(f"cannot accumulate {other!r}")
        terms = self.terms
        if scale == 1.0:
            for idx, coeff in other.terms.items():
                new = terms.get(idx, 0.0) + coeff
                if new == 0.0:
                    terms.pop(idx, None)
                else:
                    terms[idx] = new
            self.const += other.const
        elif scale != 0.0:
            for idx, coeff in other.terms.items():
                new = terms.get(idx, 0.0) + scale * coeff
                if new == 0.0:
                    terms.pop(idx, None)
                else:
                    terms[idx] = new
            self.const += scale * other.const
        return self

    def __iadd__(self, other: "AffForm | AffBuilder | float | int") -> "AffBuilder":
        return self.add(other)

    def __isub__(self, other: "AffForm | AffBuilder | float | int") -> "AffBuilder":
        return self.add(other, scale=-1.0)

    def negate(self) -> "AffBuilder":
        self.terms = {i: -c for i, c in self.terms.items()}
        self.const = -self.const
        return self

    # -- queries ------------------------------------------------------------

    def is_constant(self) -> bool:
        return not self.terms

    def is_zero(self) -> bool:
        return not self.terms and self.const == 0.0

    def to_form(self) -> AffForm:
        """Freeze into an immutable :class:`AffForm` (shares the term dict;
        do not mutate the builder afterwards)."""
        return AffForm(self.terms, self.const)

    def __repr__(self) -> str:
        return f"AffBuilder({self.to_form()!r})"


def _coerce(value: "AffForm | float | int") -> AffForm:
    if isinstance(value, AffForm):
        return value
    if isinstance(value, (int, float)):
        return AffForm.constant(float(value))
    raise TypeError(f"cannot coerce {value!r} to AffForm")
