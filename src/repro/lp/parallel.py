"""Process-parallel block LP solving over a persistent worker pool.

The reduction layer (:mod:`repro.lp.reduce`) decomposes each Handelman
certificate system into independent connected-component blocks, but PR 5
solved them sequentially: highspy holds the GIL for the duration of a
solve, so threads cannot overlap block solves and multicore hardware sits
idle on exactly the workload the scaling grid measures.  This module adds
the missing process dimension:

* **Persistent workers, sticky routing.**  A pool of worker processes
  (forked once, reused across solves and programs) receives block solve
  tasks over per-worker pipes.  A block is always routed to the same
  worker (``uid % jobs``), so the worker-side model cache plays the role
  the in-process persistent backend plays sequentially: stage ``k``'s
  re-solve of a block finds the warm model stage ``k-1`` built, and only
  the appended cut/pin rows cross the process boundary as new model rows.
* **CSR shipping.**  Tasks carry the block's rows as the NumPy CSR arrays
  the backends already export (:meth:`LPBackend.row_arrays`) — no
  per-row Python objects are pickled; the arrays pickle as flat buffers.
  Workers diff the shipped row counts against their cached model and
  append only the suffix (the parent's live blocks are append-only
  between cache-key changes, which is what makes the diff sound).
* **Error and crash isolation.**  A worker exception travels home as a
  typed marker and re-raises in the parent as the matching
  :class:`~repro.lp.core.LPError` /
  :class:`~repro.lp.core.LPInfeasibleError`.  A worker *crash* (killed,
  segfaulted native solver, poisoned block) fails only the solve that
  was in flight — the pool respawns the worker and the next solve
  proceeds — so in a batch run the poisoned program fails and the batch
  survives.

``REPRO_DISABLE_LP_PARALLEL`` is the kill switch, mirroring
``REPRO_DISABLE_LP_REDUCE`` / ``REPRO_DISABLE_HIGHS``; with it set (or
``lp_jobs`` unset/1) every solve stays on the sequential in-process path
and no worker is ever spawned.  ``REPRO_LP_JOBS`` supplies a process-wide
default for ``AnalysisOptions.lp_jobs`` (``0`` = one worker per CPU).

Parity contract: the parallel path must produce byte-identical bounds to
the sequential path.  Workers replay exactly the (build, append, solve)
call sequence the parent would have made on its own block backends, the
parent applies results in block order, and objective values are
recomputed parent-side with the same float arithmetic — so the only
process-dependent state, HiGHS' internal warm-start trajectory, sees the
same inputs in the same order on either path.
"""

from __future__ import annotations

import atexit
import os
import pickle
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass

import numpy as np

from repro import faults
from repro.deadline import AnalysisTimeout, Deadline, deadline_scope
from repro.lp.backends.base import EQ, GE, get_backend
from repro.lp.core import LPError, LPInfeasibleError

__all__ = [
    "BlockTask",
    "WorkerCrashError",
    "WorkerPool",
    "ensure_pool",
    "forget_pool",
    "parallel_enabled",
    "parallel_override",
    "pool_stats",
    "resolve_jobs",
    "set_parallel_enabled",
    "shutdown_pool",
]

_ENABLED = not os.environ.get("REPRO_DISABLE_LP_PARALLEL")

#: Worker-side warm model cache size.  Each entry is one live block's
#: backend (for the incremental backend: a persistent HiGHS model); the
#: bound exists to keep long fuzz/batch runs from accumulating one model
#: per block ever seen.
_WORKER_CACHE_LIMIT = 64

#: Seconds the parent waits on a worker before probing whether it died.
#: Solves can legitimately run for minutes (degenerate templates), so the
#: probe loop only turns a *dead* worker into an error, never a slow one.
_POLL_SECONDS = 0.05

#: Test hook, inherited by forked workers: called with each task before
#: solving.  ``tests/test_lp_parallel.py`` installs a hook that
#: ``os._exit``-s on a marked block to simulate a native-solver crash.
_TEST_WORKER_HOOK = None


def parallel_enabled() -> bool:
    """Whether the parallel solve layer is active in this process."""
    return _ENABLED


def set_parallel_enabled(enabled: bool) -> bool:
    """Toggle the parallel layer (returns the previous state)."""
    global _ENABLED
    previous = _ENABLED
    _ENABLED = bool(enabled)
    return previous


@contextmanager
def parallel_override(enabled: bool):
    """Run a block with the parallel layer forced on or off."""
    previous = set_parallel_enabled(enabled)
    try:
        yield
    finally:
        set_parallel_enabled(previous)


def resolve_jobs(lp_jobs: "int | None") -> int:
    """Effective LP worker count for one analysis.

    ``None`` follows the ``REPRO_LP_JOBS`` environment default (unset ⇒
    serial); ``0`` means one worker per CPU; any other value is taken as
    given (floored at 1).  The kill switch forces 1 regardless.
    """
    if not _ENABLED:
        return 1
    if lp_jobs is None:
        env = os.environ.get("REPRO_LP_JOBS")
        if not env:
            return 1
        try:
            lp_jobs = int(env)
        except ValueError:
            return 1
    if lp_jobs == 0:
        return max(1, os.cpu_count() or 1)
    return max(1, lp_jobs)


class WorkerCrashError(LPError):
    """A pool worker died mid-solve (killed / native crash)."""


@dataclass
class BlockTask:
    """One block solve shipped to a worker, in CSR form.

    ``key`` identifies the live block across solves (solver token + block
    uid): the worker caches its built model under it and appends only the
    row suffix past the counts it has already ingested.  The full arrays
    ride along every time — they are flat NumPy buffers, cheap to pickle,
    and make the task self-sufficient when the worker's cache was evicted
    or the worker was respawned after a crash.
    """

    key: tuple
    backend_name: str
    ncols: int
    nonneg: np.ndarray  # local nonnegative column indices, int64
    eq: tuple  # (starts, cols, vals, rhs) per the row_arrays contract
    ge: tuple
    objective: "dict[int, float] | None"
    minimize: bool
    bound: float
    regularization: float
    #: Rider-cleanup mode (see ``ReducedSolver._cleanup_riders``): solve
    #: under a transient pin row, then roll the model back so the cached
    #: row counts stay at the pre-pin state — mirroring the checkpoint/
    #: rollback the sequential path performs on the parent backend (which
    #: includes its side effect: the rollback drops the warm model, so the
    #: next stage cold-starts on either path).
    cleanup: bool = False
    pin: "tuple | None" = None  # (terms, const) GE row, or None
    #: Remaining wall-clock budget (seconds) snapshotted from the parent's
    #: deadline at dispatch, or ``None`` for unbounded solves.  Workers are
    #: separate processes and cannot see the parent's deadline contextvar,
    #: so the budget rides on the task: the worker arms a fresh
    #: :class:`~repro.deadline.Deadline` from it around the solve and
    #: replies ``("timeout", ...)`` on expiry.
    budget: "float | None" = None

    def payload_bytes(self) -> int:
        total = 0
        for starts, cols, vals, rhs in (self.eq, self.ge):
            total += starts.nbytes + cols.nbytes + vals.nbytes + rhs.nbytes
        return total + self.nonneg.nbytes


# ---------------------------------------------------------------------------
# Worker side
# ---------------------------------------------------------------------------


class _WorkerPool:
    """Sized stand-in for the variable pool inside a worker."""

    __slots__ = ("n",)

    def __init__(self, n: int) -> None:
        self.n = n

    def __len__(self) -> int:
        return self.n


class _WorkerShim:
    """The slice of the problem façade a backend needs, worker-side.

    Diagnostics live with the parent problem (note labels never cross the
    pipe); infeasibility messages are re-annotated parent-side.
    """

    __slots__ = ("pool", "nonneg_indices")

    def __init__(self, n: int, nonneg: set[int]) -> None:
        self.pool = _WorkerPool(n)
        self.nonneg_indices = nonneg

    def infeasibility_diagnostics(self) -> str:
        return ""


def _worker_append_rows(backend, kind: str, arrays, start: int) -> int:
    starts, cols, vals, rhs = arrays
    total = len(rhs)
    for r in range(start, total):
        lo, hi = int(starts[r]), int(starts[r + 1])
        terms = dict(zip(cols[lo:hi].tolist(), vals[lo:hi].tolist()))
        backend.add_row(kind, terms, -float(rhs[r]))
    return total

def _worker_main(conn) -> None:
    """Worker process loop: receive tasks, solve, reply; exit on ``None``.

    The cache maps task keys to ``(backend, shim, eq_rows, ge_rows)``;
    insertion order doubles as LRU order (re-inserted on hit).
    """
    cache: dict[tuple, tuple] = {}
    while True:
        try:
            task = conn.recv()
        except (EOFError, OSError):  # parent went away
            return
        if task is None:
            return
        if _TEST_WORKER_HOOK is not None:
            _TEST_WORKER_HOOK(task)
        started = time.perf_counter()
        try:
            # Inside the try so an injected fault travels home as a typed
            # error reply instead of killing the worker process.
            faults.check("lp.worker_ipc")
            entry = cache.pop(task.key, None)
            if entry is None:
                backend = get_backend(task.backend_name)
                shim = _WorkerShim(task.ncols, set(task.nonneg.tolist()))
                eq_rows = ge_rows = 0
            else:
                backend, shim, eq_rows, ge_rows = entry
            eq_rows = _worker_append_rows(backend, EQ, task.eq, eq_rows)
            ge_rows = _worker_append_rows(backend, GE, task.ge, ge_rows)
            cache[task.key] = (backend, shim, eq_rows, ge_rows)
            while len(cache) > _WORKER_CACHE_LIMIT:
                cache.pop(next(iter(cache)))
            budget = (
                Deadline(max(task.budget, 1e-3))
                if task.budget is not None
                else None
            )
            with deadline_scope(budget):
                if task.cleanup:
                    checkpoint = backend.checkpoint()
                    if task.pin is not None:
                        backend.add_row(GE, task.pin[0], task.pin[1])
                    try:
                        solution = backend.solve(
                            shim,
                            task.objective,
                            0.0,
                            task.minimize,
                            task.bound,
                            task.regularization,
                        )
                    finally:
                        backend.rollback(checkpoint)
                else:
                    solution = backend.solve(
                        shim,
                        task.objective,
                        0.0,
                        task.minimize,
                        task.bound,
                        task.regularization,
                    )
            reply = (
                "ok",
                solution.values,
                solution.status,
                time.perf_counter() - started,
            )
        except AnalysisTimeout:
            reply = ("timeout", time.perf_counter() - started)
        except LPInfeasibleError as exc:
            reply = ("infeasible", str(exc), time.perf_counter() - started)
        except Exception as exc:  # noqa: BLE001 - typed marker, parent re-raises
            reply = (
                "error",
                type(exc).__name__,
                str(exc),
                time.perf_counter() - started,
            )
        try:
            conn.send(reply)
        except (BrokenPipeError, OSError):
            return


# ---------------------------------------------------------------------------
# Parent side
# ---------------------------------------------------------------------------


class WorkerPool:
    """A fixed-size pool of persistent LP solver processes.

    One pipe pair per worker; tasks are routed by ``task.key``'s block uid
    so repeated solves of one block land on one worker (warm model reuse).
    The pool is process-wide (see :func:`ensure_pool`): concurrent batch
    threads share its workers, which is what keeps the machine at one
    worker budget instead of one pool per program.
    """

    def __init__(self, jobs: int) -> None:
        import multiprocessing as mp

        self.jobs = jobs
        self._ctx = mp.get_context("fork" if hasattr(os, "fork") else "spawn")
        self._conns = []
        self._procs = []
        self._lock = threading.Lock()
        self.tasks_dispatched = 0
        self.crashes = 0
        self.respawns = 0
        self.timeouts = 0
        for _ in range(jobs):
            self._spawn()

    def _spawn(self) -> None:
        parent_conn, child_conn = self._ctx.Pipe()
        proc = self._ctx.Process(
            target=_worker_main, args=(child_conn,), daemon=True
        )
        proc.start()
        child_conn.close()
        self._conns.append(parent_conn)
        self._procs.append(proc)

    def _respawn(self, wid: int) -> None:
        try:
            self._conns[wid].close()
        except OSError:  # pragma: no cover - already torn down
            pass
        proc = self._procs[wid]
        if proc.is_alive():  # pragma: no cover - defensive
            proc.terminate()
        proc.join(timeout=5)
        parent_conn, child_conn = self._ctx.Pipe()
        proc = self._ctx.Process(
            target=_worker_main, args=(child_conn,), daemon=True
        )
        proc.start()
        child_conn.close()
        self._conns[wid] = parent_conn
        self._procs[wid] = proc
        self.respawns += 1

    def route(self, uid: int) -> int:
        return uid % self.jobs

    def solve_all(
        self, tasks: "list[BlockTask]", timeout: "float | None" = None
    ) -> list:
        """Dispatch tasks to their sticky workers; gather all replies.

        Returns one reply tuple per task, in task order.  Worker death
        surfaces as a ``("crashed", ...)`` reply for every task that was
        assigned to the dead worker; the worker is respawned before
        returning so the pool stays at full strength.

        ``timeout`` bounds the total wall-clock wait (seconds).  Workers
        normally time themselves out via the task budget and reply
        ``("timeout", ...)``; the parent-side bound is the safety net for
        a worker wedged inside a native solve that never returns — past it
        the worker is killed outright, its outstanding tasks resolve to
        ``("timeout", None)``, and a fresh worker is spawned in its place.
        """
        with self._lock:
            cutoff = None if timeout is None else time.monotonic() + timeout
            by_worker: dict[int, list[int]] = {}
            for i, task in enumerate(tasks):
                by_worker.setdefault(self.route(task.key[-1]), []).append(i)
            for wid, indices in by_worker.items():
                conn = self._conns[wid]
                try:
                    for i in indices:
                        conn.send(tasks[i])
                except (BrokenPipeError, OSError):
                    pass  # detected on the receive side below
            self.tasks_dispatched += len(tasks)
            replies: list = [None] * len(tasks)
            for wid, indices in by_worker.items():
                conn = self._conns[wid]
                proc = self._procs[wid]
                dead = False
                timed_out = False
                for i in indices:
                    if dead:
                        replies[i] = (
                            ("timeout", None)
                            if timed_out
                            else ("crashed", proc.exitcode)
                        )
                        continue
                    while True:
                        if conn.poll(_POLL_SECONDS):
                            try:
                                replies[i] = conn.recv()
                            except (EOFError, OSError):
                                dead = True
                            break
                        if not proc.is_alive():
                            # Drain anything sent before death, then fail.
                            if conn.poll(0):
                                continue
                            dead = True
                            break
                        if cutoff is not None and time.monotonic() > cutoff:
                            # Wedged-but-alive worker past the deadline:
                            # kill it — a native solve that ignores its
                            # budget cannot be interrupted any other way.
                            proc.kill()
                            proc.join(timeout=5)
                            dead = True
                            timed_out = True
                            break
                    if dead and replies[i] is None:
                        replies[i] = (
                            ("timeout", None)
                            if timed_out
                            else ("crashed", proc.exitcode)
                        )
                if dead:
                    if timed_out:
                        self.timeouts += 1
                    else:
                        self.crashes += 1
                    self._respawn(wid)
            return replies

    def shutdown(self) -> None:
        for conn in self._conns:
            try:
                conn.send(None)
                conn.close()
            except (BrokenPipeError, OSError):
                pass
        for proc in self._procs:
            proc.join(timeout=5)
            if proc.is_alive():  # pragma: no cover - stuck worker
                proc.terminate()
        self._conns = []
        self._procs = []

    def stats(self) -> dict:
        return {
            "jobs": self.jobs,
            "tasks_dispatched": self.tasks_dispatched,
            "crashes": self.crashes,
            "respawns": self.respawns,
            "timeouts": self.timeouts,
        }


_POOL: "WorkerPool | None" = None


def ensure_pool(jobs: int) -> WorkerPool:
    """The process-wide pool, (re)created at ``jobs`` workers.

    A size change tears the old pool down first — two pools would defeat
    the shared-budget point.  Callers race-free by construction: the
    reduction layer calls this under the pipeline's solve lock, and
    concurrent batch threads converge on one size (their options share
    ``lp_jobs``).
    """
    global _POOL
    if _POOL is not None and _POOL.jobs != jobs:
        _POOL.shutdown()
        _POOL = None
    if _POOL is None:
        _POOL = WorkerPool(jobs)
    return _POOL


def shutdown_pool() -> None:
    """Stop the pool's workers (tests; also registered atexit)."""
    global _POOL
    if _POOL is not None:
        _POOL.shutdown()
        _POOL = None


def forget_pool() -> None:
    """Drop the pool reference without touching its processes/pipes.

    For freshly forked children (batch process workers): the inherited
    pool state belongs to the parent — using it from the child would
    interleave two processes on one pipe — and closing it would tear down
    the parent's workers.  Children run with ``lp_jobs`` forced to 1, so
    they never need a pool of their own.
    """
    global _POOL
    _POOL = None


def pool_stats() -> "dict | None":
    """Lifetime counters of the live pool, or ``None`` when no pool runs."""
    return _POOL.stats() if _POOL is not None else None


def estimate_payload(task: BlockTask) -> int:
    """Approximate pickled size of one task (for IPC overhead stats)."""
    return task.payload_bytes() + len(pickle.dumps(task.objective))


atexit.register(shutdown_pool)
