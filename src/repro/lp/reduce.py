"""Structure-exploiting LP reduction: presolve, block decomposition, warm lex.

After PR 4 vectorized constraint derivation, the per-program stage split
inverted: ~80% of analysis wall time sat inside the LP solve loop.  The
systems the Handelman reduction emits have exploitable structure the solver
never sees from the raw rows:

* **Presolve fodder.**  Every certificate emits one fresh λ-multiplier per
  product term; most appear in a single coefficient-matching equality or
  are forced to zero.  The solver itself cannot exploit this: the analysis
  boxes every variable at ``±lp_bound`` to rule out unbounded rays, and a
  *bounded* column blocks the solver's own singleton-column presolve rules.
  This layer knows the semantics — the box is an anti-degeneracy guard, λ
  columns are conceptually nonnegative-unbounded and template coefficients
  free — so it can run the full singleton cascade the solver is denied:

  - singleton *equality rows* fix their variable outright (cascading,
    right-hand sides adjusted with exact float arithmetic);
  - singleton *free columns* absorb their row: the row is dropped and the
    variable recovered in postsolve from the row residual;
  - singleton *λ columns* in an equality act as implied slack: the column
    is dropped and the equality relaxes to an inequality;
  - singleton λ columns that can only hurt feasibility are fixed to zero,
    and λ columns whose inequality row they alone can satisfy drop the row;
  - byte-identical duplicate rows, rows made vacuous by the variable
    bounds, and columns that appear in no row go the same way.

  Each rule is exact on the optimum (the box relaxations are checked in
  postsolve: a recovered value outside ``±lp_bound`` disables the layer
  for that problem), so bounds with the reduction on or off agree to
  solver tolerance.
* **Block structure.**  The reduced core decomposes per calling context:
  connected components of the variable–row bipartite graph are solved as
  *separate* LP models a fraction of the full size, with block solutions
  mapped back to the full variable space.
* **Warm lexicographic re-solves.**  The pipeline's lexicographic loop adds
  one cut row per stage.  Cut rows are projected into reduced coordinates
  and appended to the live block models — blocks a cut couples are merged
  on the fly — so every stage after the first re-optimizes a persistent
  per-block model from its previous basis instead of cold-starting the
  full system.

Everything here is an *overlay*: the :class:`~repro.lp.problem.LPProblem`
row storage is never mutated and checkpoints/rollbacks keep their existing
semantics.  Columns that appear in stage objectives or cut rows must
survive into the core; the pipeline declares them up front
(:meth:`LPProblem.protect_columns`), and an undeclared objective/cut column
that was eliminated triggers an automatic recompute with that column
protected.  ``REPRO_DISABLE_LP_REDUCE`` is the kill switch, mirroring
``REPRO_DISABLE_POLY_KERNEL`` / ``REPRO_DISABLE_HIGHS``; CI runs a
reduce-off matrix leg and ``tests/test_lp_reduce.py`` checks bound-level
parity on the registry and fuzz corpus.
"""

from __future__ import annotations

import itertools
import os
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from repro.deadline import AnalysisTimeout, current_deadline
from repro.lp.backends.base import EQ, GE, Checkpoint
from repro.lp.core import LPError, LPInfeasibleError, LPSolution

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from repro.lp.backends.base import LPBackend
    from repro.lp.problem import LPProblem

__all__ = [
    "ReducedSolver",
    "ReductionStats",
    "reduce_enabled",
    "reduce_override",
    "set_reduce_enabled",
]

_ENABLED = not os.environ.get("REPRO_DISABLE_LP_REDUCE")

#: Stacking gate: pristine blocks are concatenated into one block-diagonal
#: live model when at least ``_STACK_MIN_BLOCKS`` of them share a shape and
#: each is at most ``_STACK_MAX_COLS`` columns wide.  Block-diagonal
#: stacking is exact — the blocks stay independent and the stage
#: objectives separable, so the joint optimum restricts to each block's
#: own optimum — and it amortizes per-solve overhead (model build, solver
#: presolve, one process round-trip under the parallel layer) over the
#: whole group, which is where the many-tiny-blocks workloads (fuzz
#: corpus, lexicographic rider blocks) spend their time.  The partition is
#: a deterministic function of the reduction alone — never of ``lp_jobs``
#: — so parallel-on and parallel-off solves see identical models.
_STACK_MIN_BLOCKS = 3
_STACK_MAX_COLS = 160

#: Presolve feasibility slack, matching the order of HiGHS' primal
#: feasibility tolerance: residuals below this are solver noise, not
#: contradictions.
_FEAS_TOL = 1e-7

# Elimination rules recorded in the postsolve log.
_FREE = "free"  # free singleton column absorbed its (eq or ge) row
_SLACK = "slack"  # λ singleton column turned an equality into an inequality
_GE_SLACK = "ge_slack"  # λ singleton column satisfied its inequality alone


def reduce_enabled() -> bool:
    """Whether the LP reduction layer is active in this process."""
    return _ENABLED


def set_reduce_enabled(enabled: bool) -> bool:
    """Toggle the reduction layer (returns the previous state)."""
    global _ENABLED
    previous = _ENABLED
    _ENABLED = bool(enabled)
    return previous


@contextmanager
def reduce_override(enabled: bool):
    """Run a block with the reduction layer forced on or off."""
    previous = set_reduce_enabled(enabled)
    try:
        yield
    finally:
        set_reduce_enabled(previous)


class _Invalidate(Exception):
    """Internal: the cached reduction no longer matches the problem.

    ``protect`` names columns that must survive the next presolve because an
    objective or cut row referenced them after they had been eliminated.
    """

    def __init__(self, protect: "tuple[int, ...] | list[int]" = ()) -> None:
        super().__init__()
        self.protect = tuple(protect)




@dataclass
class ReductionStats:
    """Shape of one presolve + decomposition pass (``--profile``, benchmarks)."""

    cols: int = 0
    rows: int = 0
    nnz: int = 0
    reduced_cols: int = 0
    reduced_rows: int = 0
    reduced_nnz: int = 0
    fixed_cols: int = 0
    slack_cols: int = 0
    free_cols: int = 0
    zero_cols: int = 0
    dup_rows: int = 0
    vacuous_rows: int = 0
    substitution_passes: int = 0
    components: int = 0
    component_sizes: list[int] = field(default_factory=list)
    presolve_seconds: float = 0.0

    @property
    def eliminated_cols(self) -> int:
        """Columns removed from the solved core, by any rule."""
        return self.fixed_cols + self.slack_cols + self.free_cols + self.zero_cols

    def snapshot(self) -> dict:
        return {
            "cols": self.cols,
            "rows": self.rows,
            "nnz": self.nnz,
            "reduced_cols": self.reduced_cols,
            "reduced_rows": self.reduced_rows,
            "reduced_nnz": self.reduced_nnz,
            "eliminated_cols": self.eliminated_cols,
            "fixed_cols": self.fixed_cols,
            "slack_cols": self.slack_cols,
            "free_cols": self.free_cols,
            "zero_cols": self.zero_cols,
            "dup_rows": self.dup_rows,
            "vacuous_rows": self.vacuous_rows,
            "substitution_passes": self.substitution_passes,
            "components": self.components,
            "component_sizes": list(self.component_sizes),
            "presolve_seconds": self.presolve_seconds,
        }


class _BlockPool:
    """Sized stand-in for :class:`~repro.lp.affine.VarPool` inside a block."""

    __slots__ = ("n",)

    def __init__(self, n: int) -> None:
        self.n = n

    def __len__(self) -> int:
        return self.n


class _BlockProblem:
    """The slice of the problem façade a backend needs to solve one block."""

    __slots__ = ("pool", "nonneg_indices", "_owner")

    def __init__(self, n: int, nonneg: set[int], owner: "LPProblem") -> None:
        self.pool = _BlockPool(n)
        self.nonneg_indices = nonneg
        self._owner = owner

    def infeasibility_diagnostics(self) -> str:
        # Block infeasibility is whole-system infeasibility; the notes live
        # on the owning problem.
        return self._owner.infeasibility_diagnostics()


@dataclass
class _PristineBlock:
    """One connected component of the reduced core, in local coordinates."""

    gcols: np.ndarray  # local index -> full-space column id
    local_of: dict[int, int]
    nonneg: set[int]  # local indices
    rows: list[tuple[str, dict[int, float], float]]  # (kind, terms, const)


class _LiveBlock:
    """A pristine block (or a stacked / cut-merged union) with a live backend."""

    __slots__ = (
        "gcols", "local_of", "backend", "shim", "pristine_ids", "uid",
        "dirty", "last_values", "last_obj", "last_opt",
    )

    def __init__(
        self,
        gcols: np.ndarray,
        local_of: dict[int, int],
        nonneg: set[int],
        backend: "LPBackend",
        owner: "LPProblem",
        pristine_ids: tuple[int, ...],
        uid: int = 0,
    ) -> None:
        self.gcols = gcols
        self.local_of = local_of
        self.backend = backend
        self.shim = _BlockProblem(len(gcols), nonneg, owner)
        self.pristine_ids = pristine_ids
        #: Stable identity of this live model across solves — the parallel
        #: layer's worker routing and warm-cache key (rows under one uid
        #: are append-only; merges and rebuilds allocate a fresh uid).
        self.uid = uid
        #: ``dirty`` marks blocks whose row set changed since the last solve;
        #: a clean block with no objective terms keeps its previous feasible
        #: point instead of paying another (trivial but non-free) solve.
        self.dirty = True
        self.last_values: np.ndarray | None = None
        #: Objective slice and optimum of the latest solve, for per-block
        #: lexicographic pinning (:meth:`ReducedSolver.pin_last_objective`).
        self.last_obj: dict[int, float] | None = None
        self.last_opt: float | None = None


@dataclass
class _Reduction:
    """The immutable outcome of one presolve + decomposition pass."""

    snapshot: Checkpoint  # problem row counts the reduction was computed at
    ncols: int
    bound: float
    protected: frozenset[int]
    fixed_of: dict[int, float]
    #: Columns fixed by *optimality* arguments (λ = 0 because it can only
    #: hurt its row), not by exact substitution: valid for the solved core,
    #: but a later objective or row touching one must resurrect it.
    opt_fixed: set[int]
    fixed_cols: np.ndarray  # full-space ids (parallel to fixed_vals)
    fixed_vals: np.ndarray
    #: Postsolve log, in elimination order: ``(rule, col, coeff, rhs, rest)``
    #: where the eliminated column satisfied ``rest·x + coeff*col == / >= rhs``
    #: at elimination time.  Values are recovered by a reverse walk.
    elim: list[tuple[str, int, float, float, dict[int, float]]]
    elim_cols: set[int]
    zero_cols: set[int]
    col_block: dict[int, int]  # full col -> pristine block id (core cols only)
    blocks: list[_PristineBlock]
    stats: ReductionStats


#: Process-unique solver identities, part of the parallel layer's worker
#: cache keys — two solvers' blocks must never collide on one worker.
_SOLVER_TOKENS = itertools.count()

#: Rank of each robustness-cascade rung; a multi-block solve reports the
#: worst rung any block needed.
_STATUS_RANK = {"optimal": 0, "optimal:regularized": 1, "optimal:boxed": 2}


def _worse_status(a: str, b: str) -> str:
    return b if _STATUS_RANK.get(b, 2) > _STATUS_RANK.get(a, 2) else a


def _pin_row(
    obj: dict[int, float], opt: float, margin: float, minimize: bool
) -> tuple[dict[int, float], float]:
    """GE-row ``(terms, const)`` holding ``obj`` within ``margin`` of ``opt``.

    Minimizing: ``obj·x <= opt + margin`` i.e. ``-obj·x >= -(opt + margin)``;
    maximizing: ``obj·x >= opt - margin``.  ``const`` follows the backend
    ``add_row`` convention (``rhs = -const``).
    """
    if minimize:
        return {j: -c for j, c in obj.items()}, opt + margin
    return dict(obj), -(opt - margin)


class ReducedSolver:
    """Solve an :class:`LPProblem` through its reduced, decomposed form.

    One instance is attached lazily to a problem the first time it solves
    with the reduction enabled.  The reduction (presolve result + block
    partition) is computed from the backend's row buffers at that point and
    reused for every subsequent solve; rows added afterwards — the
    lexicographic stage cuts — are projected into reduced coordinates and
    appended to the live block models, merging blocks a cut couples.
    Rollbacks restore the pristine partition (below-snapshot rollbacks
    invalidate the reduction entirely).

    Thread safety follows the problem façade: callers serialize solves and
    rollbacks (the pipeline's ``ConstraintSystem.solve_lock`` does).
    """

    def __init__(self, problem: "LPProblem") -> None:
        self.problem = problem
        self._reduction: _Reduction | None = None
        self._live: list[_LiveBlock] | None = None
        self._live_of_pristine: dict[int, int] = {}
        self._applied: dict[str, int] = {EQ: 0, GE: 0}
        self._extra_protect: set[int] = set()
        self._disabled = False
        self._pinned = False
        #: Eliminated zero columns whose stage choice was pinned by the
        #: lexicographic loop; later stages keep these values instead of
        #: re-deriving them from their own objective signs.
        self._pinned_zero: dict[int, float] = {}
        #: Whether the most recent ``solve`` on the owning problem actually
        #: went through the reduced path (False after fallbacks), which is
        #: what makes per-block pinning valid.
        self.last_was_reduced = False
        self._last_zero_choices: dict[int, float] = {}
        self._last_minimize = True
        #: Cumulative counters across merges/invalidations, for tests and
        #: ``--profile``.
        self.solve_calls = 0
        self.block_merges = 0
        self.block_pins = 0
        self.invalidations = 0
        self.last_block_seconds: list[tuple[int, float]] = []
        self._token = next(_SOLVER_TOKENS)
        self._next_uid = 0
        #: Live-partition stacking outcome of the current ``_build_live``:
        #: how many same-shape groups were concatenated and their sizes.
        self.stacked_groups = 0
        self.stacked_sizes: list[int] = []
        #: Accumulated parallel-dispatch accounting across this solver's
        #: lifetime (``None`` until a solve actually runs parallel).
        self.parallel_stats: dict | None = None

    # -- public surface -----------------------------------------------------

    def stats_dict(self, include_times: bool = True) -> dict | None:
        """Presolve/decomposition stats of the current reduction, or None."""
        reduction = self._reduction
        if reduction is None:
            return None
        out = reduction.stats.snapshot()
        out["solve_calls"] = self.solve_calls
        out["block_merges"] = self.block_merges
        out["stacked_groups"] = self.stacked_groups
        out["stacked_sizes"] = list(self.stacked_sizes)
        if self.parallel_stats is not None:
            out["parallel"] = dict(self.parallel_stats)
        if include_times:
            out["block_solve_seconds"] = [
                (bid, round(sec, 6)) for bid, sec in self.last_block_seconds
            ]
        return out

    def on_rollback(self, checkpoint: Checkpoint) -> None:
        """Problem rows were truncated to ``checkpoint``; resync the overlay."""
        reduction = self._reduction
        if reduction is None:
            return
        if checkpoint.eq < reduction.snapshot.eq or checkpoint.ge < reduction.snapshot.ge:
            # Rows the reduction was computed from are gone: full recompute.
            self._reduction = None
            self._live = None
            self.invalidations += 1
        elif (
            self._pinned
            or checkpoint.eq < self._applied[EQ]
            or checkpoint.ge < self._applied[GE]
        ):
            # Only post-snapshot rows (cuts / per-block pins) were dropped:
            # the mapping stays valid, the live block models are rebuilt
            # lazily from the pristine partition.
            self._live = None
        self._pinned = False
        self._pinned_zero.clear()
        self._applied = {EQ: min(self._applied[EQ], checkpoint.eq),
                        GE: min(self._applied[GE], checkpoint.ge)}

    def pin_last_objective(self, tolerance: float) -> "float | None":
        """Pin every block at its last stage optimum (per-block lex cut).

        The stage objective is separable over blocks, so the exact
        lexicographic constraint "total objective stays at its optimum"
        decomposes into one pin per block.  The caller's ``tolerance`` —
        the margin the coupled whole-system cut row would carry — is
        allocated across the blocks proportionally to ``1 + |block
        optimum|``, so the per-block margins sum to ``tolerance`` and the
        pinned region is a *subset* of the coupled cut's (any point
        satisfying every block pin satisfies the summed cut).  The pinned
        stages therefore sit between the exact lexicographic optimum and
        the coupled-cut formulation — and no blocks ever need merging,
        which keeps every later stage a warm re-solve of a small
        persistent model.  Each block's share is floored at the solver's
        feasibility-tolerance scale so a pin can never render its block
        numerically infeasible; the floor only lifts the total above
        ``tolerance`` in the pathological many-tiny-blocks case.

        Objective terms on eliminated zero columns are pinned analytically:
        the stage solve already chose each such column's optimal box end,
        and later stages simply keep that value (an exact, zero-margin pin).

        Returns the total applied margin (the sum of the per-block margins,
        in the objective's own units), or ``None`` when pinning is not
        valid — the previous solve did not go through the reduced path — in
        which case the caller must fall back to a plain cut row.
        """
        if not self.last_was_reduced or self._live is None:
            return None
        self._pinned_zero.update(self._last_zero_choices)
        pinnable = [
            block
            for block in self._live
            if block.last_obj is not None and block.last_opt is not None
        ]
        weight_total = sum(1.0 + abs(b.last_opt) for b in pinnable)
        applied = 0.0
        for block in pinnable:
            share = (1.0 + abs(block.last_opt)) / weight_total
            margin = max(
                tolerance * share, 10 * _FEAS_TOL * (1.0 + abs(block.last_opt))
            )
            applied += margin
            terms, const = _pin_row(
                block.last_obj, block.last_opt, margin, self._last_minimize
            )
            block.backend.add_row(GE, terms, const)
            block.dirty = True
            self.block_pins += 1
        self._pinned = True
        return applied

    def absorb_external_row(self, kind: str) -> None:
        """Mark the problem's newest ``kind`` row as already materialized.

        Used by :meth:`LPProblem.pin_objective`: the global cut row is kept
        in the problem's row storage (so rollbacks, diagnostics, and any
        later unreduced or recomputed-reduction solve see it), but its
        constraint is represented inside the live blocks by the per-block
        pins, so projecting it again would double-pin.
        """
        self._applied[kind] = self.problem.backend.num_rows(kind)

    def solve(
        self,
        objective: "dict[int, float] | None",
        objective_const: float,
        minimize: bool,
        bound: float,
        regularization: float,
        jobs: int = 1,
    ) -> LPSolution:
        problem = self.problem
        self.last_was_reduced = False
        if self._disabled or len(problem.pool) == 0:
            return problem.backend.solve(
                problem, objective, objective_const, minimize, bound, regularization
            )
        for _ in range(5):
            try:
                self._ensure(bound)
                return self._solve_reduced(
                    objective, objective_const, minimize, bound, regularization, jobs
                )
            except _Invalidate as stale:
                self._extra_protect.update(stale.protect)
                self._reduction = None
                self._live = None
                self._pinned = False
                self.invalidations += 1
        # Repeated invalidations without reaching a fixpoint (pathological);
        # stop reducing this problem for good rather than paying the
        # recompute on every solve.
        self._disabled = True
        return problem.backend.solve(
            problem, objective, objective_const, minimize, bound, regularization
        )

    # -- reduction lifecycle ------------------------------------------------

    def _protected(self) -> frozenset[int]:
        return frozenset(self.problem.protected_columns | self._extra_protect)

    def _ensure(self, bound: float) -> None:
        problem = self.problem
        backend = problem.backend
        reduction = self._reduction
        if reduction is not None:
            if (
                reduction.ncols != len(problem.pool)
                or reduction.bound != bound
                or backend.num_rows(EQ) < reduction.snapshot.eq
                or backend.num_rows(GE) < reduction.snapshot.ge
                or not (self._protected() <= reduction.protected)
            ):
                raise _Invalidate
        else:
            self._reduction = reduction = _compute_reduction(
                problem, bound, self._protected()
            )
            self._live = None
            self._pinned = False
            self._applied = {EQ: reduction.snapshot.eq, GE: reduction.snapshot.ge}
        if self._live is None:
            self._live = self._build_live()
            self._applied = {EQ: reduction.snapshot.eq, GE: reduction.snapshot.ge}
        self._apply_new_rows()

    def _block_backend(self) -> "LPBackend":
        # Blocks solve through a fresh instance of the problem's own backend
        # class, inheriting its robustness cascade, warm-start policy, and
        # (for the incremental backend) the persistent HiGHS model.
        return type(self.problem.backend)()

    def _new_uid(self) -> int:
        uid = self._next_uid
        self._next_uid += 1
        return uid

    def _stack_plan(self) -> list[tuple[int, ...]]:
        """Partition the pristine blocks into live-model groups.

        Groups of at least ``_STACK_MIN_BLOCKS`` same-shape small blocks —
        shape meaning (columns, eq rows, ge rows, nonzeros) — are stacked
        into one block-diagonal model; everything else stays one model per
        block.  Emission order follows the first member of each group, so
        the plan (and hence every downstream solve) is deterministic.
        """
        blocks = self._reduction.blocks

        def shape(p: _PristineBlock) -> tuple[int, int, int, int]:
            neq = sum(1 for kind, _, _ in p.rows if kind == EQ)
            return (
                len(p.gcols),
                neq,
                len(p.rows) - neq,
                sum(len(terms) for _, terms, _ in p.rows),
            )

        groups: dict[tuple, list[int]] = {}
        for bid, pristine in enumerate(blocks):
            groups.setdefault(shape(pristine), []).append(bid)
        stacked: dict[int, tuple[int, ...]] = {}
        for key, members in groups.items():
            if len(members) >= _STACK_MIN_BLOCKS and key[0] <= _STACK_MAX_COLS:
                stacked[members[0]] = tuple(members)
        plan: list[tuple[int, ...]] = []
        claimed = {bid for group in stacked.values() for bid in group}
        for bid in range(len(blocks)):
            if bid in stacked:
                plan.append(stacked[bid])
            elif bid not in claimed:
                plan.append((bid,))
        return plan

    def _build_live(self) -> list[_LiveBlock]:
        blocks = self._reduction.blocks
        plan = self._stack_plan()
        self.stacked_sizes = [len(group) for group in plan if len(group) > 1]
        self.stacked_groups = len(self.stacked_sizes)
        live = []
        self._live_of_pristine = {}
        for group in plan:
            parts = [blocks[bid] for bid in group]
            backend = self._block_backend()
            if len(parts) == 1:
                pristine = parts[0]
                gcols = pristine.gcols
                local_of = pristine.local_of
                nonneg = pristine.nonneg
                for kind, terms, const in pristine.rows:
                    backend.add_row(kind, terms, const)
            else:
                gcols = np.concatenate([p.gcols for p in parts])
                local_of = {}
                nonneg = set()
                offset = 0
                for part in parts:
                    for col, local in part.local_of.items():
                        local_of[col] = local + offset
                    nonneg.update(local + offset for local in part.nonneg)
                    for kind, terms, const in part.rows:
                        backend.add_row(
                            kind,
                            {j + offset: v for j, v in terms.items()},
                            const,
                        )
                    offset += len(part.gcols)
            for bid in group:
                self._live_of_pristine[bid] = len(live)
            live.append(
                _LiveBlock(
                    gcols,
                    local_of,
                    nonneg,
                    backend,
                    self.problem,
                    tuple(group),
                    self._new_uid(),
                )
            )
        return live

    def _live_block_of(self, col: int) -> int | None:
        """Index into ``self._live`` of the block holding full-space ``col``."""
        bid = self._reduction.col_block.get(col)
        if bid is None:
            return None
        return self._live_of_pristine.get(bid)

    def _apply_new_rows(self) -> None:
        backend = self.problem.backend
        for kind in (EQ, GE):
            total = backend.num_rows(kind)
            applied = self._applied[kind]
            if total == applied:
                continue
            starts, cols, vals, rhs = backend.row_arrays(kind, applied, total)
            for r in range(total - applied):
                lo, hi = starts[r], starts[r + 1]
                self._apply_row(kind, cols[lo:hi], vals[lo:hi], float(rhs[r]))
                # Advance per row: an infeasible row raising mid-batch must
                # not leave already-projected rows unaccounted (a later
                # rollback would otherwise keep them as phantom constraints).
                self._applied[kind] = applied + r + 1

    def _apply_row(self, kind: str, cols: np.ndarray, vals: np.ndarray, rhs: float) -> None:
        """Project one post-snapshot row into reduced coordinates and append."""
        reduction = self._reduction
        live_terms: list[tuple[int, int, float]] = []  # (live block, full col, coeff)
        touched: list[int] = []
        resurrect: list[int] = []
        for col, val in zip(cols.tolist(), vals.tolist()):
            if col in reduction.opt_fixed:
                # Fixed by an optimality argument only; a new row touching
                # it changes what "optimal" means, so put it back.
                resurrect.append(col)
                continue
            fixed = reduction.fixed_of.get(col)
            if fixed is not None:
                rhs -= val * fixed
                continue
            if col in reduction.elim_cols or col in reduction.zero_cols:
                # The row references a column presolve eliminated; recompute
                # with that column protected into the core.
                resurrect.append(col)
                continue
            lid = self._live_block_of(col)
            if lid is None:
                resurrect.append(col)
                continue
            live_terms.append((lid, col, val))
            if lid not in touched:
                touched.append(lid)
        if resurrect:
            raise _Invalidate(resurrect)
        if not touched:
            # Fully resolved by fixed columns: a residual feasibility check.
            slack = _FEAS_TOL * (1.0 + abs(rhs))
            if (kind == EQ and abs(rhs) > slack) or (kind == GE and rhs > slack):
                raise LPInfeasibleError(
                    "LP infeasible: a lexicographic cut contradicts presolve-"
                    "fixed variables",
                    diagnostics=self.problem.infeasibility_diagnostics(),
                )
            return
        if len(touched) > 1:
            target = self._merge(touched)
        else:
            target = self._live[touched[0]]
        terms = {target.local_of[col]: val for _, col, val in live_terms}
        target.backend.add_row(kind, terms, -rhs)
        target.dirty = True

    def _merge(self, live_ids: list[int]) -> _LiveBlock:
        """Fuse the live blocks a cut row couples into one model.

        The merged model re-ingests every constituent's current rows —
        including cuts appended earlier in the lexicographic loop — in
        block order, so the merged system is exactly the union of the
        constituents.  The constituents' backends are discarded; rollback
        restores the pristine partition.
        """
        self.block_merges += 1
        parts = [self._live[i] for i in sorted(live_ids)]
        gcols = np.concatenate([p.gcols for p in parts])
        local_of: dict[int, int] = {}
        nonneg: set[int] = set()
        offset = 0
        for part in parts:
            for col, local in part.local_of.items():
                local_of[col] = local + offset
            nonneg.update(local + offset for local in part.shim.nonneg_indices)
            offset += len(part.gcols)
        backend = self._block_backend()
        for kind in (EQ, GE):
            offset = 0
            for part in parts:
                starts, pcols, pvals, prhs = part.backend.row_arrays(kind)
                for r in range(len(prhs)):
                    lo, hi = starts[r], starts[r + 1]
                    terms = {
                        int(c) + offset: float(v)
                        for c, v in zip(pcols[lo:hi], pvals[lo:hi])
                    }
                    backend.add_row(kind, terms, -float(prhs[r]))
                offset += len(part.gcols)
        merged = _LiveBlock(
            gcols,
            local_of,
            nonneg,
            backend,
            self.problem,
            tuple(pid for p in parts for pid in p.pristine_ids),
            self._new_uid(),
        )
        self._live = [b for i, b in enumerate(self._live) if i not in set(live_ids)]
        self._live.append(merged)
        self._live_of_pristine = {
            pid: i for i, block in enumerate(self._live) for pid in block.pristine_ids
        }
        return merged

    # -- solving ------------------------------------------------------------

    def _solve_reduced(
        self,
        objective: "dict[int, float] | None",
        objective_const: float,
        minimize: bool,
        bound: float,
        regularization: float,
        jobs: int = 1,
    ) -> LPSolution:
        reduction = self._reduction
        self.solve_calls += 1
        n = reduction.ncols
        values = np.zeros(n)
        if len(reduction.fixed_cols):
            values[reduction.fixed_cols] = reduction.fixed_vals
        total = 0.0
        status = "optimal"

        # Split the objective over blocks; fixed columns contribute a
        # constant, eliminated zero columns sit at their optimal bound.
        block_objs: dict[int, dict[int, float]] = {}
        zero_terms: list[tuple[int, float]] = []
        self._last_zero_choices = {}
        if objective:
            resurrect: list[int] = []
            for col, coeff in objective.items():
                if col in reduction.opt_fixed:
                    # λ = 0 was an optimality choice for objective-free
                    # columns; an objective on it invalidates the choice.
                    resurrect.append(col)
                    continue
                fixed = reduction.fixed_of.get(col)
                if fixed is not None:
                    total += coeff * fixed
                    continue
                if col in reduction.zero_cols:
                    zero_terms.append((col, coeff))
                    continue
                if col in reduction.elim_cols:
                    resurrect.append(col)
                    continue
                lid = self._live_block_of(col)
                if lid is None:
                    resurrect.append(col)
                    continue
                block = self._live[lid]
                block_objs.setdefault(lid, {})[block.local_of[col]] = coeff
            if resurrect:
                raise _Invalidate(resurrect)
            for col, coeff in zero_terms:
                # A column in no row: the solver would drive it to whichever
                # end of its box the cost prefers — unless an earlier
                # lexicographic stage already pinned its choice.
                pinned = self._pinned_zero.get(col)
                if pinned is not None:
                    val = pinned
                else:
                    cost = coeff if minimize else -coeff
                    if cost > 0.0:
                        val = 0.0 if col in self.problem.nonneg_indices else -bound
                    elif cost < 0.0:
                        val = bound
                    else:  # pragma: no cover - zero coefficients are dropped upstream
                        val = 0.0
                values[col] = val
                total += coeff * val
                self._last_zero_choices[col] = val

        self.last_block_seconds = []
        pending: list[tuple[int, _LiveBlock, "dict[int, float] | None"]] = []
        for lid, block in enumerate(self._live):
            local_obj = block_objs.get(lid)
            if local_obj is None and not block.dirty and block.last_values is not None:
                # No objective over this block and no new rows: the previous
                # feasible point is still feasible (and vacuously optimal).
                values[block.gcols] = block.last_values
                block.last_obj = None
                block.last_opt = None
                continue
            pending.append((lid, block, local_obj))

        # The dispatch choice must be a function of ``jobs`` alone, never of
        # how many blocks happen to be pending: each block's warm-model
        # trajectory has to live entirely on one side (parent or worker) for
        # the whole lexicographic sequence, or a later stage would cold-start
        # a model its sibling path re-optimizes warm and land on a different
        # vertex of a degenerate face.
        if jobs > 1 and pending:
            solutions = self._solve_blocks_parallel(
                pending, minimize, bound, regularization, jobs
            )
        else:
            solutions = self._solve_blocks_sequential(
                pending, minimize, bound, regularization
            )

        for lid, block, local_obj in pending:
            solution = solutions[lid]
            values[block.gcols] = solution.values
            block.last_values = solution.values
            block.dirty = False
            if local_obj:
                # Evaluate the *base* objective at the returned vertex: on
                # the degraded cascade rungs the backend's reported value
                # includes the tie-breaking ridge on the certificate
                # multipliers, which is solver bookkeeping, not the stage
                # optimum the lexicographic pipeline records and pins.
                opt = sum(c * solution.values[j] for j, c in local_obj.items())
                total += opt
                block.last_obj = local_obj
                block.last_opt = opt
            else:
                block.last_obj = None
                block.last_opt = None
            status = _worse_status(status, solution.status)

        # Postsolve: recover eliminated columns by a reverse walk of the
        # elimination log.  A record's residual terms were live at its
        # elimination time, so they are either core columns (solved above)
        # or columns eliminated *later* (already recovered by the walk).
        #
        # The eliminations drop the eliminated column's ±bound box, so the
        # core is a relaxation; on a degenerate optimal face the blocks may
        # pick a vertex whose lifted value lands outside the box.  Such a
        # solution does not extend to the unreduced system.  The cheap cure
        # is a *cleanup pass*: re-solve the box-riding blocks on their
        # (solver-tolerance) optimal face, minimizing total certificate
        # mass — small certificates lift cleanly.  If even the cleanup
        # vertex does not lift, protecting the affected columns puts them
        # (and their boxes) back into the core, which cuts off exactly the
        # offending ray, and the solve retries on the recomputed reduction.
        if self._postsolve(values, bound):
            self._cleanup_riders(values, minimize, bound, regularization, jobs)
            out_of_box = self._postsolve(values, bound)
            if out_of_box:
                raise _Invalidate(out_of_box)

        value = total + objective_const
        self.last_was_reduced = True
        self._last_minimize = minimize
        return LPSolution(values, value, status)

    def _solve_blocks_sequential(
        self,
        pending: "list[tuple[int, _LiveBlock, dict[int, float] | None]]",
        minimize: bool,
        bound: float,
        regularization: float,
    ) -> dict[int, LPSolution]:
        solutions: dict[int, LPSolution] = {}
        avoid_warm_hint = False
        deadline = current_deadline()
        for lid, block, local_obj in pending:
            if deadline is not None:
                # Between-block boundary: each block solve also caps itself
                # via the backend, but a long block chain must not overshoot
                # the budget by a whole block.
                deadline.check("lp.block")
            if avoid_warm_hint and hasattr(block.backend, "_avoid_warm"):
                # A sibling block just learned that warm re-solves lose to
                # presolved cold solves on this reduced core; blocks of one
                # system behave alike, so spare the others the lesson.
                block.backend._avoid_warm = True
            started = time.perf_counter()
            solutions[lid] = block.backend.solve(
                block.shim, local_obj, 0.0, minimize, bound, regularization
            )
            self.last_block_seconds.append((lid, time.perf_counter() - started))
            if getattr(block.backend, "_avoid_warm", False):
                avoid_warm_hint = True
        return solutions

    def _solve_blocks_parallel(
        self,
        pending: "list[tuple[int, _LiveBlock, dict[int, float] | None]]",
        minimize: bool,
        bound: float,
        regularization: float,
        jobs: int,
    ) -> dict[int, LPSolution]:
        """Dispatch the pending block solves across the worker pool.

        Tasks ship each block's full CSR row export; workers append only
        the rows past what their cached model for that block uid already
        holds (the parent side is append-only per uid), solve, and return
        the solution values.  Results are applied in block order by the
        caller, and objective values are recomputed parent-side, so the
        arithmetic matches the sequential path exactly.
        """
        from repro.lp import parallel as par

        if not par.parallel_enabled():
            return self._solve_blocks_sequential(
                pending, minimize, bound, regularization
            )
        deadline = current_deadline()
        if deadline is not None:
            deadline.check("lp.block")
        build_started = time.perf_counter()
        pool = par.ensure_pool(jobs)
        backend_name = type(self.problem.backend).name
        tasks = []
        payload = 0
        # Workers run in separate processes and cannot read the parent's
        # deadline contextvar: the task carries a numeric remaining-budget
        # snapshot for the in-worker solver cap, and ``solve_all`` enforces
        # the same budget parent-side (killing a wedged worker outright).
        budget = deadline.remaining() if deadline is not None else None
        for lid, block, local_obj in pending:
            nonneg = block.shim.nonneg_indices
            task = par.BlockTask(
                key=(self._token, block.uid),
                backend_name=backend_name,
                ncols=len(block.gcols),
                nonneg=np.fromiter(nonneg, dtype=np.int64, count=len(nonneg)),
                eq=block.backend.row_arrays(EQ),
                ge=block.backend.row_arrays(GE),
                objective=local_obj,
                minimize=minimize,
                bound=bound,
                regularization=regularization,
                budget=budget,
            )
            payload += task.payload_bytes()
            tasks.append(task)
        serialize_seconds = time.perf_counter() - build_started
        dispatch_started = time.perf_counter()
        # Parent-side safety net: workers self-limit via the task budget,
        # but a wedged native solve never returns — give it a short grace
        # past the budget, then ``solve_all`` kills and respawns it.
        wait = None if budget is None else budget + 2.0
        replies = pool.solve_all(tasks, timeout=wait)
        wall = time.perf_counter() - dispatch_started

        solutions: dict[int, LPSolution] = {}
        worker_seconds: dict[int, float] = {}
        worker_blocks: dict[int, int] = {}
        failure: Exception | None = None
        for (lid, block, _obj), reply in zip(pending, replies):
            tag = reply[0]
            wid = pool.route(block.uid)
            if tag == "ok":
                _, vals, block_status, seconds = reply
                solutions[lid] = LPSolution(np.asarray(vals), 0.0, block_status)
                self.last_block_seconds.append((lid, seconds))
                worker_seconds[wid] = worker_seconds.get(wid, 0.0) + seconds
                worker_blocks[wid] = worker_blocks.get(wid, 0) + 1
                continue
            if failure is not None:
                continue  # first failure wins; later replies just drain
            if tag == "infeasible":
                failure = LPInfeasibleError(
                    reply[1] or "LP infeasible (parallel block solve)",
                    diagnostics=self.problem.infeasibility_diagnostics(),
                )
            elif tag == "timeout":
                failure = AnalysisTimeout(
                    "lp.block.parallel",
                    deadline.elapsed() if deadline is not None else wall,
                    deadline.timings if deadline is not None else None,
                )
            elif tag == "crashed":
                failure = par.WorkerCrashError(
                    f"LP worker crashed (exit code {reply[1]}) while solving "
                    f"block uid {block.uid}; the worker was respawned and "
                    "only this solve failed"
                )
            else:  # "error": (tag, type name, message, seconds)
                failure = LPError(f"LP block worker failed: {reply[1]}: {reply[2]}")
        if failure is not None:
            raise failure

        busy = max(worker_seconds.values(), default=0.0)
        self._accumulate_parallel(
            jobs=jobs,
            tasks=len(tasks),
            payload_bytes=payload,
            serialize_seconds=serialize_seconds,
            wall_seconds=wall,
            overhead_seconds=max(0.0, wall - busy),
            worker_seconds=worker_seconds,
            worker_blocks=worker_blocks,
        )
        return solutions

    def _accumulate_parallel(self, **sample) -> None:
        stats = self.parallel_stats
        if stats is None:
            stats = self.parallel_stats = {
                "jobs": sample["jobs"],
                "dispatches": 0,
                "tasks": 0,
                "payload_bytes": 0,
                "serialize_seconds": 0.0,
                "wall_seconds": 0.0,
                "overhead_seconds": 0.0,
                "worker_seconds": {},
                "worker_blocks": {},
            }
        stats["jobs"] = sample["jobs"]
        stats["dispatches"] += 1
        stats["tasks"] += sample["tasks"]
        stats["payload_bytes"] += sample["payload_bytes"]
        stats["serialize_seconds"] += sample["serialize_seconds"]
        stats["wall_seconds"] += sample["wall_seconds"]
        stats["overhead_seconds"] += sample["overhead_seconds"]
        for wid, seconds in sample["worker_seconds"].items():
            stats["worker_seconds"][wid] = (
                stats["worker_seconds"].get(wid, 0.0) + seconds
            )
        for wid, count in sample["worker_blocks"].items():
            stats["worker_blocks"][wid] = stats["worker_blocks"].get(wid, 0) + count

    def _postsolve(self, values: np.ndarray, bound: float) -> list[int]:
        """Reverse-walk the elimination log; return columns lifted out of
        the ``±bound`` box (empty when the solution extends cleanly)."""
        box = bound * (1.0 + 1e-9)
        out_of_box: list[int] = []
        for rule, col, coeff, rhs, rest in reversed(self._reduction.elim):
            acc = rhs
            for other, val in rest.items():
                acc -= val * values[other]
            value = acc / coeff
            if rule == _GE_SLACK and value < 0.0:
                value = 0.0
            if abs(value) > box:
                out_of_box.append(col)
            values[col] = value
        return out_of_box

    def _cleanup_riders(
        self,
        values: np.ndarray,
        minimize: bool,
        bound: float,
        regularization: float,
        jobs: int = 1,
    ) -> None:
        """Move box-riding blocks to a small-certificate optimal vertex.

        For every block with a core variable near the ``±bound`` box, pin
        the block's just-proven optimum (within the solver's own feasibility
        tolerance — so the pinned face is exactly what the solver certified)
        and minimize a pull-inward objective over it: unit cost on every
        certificate multiplier plus a unit pull on each box-riding column,
        directed away from its box end.  The reported stage objective stays
        the first solve's exact optimum; only the *witness point* moves,
        toward the interior vertices that lift into the unreduced variable
        space.  Failures leave ``values`` as they were — the caller falls
        back to protection + recompute.

        Under parallel dispatch the cleanup solves run on the *worker's*
        cached model for each block, never on the parent backend: a block's
        warm-model trajectory — including the cleanup's pin/solve/rollback
        and its side effects on the solver state — must stay on one side
        for parallel and sequential solves to return identical vertices.
        """
        riders: list[tuple[_LiveBlock, dict[int, float], "tuple | None"]] = []
        for block in self._live:
            block_values = values[block.gcols]
            magnitudes = np.abs(block_values)
            if not magnitudes.size or magnitudes.max() < 0.9 * bound:
                continue
            cleanup_obj = {j: 1.0 for j in block.shim.nonneg_indices}
            for j in np.nonzero(magnitudes >= 0.9 * bound)[0].tolist():
                cleanup_obj[j] = 1.0 if block_values[j] > 0 else -1.0
            pin = None
            if block.last_obj is not None and block.last_opt is not None:
                margin = 1e-6 * (1.0 + abs(block.last_opt))
                pin = _pin_row(block.last_obj, block.last_opt, margin, minimize)
            riders.append((block, cleanup_obj, pin))
        if not riders:
            return
        if jobs > 1:
            solutions = self._cleanup_riders_parallel(
                riders, bound, regularization, jobs
            )
            for block, _obj, _pin in riders:
                block.dirty = True
                cleanup = solutions.get(block.uid)
                if cleanup is not None:
                    values[block.gcols] = cleanup.values
                    block.last_values = cleanup.values
            return
        for block, cleanup_obj, pin in riders:
            backend = block.backend
            checkpoint = backend.checkpoint()
            try:
                if pin is not None:
                    backend.add_row(GE, pin[0], pin[1])
                cleanup = backend.solve(
                    block.shim, cleanup_obj, 0.0, True, bound, regularization
                )
            except Exception:
                continue  # keep the original vertex; the caller re-checks
            finally:
                backend.rollback(checkpoint)
                block.dirty = True
            values[block.gcols] = cleanup.values
            block.last_values = cleanup.values

    def _cleanup_riders_parallel(
        self,
        riders: "list[tuple[_LiveBlock, dict[int, float], tuple | None]]",
        bound: float,
        regularization: float,
        jobs: int,
    ) -> dict[int, LPSolution]:
        """Run the rider cleanups on the workers' cached block models.

        Failures (solver errors, crashes) drop that block's cleanup — the
        original vertex is kept, matching the sequential path's
        ``except Exception: continue``.
        """
        from repro.lp import parallel as par

        if not par.parallel_enabled():
            return {}
        pool = par.ensure_pool(jobs)
        backend_name = type(self.problem.backend).name
        tasks = []
        for block, cleanup_obj, pin in riders:
            nonneg = block.shim.nonneg_indices
            tasks.append(
                par.BlockTask(
                    key=(self._token, block.uid),
                    backend_name=backend_name,
                    ncols=len(block.gcols),
                    nonneg=np.fromiter(nonneg, dtype=np.int64, count=len(nonneg)),
                    eq=block.backend.row_arrays(EQ),
                    ge=block.backend.row_arrays(GE),
                    objective=cleanup_obj,
                    minimize=True,
                    bound=bound,
                    regularization=regularization,
                    cleanup=True,
                    pin=pin,
                )
            )
        replies = pool.solve_all(tasks)
        solutions: dict[int, LPSolution] = {}
        for (block, _obj, _pin), reply in zip(riders, replies):
            if reply[0] == "ok":
                solutions[block.uid] = LPSolution(
                    np.asarray(reply[1]), 0.0, reply[2]
                )
        return solutions


# ---------------------------------------------------------------------------
# Presolve + decomposition
# ---------------------------------------------------------------------------


def _nonneg_mask(problem: "LPProblem", n: int) -> np.ndarray:
    """Boolean nonnegativity mask over the variable pool.

    The Handelman emitter marks its λ-column spans at emission time
    (:meth:`LPProblem.note_cert_span`); when the spans cover every
    nonnegative variable — they do for derivation-produced systems, where
    ``fresh_nonneg`` is only called by certificate emission — the mask is
    filled span-by-span without scanning the Python-level index set.
    """
    mask = np.zeros(n, dtype=bool)
    spans = problem.cert_spans
    if spans and sum(count for _, count in spans) == len(problem.nonneg_indices):
        for start, count in spans:
            mask[start : start + count] = True
        return mask
    if problem.nonneg_indices:
        mask[np.fromiter(problem.nonneg_indices, dtype=np.int64, count=-1)] = True
    return mask


def _infeasible(problem: "LPProblem", detail: str) -> LPInfeasibleError:
    return LPInfeasibleError(
        "LP infeasible: no potential annotation of this shape exists "
        f"(presolve: {detail})",
        diagnostics=problem.infeasibility_diagnostics(),
    )


def _compute_reduction(
    problem: "LPProblem", bound: float, protected: frozenset[int]
) -> _Reduction:
    """Run the presolve cascade and component split over the row buffers.

    Rows are bulk-exported from the backend's CSR triplet buffers
    (vectorized ingestion and occupancy counts); the cascade itself runs on
    compressed per-row dictionaries, which profiling shows is the faster
    representation once rules start rewriting individual rows.
    """
    started = time.perf_counter()
    backend = problem.backend
    n = len(problem.pool)
    snapshot = backend.checkpoint()
    nonneg = _nonneg_mask(problem, n)
    stats = ReductionStats(cols=n)

    # -- vectorized ingestion ----------------------------------------------
    rows: list[list] = []  # mutable [kind, terms, rhs]
    for kind in (EQ, GE):
        starts, cols, vals, rhs = backend.row_arrays(kind)
        stats.nnz += len(cols)
        cols_l = cols.tolist()
        vals_l = vals.tolist()
        rhs_l = rhs.tolist()
        for r in range(len(rhs_l)):
            lo, hi = starts[r], starts[r + 1]
            rows.append([kind, dict(zip(cols_l[lo:hi], vals_l[lo:hi])), rhs_l[r]])
    stats.rows = len(rows)

    alive = [True] * len(rows)
    colrows: dict[int, set[int]] = {}
    for i, (_, terms, _) in enumerate(rows):
        for col in terms:
            colrows.setdefault(col, set()).add(i)

    fixed_of: dict[int, float] = {}
    opt_fixed: set[int] = set()
    elim: list[tuple[str, int, float, float, dict[int, float]]] = []

    def check_residual(kind: str, rhs: float) -> None:
        slack = _FEAS_TOL * (1.0 + abs(rhs))
        if kind == EQ and abs(rhs) > slack:
            raise _infeasible(problem, f"equality residual {rhs:g} after substitution")
        if kind == GE and rhs > slack:
            raise _infeasible(problem, f"inequality residual {rhs:g} after substitution")

    def kill_row(i: int) -> None:
        alive[i] = False
        for col in rows[i][1]:
            colrows[col].discard(i)

    # -- the singleton cascade ---------------------------------------------
    #
    # Worklist-driven: rather than re-scanning every row and column per
    # pass, each rule queues exactly the rows/columns whose occurrence
    # counts it changed.  Stacks may hold duplicates; every pop re-checks
    # the current state, so stale entries are cheap no-ops.
    row_work: list[int] = list(range(len(rows)))
    col_work: list[int] = list(colrows)

    def queue_row_cols(i: int) -> None:
        col_work.extend(rows[i][1])

    while row_work or col_work:
        stats.substitution_passes += 1
        while row_work:
            i = row_work.pop()
            if not alive[i]:
                continue
            kind, terms, rhs = rows[i]
            if not terms:
                check_residual(kind, rhs)
                alive[i] = False
                continue
            if kind == EQ and len(terms) == 1:
                # Singleton equality row: fix the variable outright (exact).
                ((col, coeff),) = terms.items()
                if coeff == 0.0:
                    continue  # degenerate; leave for the solver
                value = rhs / coeff
                if nonneg[col] and value < -_FEAS_TOL:
                    raise _infeasible(
                        problem, f"certificate multiplier forced to {value:g} < 0"
                    )
                if abs(value) > bound:
                    raise _infeasible(
                        problem, f"variable forced to {value:g} beyond the ±{bound:g} box"
                    )
                fixed_of[col] = value
                kill_row(i)
                # Substitution only changes the fixed column's occurrences
                # (other columns keep their counts), so only the touched
                # rows re-queue.
                for j in list(colrows[col]):
                    rows[j][2] -= rows[j][1].pop(col) * value
                    row_work.append(j)
                colrows[col] = set()
        while col_work and not row_work:
            col = col_work.pop()
            rset = colrows.get(col)
            if rset is None or len(rset) != 1 or col in fixed_of or col in protected:
                continue
            (i,) = rset
            if not alive[i]:  # pragma: no cover - colrows tracks live rows
                continue
            kind, terms, rhs = rows[i]
            coeff = terms.get(col)
            if coeff is None or coeff == 0.0:
                continue
            if kind == EQ:
                rest = {c: v for c, v in terms.items() if c != col}
                if not nonneg[col]:
                    # Free singleton: the row is satisfiable for any value of
                    # the other columns; recover the value in postsolve.
                    elim.append((_FREE, col, coeff, rhs, rest))
                    stats.free_cols += 1
                    queue_row_cols(i)
                    kill_row(i)
                else:
                    # Implied slack: rest + coeff*λ == rhs with λ >= 0 means
                    # rest >= rhs (coeff < 0) or rest <= rhs (coeff > 0).
                    elim.append((_SLACK, col, coeff, rhs, rest))
                    stats.slack_cols += 1
                    del terms[col]
                    colrows[col].discard(i)
                    if coeff > 0.0:
                        rows[i][1] = {c: -v for c, v in terms.items()}
                        rows[i][2] = -rhs
                    rows[i][0] = GE
                    row_work.append(i)
            else:
                if not nonneg[col]:
                    rest = {c: v for c, v in terms.items() if c != col}
                    elim.append((_FREE, col, coeff, rhs, rest))
                    stats.free_cols += 1
                    queue_row_cols(i)
                    kill_row(i)
                elif coeff > 0.0:
                    # λ alone satisfies the inequality; postsolve picks the
                    # smallest feasible λ.
                    rest = {c: v for c, v in terms.items() if c != col}
                    elim.append((_GE_SLACK, col, coeff, rhs, rest))
                    stats.slack_cols += 1
                    queue_row_cols(i)
                    kill_row(i)
                else:
                    # λ only hurts the inequality: any optimum can take λ = 0.
                    # An optimality (not substitution) fix — recorded so a
                    # later objective or row on the column resurrects it.
                    fixed_of[col] = 0.0
                    opt_fixed.add(col)
                    del terms[col]
                    colrows[col].discard(i)
                    row_work.append(i)

    elim_cols = {col for _, col, _, _, _ in elim}
    stats.fixed_cols = len(fixed_of)

    # -- rows made vacuous by the variable bounds ---------------------------
    for i, (kind, terms, rhs) in enumerate(rows):
        if not alive[i] or kind != GE or not terms:
            continue
        min_act = 0.0
        for col, val in terms.items():
            if val > 0.0:
                min_act += val * (0.0 if nonneg[col] else -bound)
            else:
                min_act += val * bound
        if min_act >= rhs:
            stats.vacuous_rows += 1
            kill_row(i)

    # -- duplicate rows (exact, via hashing) --------------------------------
    seen: set = set()
    for i, (kind, terms, rhs) in enumerate(rows):
        if not alive[i] or not terms:
            continue
        items = tuple(terms.items())
        key = (kind, items, rhs)
        if key in seen:
            stats.dup_rows += 1
            kill_row(i)
        else:
            seen.add(key)

    # -- zero columns -------------------------------------------------------
    zero_cols = {
        col
        for col, rset in colrows.items()
        if not rset and col not in fixed_of and col not in elim_cols
    }
    # Columns never mentioned by any row at all:
    mentioned = np.zeros(n, dtype=bool)
    if colrows:
        mentioned[np.fromiter(colrows, dtype=np.int64, count=len(colrows))] = True
    if fixed_of:
        mentioned[np.fromiter(fixed_of, dtype=np.int64, count=len(fixed_of))] = True
    if elim_cols:
        mentioned[np.fromiter(elim_cols, dtype=np.int64, count=len(elim_cols))] = True
    zero_cols.update(np.nonzero(~mentioned)[0].tolist())
    # Protected row-free columns become singleton blocks below — objectives,
    # pins, and cut rows address them like any core column (a protected
    # column classified as "zero" could never be resurrected: protection
    # only guards against *elimination rules*, and a row-free column has no
    # row to keep).
    protected_zero = sorted(zero_cols & protected)
    zero_cols.difference_update(protected_zero)
    stats.zero_cols = len(zero_cols)

    # -- connected components of the variable-row bipartite graph -----------
    parent: dict[int, int] = {}

    def find(c: int) -> int:
        root = c
        while parent[root] != root:
            root = parent[root]
        while parent[c] != root:
            parent[c], c = root, parent[c]
        return root

    live_rows = [i for i in range(len(rows)) if alive[i] and rows[i][1]]
    for i in live_rows:
        terms = rows[i][1]
        it = iter(terms)
        first = next(it)
        if first not in parent:
            parent[first] = first
        root = find(first)
        for col in it:
            if col not in parent:
                parent[col] = root
                continue
            other = find(col)
            if other != root:
                parent[other] = root

    block_of_root: dict[int, int] = {}
    block_cols: list[list[int]] = []
    col_block: dict[int, int] = {}
    for col in parent:
        root = find(col)
        bid = block_of_root.get(root)
        if bid is None:
            bid = len(block_cols)
            block_of_root[root] = bid
            block_cols.append([])
        block_cols[bid].append(col)
        col_block[col] = bid

    blocks: list[_PristineBlock] = []
    for cols_list in block_cols:
        gcols = np.asarray(cols_list, dtype=np.int64)
        local_of = {int(c): i for i, c in enumerate(cols_list)}
        local_nonneg = {i for i, c in enumerate(cols_list) if nonneg[c]}
        blocks.append(_PristineBlock(gcols, local_of, local_nonneg, []))
    for col in protected_zero:
        bid = len(blocks)
        blocks.append(
            _PristineBlock(
                np.asarray([col], dtype=np.int64),
                {col: 0},
                {0} if nonneg[col] else set(),
                [],
            )
        )
        col_block[col] = bid

    reduced_nnz = 0
    for i in live_rows:
        kind, terms, rhs = rows[i]
        bid = col_block[next(iter(terms))]
        block = blocks[bid]
        local = block.local_of
        block.rows.append((kind, {local[c]: v for c, v in terms.items()}, -rhs))
        reduced_nnz += len(terms)

    if fixed_of:
        fixed_cols = np.fromiter(fixed_of, dtype=np.int64, count=len(fixed_of))
        fixed_vals = np.fromiter(
            fixed_of.values(), dtype=np.float64, count=len(fixed_of)
        )
    else:
        fixed_cols = np.empty(0, dtype=np.int64)
        fixed_vals = np.empty(0, dtype=np.float64)

    stats.reduced_cols = len(parent) + len(protected_zero)
    stats.reduced_rows = len(live_rows)
    stats.reduced_nnz = reduced_nnz
    stats.components = len(blocks)
    stats.component_sizes = sorted((len(b.gcols) for b in blocks), reverse=True)
    stats.presolve_seconds = time.perf_counter() - started

    return _Reduction(
        snapshot=snapshot,
        ncols=n,
        bound=bound,
        protected=protected,
        fixed_of=fixed_of,
        opt_fixed=opt_fixed,
        fixed_cols=fixed_cols,
        fixed_vals=fixed_vals,
        elim=elim,
        elim_cols=elim_cols,
        zero_cols=zero_cols,
        col_block=col_block,
        blocks=blocks,
        stats=stats,
    )
