"""The legacy solving path: rebuild CSR matrices and cold-start HiGHS.

Kept as the reference backend: it goes through ``scipy.optimize.linprog``,
reassembling the full constraint matrices from the stored rows on every
``solve`` call.  Simple, battle-tested, and the parity baseline for the
incremental backend.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np
from scipy import sparse
from scipy.optimize import linprog

from repro.deadline import AnalysisTimeout, current_deadline
from repro.lp.backends.base import EQ, GE, Checkpoint, LPBackend, rung_status
from repro.lp.core import LPError, LPInfeasibleError, LPSolution

if TYPE_CHECKING:  # pragma: no cover
    from repro.lp.problem import LPProblem


class ScipyDenseBackend(LPBackend):
    """Affine-form row lists, full matrix rebuild per solve."""

    name = "dense"

    def __init__(self) -> None:
        super().__init__()
        self._rows: dict[str, list[tuple[dict[int, float], float]]] = {EQ: [], GE: []}

    # -- row storage --------------------------------------------------------

    def add_row(self, kind: str, terms, const: float) -> int:
        rows = self._rows[kind]
        # ``dict`` copies a {col: coeff} dict and consumes (col, coeff)
        # pairs alike — both shapes of the base-class contract.
        rows.append((dict(terms), const))
        return len(rows) - 1

    def num_rows(self, kind: str) -> int:
        return len(self._rows[kind])

    def row_arrays(self, kind: str, lo: int = 0, hi: "int | None" = None):
        rows = self._rows[kind]
        if hi is None:
            hi = len(rows)
        window = rows[lo:hi]
        starts = np.zeros(len(window) + 1, dtype=np.int64)
        np.cumsum([len(terms) for terms, _ in window], out=starts[1:])
        cols = np.fromiter(
            (c for terms, _ in window for c in terms),
            dtype=np.int64,
            count=int(starts[-1]),
        )
        vals = np.fromiter(
            (v for terms, _ in window for v in terms.values()),
            dtype=np.float64,
            count=int(starts[-1]),
        )
        rhs = np.asarray([-const for _, const in window], dtype=np.float64)
        return starts, cols, vals, rhs

    def checkpoint(self) -> Checkpoint:
        return Checkpoint(eq=len(self._rows[EQ]), ge=len(self._rows[GE]))

    def rollback(self, checkpoint: Checkpoint) -> None:
        del self._rows[EQ][checkpoint.eq :]
        del self._rows[GE][checkpoint.ge :]

    # -- solving ------------------------------------------------------------

    def _matrix(
        self, rows: list[tuple[dict[int, float], float]], num_cols: int
    ) -> tuple[sparse.csr_matrix, np.ndarray]:
        data: list[float] = []
        row_idx: list[int] = []
        col_idx: list[int] = []
        rhs = np.zeros(len(rows))
        for r, (terms, const) in enumerate(rows):
            rhs[r] = -const
            for idx, coeff in terms.items():
                row_idx.append(r)
                col_idx.append(idx)
                data.append(coeff)
        mat = sparse.csr_matrix(
            (data, (row_idx, col_idx)), shape=(len(rows), num_cols)
        )
        return mat, rhs

    def solve(
        self,
        problem: "LPProblem",
        objective: "dict[int, float] | None",
        objective_const: float,
        minimize: bool,
        bound: float,
        regularization: float,
    ) -> LPSolution:
        self.stats.solves += 1
        n = len(problem.pool)
        if n == 0:
            return LPSolution(np.zeros(0), 0.0, "optimal")

        base_cost = np.zeros(n)
        if objective is not None:
            for idx, coeff in objective.items():
                base_cost[idx] = coeff if minimize else -coeff

        eq_rows = self._rows[EQ]
        ge_rows = self._rows[GE]
        self.stats.model_builds += 1
        a_eq, b_eq = self._matrix(eq_rows, n)
        kwargs = {}
        if ge_rows:
            a_ge, b_ge = self._matrix(ge_rows, n)
            kwargs["A_ub"] = -a_ge
            kwargs["b_ub"] = -b_ge

        nonneg = problem.nonneg_indices
        # HiGHS occasionally reports "unknown" on the massively degenerate
        # optimal faces these certificate systems have.  The cascade tries:
        # the plain problem with each HiGHS variant, then a tiny ridge on
        # the certificate multipliers (ties broken toward small
        # certificates), then tighter variable boxes.
        attempts = [
            (0.0, bound, "highs"),
            (0.0, bound, "highs-ds"),
            (regularization, bound, "highs"),
            (regularization, min(bound, 1e9), "highs"),
            (100 * regularization, min(bound, 1e8), "highs"),
            (0.0, bound, "highs-ipm"),
        ]
        deadline = current_deadline()
        result = None
        for reg, box, method in attempts:
            solver_options = None
            if deadline is not None:
                # Budget cap: expiry between attempts raises, and each
                # linprog call is capped at the remaining wall-clock.
                deadline.check("lp.solve")
                solver_options = {"time_limit": max(deadline.remaining(), 1e-3)}
            cost = base_cost.copy()
            if reg and objective is not None:
                for idx in nonneg:
                    cost[idx] += reg
            bounds = [
                (0.0, box) if i in nonneg else (-box, box) for i in range(n)
            ]
            result = linprog(
                cost,
                A_eq=a_eq if eq_rows else None,
                b_eq=b_eq if eq_rows else None,
                bounds=bounds,
                method=method,
                options=solver_options,
                **kwargs,
            )
            if result.status == 2 and box == bound:
                raise LPInfeasibleError(
                    "LP infeasible: no potential annotation of this shape exists "
                    "(try a higher polynomial degree or stronger invariants)",
                    diagnostics=problem.infeasibility_diagnostics(),
                )
            if result.success:
                break
        if not result.success:
            if deadline is not None and deadline.expired():
                raise AnalysisTimeout(
                    "lp.solve", deadline.elapsed(), deadline.timings
                )
            raise LPError(f"LP solver failed: {result.message}")
        value = float(result.fun) + (objective_const if minimize else -objective_const)
        if not minimize:
            value = -value
        return LPSolution(np.asarray(result.x), value, rung_status(reg, box, bound))
