"""Incremental LP backend: COO triplet assembly + a persistent HiGHS model.

Two ideas, both aimed at the lexicographic solve loop of the analysis
(section 3.4: minimize imprecision of the first moment, pin it, move to the
second moment, ...):

1. **Assembly.** Constraints are ingested straight into growing CSR-style
   buffers (``starts``/``cols``/``vals``) at emission time — no per-row
   affine-form dicts to re-walk at solve time.  The sparse matrix is built
   exactly once per model.

2. **Solving.** The HiGHS model object persists across ``solve`` calls.
   Between lexicographic stages only the new *cut rows* are appended
   (``addRows``) and the objective column costs are swapped
   (``changeColsCost``); HiGHS keeps its simplex basis, so stage ``k+1``
   re-optimizes from the stage-``k`` vertex in a handful of iterations
   instead of cold-starting the whole LP.

The bindings used are the ``highspy`` ones scipy bundles for its own
``linprog`` wrapper (``scipy.optimize._highspy``); if a scipy build does not
ship them the backend registry falls back to :class:`ScipyDenseBackend`
(see :mod:`repro.lp.backends`).
"""

from __future__ import annotations

import os
import time
from typing import TYPE_CHECKING

import numpy as np

from repro.deadline import AnalysisTimeout, current_deadline
from repro.lp.backends.base import EQ, GE, Checkpoint, LPBackend, rung_status
from repro.lp.core import LPError, LPInfeasibleError, LPSolution

if TYPE_CHECKING:  # pragma: no cover
    from repro.lp.problem import LPProblem

if os.environ.get("REPRO_DISABLE_HIGHS"):
    # CI lever: force the scipy fallback path even when a HiGHS binding is
    # importable, so the dense leg of the matrix tests what it claims to.
    _hs = None
    _HIGHS_AVAILABLE = False
else:
    try:  # standalone highspy, if the environment has it
        import highspy as _hs  # type: ignore

        _HIGHS_AVAILABLE = True
    except ImportError:  # the copy scipy bundles (scipy >= 1.15)
        try:
            from scipy.optimize._highspy import _core as _hs  # type: ignore

            _HIGHS_AVAILABLE = True
        except ImportError:  # pragma: no cover - environment without either
            _hs = None
            _HIGHS_AVAILABLE = False


def highs_available() -> bool:
    return _HIGHS_AVAILABLE


def _new_highs():
    h = (_hs.Highs if hasattr(_hs, "Highs") else _hs._Highs)()
    h.setOptionValue("output_flag", False)
    return h


class _RowBuffer:
    """Growing CSR triplets for one row kind."""

    __slots__ = ("starts", "cols", "vals", "rhs")

    def __init__(self) -> None:
        self.starts: list[int] = [0]
        self.cols: list[int] = []
        self.vals: list[float] = []
        self.rhs: list[float] = []  # stored as -const: row ``terms·x == / >= rhs``

    def __len__(self) -> int:
        return len(self.rhs)

    def append(self, terms, const: float) -> int:
        cols = self.cols
        vals = self.vals
        if isinstance(terms, dict):
            # Bulk ingestion: one C-level pass per row instead of a Python
            # loop over entries.  ``keys()``/``values()`` iterate in the same
            # (insertion) order, so the triplet layout is unchanged.
            cols.extend(terms.keys())
            vals.extend(terms.values())
        else:
            for idx, coeff in terms:
                cols.append(idx)
                vals.append(coeff)
        self.starts.append(len(cols))
        self.rhs.append(-const)
        return len(self.rhs) - 1

    def truncate(self, nrows: int) -> None:
        nnz = self.starts[nrows]
        del self.starts[nrows + 1 :]
        del self.cols[nnz:]
        del self.vals[nnz:]
        del self.rhs[nrows:]

    def slice_arrays(self, lo: int, hi: int):
        """(starts, cols, vals, rhs) for rows ``lo..hi`` as numpy arrays."""
        base = self.starts[lo]
        starts = np.asarray(self.starts[lo:hi], dtype=np.int32) - base
        cols = np.asarray(self.cols[base : self.starts[hi]], dtype=np.int32)
        vals = np.asarray(self.vals[base : self.starts[hi]], dtype=np.float64)
        rhs = np.asarray(self.rhs[lo:hi], dtype=np.float64)
        return starts, cols, vals, rhs


class IncrementalBackend(LPBackend):
    """Triplet-buffer assembly with warm-started incremental HiGHS solves."""

    name = "incremental"

    def __init__(self) -> None:
        super().__init__()
        self._buffers = {EQ: _RowBuffer(), GE: _RowBuffer()}
        self._h = None
        self._model_rows = {EQ: 0, GE: 0}
        self._model_ncols = 0
        self._model_box = None
        # Adaptive warm-start policy.  A valid basis makes HiGHS skip
        # presolve; on LPs that presolve shrinks drastically (the Handelman
        # certificate systems are full of singleton columns) a warm solve on
        # the full-size model can cost as much as a cold one.  We measure
        # successful runs only: the first warm stage that fails to beat the
        # cold solve time flips the model to presolve-each-stage mode
        # (clearSolver before run).  ``_basis_valid`` tracks whether the
        # HiGHS instance still holds a usable basis (False after builds and
        # clearSolver, True after an optimal run).
        self._cold_seconds: float | None = None
        self._avoid_warm = False
        self._basis_valid = False
        # Whether the persistent model currently carries a finite HiGHS
        # ``time_limit`` (set from an armed deadline); cleared back to
        # infinity before the next un-deadlined solve.
        self._time_limited = False

    def __getstate__(self):
        """Serialization hook for the artifact cache: the native HiGHS
        handle cannot cross process/disk boundaries, so the pickle carries
        only the triplet buffers and the model is rebuilt lazily on the
        first solve after deserialization."""
        state = self.__dict__.copy()
        state.update(
            _h=None,
            _model_rows={EQ: 0, GE: 0},
            _model_ncols=0,
            _model_box=None,
            _cold_seconds=None,
            _avoid_warm=False,
            _basis_valid=False,
            _time_limited=False,
        )
        return state

    # -- row storage --------------------------------------------------------

    def add_row(self, kind: str, terms, const: float) -> int:
        # ``terms``: a {col: coeff} dict (bulk fast path) or (col, coeff)
        # pairs — see the base-class contract.
        return self._buffers[kind].append(terms, const)

    def num_rows(self, kind: str) -> int:
        return len(self._buffers[kind])

    def row_arrays(self, kind: str, lo: int = 0, hi: "int | None" = None):
        buf = self._buffers[kind]
        if hi is None:
            hi = len(buf)
        starts, cols, vals, rhs = buf.slice_arrays(lo, hi)
        # slice_arrays serves HiGHS addRows, which wants no final
        # terminator; the CSR export contract includes it.
        return (
            np.append(starts, len(cols)).astype(np.int64),
            cols.astype(np.int64),
            vals,
            rhs,
        )

    def checkpoint(self) -> Checkpoint:
        return Checkpoint(eq=len(self._buffers[EQ]), ge=len(self._buffers[GE]))

    def rollback(self, checkpoint: Checkpoint) -> None:
        self._buffers[EQ].truncate(checkpoint.eq)
        self._buffers[GE].truncate(checkpoint.ge)
        if (
            self._model_rows[EQ] > checkpoint.eq
            or self._model_rows[GE] > checkpoint.ge
        ):
            # The persistent model contains dropped rows; rebuild lazily.
            self._h = None

    # -- model management ---------------------------------------------------

    def _col_bounds(self, problem: "LPProblem", n: int, box: float):
        lower = np.full(n, -box)
        upper = np.full(n, box)
        nonneg = np.fromiter(problem.nonneg_indices, dtype=np.int64, count=-1)
        if nonneg.size:
            lower[nonneg] = 0.0
        return lower, upper

    def _build_model(self, problem: "LPProblem", n: int, box: float) -> None:
        self.stats.model_builds += 1
        eq, ge = self._buffers[EQ], self._buffers[GE]
        neq, nge = len(eq), len(ge)
        lp = _hs.HighsLp()
        lp.num_col_ = n
        lp.num_row_ = neq + nge
        lp.col_cost_ = np.zeros(n)
        lower, upper = self._col_bounds(problem, n, box)
        lp.col_lower_ = lower
        lp.col_upper_ = upper
        eq_rhs = np.asarray(eq.rhs, dtype=np.float64)
        ge_rhs = np.asarray(ge.rhs, dtype=np.float64)
        lp.row_lower_ = np.concatenate([eq_rhs, ge_rhs])
        lp.row_upper_ = np.concatenate([eq_rhs, np.full(nge, _hs.kHighsInf)])
        mat = _hs.HighsSparseMatrix()
        mat.format_ = _hs.MatrixFormat.kRowwise
        mat.num_col_ = n
        mat.num_row_ = neq + nge
        eq_nnz = eq.starts[-1]
        mat.start_ = np.concatenate(
            [
                np.asarray(eq.starts, dtype=np.int32),
                np.asarray(ge.starts[1:], dtype=np.int32) + eq_nnz,
            ]
        )
        mat.index_ = np.asarray(eq.cols + ge.cols, dtype=np.int32)
        mat.value_ = np.asarray(eq.vals + ge.vals, dtype=np.float64)
        lp.a_matrix_ = mat
        h = _new_highs()
        status = h.passModel(lp)
        if status == _hs.HighsStatus.kError:
            raise LPError("HiGHS rejected the model")
        self._h = h
        self._model_rows = {EQ: neq, GE: nge}
        self._model_ncols = n
        self._model_box = box
        self._cold_seconds = None
        self._avoid_warm = False
        self._basis_valid = False
        self._time_limited = False

    def _append_new_rows(self, kind: str) -> None:
        buf = self._buffers[kind]
        have = self._model_rows[kind]
        want = len(buf)
        if want == have:
            return
        starts, cols, vals, rhs = buf.slice_arrays(have, want)
        if kind == EQ:
            lower, upper = rhs, rhs
        else:
            lower, upper = rhs, np.full(len(rhs), _hs.kHighsInf)
        status = self._h.addRows(
            want - have, lower, upper, len(cols), starts, cols, vals
        )
        if status == _hs.HighsStatus.kError:
            raise LPError("HiGHS rejected appended rows")
        self.stats.rows_appended += want - have
        self._model_rows[kind] = want

    def _ensure_model(self, problem: "LPProblem", n: int, box: float) -> None:
        if self._h is None or self._model_ncols != n:
            self._build_model(problem, n, box)
            return
        if box != self._model_box:
            lower, upper = self._col_bounds(problem, n, box)
            self._h.changeColsBounds(
                n, np.arange(n, dtype=np.int32), lower, upper
            )
            self._model_box = box
        self._append_new_rows(EQ)
        self._append_new_rows(GE)

    # -- solving ------------------------------------------------------------

    def solve(
        self,
        problem: "LPProblem",
        objective: "dict[int, float] | None",
        objective_const: float,
        minimize: bool,
        bound: float,
        regularization: float,
    ) -> LPSolution:
        if not _HIGHS_AVAILABLE:  # pragma: no cover - guarded at registry
            return self._fallback_dense(
                problem, objective, objective_const, minimize, bound, regularization
            )
        self.stats.solves += 1
        n = len(problem.pool)
        if n == 0:
            return LPSolution(np.zeros(0), 0.0, "optimal")

        base_cost = np.zeros(n)
        if objective is not None:
            for idx, coeff in objective.items():
                base_cost[idx] = coeff if minimize else -coeff
        nonneg_list = None

        # Mirrors the dense backend's robustness cascade, minus the method
        # hopping (the persistent model warm-starts, which already removes
        # most of the degenerate-face "unknown" outcomes).
        attempts = [
            (0.0, bound),
            (regularization, bound),
            (regularization, min(bound, 1e9)),
            (100 * regularization, min(bound, 1e8)),
        ]
        deadline = current_deadline()
        for reg, box in attempts:
            if deadline is not None:
                deadline.check("lp.solve")
            self._ensure_model(problem, n, box)
            cost = base_cost
            if reg and objective is not None:
                if nonneg_list is None:
                    nonneg_list = np.fromiter(
                        problem.nonneg_indices, dtype=np.int64, count=-1
                    )
                cost = base_cost.copy()
                if nonneg_list.size:
                    cost[nonneg_list] += reg
            h = self._h
            h.changeColsCost(n, np.arange(n, dtype=np.int32), cost)
            if deadline is not None:
                # Budget cap inside HiGHS itself: a wedged simplex returns
                # kTimeLimit instead of running forever.
                h.setOptionValue(
                    "time_limit", max(deadline.remaining(), 1e-3)
                )
                self._time_limited = True
            elif self._time_limited:
                h.setOptionValue("time_limit", _hs.kHighsInf)
                self._time_limited = False
            warm = self._basis_valid
            if warm and self._avoid_warm:
                h.clearSolver()  # discard the basis; presolve runs again
                self._basis_valid = False
                warm = False
            started = time.perf_counter()
            h.run()
            elapsed = time.perf_counter() - started
            status = h.getModelStatus()
            if (
                deadline is not None
                and status == _hs.HighsModelStatus.kTimeLimit
            ):
                # The interrupted model holds a partial basis; start cold
                # if anything solves after the timeout is handled.
                self._h = None
                raise AnalysisTimeout(
                    "lp.solve", deadline.elapsed(), deadline.timings
                )
            if status == _hs.HighsModelStatus.kOptimal:
                # Only successful runs inform the adaptive policy — failed
                # attempts have meaningless timings.
                if not warm:
                    self._cold_seconds = elapsed
                elif (
                    self._cold_seconds is not None
                    and self._cold_seconds > 0.01
                    and elapsed > 0.8 * self._cold_seconds
                ):
                    self._avoid_warm = True
                self._basis_valid = True
                values = np.asarray(h.getSolution().col_value)
                fun = float(h.getInfo().objective_function_value)
                value = fun + (objective_const if minimize else -objective_const)
                if not minimize:
                    value = -value
                return LPSolution(values, value, rung_status(reg, box, bound))
            if status == _hs.HighsModelStatus.kInfeasible and box == bound:
                raise LPInfeasibleError(
                    "LP infeasible: no potential annotation of this shape exists "
                    "(try a higher polynomial degree or stronger invariants)",
                    diagnostics=problem.infeasibility_diagnostics(),
                )
            # Any other status (unknown, unbounded-or-infeasible under a
            # tighter box, numerical trouble): drop the stale basis and move
            # to the next rung of the cascade.  A *warm* attempt failing is
            # the strongest evidence this model dislikes warm starts — stop
            # paying for them on later stages.
            if warm:
                self._avoid_warm = True
            h.clearSolver()
            self._basis_valid = False
        self._h = None  # cold model for whatever comes after the fallback
        return self._fallback_dense(
            problem, objective, objective_const, minimize, bound, regularization
        )

    def _fallback_dense(
        self,
        problem: "LPProblem",
        objective: "dict[int, float] | None",
        objective_const: float,
        minimize: bool,
        bound: float,
        regularization: float,
    ) -> LPSolution:
        """Last resort: hand the triplets to the scipy cascade."""
        from repro.lp.backends.scipy_dense import ScipyDenseBackend

        self.stats.fallbacks += 1
        dense = ScipyDenseBackend()
        for kind in (EQ, GE):
            buf = self._buffers[kind]
            for r in range(len(buf)):
                lo, hi = buf.starts[r], buf.starts[r + 1]
                dense.add_row(
                    kind,
                    zip(buf.cols[lo:hi], buf.vals[lo:hi]),
                    -buf.rhs[r],
                )
        return dense.solve(
            problem, objective, objective_const, minimize, bound, regularization
        )
