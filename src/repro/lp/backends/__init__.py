"""Pluggable LP backends.

``get_backend(name)`` instantiates a registered backend:

* ``"incremental"`` (default) — COO triplet assembly into a persistent
  warm-started HiGHS model; lexicographic stage cuts are *appended*, not
  rebuilt (:mod:`repro.lp.backends.incremental`).
* ``"dense"`` — the legacy path: affine-form rows, full matrix rebuild and a
  cold ``scipy.optimize.linprog`` call per solve
  (:mod:`repro.lp.backends.scipy_dense`).

If the running scipy does not bundle the HiGHS python bindings the
``incremental`` name resolves to the dense implementation, so the default
always works.
"""

from __future__ import annotations

from repro.lp.backends.base import (
    DEFAULT_BACKEND,
    BackendStats,
    Checkpoint,
    LPBackend,
    available_backends,
    get_backend,
    register_backend,
)
from repro.lp.backends.incremental import IncrementalBackend, highs_available
from repro.lp.backends.scipy_dense import ScipyDenseBackend

register_backend("dense", ScipyDenseBackend)
register_backend("scipy-dense", ScipyDenseBackend)  # explicit alias
if highs_available():
    register_backend("incremental", IncrementalBackend)
else:  # pragma: no cover - scipy without bundled highspy
    register_backend("incremental", ScipyDenseBackend)

__all__ = [
    "DEFAULT_BACKEND",
    "BackendStats",
    "Checkpoint",
    "IncrementalBackend",
    "LPBackend",
    "ScipyDenseBackend",
    "available_backends",
    "get_backend",
    "highs_available",
    "register_backend",
]
