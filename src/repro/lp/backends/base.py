"""Backend interface for LP assembly and solving.

An :class:`LPBackend` owns the *row storage* of one :class:`~repro.lp.problem.
LPProblem` and knows how to solve the accumulated system.  Splitting storage
from the problem façade lets each backend pick the representation its solver
wants — affine-form rows rebuilt per solve (:class:`ScipyDenseBackend`) or
growing COO triplet buffers feeding a persistent warm-started HiGHS model
(:class:`IncrementalBackend`).

Backends are registered by name (``register_backend``) and looked up with
``get_backend``; the analysis pipeline and the CLI select one via
``AnalysisOptions.backend`` / ``--backend``.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

from repro.lp.core import LPSolution

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.lp.problem import LPProblem

#: Row kinds.  ``eq`` rows require ``terms·x + const == 0``; ``ge`` rows
#: require ``terms·x + const >= 0``.
EQ = "eq"
GE = "ge"

DEFAULT_BACKEND = "incremental"


@dataclass
class BackendStats:
    """Assembly/solve counters, mostly for tests and benchmarks.

    ``model_builds`` counts full matrix/model constructions; with the
    incremental backend a lexicographic solve sequence should show exactly
    one build plus ``rows_appended`` cut rows, while the dense backend
    rebuilds per stage.
    """

    model_builds: int = 0
    rows_appended: int = 0
    solves: int = 0
    fallbacks: int = 0

    def snapshot(self) -> dict[str, int]:
        return {
            "model_builds": self.model_builds,
            "rows_appended": self.rows_appended,
            "solves": self.solves,
            "fallbacks": self.fallbacks,
        }


def rung_status(reg: float, box: float, bound: float) -> str:
    """Which rung of the robustness cascade produced the solution.

    ``"optimal"`` means the plain problem was solved; the degraded rungs
    (tie-breaking regularization, tighter variable boxes) are still sound
    upper bounds on the imprecision but may be slightly conservative —
    callers comparing backends should not expect exact agreement there.
    """
    if box != bound:
        return "optimal:boxed"
    if reg:
        return "optimal:regularized"
    return "optimal"


@dataclass(frozen=True)
class Checkpoint:
    """Row counts at a point in time; rows past these are removable."""

    eq: int
    ge: int


class LPBackend(abc.ABC):
    """Row storage plus solving for one LP problem instance."""

    name: str = "abstract"

    def __init__(self) -> None:
        self.stats = BackendStats()

    # -- row storage --------------------------------------------------------

    @abc.abstractmethod
    def add_row(self, kind: str, terms, const: float) -> int:
        """Append a row of ``kind`` and return its index within that kind.

        ``terms`` is either a ``{col: coeff}`` dict (the fast path — backends
        may bulk-ingest keys/values without a Python-level loop) or an
        iterable of ``(col, coeff)`` pairs.
        """

    @abc.abstractmethod
    def num_rows(self, kind: str) -> int:
        ...

    @abc.abstractmethod
    def row_arrays(self, kind: str, lo: int = 0, hi: "int | None" = None):
        """Rows ``lo..hi`` of ``kind`` as CSR numpy arrays.

        Returns ``(starts, cols, vals, rhs)`` where ``starts`` has
        ``hi - lo + 1`` entries (zero-based, final terminator included) and
        ``rhs`` follows the row semantics ``terms·x == rhs`` (eq) /
        ``terms·x >= rhs`` (ge).  This is the export surface of the LP
        reduction layer (:mod:`repro.lp.reduce`): presolve and block
        decomposition read row storage through it without caring which
        backend owns the rows.
        """

    @abc.abstractmethod
    def checkpoint(self) -> Checkpoint:
        ...

    @abc.abstractmethod
    def rollback(self, checkpoint: Checkpoint) -> None:
        """Drop every row appended after ``checkpoint``."""

    # -- solving ------------------------------------------------------------

    @abc.abstractmethod
    def solve(
        self,
        problem: "LPProblem",
        objective: "dict[int, float] | None",
        objective_const: float,
        minimize: bool,
        bound: float,
        regularization: float,
    ) -> LPSolution:
        """Solve the accumulated system, optimizing the objective terms."""


_REGISTRY: dict[str, Callable[[], LPBackend]] = {}


def register_backend(name: str, factory: Callable[[], LPBackend]) -> None:
    _REGISTRY[name] = factory


def available_backends() -> list[str]:
    return sorted(_REGISTRY)


def get_backend(name: str | None = None) -> LPBackend:
    """Instantiate a backend by registry name (default: ``incremental``)."""
    key = name or DEFAULT_BACKEND
    try:
        factory = _REGISTRY[key]
    except KeyError:
        raise ValueError(
            f"unknown LP backend {key!r}; available: {available_backends()}"
        ) from None
    return factory()
