"""Shared LP types: errors and solutions.

Kept separate from :mod:`repro.lp.problem` so the backend implementations
(:mod:`repro.lp.backends`) can use them without a circular import — the
problem module imports the backends, not vice versa.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.lp.affine import LinVar


class LPError(Exception):
    pass


class LPInfeasibleError(LPError):
    """No potential annotation of the requested shape exists.

    Raising the template degree, adding loop invariants / pre-conditions, or
    lowering the target moment degree are the standard remedies.

    ``diagnostics`` (when present) names the constraint groups involved in
    the system, derived from the ``note`` annotations attached at emission.
    """

    def __init__(self, message: str, diagnostics: str = ""):
        super().__init__(message + (f"\n{diagnostics}" if diagnostics else ""))
        self.diagnostics = diagnostics


@dataclass
class LPSolution:
    values: np.ndarray
    objective: float
    status: str

    def value_of(self, var: LinVar) -> float:
        return float(self.values[var.index])

    def assignment(self) -> np.ndarray:
        return self.values


__all__ = ["LPError", "LPInfeasibleError", "LPSolution"]
