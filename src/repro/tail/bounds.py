"""Tail bounds from moment bounds (section 5 of the paper).

Three concentration-of-measure inequalities, each consuming a different
slice of the inferred moment information:

* **Markov** (Prop. 5.1) — an upper bound on a raw moment,
* **Cantelli** (Prop. 5.2) — an upper bound on the variance plus an interval
  for the mean,
* **Chebyshev** (Prop. 5.3) — an upper bound on an even central moment plus
  an interval for the mean.

All results are probabilities clipped to ``[0, 1]``; the helpers take the
*pessimistic* end of the mean interval so the bounds stay sound when only
interval information is available.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.rings.interval import Interval


def markov_tail(raw_upper: float, k: int, threshold: float) -> float:
    """``P[X >= t] <= E[X^k] / t^k`` for nonnegative ``X`` and ``t > 0``."""
    if threshold <= 0:
        return 1.0
    if raw_upper < 0:
        raise ValueError("raw moment bound of a nonnegative variable is negative")
    return min(1.0, raw_upper / threshold**k)


def cantelli_upper_tail(
    variance_upper: float, mean_upper: float, threshold: float
) -> float:
    """``P[X >= t] <= V / (V + (t - mean)^2)`` for ``t > mean``.

    Uses the upper end of the mean interval: for every admissible mean
    ``mu <= mean_upper`` the deviation ``t - mu`` is at least
    ``t - mean_upper``, so the bound is sound.
    """
    gap = threshold - mean_upper
    if gap <= 0:
        return 1.0
    if variance_upper < 0:
        raise ValueError("negative variance bound")
    return min(1.0, variance_upper / (variance_upper + gap * gap))


def cantelli_lower_tail(
    variance_upper: float, mean_lower: float, threshold: float
) -> float:
    """``P[X <= t] <= V / (V + (mean - t)^2)`` for ``t < mean``."""
    gap = mean_lower - threshold
    if gap <= 0:
        return 1.0
    return min(1.0, variance_upper / (variance_upper + gap * gap))


def chebyshev_tail(
    central_upper: float, k: int, mean_upper: float, threshold: float
) -> float:
    """``P[X >= t] <= E[(X-mu)^{2k}] / (t - mean)^{2k}`` for ``t > mean``.

    ``central_upper`` bounds the ``2k``-th central moment.
    """
    gap = threshold - mean_upper
    if gap <= 0:
        return 1.0
    if central_upper < 0:
        raise ValueError("negative central moment bound")
    return min(1.0, central_upper / gap ** (2 * k))


def chebyshev_two_sided(
    central_upper: float, k: int, deviation: float
) -> float:
    """``P[|X - mu| >= a] <= E[(X-mu)^{2k}] / a^{2k}``."""
    if deviation <= 0:
        return 1.0
    return min(1.0, central_upper / deviation ** (2 * k))


@dataclass
class TailBounds:
    """All tail bounds available from a set of moment intervals."""

    threshold: float
    markov: dict[int, float]
    cantelli: float | None
    chebyshev: dict[int, float]

    def best(self) -> float:
        candidates = list(self.markov.values()) + list(self.chebyshev.values())
        if self.cantelli is not None:
            candidates.append(self.cantelli)
        return min(candidates) if candidates else 1.0


def best_upper_tail(
    raw: list[Interval],
    central: dict[int, Interval] | None,
    threshold: float,
) -> TailBounds:
    """Best available bound on ``P[X >= threshold]``.

    ``raw[k]`` brackets ``E[X^k]`` (``raw[0]`` ignored), ``central[2k]``
    brackets the ``2k``-th central moment.
    """
    markov = {
        k: markov_tail(raw[k].hi, k, threshold) for k in range(1, len(raw))
    }
    mean_upper = raw[1].hi if len(raw) > 1 else float("inf")
    cantelli = None
    chebyshev: dict[int, float] = {}
    if central:
        if 2 in central:
            cantelli = cantelli_upper_tail(central[2].hi, mean_upper, threshold)
        for order, interval in central.items():
            if order >= 4 and order % 2 == 0:
                chebyshev[order] = chebyshev_tail(
                    interval.hi, order // 2, mean_upper, threshold
                )
    return TailBounds(threshold, markov, cantelli, chebyshev)


def tail_curve(
    thresholds,
    raw: list[Interval],
    central: dict[int, Interval] | None = None,
):
    """``[(d, TailBounds)]`` over a grid — the data behind Figs. 1(c)/9/15."""
    return [(float(d), best_upper_tail(raw, central, float(d))) for d in thresholds]
