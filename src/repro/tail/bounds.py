"""Tail bounds from moment bounds (section 5 of the paper).

Three concentration-of-measure inequalities, each consuming a different
slice of the inferred moment information:

* **Markov** (Prop. 5.1) — an upper bound on a raw moment,
* **Cantelli** (Prop. 5.2) — an upper bound on the variance plus an interval
  for the mean,
* **Chebyshev** (Prop. 5.3) — an upper bound on an even central moment plus
  an interval for the mean.

All results are probabilities clipped to ``[0, 1]``; the helpers take the
*pessimistic* end of the mean interval so the bounds stay sound when only
interval information is available.

Soundness gating: Markov's ``P[X >= t] <= E[X^k] / t^k`` needs ``X >= 0``
at odd ``k`` (for signed costs only the even orders survive, via
``P[X >= t] <= P[X^k >= t^k]``), and a *negative* raw-moment upper bound —
reachable for signed-cost programs — certifies nothing.
:func:`best_upper_tail` therefore takes a ``nonnegative_cost`` flag (derive
it from a program's tick signs with :func:`costs_nonnegative`) and *skips*
inapplicable inequalities rather than raising or recording vacuous ``1.0``
entries; whatever :class:`TailBounds` records is a bound that actually
holds, so per-assertion evidence can name it.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.rings.interval import Interval


def markov_tail(raw_upper: float, k: int, threshold: float) -> float:
    """``P[X >= t] <= E[X^k] / t^k`` for nonnegative ``X`` and ``t > 0``.

    For signed ``X`` the inequality survives only at even ``k`` (apply
    Markov to the nonnegative ``X^k``); callers gate odd orders — see
    :func:`best_upper_tail`.
    """
    if threshold <= 0:
        return 1.0
    if raw_upper < 0:
        raise ValueError("raw moment bound of a nonnegative variable is negative")
    denom = threshold**k
    if denom <= 0:  # threshold^k underflowed
        return 1.0
    return min(1.0, raw_upper / denom)


def cantelli_upper_tail(
    variance_upper: float, mean_upper: float, threshold: float
) -> float:
    """``P[X >= t] <= V / (V + (t - mean)^2)`` for ``t > mean``.

    Uses the upper end of the mean interval: for every admissible mean
    ``mu <= mean_upper`` the deviation ``t - mu`` is at least
    ``t - mean_upper``, so the bound is sound.
    """
    if variance_upper < 0:
        raise ValueError("negative variance bound")
    gap = threshold - mean_upper
    if gap <= 0:
        return 1.0
    denom = variance_upper + gap * gap
    if denom <= 0:  # gap^2 underflowed with a zero variance bound
        return 1.0
    return min(1.0, variance_upper / denom)


def cantelli_lower_tail(
    variance_upper: float, mean_lower: float, threshold: float
) -> float:
    """``P[X <= t] <= V / (V + (mean - t)^2)`` for ``t < mean``."""
    if variance_upper < 0:
        raise ValueError("negative variance bound")
    gap = mean_lower - threshold
    if gap <= 0:
        return 1.0
    denom = variance_upper + gap * gap
    if denom <= 0:  # gap^2 underflowed with a zero variance bound
        return 1.0
    return min(1.0, variance_upper / denom)


def chebyshev_tail(
    central_upper: float, k: int, mean_upper: float, threshold: float
) -> float:
    """``P[X >= t] <= E[(X-mu)^{2k}] / (t - mean)^{2k}`` for ``t > mean``.

    ``central_upper`` bounds the ``2k``-th central moment.
    """
    if central_upper < 0:
        raise ValueError("negative central moment bound")
    gap = threshold - mean_upper
    if gap <= 0:
        return 1.0
    denom = gap ** (2 * k)
    if denom <= 0:  # gap^2k underflowed
        return 1.0
    return min(1.0, central_upper / denom)


def chebyshev_two_sided(
    central_upper: float, k: int, deviation: float
) -> float:
    """``P[|X - mu| >= a] <= E[(X-mu)^{2k}] / a^{2k}``."""
    if deviation <= 0:
        return 1.0
    denom = deviation ** (2 * k)
    if denom <= 0:  # deviation^2k underflowed
        return 1.0
    return min(1.0, central_upper / denom)


@dataclass
class TailBounds:
    """All *applicable* tail bounds from a set of moment intervals.

    Inapplicable inequalities (signed costs at odd Markov orders, negative
    raw-moment upper bounds, a missing/unbounded mean for the one-sided
    central bounds) are absent rather than recorded as vacuous ``1.0``
    entries, so every entry here is a bound that actually holds and can be
    cited as evidence.
    """

    threshold: float
    markov: dict[int, float]
    cantelli: float | None
    chebyshev: dict[int, float]

    def entries(self) -> list[tuple[str, int, float]]:
        """Every recorded bound as ``(inequality, moment order, value)``."""
        out = [("markov", k, v) for k, v in sorted(self.markov.items())]
        if self.cantelli is not None:
            out.append(("cantelli", 2, self.cantelli))
        out.extend(("chebyshev", k, v) for k, v in sorted(self.chebyshev.items()))
        return out

    def best_entry(self) -> "tuple[str, int, float] | None":
        """The tightest recorded bound, or ``None`` when nothing applies.

        Ties break deterministically toward the entry listed first by
        :meth:`entries` (Markov by order, then Cantelli, then Chebyshev).
        """
        entries = self.entries()
        if not entries:
            return None
        return min(entries, key=lambda e: e[2])

    def best(self) -> float:
        """The tightest applicable bound (``1.0`` when nothing applies —
        trivially sound, but :meth:`best_entry` is ``None`` so callers can
        tell the vacuous case apart)."""
        entry = self.best_entry()
        return entry[2] if entry is not None else 1.0


def best_upper_tail(
    raw: list[Interval],
    central: dict[int, Interval] | None,
    threshold: float,
    *,
    nonnegative_cost: bool = True,
) -> TailBounds:
    """Best available bound on ``P[X >= threshold]``.

    ``raw[k]`` brackets ``E[X^k]`` (``raw[0]`` ignored), ``central[2k]``
    brackets the ``2k``-th central moment.  ``nonnegative_cost`` asserts
    ``X >= 0`` (derive it with :func:`costs_nonnegative`); without it,
    odd-order Markov entries are unsound and are skipped, as is any entry
    whose raw-moment upper bound came out negative.
    """
    markov: dict[int, float] = {}
    for k in range(1, len(raw)):
        if not nonnegative_cost and k % 2 == 1:
            continue  # Markov needs X >= 0 at odd orders
        if raw[k].hi < 0:
            continue  # certifies nothing (and for even k cannot be sound)
        markov[k] = markov_tail(raw[k].hi, k, threshold)
    mean = raw[1] if len(raw) > 1 else None
    cantelli = None
    chebyshev: dict[int, float] = {}
    if central and mean is not None and math.isfinite(mean.hi):
        if 2 in central and central[2].hi >= 0:
            cantelli = cantelli_upper_tail(central[2].hi, mean.hi, threshold)
        for order, interval in central.items():
            if order >= 4 and order % 2 == 0 and interval.hi >= 0:
                chebyshev[order] = chebyshev_tail(
                    interval.hi, order // 2, mean.hi, threshold
                )
    return TailBounds(threshold, markov, cantelli, chebyshev)


def best_lower_tail(
    raw: list[Interval],
    central: dict[int, Interval] | None,
    threshold: float,
) -> TailBounds:
    """Best available bound on ``P[X <= threshold]`` (the *lower* tail).

    Only the Cantelli form applies one-sidedly below the mean; it uses the
    *lower* end of the mean interval (``t < mu`` for every admissible
    ``mu >= mean_lower`` keeps the deviation at least ``mean_lower - t``).
    """
    mean = raw[1] if len(raw) > 1 else None
    cantelli = None
    if (
        central
        and mean is not None
        and math.isfinite(mean.lo)
        and 2 in central
        and central[2].hi >= 0
    ):
        cantelli = cantelli_lower_tail(central[2].hi, mean.lo, threshold)
    return TailBounds(threshold, {}, cantelli, {})


def tail_curve(
    thresholds,
    raw: list[Interval],
    central: dict[int, Interval] | None = None,
    *,
    nonnegative_cost: bool = True,
):
    """``[(d, TailBounds)]`` over a grid — the data behind Figs. 1(c)/9/15."""
    return [
        (
            float(d),
            best_upper_tail(
                raw, central, float(d), nonnegative_cost=nonnegative_cost
            ),
        )
        for d in thresholds
    ]


def costs_nonnegative(program) -> bool:
    """``True`` iff every ``tick`` in the program charges a nonnegative cost.

    The flag Markov-style raw-moment bounds need: with only nonnegative
    ticks the accumulated cost is a nonnegative random variable.  Derived
    syntactically from the tick signs, so it is sound for any execution.
    """
    from repro.lang.ast import (
        IfBranch,
        NondetBranch,
        ProbBranch,
        Seq,
        Tick,
        While,
    )

    def walk(stmt) -> bool:
        if isinstance(stmt, Tick):
            return stmt.cost >= 0
        if isinstance(stmt, Seq):
            return all(walk(s) for s in stmt.stmts)
        if isinstance(stmt, (ProbBranch, IfBranch)):
            return walk(stmt.then_branch) and walk(stmt.else_branch)
        if isinstance(stmt, NondetBranch):
            return walk(stmt.left) and walk(stmt.right)
        if isinstance(stmt, While):
            return walk(stmt.body)
        return True

    return all(walk(fun.body) for fun in program.functions.values())
