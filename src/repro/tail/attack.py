"""Timing-attack success-rate analysis (Appendix I).

The attack of Fig. 16(c) estimates the running time of ``compare`` with K
trials per bit and decides each secret bit by thresholding the estimate at
``13N - 1.5i``.  The per-bit failure probability is a tail probability of
the K-trial *mean*, whose variance is ``V/K``; Cantelli's inequality turns
the inferred interval bounds on E and V of the two timing scenarios into
failure bounds, and independence across bits gives the success rate:

    F1_i = (V1/K) / (V1/K + (E1_lo - thr_i)^2)     if E1_lo > thr_i
    F0_i = (V0/K) / (V0/K + (thr_i - E0_hi)^2)     if E0_hi < thr_i
    P[success] >= prod_i (1 - max(F1_i, F0_i))

With the paper's bounds (13)/(14), N = 32 and K = 10^4 this reproduces
``P >= 0.219413`` for all 32 bits and ``P >= 0.830561`` for all but the
last six bits.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

#: Moment bounds for one scenario as functions of (N, i):
#: mean_lo, mean_hi, var_hi.
ScenarioBounds = Callable[[float, float], tuple[float, float, float]]


def paper_t1_bounds(n: float, i: float) -> tuple[float, float, float]:
    """Eq. (13): E[T1] in [13N, 15N], V[T1] <= 26N^2 + 42N."""
    return (13 * n, 15 * n, 26 * n * n + 42 * n)


def paper_t0_bounds(n: float, i: float) -> tuple[float, float, float]:
    """Eq. (14): E[T0] in [13N-5i, 13N-3i], V[T0] <= 8N - 36i^2 + 52Ni + 24i."""
    return (
        13 * n - 5 * i,
        13 * n - 3 * i,
        8 * n - 36 * i * i + 52 * n * i + 24 * i,
    )


def _cantelli_mean_tail(variance: float, gap: float, trials: int) -> float:
    """Bound on P[mean estimate falls ``gap`` past its true mean]."""
    if gap <= 0:
        return 1.0
    v = max(variance, 0.0) / trials
    return v / (v + gap * gap)


@dataclass
class AttackAnalysis:
    bits: int
    trials: int
    per_bit_failure: list[float]

    def success_rate(self, skip_low_bits: int = 0) -> float:
        """Lower bound on P[all bits above ``skip_low_bits`` guessed right].

        ``skip_low_bits`` is the number of low-order bits left to brute
        force (the paper uses 6: low bits have too small a timing gap).
        """
        rate = 1.0
        for i in range(skip_low_bits + 1, self.bits + 1):
            rate *= 1.0 - self.per_bit_failure[i - 1]
        return rate

    def brute_force_calls(self, skip_low_bits: int = 0) -> int:
        """Total compare() calls: K per probed bit plus the brute force."""
        probed = self.bits - skip_low_bits
        return self.trials * probed + 2**skip_low_bits


def analyze_attack(
    bits: int = 32,
    trials: int = 10_000,
    t1_bounds: ScenarioBounds = paper_t1_bounds,
    t0_bounds: ScenarioBounds = paper_t0_bounds,
) -> AttackAnalysis:
    """Per-bit failure bounds for the threshold attack on an N-bit secret."""
    failures: list[float] = []
    n = float(bits)
    for i in range(1, bits + 1):
        threshold = 13 * n - 1.5 * i
        e1_lo, _, v1_hi = t1_bounds(n, float(i))
        e0_lo, e0_hi, v0_hi = t0_bounds(n, float(i))
        # Truth is T1 (bit is 1) but the estimate dips below the threshold:
        f1 = _cantelli_mean_tail(v1_hi, e1_lo - threshold, trials)
        # Truth is T0 (bit is 0) but the estimate rises above the threshold:
        f0 = _cantelli_mean_tail(v0_hi, threshold - e0_hi, trials)
        failures.append(min(1.0, max(f1, f0)))
    return AttackAnalysis(bits=bits, trials=trials, per_bit_failure=failures)
