"""The interval semiring ``I`` of section 2.1 / 3.2.

Closed real intervals ``[lo, hi]`` with (possibly infinite) ends, ordered by
*reverse inclusion of information*: ``[a, b] <= [c, d]`` iff ``[c, d]``
contains ``[a, b]`` — the paper writes the containment order as ``⊑`` with
wider intervals being *larger* (they carry less information but are always
sound as bounds).
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class Interval:
    lo: float
    hi: float

    def __post_init__(self) -> None:
        if self.lo > self.hi:
            raise ValueError(f"empty interval [{self.lo}, {self.hi}]")

    # -- constructors --------------------------------------------------------

    @staticmethod
    def point(value: float) -> "Interval":
        return Interval(value, value)

    @staticmethod
    def top() -> "Interval":
        return Interval(-math.inf, math.inf)

    # -- semiring structure ----------------------------------------------------

    @staticmethod
    def zero() -> "Interval":
        return Interval.point(0.0)

    @staticmethod
    def one() -> "Interval":
        return Interval.point(1.0)

    def __add__(self, other: "Interval | float | int") -> "Interval":
        other = _coerce(other)
        return Interval(self.lo + other.lo, self.hi + other.hi)

    __radd__ = __add__

    def __neg__(self) -> "Interval":
        return Interval(-self.hi, -self.lo)

    def __sub__(self, other: "Interval | float | int") -> "Interval":
        return self + (-_coerce(other))

    def __rsub__(self, other: "Interval | float | int") -> "Interval":
        return _coerce(other) + (-self)

    def __mul__(self, other: "Interval | float | int") -> "Interval":
        other = _coerce(other)
        products = [
            _mul(self.lo, other.lo),
            _mul(self.lo, other.hi),
            _mul(self.hi, other.lo),
            _mul(self.hi, other.hi),
        ]
        return Interval(min(products), max(products))

    __rmul__ = __mul__

    def scale(self, scalar: float) -> "Interval":
        """Product with a point scalar (exact, no dependency blowup)."""
        if scalar >= 0:
            return Interval(scalar * self.lo, scalar * self.hi)
        return Interval(scalar * self.hi, scalar * self.lo)

    def __pow__(self, k: int) -> "Interval":
        if k < 0:
            raise ValueError("negative interval powers are not defined")
        if k == 0:
            return Interval.one()
        if k % 2 == 1:
            return Interval(self.lo**k, self.hi**k)
        # Even power: minimized at the point of smallest magnitude.
        if self.lo >= 0:
            return Interval(self.lo**k, self.hi**k)
        if self.hi <= 0:
            return Interval(self.hi**k, self.lo**k)
        return Interval(0.0, max(self.lo**k, self.hi**k))

    # -- order -----------------------------------------------------------------

    def contains(self, other: "Interval | float | int") -> bool:
        other = _coerce(other)
        return self.lo <= other.lo and other.hi <= self.hi

    def join(self, other: "Interval") -> "Interval":
        return Interval(min(self.lo, other.lo), max(self.hi, other.hi))

    def meet(self, other: "Interval") -> "Interval | None":
        lo = max(self.lo, other.lo)
        hi = min(self.hi, other.hi)
        if lo > hi:
            return None
        return Interval(lo, hi)

    def intersect_nonneg(self) -> "Interval":
        """Meet with ``[0, inf)``; sound for nonnegative quantities."""
        return Interval(max(self.lo, 0.0), max(self.hi, 0.0))

    @property
    def width(self) -> float:
        return self.hi - self.lo

    def is_point(self) -> bool:
        return self.lo == self.hi

    def __repr__(self) -> str:
        return f"[{self.lo:g}, {self.hi:g}]"


def _mul(a: float, b: float) -> float:
    """IEEE-safe product treating 0 * inf as 0 (measure-theoretic convention)."""
    if a == 0.0 or b == 0.0:
        return 0.0
    return a * b


def _coerce(value: "Interval | float | int") -> Interval:
    if isinstance(value, Interval):
        return value
    if isinstance(value, (int, float)):
        return Interval.point(float(value))
    raise TypeError(f"cannot coerce {value!r} to Interval")
