"""Moment semirings (Definition 3.1 of the paper).

The m-th order moment semiring ``M_R^(m)`` over a partially ordered semiring
``R`` has carrier ``|R|^(m+1)`` with

* combination  ``u ⊕ v = <u_k + v_k>``                      (pointwise sum)
* composition  ``u ⊗ v = <sum_{i<=k} C(k,i) u_i v_{k-i}>``  (binomial convolution)
* ``0 = <0,...,0>`` and ``1 = <1,0,...,0>``

Lemma 3.2 (the composition property) states
``<(u+v)^k>_k = <u^k>_k ⊗ <v^k>_k`` — the algebraic fact that makes moments of
sequentially composed costs computable from the moments of the parts.

The functions here are generic in the element operations so the same code
instantiates the semiring with floats (tests, simulation cross-checks),
:class:`~repro.rings.interval.Interval` (interval bounds on moments), and the
symbolic interval polynomials used by the analysis (which have their own
wrapper in :mod:`repro.analysis.annotations`, reusing :func:`binomial`).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Generic, Sequence, TypeVar

from repro.rings.interval import Interval

T = TypeVar("T")


def binomial(n: int, k: int) -> int:
    return math.comb(n, k)


@dataclass(frozen=True)
class SemiringOps(Generic[T]):
    """First-class dictionary of the underlying semiring operations."""

    zero: Callable[[], T]
    one: Callable[[], T]
    add: Callable[[T, T], T]
    mul: Callable[[T, T], T]
    scale_nat: Callable[[int, T], T]
    leq: Callable[[T, T], bool]


def _float_scale(n: int, x: float) -> float:
    return n * x


FLOAT_OPS: SemiringOps[float] = SemiringOps(
    zero=lambda: 0.0,
    one=lambda: 1.0,
    add=lambda a, b: a + b,
    mul=lambda a, b: a * b,
    scale_nat=_float_scale,
    leq=lambda a, b: a <= b,
)

INTERVAL_OPS: SemiringOps[Interval] = SemiringOps(
    zero=Interval.zero,
    one=Interval.one,
    add=lambda a, b: a + b,
    mul=lambda a, b: a * b,
    scale_nat=lambda n, x: x.scale(float(n)),
    leq=lambda a, b: b.contains(a),
)


class MomentVector(Generic[T]):
    """An element of ``M_R^(m)``: the vector ``<u_0, ..., u_m>``.

    Index ``k`` holds (a bound on) the k-th moment of an accumulated cost;
    index 0 is the termination-probability component.
    """

    __slots__ = ("elems", "ops")

    def __init__(self, elems: Sequence[T], ops: SemiringOps[T]):
        self.elems: tuple[T, ...] = tuple(elems)
        self.ops = ops

    # -- constructors ---------------------------------------------------------

    @staticmethod
    def zero(degree: int, ops: SemiringOps[T]) -> "MomentVector[T]":
        return MomentVector([ops.zero() for _ in range(degree + 1)], ops)

    @staticmethod
    def one(degree: int, ops: SemiringOps[T]) -> "MomentVector[T]":
        elems = [ops.one()] + [ops.zero() for _ in range(degree)]
        return MomentVector(elems, ops)

    @staticmethod
    def powers(value: T, degree: int, ops: SemiringOps[T]) -> "MomentVector[T]":
        """``<value^0, value^1, ..., value^m>`` — the moments of a constant.

        This is the left operand of ⊗ in the potential inequality (2):
        prefixing a computation with a deterministic cost ``value``.
        """
        elems: list[T] = [ops.one()]
        for _ in range(degree):
            elems.append(ops.mul(elems[-1], value))
        return MomentVector(elems, ops)

    # -- semiring operations ----------------------------------------------------

    @property
    def degree(self) -> int:
        return len(self.elems) - 1

    def _check(self, other: "MomentVector[T]") -> None:
        if len(self.elems) != len(other.elems):
            raise ValueError("moment vectors of different orders")

    def oplus(self, other: "MomentVector[T]") -> "MomentVector[T]":
        self._check(other)
        add = self.ops.add
        return MomentVector(
            [add(a, b) for a, b in zip(self.elems, other.elems)], self.ops
        )

    def otimes(self, other: "MomentVector[T]") -> "MomentVector[T]":
        """Binomial convolution, eq. (7) of the paper."""
        self._check(other)
        ops = self.ops
        result: list[T] = []
        for k in range(len(self.elems)):
            acc = ops.zero()
            for i in range(k + 1):
                term = ops.mul(self.elems[i], other.elems[k - i])
                acc = ops.add(acc, ops.scale_nat(binomial(k, i), term))
            result.append(acc)
        return MomentVector(result, ops)

    def leq(self, other: "MomentVector[T]") -> bool:
        """Pointwise extension of the semiring order (``⊑``)."""
        self._check(other)
        return all(self.ops.leq(a, b) for a, b in zip(self.elems, other.elems))

    # -- misc -------------------------------------------------------------------

    def __getitem__(self, k: int) -> T:
        return self.elems[k]

    def __iter__(self):
        return iter(self.elems)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, MomentVector):
            return NotImplemented
        return self.elems == other.elems

    def __hash__(self) -> int:
        return hash(self.elems)

    def __repr__(self) -> str:
        inner = ", ".join(repr(e) for e in self.elems)
        return f"<{inner}>"


def float_moments(value: float, degree: int) -> MomentVector[float]:
    return MomentVector.powers(value, degree, FLOAT_OPS)


def interval_moments(value: Interval, degree: int) -> MomentVector[Interval]:
    return MomentVector.powers(value, degree, INTERVAL_OPS)


def raw_to_central(raw: Sequence[Interval], k: int) -> Interval:
    """Interval bound on the k-th central moment from raw-moment intervals.

    Uses ``E[(X-mu)^k] = sum_j C(k,j) (-1)^{k-j} E[X^j] mu^{k-j}`` with
    interval arithmetic (sound but subject to the dependency problem), plus
    the sharpening that even central moments are nonnegative.

    ``raw[j]`` must bound ``E[X^j]`` for ``0 <= j <= k``; ``raw[0]`` is
    ignored (termination probability assumed 1 — the analysis establishes
    this via the side conditions of Theorem 4.4).
    """
    if k < 2:
        raise ValueError("central moments are defined here for k >= 2")
    if len(raw) <= k:
        raise ValueError(f"need raw moments up to degree {k}")
    mu = raw[1]
    acc = Interval.zero()
    for j in range(k + 1):
        coeff = binomial(k, j) * (-1) ** (k - j)
        term = (raw[j] if j > 0 else Interval.one()) * (mu ** (k - j))
        acc = acc + term.scale(float(coeff))
    if k % 2 == 0:
        acc = acc.intersect_nonneg()
    return acc


def variance_interval(raw: Sequence[Interval]) -> Interval:
    """Sharper variance bound than the generic expansion.

    ``V[X] = E[X^2] - E[X]^2``: upper end uses the *smallest magnitude* of
    the first-moment interval (its square is a valid lower bound on
    ``E[X]^2``), exactly the computation of Example 2.4 in the paper.
    """
    e2, e1 = raw[2], raw[1]
    upper = e2.hi - (e1**2).lo
    lower = max(e2.lo - (e1**2).hi, 0.0)
    lower = min(lower, upper)
    return Interval(lower, upper)
