"""Recursive-descent parser for the Appl surface syntax.

Grammar (statement separators are semicolons; trailing semicolons allowed):

    program   ::= func+
    func      ::= "func" ID "(" ")" ["pre" "(" cond {"," cond} ")"]
                  "begin" stmts "end"
    stmts     ::= stmt {";" stmt} [";"]
    stmt      ::= "skip" | "tick" "(" number ")"
                | ID ":=" expr
                | ID "~" dist
                | "call" ID
                | "if" "prob" "(" number ")" "then" stmts ["else" stmts] "fi"
                | "if" "ndet" "then" stmts ["else" stmts] "fi"
                | "if" cond "then" stmts ["else" stmts] "fi"
                | "while" cond ["inv" "(" cond {"," cond} ")"] "do" stmts "od"
    dist      ::= "uniform" "(" number "," number ")"
                | "unifint" "(" number "," number ")"
                | "discrete" "(" number ":" number {"," number ":" number} ")"
                | "ber" "(" number ["," number ["," number]] ")"
    cond      ::= disjunction of conjunctions of comparisons, "true", "false",
                  "not" cond, parentheses
    expr      ::= polynomial arithmetic with + - * and numeric literals;
                  division by a numeric literal is folded into coefficients

Line comments start with ``#``.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.lang import ast
from repro.lang.ast import (
    Assign,
    BinOp,
    BoolLit,
    Call,
    Cmp,
    Cond,
    Const,
    Discrete,
    Distribution,
    Expr,
    FunDef,
    IfBranch,
    NondetBranch,
    ProbBranch,
    Program,
    Sample,
    Seq,
    Skip,
    Stmt,
    Tick,
    Uniform,
    Var,
    While,
)

KEYWORDS = {
    "func", "begin", "end", "pre", "int", "if", "then", "else", "fi", "while", "do",
    "od", "inv", "call", "tick", "skip", "prob", "ndet", "true", "false",
    "not", "and", "or", "uniform", "unifint", "discrete", "ber",
}

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+|\#[^\n]*)
  | (?P<num>\d+\.\d*|\.\d+|\d+)
  | (?P<id>[A-Za-z_][A-Za-z_0-9']*)
  | (?P<op>:=|<=|>=|==|!=|~|[-+*/();,:<>])
    """,
    re.VERBOSE,
)


@dataclass(frozen=True)
class Token:
    kind: str  # "num" | "id" | "kw" | "op" | "eof"
    text: str
    pos: int


class ParseError(Exception):
    pass


def tokenize(source: str) -> list[Token]:
    tokens: list[Token] = []
    pos = 0
    while pos < len(source):
        match = _TOKEN_RE.match(source, pos)
        if match is None:
            raise ParseError(f"unexpected character {source[pos]!r} at offset {pos}")
        pos = match.end()
        if match.lastgroup == "ws":
            continue
        kind = match.lastgroup
        text = match.group()
        if kind == "id" and text in KEYWORDS:
            kind = "kw"
        tokens.append(Token(kind, text, match.start()))
    tokens.append(Token("eof", "", len(source)))
    return tokens


class _Parser:
    def __init__(self, source: str):
        self.tokens = tokenize(source)
        self.index = 0

    # -- token plumbing ------------------------------------------------------

    def peek(self) -> Token:
        return self.tokens[self.index]

    def advance(self) -> Token:
        tok = self.tokens[self.index]
        self.index += 1
        return tok

    def check(self, kind: str, text: str | None = None) -> bool:
        tok = self.peek()
        return tok.kind == kind and (text is None or tok.text == text)

    def accept(self, kind: str, text: str | None = None) -> Token | None:
        if self.check(kind, text):
            return self.advance()
        return None

    def expect(self, kind: str, text: str | None = None) -> Token:
        tok = self.accept(kind, text)
        if tok is None:
            got = self.peek()
            want = text or kind
            raise ParseError(f"expected {want!r}, got {got.text!r} at offset {got.pos}")
        return tok

    # -- grammar ----------------------------------------------------------------

    def parse_program(self) -> Program:
        functions: dict[str, FunDef] = {}
        while not self.check("eof"):
            fun = self.parse_func()
            if fun.name in functions:
                raise ParseError(f"duplicate function {fun.name!r}")
            functions[fun.name] = fun
        if not functions:
            raise ParseError("empty program")
        return Program(functions=functions)

    def parse_func(self) -> FunDef:
        self.expect("kw", "func")
        name = self.expect("id").text
        self.expect("op", "(")
        self.expect("op", ")")
        integers: tuple[str, ...] = ()
        if self.accept("kw", "int"):
            self.expect("op", "(")
            names = [self.expect("id").text]
            while self.accept("op", ","):
                names.append(self.expect("id").text)
            self.expect("op", ")")
            integers = tuple(names)
        pre: tuple[Cond, ...] = ()
        if self.accept("kw", "pre"):
            self.expect("op", "(")
            conds = [self.parse_cond()]
            while self.accept("op", ","):
                conds.append(self.parse_cond())
            self.expect("op", ")")
            pre = tuple(conds)
        self.expect("kw", "begin")
        body = self.parse_stmts()
        self.expect("kw", "end")
        return FunDef(name=name, body=body, pre=pre, integers=integers)

    def parse_stmts(self) -> Stmt:
        stmts = [self.parse_stmt()]
        while self.accept("op", ";"):
            if self.check("kw", "end") or self.check("kw", "fi") or self.check(
                "kw", "od"
            ) or self.check("kw", "else"):
                break
            stmts.append(self.parse_stmt())
        return Seq.of(*stmts)

    def parse_stmt(self) -> Stmt:
        if self.accept("kw", "skip"):
            return Skip()
        if self.accept("kw", "tick"):
            self.expect("op", "(")
            cost = self.parse_number()
            self.expect("op", ")")
            return Tick(cost)
        if self.accept("kw", "call"):
            name = self.expect("id").text
            return Call(name)
        if self.accept("kw", "while"):
            cond = self.parse_cond()
            invariant: tuple[Cond, ...] = ()
            if self.accept("kw", "inv"):
                self.expect("op", "(")
                conds = [self.parse_cond()]
                while self.accept("op", ","):
                    conds.append(self.parse_cond())
                self.expect("op", ")")
                invariant = tuple(conds)
            self.expect("kw", "do")
            body = self.parse_stmts()
            self.expect("kw", "od")
            return While(cond, body, invariant)
        if self.accept("kw", "if"):
            return self.parse_if_tail()
        tok = self.expect("id")
        if self.accept("op", ":="):
            return Assign(tok.text, self.parse_expr())
        if self.accept("op", "~"):
            return Sample(tok.text, self.parse_dist())
        raise ParseError(f"expected ':=' or '~' after {tok.text!r} at {tok.pos}")

    def parse_if_tail(self) -> Stmt:
        if self.accept("kw", "prob"):
            self.expect("op", "(")
            p = self.parse_number()
            self.expect("op", ")")
            self.expect("kw", "then")
            then_branch = self.parse_stmts()
            else_branch: Stmt = Skip()
            if self.accept("kw", "else"):
                else_branch = self.parse_stmts()
            self.expect("kw", "fi")
            return ProbBranch(p, then_branch, else_branch)
        if self.accept("kw", "ndet"):
            self.expect("kw", "then")
            then_branch = self.parse_stmts()
            else_branch = Skip()
            if self.accept("kw", "else"):
                else_branch = self.parse_stmts()
            self.expect("kw", "fi")
            return NondetBranch(then_branch, else_branch)
        cond = self.parse_cond()
        self.expect("kw", "then")
        then_branch = self.parse_stmts()
        else_branch = Skip()
        if self.accept("kw", "else"):
            else_branch = self.parse_stmts()
        self.expect("kw", "fi")
        return IfBranch(cond, then_branch, else_branch)

    # -- distributions --------------------------------------------------------

    def parse_dist(self) -> Distribution:
        if self.accept("kw", "uniform"):
            self.expect("op", "(")
            a = self.parse_number()
            self.expect("op", ",")
            b = self.parse_number()
            self.expect("op", ")")
            return Uniform(a, b)
        if self.accept("kw", "unifint"):
            self.expect("op", "(")
            a = self.parse_number()
            self.expect("op", ",")
            b = self.parse_number()
            self.expect("op", ")")
            return ast.uniform_int(int(a), int(b))
        if self.accept("kw", "ber"):
            self.expect("op", "(")
            p = self.parse_number()
            hi, lo = 1.0, 0.0
            if self.accept("op", ","):
                hi = self.parse_number()
                if self.accept("op", ","):
                    lo = self.parse_number()
            self.expect("op", ")")
            return ast.bernoulli_values(p, hi, lo)
        if self.accept("kw", "discrete"):
            self.expect("op", "(")
            pairs = [self.parse_outcome()]
            while self.accept("op", ","):
                pairs.append(self.parse_outcome())
            self.expect("op", ")")
            return Discrete.of(*pairs)
        got = self.peek()
        raise ParseError(f"expected a distribution at offset {got.pos}")

    def parse_outcome(self) -> tuple[float, float]:
        value = self.parse_number()
        self.expect("op", ":")
        prob = self.parse_number()
        return (value, prob)

    # -- conditions --------------------------------------------------------------

    def parse_cond(self) -> Cond:
        left = self.parse_cond_conj()
        while self.accept("kw", "or"):
            left = ast.Or(left, self.parse_cond_conj())
        return left

    def parse_cond_conj(self) -> Cond:
        left = self.parse_cond_atom()
        while self.accept("kw", "and"):
            left = ast.And(left, self.parse_cond_atom())
        return left

    def parse_cond_atom(self) -> Cond:
        if self.accept("kw", "true"):
            return BoolLit(True)
        if self.accept("kw", "false"):
            return BoolLit(False)
        if self.accept("kw", "not"):
            return ast.Not(self.parse_cond_atom())
        # Parenthesized condition vs parenthesized arithmetic: backtrack.
        if self.check("op", "("):
            saved = self.index
            self.advance()
            try:
                inner = self.parse_cond()
                self.expect("op", ")")
                return inner
            except ParseError:
                self.index = saved
        left = self.parse_expr()
        op_tok = self.peek()
        if op_tok.kind == "op" and op_tok.text in ("<", "<=", ">", ">=", "==", "!="):
            self.advance()
            right = self.parse_expr()
            return Cmp(op_tok.text, left, right)
        raise ParseError(f"expected a comparison at offset {op_tok.pos}")

    # -- expressions ----------------------------------------------------------------

    def parse_expr(self) -> Expr:
        left = self.parse_term()
        while True:
            if self.accept("op", "+"):
                left = BinOp("+", left, self.parse_term())
            elif self.accept("op", "-"):
                left = BinOp("-", left, self.parse_term())
            else:
                return left

    def parse_term(self) -> Expr:
        left = self.parse_factor()
        while True:
            if self.accept("op", "*"):
                left = BinOp("*", left, self.parse_factor())
            elif self.accept("op", "/"):
                divisor = self.parse_factor()
                if not isinstance(divisor, Const) or divisor.value == 0:
                    raise ParseError("division only by nonzero numeric literals")
                left = BinOp("*", left, Const(1.0 / divisor.value))
            else:
                return left

    def parse_factor(self) -> Expr:
        if self.accept("op", "-"):
            return BinOp("-", Const(0.0), self.parse_factor())
        if self.accept("op", "("):
            inner = self.parse_expr()
            self.expect("op", ")")
            return inner
        tok = self.peek()
        if tok.kind == "num":
            self.advance()
            return Const(float(tok.text))
        if tok.kind == "id":
            self.advance()
            return Var(tok.text)
        raise ParseError(f"expected an expression at offset {tok.pos}")

    def parse_number(self) -> float:
        sign = 1.0
        if self.accept("op", "-"):
            sign = -1.0
        tok = self.expect("num")
        return sign * float(tok.text)


def parse_program(source: str) -> Program:
    """Parse a complete Appl program from surface syntax."""
    parser = _Parser(source)
    return parser.parse_program()


def parse_statement(source: str) -> Stmt:
    """Parse a statement sequence (useful in tests)."""
    parser = _Parser(source)
    stmt = parser.parse_stmts()
    parser.expect("eof")
    return stmt


def parse_condition(source: str) -> Cond:
    parser = _Parser(source)
    cond = parser.parse_cond()
    parser.expect("eof")
    return cond


def parse_expression(source: str) -> Expr:
    parser = _Parser(source)
    expr = parser.parse_expr()
    parser.expect("eof")
    return expr
