"""Pretty-printer for Appl programs (inverse of :mod:`repro.lang.parser`)."""

from __future__ import annotations

from repro.lang.ast import (
    Assign,
    BinOp,
    BoolLit,
    Call,
    Cmp,
    Cond,
    Const,
    Discrete,
    Distribution,
    Expr,
    FunDef,
    IfBranch,
    NondetBranch,
    Not,
    And,
    Or,
    ProbBranch,
    Program,
    Sample,
    Seq,
    Skip,
    Stmt,
    Tick,
    Uniform,
    Var,
    While,
)


def format_expr(expr: Expr) -> str:
    if isinstance(expr, Var):
        return expr.name
    if isinstance(expr, Const):
        return f"{expr.value:g}"
    if isinstance(expr, BinOp):
        left = format_expr(expr.left)
        right = format_expr(expr.right)
        if expr.op == "*":
            if isinstance(expr.left, BinOp) and expr.left.op in "+-":
                left = f"({left})"
            if isinstance(expr.right, BinOp) and expr.right.op in "+-":
                right = f"({right})"
        elif expr.op == "-" and isinstance(expr.right, BinOp) and expr.right.op in "+-":
            right = f"({right})"
        return f"{left} {expr.op} {right}"
    raise TypeError(f"unknown expression {expr!r}")


def format_cond(cond: Cond) -> str:
    if isinstance(cond, BoolLit):
        return "true" if cond.value else "false"
    if isinstance(cond, Cmp):
        return f"{format_expr(cond.left)} {cond.op} {format_expr(cond.right)}"
    if isinstance(cond, Not):
        return f"not ({format_cond(cond.arg)})"
    if isinstance(cond, And):
        return f"({format_cond(cond.left)}) and ({format_cond(cond.right)})"
    if isinstance(cond, Or):
        return f"({format_cond(cond.left)}) or ({format_cond(cond.right)})"
    raise TypeError(f"unknown condition {cond!r}")


def format_dist(dist: Distribution) -> str:
    if isinstance(dist, Uniform):
        return f"uniform({dist.a:g}, {dist.b:g})"
    if isinstance(dist, Discrete):
        # Shortest-roundtrip float formatting: probabilities must re-parse
        # to values summing exactly to 1.
        inner = ", ".join(f"{v!r}: {p!r}" for v, p in dist.outcomes)
        return f"discrete({inner})"
    raise TypeError(f"unknown distribution {dist!r}")


def format_stmt(stmt: Stmt, indent: int = 0) -> str:
    pad = "  " * indent
    if isinstance(stmt, Skip):
        return f"{pad}skip"
    if isinstance(stmt, Tick):
        return f"{pad}tick({stmt.cost:g})"
    if isinstance(stmt, Assign):
        return f"{pad}{stmt.var} := {format_expr(stmt.expr)}"
    if isinstance(stmt, Sample):
        return f"{pad}{stmt.var} ~ {format_dist(stmt.dist)}"
    if isinstance(stmt, Call):
        return f"{pad}call {stmt.func}"
    if isinstance(stmt, Seq):
        return ";\n".join(format_stmt(s, indent) for s in stmt.stmts)
    if isinstance(stmt, ProbBranch):
        header = f"{pad}if prob({stmt.prob:g}) then"
        return _format_branches(header, stmt.then_branch, stmt.else_branch, indent)
    if isinstance(stmt, NondetBranch):
        header = f"{pad}if ndet then"
        return _format_branches(header, stmt.left, stmt.right, indent)
    if isinstance(stmt, IfBranch):
        header = f"{pad}if {format_cond(stmt.cond)} then"
        return _format_branches(header, stmt.then_branch, stmt.else_branch, indent)
    if isinstance(stmt, While):
        inv = ""
        if stmt.invariant:
            inv = " inv(" + ", ".join(format_cond(c) for c in stmt.invariant) + ")"
        body = format_stmt(stmt.body, indent + 1)
        return f"{pad}while {format_cond(stmt.cond)}{inv} do\n{body}\n{pad}od"
    raise TypeError(f"unknown statement {stmt!r}")


def _format_branches(header: str, then_branch: Stmt, else_branch: Stmt, indent: int) -> str:
    pad = "  " * indent
    lines = [header, format_stmt(then_branch, indent + 1)]
    if not isinstance(else_branch, Skip):
        lines.append(f"{pad}else")
        lines.append(format_stmt(else_branch, indent + 1))
    lines.append(f"{pad}fi")
    return "\n".join(lines)


def format_fun(fun: FunDef) -> str:
    ints = ""
    if fun.integers:
        ints = " int(" + ", ".join(fun.integers) + ")"
    pre = ""
    if fun.pre:
        pre = " pre(" + ", ".join(format_cond(c) for c in fun.pre) + ")"
    body = format_stmt(fun.body, 1)
    return f"func {fun.name}(){ints}{pre} begin\n{body}\nend"


def format_program(program: Program) -> str:
    ordered = sorted(program.functions.values(), key=lambda f: f.name != program.main)
    return "\n\n".join(format_fun(f) for f in ordered)
