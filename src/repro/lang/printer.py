"""Pretty-printer for Appl programs (inverse of :mod:`repro.lang.parser`).

Two output modes share the same traversal:

* :func:`format_program` — human-oriented (``%g`` floats, declaration order
  preserved), what error messages and examples use.
* :func:`canonical_program` — the *content address* of a program: functions
  in a deterministic order and every float printed in shortest-roundtrip
  form, so two ASTs produce the same text iff they are the same program.
  The service layer hashes this text to key its artifact caches
  (:mod:`repro.service.cache`), and the process-pool batch executor ships it
  to workers instead of pickled ASTs.  Canonical text re-parses to a program
  whose canonical form is identical (a fixpoint).
"""

from __future__ import annotations

from decimal import Decimal

from repro.lang.ast import (
    Assign,
    BinOp,
    BoolLit,
    Call,
    Cmp,
    Cond,
    Const,
    Discrete,
    Distribution,
    Expr,
    FunDef,
    IfBranch,
    NondetBranch,
    Not,
    And,
    Or,
    ProbBranch,
    Program,
    Sample,
    Seq,
    Skip,
    Stmt,
    Tick,
    Uniform,
    Var,
    While,
)


def _g(value: float) -> str:
    """Display formatting: 6 significant digits, how humans read bounds."""
    return f"{value:g}"


def _exact(value: float) -> str:
    """Canonical formatting: shortest string that round-trips the float.

    The Appl tokenizer has no exponent form, so values whose ``repr`` uses
    scientific notation are expanded to their exact positional decimal.
    """
    value = float(value)
    text = repr(value)
    if "e" in text or "E" in text:
        text = format(Decimal(value), "f")
    return text


def format_expr(expr: Expr, fmt=_g) -> str:
    if isinstance(expr, Var):
        return expr.name
    if isinstance(expr, Const):
        return fmt(expr.value)
    if isinstance(expr, BinOp):
        left = format_expr(expr.left, fmt)
        right = format_expr(expr.right, fmt)
        if expr.op == "*":
            if isinstance(expr.left, BinOp) and expr.left.op in "+-":
                left = f"({left})"
            if isinstance(expr.right, BinOp) and expr.right.op in "+-":
                right = f"({right})"
        elif expr.op == "-" and isinstance(expr.right, BinOp) and expr.right.op in "+-":
            right = f"({right})"
        return f"{left} {expr.op} {right}"
    raise TypeError(f"unknown expression {expr!r}")


def format_cond(cond: Cond, fmt=_g) -> str:
    if isinstance(cond, BoolLit):
        return "true" if cond.value else "false"
    if isinstance(cond, Cmp):
        return f"{format_expr(cond.left, fmt)} {cond.op} {format_expr(cond.right, fmt)}"
    if isinstance(cond, Not):
        return f"not ({format_cond(cond.arg, fmt)})"
    if isinstance(cond, And):
        return f"({format_cond(cond.left, fmt)}) and ({format_cond(cond.right, fmt)})"
    if isinstance(cond, Or):
        return f"({format_cond(cond.left, fmt)}) or ({format_cond(cond.right, fmt)})"
    raise TypeError(f"unknown condition {cond!r}")


def format_dist(dist: Distribution, fmt=_g) -> str:
    if isinstance(dist, Uniform):
        return f"uniform({fmt(dist.a)}, {fmt(dist.b)})"
    if isinstance(dist, Discrete):
        # Exact float formatting regardless of mode: probabilities must
        # re-parse to values summing exactly to 1.
        inner = ", ".join(f"{_exact(v)}: {_exact(p)}" for v, p in dist.outcomes)
        return f"discrete({inner})"
    raise TypeError(f"unknown distribution {dist!r}")


def format_stmt(stmt: Stmt, indent: int = 0, fmt=_g) -> str:
    pad = "  " * indent
    if isinstance(stmt, Skip):
        return f"{pad}skip"
    if isinstance(stmt, Tick):
        return f"{pad}tick({fmt(stmt.cost)})"
    if isinstance(stmt, Assign):
        return f"{pad}{stmt.var} := {format_expr(stmt.expr, fmt)}"
    if isinstance(stmt, Sample):
        return f"{pad}{stmt.var} ~ {format_dist(stmt.dist, fmt)}"
    if isinstance(stmt, Call):
        return f"{pad}call {stmt.func}"
    if isinstance(stmt, Seq):
        return ";\n".join(format_stmt(s, indent, fmt) for s in stmt.stmts)
    if isinstance(stmt, ProbBranch):
        header = f"{pad}if prob({fmt(stmt.prob)}) then"
        return _format_branches(header, stmt.then_branch, stmt.else_branch, indent, fmt)
    if isinstance(stmt, NondetBranch):
        header = f"{pad}if ndet then"
        return _format_branches(header, stmt.left, stmt.right, indent, fmt)
    if isinstance(stmt, IfBranch):
        header = f"{pad}if {format_cond(stmt.cond, fmt)} then"
        return _format_branches(header, stmt.then_branch, stmt.else_branch, indent, fmt)
    if isinstance(stmt, While):
        inv = ""
        if stmt.invariant:
            inv = " inv(" + ", ".join(format_cond(c, fmt) for c in stmt.invariant) + ")"
        body = format_stmt(stmt.body, indent + 1, fmt)
        return f"{pad}while {format_cond(stmt.cond, fmt)}{inv} do\n{body}\n{pad}od"
    raise TypeError(f"unknown statement {stmt!r}")


def _format_branches(
    header: str, then_branch: Stmt, else_branch: Stmt, indent: int, fmt=_g
) -> str:
    pad = "  " * indent
    lines = [header, format_stmt(then_branch, indent + 1, fmt)]
    if not isinstance(else_branch, Skip):
        lines.append(f"{pad}else")
        lines.append(format_stmt(else_branch, indent + 1, fmt))
    lines.append(f"{pad}fi")
    return "\n".join(lines)


def format_fun(fun: FunDef, fmt=_g) -> str:
    ints = ""
    if fun.integers:
        ints = " int(" + ", ".join(fun.integers) + ")"
    pre = ""
    if fun.pre:
        pre = " pre(" + ", ".join(format_cond(c, fmt) for c in fun.pre) + ")"
    body = format_stmt(fun.body, 1, fmt)
    return f"func {fun.name}(){ints}{pre} begin\n{body}\nend"


def format_program(program: Program) -> str:
    ordered = sorted(program.functions.values(), key=lambda f: f.name != program.main)
    return "\n\n".join(format_fun(f) for f in ordered)


def canonical_program(program: Program) -> str:
    """Deterministic, content-complete text of ``program``.

    Main first, remaining functions sorted by name (declaration order is
    semantically irrelevant), floats in shortest-roundtrip form so programs
    differing past the 6th significant digit do not collide.
    """
    ordered = sorted(
        program.functions.values(),
        key=lambda f: (f.name != program.main, f.name),
    )
    return "\n\n".join(format_fun(f, _exact) for f in ordered) + "\n"
