"""Abstract syntax of Appl (Fig. 5 of the paper).

Appl is an imperative arithmetic probabilistic language with real-valued
global variables, general recursion, probabilistic branching, sampling from
continuous and discrete distributions, and a ``tick`` statement that updates
the anonymous global cost accumulator (costs may be negative — non-monotone
cost models are a headline feature of the analysis).

Extensions over the paper's minimal grammar, both present in the authors'
implementation and needed for the benchmark suite:

* ``NondetBranch`` — demonic nondeterministic choice (Kura et al. benchmark
  (2-3) "adversarial nondeterminism").
* loop invariant / function pre-condition annotations, playing the role of
  the interprocedural numeric analysis' fixpoint hints (APRON in the paper,
  our polyhedra-lite domain here).

All node classes use ``eq=False`` so nodes hash by identity; the analyses
attach per-node information (logical contexts) keyed by the node object.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.poly.polynomial import Polynomial

# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


class Expr:
    """Arithmetic expression over program variables."""

    def __add__(self, other: "Expr | float | int") -> "Expr":
        return BinOp("+", self, _coerce_expr(other))

    def __radd__(self, other: "Expr | float | int") -> "Expr":
        return BinOp("+", _coerce_expr(other), self)

    def __sub__(self, other: "Expr | float | int") -> "Expr":
        return BinOp("-", self, _coerce_expr(other))

    def __rsub__(self, other: "Expr | float | int") -> "Expr":
        return BinOp("-", _coerce_expr(other), self)

    def __mul__(self, other: "Expr | float | int") -> "Expr":
        return BinOp("*", self, _coerce_expr(other))

    def __rmul__(self, other: "Expr | float | int") -> "Expr":
        return BinOp("*", _coerce_expr(other), self)

    def __neg__(self) -> "Expr":
        return BinOp("-", Const(0.0), self)

    # Comparisons build conditions (convenient for the embedded-DSL frontend).
    def __lt__(self, other: "Expr | float | int") -> "Cmp":
        return Cmp("<", self, _coerce_expr(other))

    def __le__(self, other: "Expr | float | int") -> "Cmp":
        return Cmp("<=", self, _coerce_expr(other))

    def __gt__(self, other: "Expr | float | int") -> "Cmp":
        return Cmp(">", self, _coerce_expr(other))

    def __ge__(self, other: "Expr | float | int") -> "Cmp":
        return Cmp(">=", self, _coerce_expr(other))

    def eq(self, other: "Expr | float | int") -> "Cmp":
        return Cmp("==", self, _coerce_expr(other))

    def to_polynomial(self) -> Polynomial:
        raise NotImplementedError


@dataclass(eq=False)
class Var(Expr):
    name: str

    def to_polynomial(self) -> Polynomial:
        return Polynomial.var(self.name)


@dataclass(eq=False)
class Const(Expr):
    value: float

    def to_polynomial(self) -> Polynomial:
        return Polynomial.constant(float(self.value))


@dataclass(eq=False)
class BinOp(Expr):
    op: str  # one of "+", "-", "*"
    left: Expr
    right: Expr

    def to_polynomial(self) -> Polynomial:
        lhs = self.left.to_polynomial()
        rhs = self.right.to_polynomial()
        if self.op == "+":
            return lhs + rhs
        if self.op == "-":
            return lhs - rhs
        if self.op == "*":
            return lhs * rhs
        raise ValueError(f"unknown operator {self.op!r}")


def _coerce_expr(value: "Expr | float | int") -> Expr:
    if isinstance(value, Expr):
        return value
    if isinstance(value, (int, float)):
        return Const(float(value))
    raise TypeError(f"cannot coerce {value!r} to Expr")


# ---------------------------------------------------------------------------
# Conditions
# ---------------------------------------------------------------------------


class Cond:
    def negate(self) -> "Cond":
        return Not(self)

    def __and__(self, other: "Cond") -> "Cond":
        return And(self, other)

    def __or__(self, other: "Cond") -> "Cond":
        return Or(self, other)


@dataclass(eq=False)
class BoolLit(Cond):
    value: bool

    def negate(self) -> "Cond":
        return BoolLit(not self.value)


@dataclass(eq=False)
class Cmp(Cond):
    op: str  # "<", "<=", ">", ">=", "==", "!="
    left: Expr
    right: Expr

    _NEGATION = {"<": ">=", "<=": ">", ">": "<=", ">=": "<", "==": "!=", "!=": "=="}

    def negate(self) -> "Cond":
        return Cmp(self._NEGATION[self.op], self.left, self.right)


@dataclass(eq=False)
class Not(Cond):
    arg: Cond

    def negate(self) -> "Cond":
        return self.arg


@dataclass(eq=False)
class And(Cond):
    left: Cond
    right: Cond

    def negate(self) -> "Cond":
        return Or(self.left.negate(), self.right.negate())


@dataclass(eq=False)
class Or(Cond):
    left: Cond
    right: Cond

    def negate(self) -> "Cond":
        return And(self.left.negate(), self.right.negate())


# ---------------------------------------------------------------------------
# Distributions
# ---------------------------------------------------------------------------


class Distribution:
    """A probability measure on the reals with computable raw moments."""

    def moment(self, k: int) -> float:
        raise NotImplementedError

    def support(self) -> tuple[float, float]:
        """A (closed) interval containing the support."""
        raise NotImplementedError

    def sample(self, rng) -> float:
        raise NotImplementedError


@dataclass(eq=False)
class Uniform(Distribution):
    """Continuous uniform distribution on ``[a, b]``."""

    a: float
    b: float

    def __post_init__(self) -> None:
        if not self.a < self.b:
            raise ValueError("uniform(a, b) requires a < b")

    def moment(self, k: int) -> float:
        # E[X^k] = (b^{k+1} - a^{k+1}) / ((k+1) (b - a))
        return (self.b ** (k + 1) - self.a ** (k + 1)) / ((k + 1) * (self.b - self.a))

    def support(self) -> tuple[float, float]:
        return (self.a, self.b)

    def sample(self, rng) -> float:
        return rng.uniform(self.a, self.b)

    def __repr__(self) -> str:
        return f"uniform({self.a:g}, {self.b:g})"


@dataclass(eq=False)
class Discrete(Distribution):
    """Finite discrete distribution given as (value, probability) pairs."""

    outcomes: tuple[tuple[float, float], ...]

    def __post_init__(self) -> None:
        total = sum(p for _, p in self.outcomes)
        if abs(total - 1.0) > 1e-9:
            raise ValueError(f"probabilities sum to {total}, not 1")
        if any(p < 0 for _, p in self.outcomes):
            raise ValueError("negative probability")

    @staticmethod
    def of(*pairs: tuple[float, float]) -> "Discrete":
        return Discrete(tuple((float(v), float(p)) for v, p in pairs))

    def moment(self, k: int) -> float:
        return sum(p * v**k for v, p in self.outcomes)

    def support(self) -> tuple[float, float]:
        values = [v for v, p in self.outcomes if p > 0]
        return (min(values), max(values))

    def sample(self, rng) -> float:
        u = rng.random()
        acc = 0.0
        for v, p in self.outcomes:
            acc += p
            if u <= acc:
                return v
        return self.outcomes[-1][0]

    def __repr__(self) -> str:
        inner = ", ".join(f"{v:g}: {p:g}" for v, p in self.outcomes)
        return f"discrete({inner})"


def uniform_int(a: int, b: int) -> Discrete:
    """Uniform distribution on the integers ``a..b`` inclusive."""
    if a > b:
        raise ValueError("unifint(a, b) requires a <= b")
    n = b - a + 1
    return Discrete(tuple((float(v), 1.0 / n) for v in range(a, b + 1)))


def bernoulli_values(p: float, hi: float = 1.0, lo: float = 0.0) -> Discrete:
    """Value ``hi`` with probability ``p``, else ``lo``."""
    return Discrete(((float(hi), float(p)), (float(lo), 1.0 - float(p))))


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------


class Stmt:
    pass


@dataclass(eq=False)
class Skip(Stmt):
    pass


@dataclass(eq=False)
class Tick(Stmt):
    """Add the constant ``cost`` to the global cost accumulator."""

    cost: float


@dataclass(eq=False)
class Assign(Stmt):
    var: str
    expr: Expr


@dataclass(eq=False)
class Sample(Stmt):
    var: str
    dist: Distribution


@dataclass(eq=False)
class Call(Stmt):
    func: str


@dataclass(eq=False)
class ProbBranch(Stmt):
    """``if prob(p) then s1 else s2 fi``."""

    prob: float
    then_branch: Stmt
    else_branch: Stmt

    def __post_init__(self) -> None:
        if not 0.0 <= self.prob <= 1.0:
            raise ValueError(f"branch probability {self.prob} not in [0, 1]")


@dataclass(eq=False)
class IfBranch(Stmt):
    cond: Cond
    then_branch: Stmt
    else_branch: Stmt


@dataclass(eq=False)
class NondetBranch(Stmt):
    """Demonic nondeterministic choice between two branches."""

    left: Stmt
    right: Stmt


@dataclass(eq=False)
class While(Stmt):
    cond: Cond
    body: Stmt
    invariant: "tuple[Cond, ...]" = ()


@dataclass(eq=False)
class Seq(Stmt):
    stmts: tuple[Stmt, ...]

    @staticmethod
    def of(*stmts: Stmt) -> "Stmt":
        flat: list[Stmt] = []
        for s in stmts:
            if isinstance(s, Seq):
                flat.extend(s.stmts)
            elif not isinstance(s, Skip):
                flat.append(s)
        if not flat:
            return Skip()
        if len(flat) == 1:
            return flat[0]
        return Seq(tuple(flat))


# ---------------------------------------------------------------------------
# Programs
# ---------------------------------------------------------------------------


@dataclass(eq=False)
class FunDef:
    name: str
    body: Stmt
    pre: tuple[Cond, ...] = ()
    #: Variables declared integer-valued (type annotations for parameters
    #: that are never written; written variables are classified by the
    #: fixpoint in repro.lang.varinfo regardless).
    integers: tuple[str, ...] = ()


@dataclass(eq=False)
class Program:
    """An Appl program: function declarations plus a distinguished main."""

    functions: dict[str, FunDef] = field(default_factory=dict)
    main: str = "main"

    def __post_init__(self) -> None:
        if self.main not in self.functions:
            raise ValueError(f"program has no {self.main!r} function")

    @property
    def main_fun(self) -> FunDef:
        return self.functions[self.main]

    def fun(self, name: str) -> FunDef:
        return self.functions[name]
