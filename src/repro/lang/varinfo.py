"""Static queries over Appl programs.

The analysis needs: the set of program variables (``VID``), per-function
modified-variable sets (to havoc after calls in the abstract interpreter),
the call graph, and basic well-formedness validation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.lang.ast import (
    And,
    Assign,
    BinOp,
    BoolLit,
    Call,
    Cmp,
    Cond,
    Const,
    Expr,
    IfBranch,
    NondetBranch,
    Not,
    Or,
    ProbBranch,
    Program,
    Sample,
    Seq,
    Skip,
    Stmt,
    Tick,
    Var,
    While,
)


class ValidationError(Exception):
    pass


def expr_vars(expr: Expr) -> set[str]:
    if isinstance(expr, Var):
        return {expr.name}
    if isinstance(expr, Const):
        return set()
    if isinstance(expr, BinOp):
        return expr_vars(expr.left) | expr_vars(expr.right)
    raise TypeError(f"unknown expression {expr!r}")


def cond_vars(cond: Cond) -> set[str]:
    if isinstance(cond, BoolLit):
        return set()
    if isinstance(cond, Cmp):
        return expr_vars(cond.left) | expr_vars(cond.right)
    if isinstance(cond, Not):
        return cond_vars(cond.arg)
    if isinstance(cond, (And, Or)):
        return cond_vars(cond.left) | cond_vars(cond.right)
    raise TypeError(f"unknown condition {cond!r}")


def stmt_vars(stmt: Stmt) -> set[str]:
    """All variables read or written by ``stmt``."""
    if isinstance(stmt, (Skip, Tick, Call)):
        return set()
    if isinstance(stmt, Assign):
        return {stmt.var} | expr_vars(stmt.expr)
    if isinstance(stmt, Sample):
        return {stmt.var}
    if isinstance(stmt, Seq):
        out: set[str] = set()
        for s in stmt.stmts:
            out |= stmt_vars(s)
        return out
    if isinstance(stmt, ProbBranch):
        return stmt_vars(stmt.then_branch) | stmt_vars(stmt.else_branch)
    if isinstance(stmt, NondetBranch):
        return stmt_vars(stmt.left) | stmt_vars(stmt.right)
    if isinstance(stmt, IfBranch):
        return (
            cond_vars(stmt.cond)
            | stmt_vars(stmt.then_branch)
            | stmt_vars(stmt.else_branch)
        )
    if isinstance(stmt, While):
        return cond_vars(stmt.cond) | stmt_vars(stmt.body)
    raise TypeError(f"unknown statement {stmt!r}")


def assigned_vars(stmt: Stmt) -> set[str]:
    """Variables written (assigned or sampled) by ``stmt``, not via calls."""
    if isinstance(stmt, (Skip, Tick, Call)):
        return set()
    if isinstance(stmt, Assign):
        return {stmt.var}
    if isinstance(stmt, Sample):
        return {stmt.var}
    if isinstance(stmt, Seq):
        out: set[str] = set()
        for s in stmt.stmts:
            out |= assigned_vars(s)
        return out
    if isinstance(stmt, ProbBranch):
        return assigned_vars(stmt.then_branch) | assigned_vars(stmt.else_branch)
    if isinstance(stmt, NondetBranch):
        return assigned_vars(stmt.left) | assigned_vars(stmt.right)
    if isinstance(stmt, IfBranch):
        return assigned_vars(stmt.then_branch) | assigned_vars(stmt.else_branch)
    if isinstance(stmt, While):
        return assigned_vars(stmt.body)
    raise TypeError(f"unknown statement {stmt!r}")


def called_funs(stmt: Stmt) -> set[str]:
    if isinstance(stmt, Call):
        return {stmt.func}
    if isinstance(stmt, Seq):
        out: set[str] = set()
        for s in stmt.stmts:
            out |= called_funs(s)
        return out
    if isinstance(stmt, ProbBranch):
        return called_funs(stmt.then_branch) | called_funs(stmt.else_branch)
    if isinstance(stmt, NondetBranch):
        return called_funs(stmt.left) | called_funs(stmt.right)
    if isinstance(stmt, IfBranch):
        return called_funs(stmt.then_branch) | called_funs(stmt.else_branch)
    if isinstance(stmt, While):
        return called_funs(stmt.body)
    return set()


@dataclass
class ProgramInfo:
    """Summary facts the analyses share."""

    variables: tuple[str, ...]
    call_graph: dict[str, set[str]]
    modsets: dict[str, set[str]]
    reachable: set[str] = field(default_factory=set)
    integer_vars: frozenset[str] = frozenset()

    def modset(self, func: str) -> set[str]:
        return self.modsets[func]


def _collect_writes(stmt: Stmt, out: list[Stmt]) -> None:
    if isinstance(stmt, (Assign, Sample)):
        out.append(stmt)
    elif isinstance(stmt, Seq):
        for s in stmt.stmts:
            _collect_writes(s, out)
    elif isinstance(stmt, ProbBranch):
        _collect_writes(stmt.then_branch, out)
        _collect_writes(stmt.else_branch, out)
    elif isinstance(stmt, NondetBranch):
        _collect_writes(stmt.left, out)
        _collect_writes(stmt.right, out)
    elif isinstance(stmt, IfBranch):
        _collect_writes(stmt.then_branch, out)
        _collect_writes(stmt.else_branch, out)
    elif isinstance(stmt, While):
        _collect_writes(stmt.body, out)


def _expr_is_integer(expr: Expr, integer_vars: set[str]) -> bool:
    if isinstance(expr, Const):
        return float(expr.value).is_integer()
    if isinstance(expr, Var):
        return expr.name in integer_vars
    if isinstance(expr, BinOp):
        return _expr_is_integer(expr.left, integer_vars) and _expr_is_integer(
            expr.right, integer_vars
        )
    return False


def integer_valued_vars(program: Program) -> frozenset[str]:
    """Variables provably integer-valued along every execution.

    Greatest fixpoint: start with all written variables, and remove any
    variable with a write that is not (a) an assignment whose expression is
    built from integer constants and integer variables with +/-/*, or (b) a
    sample from a distribution with integer support values.  This is the
    congruence information APRON's integer domains give the paper's tool;
    it lets guard negations be strengthened (``not (x > 0)`` to ``x <= 0``
    together with ``x > 0`` to ``x >= 1``).
    """
    writes: list[Stmt] = []
    declared: set[str] = set()
    for fun in program.functions.values():
        _collect_writes(fun.body, writes)
        declared |= set(fun.integers)
    written = {w.var for w in writes}  # type: ignore[union-attr]
    # Declared-but-written variables still go through the fixpoint below;
    # declarations are only trusted for pure parameters.
    integer_vars = written | (declared - written)
    changed = True
    while changed:
        changed = False
        for write in writes:
            if isinstance(write, Sample):
                from repro.lang.ast import Discrete

                dist = write.dist
                ok = isinstance(dist, Discrete) and all(
                    float(v).is_integer() for v, _ in dist.outcomes
                )
            else:
                assert isinstance(write, Assign)
                ok = _expr_is_integer(write.expr, integer_vars)
            if not ok and write.var in integer_vars:
                integer_vars.discard(write.var)
                changed = True
    return frozenset(integer_vars)


def analyze_program(program: Program) -> ProgramInfo:
    """Validate ``program`` and compute the shared static summary."""
    all_vars: set[str] = set()
    call_graph: dict[str, set[str]] = {}
    for name, fun in program.functions.items():
        all_vars |= stmt_vars(fun.body)
        for cond in fun.pre:
            all_vars |= cond_vars(cond)
        call_graph[name] = called_funs(fun.body)

    for name, callees in call_graph.items():
        for callee in callees:
            if callee not in program.functions:
                raise ValidationError(
                    f"function {name!r} calls undefined function {callee!r}"
                )

    # Reachability from main.
    reachable: set[str] = set()
    frontier = [program.main]
    while frontier:
        fn = frontier.pop()
        if fn in reachable:
            continue
        reachable.add(fn)
        frontier.extend(call_graph[fn])

    # Transitive modsets: least fixpoint over the call graph.
    direct = {
        name: assigned_vars(fun.body) for name, fun in program.functions.items()
    }
    modsets = {name: set(vs) for name, vs in direct.items()}
    changed = True
    while changed:
        changed = False
        for name, callees in call_graph.items():
            for callee in callees:
                extra = modsets[callee] - modsets[name]
                if extra:
                    modsets[name] |= extra
                    changed = True

    return ProgramInfo(
        variables=tuple(sorted(all_vars)),
        call_graph=call_graph,
        modsets=modsets,
        reachable=reachable,
        integer_vars=integer_valued_vars(program),
    )
