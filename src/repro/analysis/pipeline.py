"""The staged analysis pipeline: contexts → templates → constraints → LP.

The paper's tool (section 3.4) is a four-stage pipeline; this module makes
the stages explicit, with one cacheable artifact per stage:

====================  =========================================================
stage                 artifact (cache key)
====================  =========================================================
static analysis       ``ProgramInfo``            (per program)
context analysis      ``ContextMap``             (per program)
constraint derivation ``ConstraintSystem``       (m, d, upper_only, unit_cost,
                                                  degree_cap, backend)
LP solving            ``StageSolution``          (the above + valuations,
                                                  lexicographic, lp_bound)
resolution            ``MomentBoundResult``      (not cached: cheap)
====================  =========================================================

An :class:`AnalysisPipeline` instance owns the caches for one program, so a
caller can re-solve at different objective valuations without re-deriving
constraints, or raise the moment degree and still reuse the static and
context stages.  Lexicographic stage cuts are rolled back after every solve
(:meth:`~repro.lp.problem.LPProblem.rollback`), leaving the cached
constraint system pristine for the next objective.

``analyze`` is the one-shot convenience wrapper (what the CLI and the old
``engine.analyze`` call); ``analyze_many`` is the batch driver that runs a
workload of programs concurrently via :mod:`concurrent.futures`.

Timing: each artifact records its own wall time (``derive_seconds`` on the
constraint system, ``solve_seconds`` on the solution), splitting derivation
from solving — the two roughly co-equal cost centers.  Derivation runs on
the vectorized symbolic kernel (:mod:`repro.poly.kernel`,
:mod:`repro.logic.handelman`); ``repro analyze --profile`` prints the
per-stage split with cProfile hotspots, and
``benchmarks/bench_constraint_derivation.py`` tracks the derivation share
across PRs (``BENCH_constraints.json``).
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Callable, Iterable, Mapping

import numpy as np
from scipy.optimize import linprog

from repro.analysis.annotations import MomentAnnotation
from repro.analysis.results import (
    FunctionBound,
    MomentBoundResult,
    resolve_annotation,
)
from repro.analysis.specs import SpecTable
from repro.analysis.transformer import Deriver
from repro import faults
from repro.deadline import (
    AnalysisTimeout,
    Deadline,
    current_deadline,
    deadline_scope,
)
from repro.lang.ast import Program
from repro.lang.varinfo import ProgramInfo, analyze_program as static_info
from repro.logic.absint import ContextMap, compute_contexts
from repro.logic.context import Context
from repro.lp.affine import AffForm
from repro.lp.backends import get_backend
from repro.lp.core import LPError, LPInfeasibleError, LPSolution
from repro.lp.problem import LPProblem

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from repro.service.cache import ArtifactCache


@dataclass(frozen=True)
class AnalysisOptions:
    """Knobs of the analyzer.

    ``moment_degree`` is the paper's ``m`` (how many raw moments to bound);
    ``template_degree`` is ``d`` (the k-th moment component uses polynomials
    of degree ``k*d``).  ``objective_valuations`` are the concrete points at
    which imprecision is minimized; when omitted, a feasible point of main's
    pre-condition is computed automatically.  ``backend`` picks the LP
    backend by registry name (``None`` = the default incremental backend;
    see :mod:`repro.lp.backends`).  ``lp_reduce`` selects the
    structure-exploiting LP reduction layer (:mod:`repro.lp.reduce`):
    ``None`` follows the process-wide switch (on unless
    ``REPRO_DISABLE_LP_REDUCE`` is set), ``False``/``True`` force it off/on
    for this analysis.  ``lp_jobs`` is the LP worker-process budget for
    the parallel block-solve layer (:mod:`repro.lp.parallel`): ``None``
    follows the ``REPRO_LP_JOBS`` environment default (unset ⇒ serial),
    ``0`` means one worker per CPU, ``1`` forces the in-process sequential
    path.  Parallelism never changes results, so ``lp_jobs`` is not part
    of any cache key.

    ``deadline_seconds`` bounds the analysis wall-clock: a monotonic
    :class:`~repro.deadline.Deadline` token is armed for the run and
    checked at every stage boundary, inside both LP backends, the reduce
    block loop, the parallel pool's parent-side wait, and vectorized MC
    supersteps; expiry raises :class:`~repro.deadline.AnalysisTimeout`.
    ``degrade`` opts into the graceful-degradation ladder: on timeout (or
    an :class:`~repro.lp.core.LPError` surviving the template-restart
    ladder) the analysis is retried at descending moment degrees, each
    rung under a fresh budget, and the result carries a ``degraded``
    provenance block.  Both are runtime-only knobs — like ``lp_jobs``
    they never enter cache keys (an un-degraded result is identical with
    or without them), and degraded results are never cached at all.
    """

    moment_degree: int = 2
    template_degree: int = 1
    objective_valuations: tuple[dict[str, float], ...] | None = None
    upper_only: bool = False
    unit_cost: bool = False
    check_soundness: bool = False
    lexicographic: bool = True
    lp_bound: float = 1e12
    degree_cap: int | None = None
    backend: str | None = None
    lp_reduce: bool | None = None
    lp_jobs: int | None = None
    deadline_seconds: float | None = None
    degrade: bool = False

    def __post_init__(self) -> None:
        if self.moment_degree < 1:
            raise ValueError("moment_degree must be at least 1")
        if self.template_degree < 1:
            raise ValueError("template_degree must be at least 1")
        if self.deadline_seconds is not None and self.deadline_seconds <= 0:
            raise ValueError("deadline_seconds must be positive when set")

    def derivation_key(self) -> tuple:
        """The options a :class:`ConstraintSystem` depends on."""
        return (
            self.moment_degree,
            self.template_degree,
            self.upper_only,
            self.unit_cost,
            self.degree_cap,
            self.backend,
        )

    def solve_key(self, valuations: list[dict[str, float]]) -> tuple:
        frozen = tuple(tuple(sorted(v.items())) for v in valuations)
        return self.derivation_key() + (
            frozen,
            self.lexicographic,
            self.lp_bound,
            self.effective_lp_reduce(),
        )

    def effective_lp_reduce(self) -> bool:
        """Whether this analysis solves through the LP reduction layer.

        Resolved against the process-wide switch at call time, so cache
        keys — which must distinguish reduced from unreduced solves — stay
        truthful even when the ``None`` default is in effect.
        """
        from repro.lp.reduce import reduce_enabled

        return reduce_enabled() if self.lp_reduce is None else self.lp_reduce

    def result_key(self, valuations: list[dict[str, float]]) -> tuple:
        """The options a final :class:`MomentBoundResult` depends on."""
        return self.solve_key(valuations) + (self.check_soundness,)


@dataclass
class ConstraintSystem:
    """Stage-3 artifact: the derived LP plus the templates that feed it.

    The artifact is picklable (the backend drops its native solver handle on
    serialization and rebuilds lazily) and may be shared between pipelines
    through an :class:`~repro.service.cache.ArtifactCache`; ``solve_lock``
    serializes the solve/rollback critical section on the shared ``lp``.
    """

    key: tuple
    lp: LPProblem
    specs: SpecTable
    main_pre: MomentAnnotation
    called: list[str]
    derive_seconds: float
    #: Pristine sizes captured at derivation time.  ``lp`` itself briefly
    #: carries lexicographic cut rows inside the (locked) solve window, so
    #: reporting code must use these instead of the live counts.
    num_variables: int = 0
    num_constraints: int = 0

    def __post_init__(self) -> None:
        self.solve_lock = threading.Lock()

    def __getstate__(self):
        state = self.__dict__.copy()
        state.pop("solve_lock", None)
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)
        self.solve_lock = threading.Lock()


@dataclass
class StageSolution:
    """Stage-4 artifact: one lexicographic solve of a constraint system.

    ``statuses[k]`` records which rung of the backend's robustness cascade
    produced stage ``k`` (``"optimal"``, ``"optimal:regularized"``,
    ``"optimal:boxed"``, or ``"constant"`` for stages with nothing to
    optimize); ``scales[k]`` is the normalization factor applied to the
    stage objective — the natural unit for comparing stage optima across
    backends.  ``tolerances[k]`` is the cut margin added when pinning stage
    ``k``'s optimum for the next stage, in the stage objective's own units
    (0.0 for the final stage, which pins nothing): the recorded
    ``objective_values`` are the un-padded stage optima, and the margin
    documents how far later stages were allowed to drift off them.
    ``reduction`` carries the LP reduction layer's presolve/decomposition
    stats (including per-component solve times) when the solve went through
    it, so staged artifacts retain the mapping the full-space solution
    values were reconstructed under.
    """

    key: tuple
    solution: LPSolution
    objective_values: list[float]
    valuations: list[dict[str, float]]
    solve_seconds: float
    statuses: list[str] = field(default_factory=list)
    scales: list[float] = field(default_factory=list)
    tolerances: list[float] = field(default_factory=list)
    reduction: dict | None = None
    #: Tighter template-coefficient box a restart solved under, or ``None``
    #: when the solve succeeded at ``options.lp_bound`` (see
    #: ``_TEMPLATE_RESTART_LADDER``).
    restart_bound: float | None = None


class AnalysisPipeline:
    """Staged, cache-carrying analysis of one program.

    Quickstart::

        pipe = AnalysisPipeline(program)
        r1 = pipe.analyze(AnalysisOptions(moment_degree=2))
        # re-solve with a different objective: constraints are reused
        r2 = pipe.analyze(AnalysisOptions(
            moment_degree=2, objective_valuations=({"d": 50},)))
        # raise the degree: static + context stages are reused
        r3 = pipe.analyze(AnalysisOptions(moment_degree=4))

    With an ``artifacts`` store (:class:`repro.service.cache.ArtifactCache`)
    the same reuse extends *across pipelines, processes, and sessions*:
    every stage consults the content-addressed store (keyed by the program's
    canonical text plus the stage's option tuple) before computing, and
    publishes what it computed.  The per-instance dicts above remain the
    first-level cache — the store is only consulted on instance misses.
    """

    def __init__(self, program: Program, artifacts: "ArtifactCache | None" = None):
        self.program = program
        self.artifacts = artifacts
        self._program_hash: str | None = None
        self._info: ProgramInfo | None = None
        self._cmap: ContextMap | None = None
        self._systems: dict[tuple, ConstraintSystem] = {}
        self._solutions: dict[tuple, StageSolution] = {}
        self._valuations: dict[tuple | None, list[dict[str, float]]] = {}
        self._results: dict[tuple, MomentBoundResult] = {}

    @property
    def program_hash(self) -> str:
        """Content address of the program (SHA-256 of its canonical text)."""
        if self._program_hash is None:
            from repro.service.cache import program_key

            self._program_hash = program_key(self.program)
        return self._program_hash

    def _shared(self, stage: str, options_key: tuple, compute: Callable):
        """Artifact-store read-through: instance caches sit in front."""
        if self.artifacts is None:
            return compute()
        cached = self.artifacts.get(self.program_hash, stage, options_key)
        if cached is not None:
            return cached
        value = compute()
        self.artifacts.put(self.program_hash, stage, options_key, value)
        return value

    # -- stages 1+2: static facts and context analysis -----------------------
    #
    # AST nodes hash by identity, and ``ContextMap`` attaches contexts *per
    # node object* — so the static artifacts are only meaningful alongside
    # the exact AST they were computed from.  They are therefore cached as
    # one bundle ``(program, info, cmap)``; a pipeline that loads the bundle
    # re-anchors ``self.program`` onto the bundled AST (same canonical text,
    # hence the same program) so node identities line up for derivation.

    def _base(self) -> tuple[ProgramInfo, ContextMap]:
        if self._info is None or self._cmap is None:

            def compute():
                info = static_info(self.program)
                return self.program, info, compute_contexts(self.program, info)

            program, info, cmap = self._shared("base", (), compute)
            self.program = program
            self._info = info
            self._cmap = cmap
        return self._info, self._cmap

    def static_info(self) -> ProgramInfo:
        return self._base()[0]

    def context_map(self) -> ContextMap:
        return self._base()[1]

    # -- stage 3: constraint derivation -------------------------------------

    def constraint_system(self, options: AnalysisOptions) -> ConstraintSystem:
        key = options.derivation_key()
        cached = self._systems.get(key)
        if cached is not None:
            return cached
        system = self._shared(
            "system", key, lambda: self._derive_system(options, key)
        )
        self._systems[key] = system
        return system

    def _derive_system(self, options: AnalysisOptions, key: tuple) -> ConstraintSystem:
        start = time.perf_counter()
        info = self.static_info()
        cmap = self.context_map()
        lp = LPProblem(backend=get_backend(options.backend))
        called = sorted(
            set().union(*(info.call_graph[f] for f in info.reachable))
            & info.reachable
        )
        specs = SpecTable(
            lp,
            called,
            options.moment_degree,
            options.template_degree,
            info.variables,
            upper_only=options.upper_only,
            degree_cap=options.degree_cap,
        )
        deriver = Deriver(
            lp=lp,
            cmap=cmap,
            specs=specs,
            m=options.moment_degree,
            template_degree=options.template_degree,
            variables=info.variables,
            unit_cost=options.unit_cost,
            upper_only=options.upper_only,
            degree_cap=options.degree_cap,
        )
        for name in called:
            deriver.derive_function_specs(self.program, name)
        main_post = MomentAnnotation.one(options.moment_degree)
        main_pre = deriver.derive(self.program.main_fun.body, main_post, level=0)
        return ConstraintSystem(
            key=key,
            lp=lp,
            specs=specs,
            main_pre=main_pre,
            called=called,
            derive_seconds=time.perf_counter() - start,
            num_variables=lp.num_variables,
            num_constraints=lp.num_constraints,
        )

    # -- stage 4: LP solving -------------------------------------------------

    def _objective_valuations(self, options: AnalysisOptions) -> list[dict[str, float]]:
        """Memoized: the automatic case runs a small LP (`_feasible_point`)
        that must not be repaid on every cache-hitting re-analysis."""
        if options.objective_valuations is None:
            vkey = None
        else:
            vkey = tuple(
                tuple(sorted(v.items())) for v in options.objective_valuations
            )
        cached = self._valuations.get(vkey)
        if cached is None:
            cached = self._shared(
                "valuations",
                ("auto",) if vkey is None else vkey,
                lambda: _objective_valuations(
                    options, self.context_map().fun_pre[self.program.main],
                    self.static_info().variables,
                ),
            )
            self._valuations[vkey] = cached
        return cached

    def solve(self, options: AnalysisOptions) -> StageSolution:
        system = self.constraint_system(options)
        valuations = self._objective_valuations(options)
        key = options.solve_key(valuations)
        cached = self._solutions.get(key)
        if cached is not None:
            return cached
        staged = self._shared(
            "solution", key, lambda: self._solve_system(system, valuations, options, key)
        )
        self._solutions[key] = staged
        return staged

    def _solve_system(
        self,
        system: ConstraintSystem,
        valuations: list[dict[str, float]],
        options: AnalysisOptions,
        key: tuple,
    ) -> StageSolution:
        start = time.perf_counter()
        # The system may be shared with other pipelines through the artifact
        # store; the lock serializes the cut/solve/rollback window.
        with system.solve_lock:
            checkpoint = system.lp.checkpoint()
            try:
                solution, objective_values, statuses, scales, tolerances, used = (
                    _restarting_solve(system.lp, system.main_pre, valuations, options)
                )
                reduction = system.lp.reduction_stats()
            finally:
                # Drop the stage cuts so the cached system stays re-solvable
                # under a different objective.
                system.lp.rollback(checkpoint)
        return StageSolution(
            key=key,
            solution=solution,
            objective_values=objective_values,
            valuations=valuations,
            solve_seconds=time.perf_counter() - start,
            statuses=statuses,
            scales=scales,
            tolerances=tolerances,
            reduction=reduction,
            restart_bound=None if used == options.lp_bound else used,
        )

    # -- stage 5: resolution --------------------------------------------------

    def analyze(self, options: AnalysisOptions | None = None) -> MomentBoundResult:
        """Run all stages (using whatever is cached) and resolve bounds.

        With an artifact store attached the *final result* is cached too
        (stage ``"result"``), so a fully warm analysis is one content hash
        plus one store read — and every caller (CLI, server, batch worker)
        sees the identical result object for identical inputs.

        ``options.deadline_seconds`` arms a :class:`~repro.deadline.Deadline`
        for the run; ``options.degrade`` falls back to lower moment degrees
        on timeout or solver failure (see :meth:`_degraded_analyze`).
        """
        options = options or AnalysisOptions()
        try:
            return self._deadlined_analyze(options)
        except AnalysisTimeout as exc:
            if not options.degrade or options.moment_degree <= 1:
                raise
            start = min(max(exc.lex_completed, 1), options.moment_degree - 1)
            return self._degraded_analyze(options, exc, start)
        except LPError as exc:
            if not options.degrade or options.moment_degree <= 1:
                raise
            return self._degraded_analyze(options, exc, options.moment_degree - 1)

    def _deadlined_analyze(self, options: AnalysisOptions) -> MomentBoundResult:
        """One attempt at the requested degree, under the armed deadline."""
        if options.deadline_seconds is None:
            return self._cached_analyze(options)
        with deadline_scope(Deadline(options.deadline_seconds)):
            return self._cached_analyze(options)

    def _cached_analyze(self, options: AnalysisOptions) -> MomentBoundResult:
        key = options.result_key(self._objective_valuations(options))
        cached = self._results.get(key)
        if cached is None:
            cached = self._shared(
                "result", key, lambda: self._analyze_uncached(options)
            )
            self._results[key] = cached
        return cached

    def _degraded_analyze(
        self,
        options: AnalysisOptions,
        cause: Exception,
        start_degree: int,
    ) -> MomentBoundResult:
        """Graceful degradation: retry at descending moment degrees.

        Each rung runs the full pipeline at a lower ``moment_degree`` with a
        *fresh* deadline budget (the token from the failed attempt is
        exhausted by definition).  The first rung that solves yields a copy
        of its result carrying a ``degraded`` provenance block; assertions
        above the degraded degree evaluate to inconclusive downstream (the
        policy evaluator reads the provenance).  Degraded results are never
        written to the instance or artifact caches: the cache key describes
        the *requested* analysis, and a later retry with more budget must
        not be poisoned by a past timeout.

        If every rung fails, the original failure is re-raised.
        """
        import copy

        for degree in range(start_degree, 0, -1):
            rung = replace(options, moment_degree=degree, degrade=False)
            try:
                result = self._deadlined_analyze(rung)
            except (AnalysisTimeout, LPError):
                continue
            degraded = copy.copy(result)
            degraded.degraded = {
                "requested_degree": options.moment_degree,
                "degree": degree,
                "cause": type(cause).__name__,
                "error": str(cause),
            }
            return degraded
        raise cause

    def _stage_boundary(self, stage: str) -> None:
        """Fault-injection + deadline check at a pipeline stage boundary."""
        faults.check("pipeline.stage")
        deadline = current_deadline()
        if deadline is not None:
            deadline.check(stage)

    def _analyze_uncached(self, options: AnalysisOptions) -> MomentBoundResult:
        start = time.perf_counter()
        self._stage_boundary("derive")
        system = self.constraint_system(options)
        self._stage_boundary("solve")
        staged = self.solve(options)
        self._stage_boundary("resolve")
        values = staged.solution.values

        resolved = resolve_annotation(system.main_pre, values)
        fun_bounds = {
            name: FunctionBound(
                name=name,
                pres=[resolve_annotation(a, values) for a in spec.pres],
                posts=[resolve_annotation(a, values) for a in spec.posts],
            )
            for name, spec in system.specs.specs.items()
        }
        result = MomentBoundResult(
            raw=resolved,
            functions=fun_bounds,
            valuations=list(staged.valuations),
            objective_values=list(staged.objective_values),
            solver_statuses=list(staged.statuses),
            objective_scales=list(staged.scales),
            stage_tolerances=list(staged.tolerances),
            lp_reduction=staged.reduction,
            lp_restart_bound=staged.restart_bound,
            warnings=list(self.context_map().warnings),
            lp_variables=system.num_variables,
            lp_constraints=system.num_constraints,
            solve_seconds=time.perf_counter() - start,
        )
        if options.check_soundness:
            from repro.soundness.checker import check_soundness

            result.soundness = check_soundness(
                self.program, options.moment_degree * options.template_degree
            )
        return result


# ---------------------------------------------------------------------------
# One-shot and batch drivers
# ---------------------------------------------------------------------------


def analyze(program: Program, options: AnalysisOptions | None = None) -> MomentBoundResult:
    """Derive interval bounds on the raw moments of the cost of ``program``."""
    return AnalysisPipeline(program).analyze(options)


def analyze_upper_raw(
    program: Program, options: AnalysisOptions | None = None
) -> MomentBoundResult:
    """Upper bounds on raw moments only (the Kura et al. baseline mode).

    Lower ends are pinned to zero, which is only sound for nonnegative
    costs — the same restriction the compared tools have (Fig. 1(a)).
    """
    options = options or AnalysisOptions()
    return analyze(program, replace(options, upper_only=True))


Workload = Mapping[str, "Program | tuple[Program, AnalysisOptions]"]


def analyze_many(
    programs: Workload | Iterable[tuple[str, Program]],
    options: AnalysisOptions | None = None,
    jobs: int | None = None,
    executor: str = "thread",
    cache: "ArtifactCache | None" = None,
) -> dict[str, MomentBoundResult]:
    """Analyze a workload of named programs concurrently.

    ``programs`` maps names to a :class:`Program` or a ``(Program,
    AnalysisOptions)`` pair; entries without their own options use
    ``options``.  Results preserve the input order.  Each program gets its
    own pipeline (and LP backend instance), so runs are independent.

    This is a thin wrapper over :func:`repro.service.executor.run_batch`:
    ``executor="thread"`` (default) overlaps the HiGHS solves while the
    Python derivation stages interleave; ``executor="process"`` shards the
    workload over a :class:`~concurrent.futures.ProcessPoolExecutor` for
    multi-core throughput (pass ``cache`` to share derived artifacts
    through its disk directory).  The first failing program raises, as it
    always has — use :func:`~repro.service.executor.run_batch` directly for
    per-program error isolation.
    """
    from repro.service.executor import run_batch

    report = run_batch(
        programs, options=options, jobs=jobs, executor=executor, cache=cache
    )
    for item in report.items:
        if not item.ok:
            if item.exception is not None:
                raise item.exception
            raise RuntimeError(f"analysis of {item.name!r} failed: {item.error}")
    return {item.name: item.result for item in report.items}


# ---------------------------------------------------------------------------
# Objective handling
# ---------------------------------------------------------------------------


def _objective_valuations(
    options: AnalysisOptions,
    pre_ctx: Context,
    variables: tuple[str, ...],
) -> list[dict[str, float]]:
    def complete(valuation: dict[str, float]) -> dict[str, float]:
        full = {v: 1.0 for v in variables}
        full.update(valuation)
        return full

    if options.objective_valuations:
        return [complete(dict(v)) for v in options.objective_valuations]
    point = _feasible_point(pre_ctx)
    valuations = [complete(point)]
    scaled = {v: x * 50.0 for v, x in point.items()}
    if all(g.holds(scaled) for g in pre_ctx.ineqs) and scaled != point:
        valuations.append(complete(scaled))
    return valuations


def _feasible_point(ctx: Context) -> dict[str, float]:
    """A strictly interior point of the pre-condition polyhedron.

    Maximizes the minimum slack (Chebyshev-style) within a +/-100 box, so the
    objective is evaluated away from degenerate boundary points.
    """
    variables = sorted(ctx.variables())
    if not variables or ctx.bottom:
        return {v: 1.0 for v in variables}
    index = {v: i for i, v in enumerate(variables)}
    n = len(variables)
    # max t  s.t.  g_i(x) >= t,  |x| <= 100,  t <= 10
    cost = np.zeros(n + 1)
    cost[n] = -1.0
    rows = []
    rhs = []
    for g in ctx.ineqs:
        row = np.zeros(n + 1)
        for v, c in g.expr.coeffs:
            row[index[v]] = -c
        row[n] = 1.0
        rows.append(row)
        rhs.append(g.expr.const)
    bounds = [(-100.0, 100.0)] * n + [(None, 10.0)]
    result = linprog(
        cost, A_ub=np.array(rows), b_ub=np.array(rhs), bounds=bounds, method="highs"
    )
    if not result.success:
        return {v: 1.0 for v in variables}
    return {v: float(result.x[index[v]]) for v in variables}


#: Template-restart ladder: progressively tighter template-coefficient boxes
#: tried when the lexicographic solve fails with a *solver* error (not
#: infeasibility) at the requested ``lp_bound``.  Degenerate templates — the
#: known example is ``rdwalk_chain(3)`` at moment degree 4 — put the stage
#: objective on a ray that only the ±``lp_bound`` box stops; at 1e12 that
#: vertex is numerically hopeless for HiGHS (the row coefficients are
#: unit-scale, so the box *is* the conditioning problem) and every cascade
#: rung reports "unknown".  Re-solving the whole template search under a
#: tighter box restores conditioning while staying sound: any feasible point
#: of the boxed system is a feasible point of the original one, so the
#: resolved bounds remain valid — they are merely taken over a restricted
#: certificate family.  Infeasibility at a restart rung means the tighter
#: box cut off every certificate; descending further cannot help, so the
#: original solver error is re-raised.
_TEMPLATE_RESTART_LADDER = (1e8, 1e7, 1e6)


def _restarting_solve(
    lp: LPProblem,
    main_pre: MomentAnnotation,
    valuations: list[dict[str, float]],
    options: AnalysisOptions,
):
    """``_lexicographic_solve`` with the template-restart ladder.

    Returns the five ``_lexicographic_solve`` outputs plus the ``lp_bound``
    the successful attempt ran under (== ``options.lp_bound`` when no
    restart was needed).  Every attempt starts from the caller's checkpoint:
    stage cuts of a failed attempt are rolled back before the next one.
    """
    checkpoint = lp.checkpoint()
    failure: LPError | None = None
    ladder = [options.lp_bound] + [
        b for b in _TEMPLATE_RESTART_LADDER if b < options.lp_bound
    ]
    for attempt_bound in ladder:
        if failure is not None:
            lp.rollback(checkpoint)
        try:
            outcome = _lexicographic_solve(
                lp, main_pre, valuations,
                replace(options, lp_bound=attempt_bound),
            )
            return outcome + (attempt_bound,)
        except LPInfeasibleError:
            if failure is None:
                raise  # genuinely infeasible at the requested bound
            raise failure from None  # the tighter box cut off every certificate
        except LPError as exc:
            failure = exc
    raise failure


def _lexicographic_solve(
    lp: LPProblem,
    main_pre: MomentAnnotation,
    valuations: list[dict[str, float]],
    options: AnalysisOptions,
):
    """Lexicographic minimization of imprecision, first moment first.

    Between stages only a *cut row* pinning the previous stage's optimum is
    appended — with the incremental backend this re-optimizes the persistent
    warm-started model instead of rebuilding it, and with the reduction
    layer the cut lands on the live per-block models in reduced coordinates.

    The recorded ``objective_values`` are the un-padded stage optima; the
    cut adds a ``1e-5 * (1 + |optimum|)``-scale margin (kept well above the
    solver's feasibility tolerance so the next stage's problem stays
    numerically feasible), which necessarily leaks into later-stage feasible
    regions.  The applied margin is therefore returned per stage — in the
    stage objective's own units — so results document how tight each pin
    actually was.
    """
    from repro.lp.parallel import resolve_jobs

    m = main_pre.degree
    reduce = options.effective_lp_reduce()
    jobs = resolve_jobs(options.lp_jobs)
    stage_objectives: list[AffForm] = []
    for k in range(1, m + 1):
        obj = AffForm.constant(0.0)
        for valuation in valuations:
            hi = main_pre.intervals[k].hi.evaluate(valuation)
            obj = obj + _as_aff(hi)
            if not options.upper_only:
                lo = main_pre.intervals[k].lo.evaluate(valuation)
                obj = obj - _as_aff(lo)
        stage_objectives.append(obj)
    # Reduction hint: every column the stage objectives (and hence the cut
    # rows) can touch must survive presolve into the solved core.
    lp.protect_columns(
        idx for obj in stage_objectives for idx in obj.terms
    )

    if not options.lexicographic:
        total = AffForm.constant(0.0)
        for obj in stage_objectives:
            total = total + obj
        solution = lp.solve(total, bound=options.lp_bound, reduce=reduce, jobs=jobs)
        return solution, [solution.objective], [solution.status], [1.0], [0.0]

    solution = None
    objective_values: list[float] = []
    statuses: list[str] = []
    scales: list[float] = []
    tolerances: list[float] = []
    for stage, obj in enumerate(stage_objectives):
        if obj.is_constant():
            objective_values.append(obj.const)
            statuses.append("constant")
            scales.append(1.0)
            tolerances.append(0.0)
            continue
        # Normalize the stage objective: higher moments reach 1e8-scale
        # coefficients, and HiGHS is sensitive to objective scaling.
        scale = max(abs(c) for c in obj.terms.values())
        scaled = obj * (1.0 / scale)
        try:
            solution = lp.solve(
                scaled, bound=options.lp_bound, reduce=reduce, jobs=jobs
            )
        except AnalysisTimeout as exc:
            # Stage k bounds the k-th moment: record how many moments were
            # fully solved so the degradation ladder can start there.
            exc.lex_completed = len(objective_values)
            raise
        objective_values.append(solution.objective * scale)
        statuses.append(solution.status)
        scales.append(scale)
        if stage < len(stage_objectives) - 1:
            # Keep a margin well above HiGHS' feasibility tolerance so the
            # next stage's problem stays numerically feasible.  With the
            # reduction layer the pin lands as tighter per-block cuts on the
            # live block models; the applied margin is what gets recorded.
            tolerance = 1e-5 * (1.0 + abs(solution.objective))
            applied = lp.pin_objective(
                scaled, solution.objective, tolerance, note=f"lex.cut{stage + 1}"
            )
            tolerances.append(applied * scale)
        else:
            tolerances.append(0.0)
    if solution is None:
        solution = lp.solve(None, bound=options.lp_bound, reduce=reduce, jobs=jobs)
    return solution, objective_values, statuses, scales, tolerances


def _as_aff(value) -> AffForm:
    if isinstance(value, AffForm):
        return value
    return AffForm.constant(float(value))


__all__ = [
    "AnalysisOptions",
    "AnalysisPipeline",
    "ConstraintSystem",
    "StageSolution",
    "analyze",
    "analyze_many",
    "analyze_upper_raw",
]
