"""Symbolic interval moment annotations: elements of ``M_PI^(m)``.

A :class:`MomentAnnotation` is the derivation system's potential annotation
``Q = <[L_0, U_0], ..., [L_m, U_m]>`` (section 3.3): a vector of intervals
whose ends are polynomials over program variables.  During constraint
generation the polynomial coefficients are affine forms over LP unknowns;
after solving they are plain floats.

The operations implemented are exactly the ones the inference rules need,
and all of them keep templates affine in the LP unknowns:

* ``oplus``            — the ⊕ of the moment semiring (pointwise interval sum)
* ``prefix_cost``      — ``<[c^k, c^k]> ⊗ Q`` for a known constant cost ``c``
                         (rule Q-Tick); interval ends swap under negative
                         scalars, handled exactly since ``c`` is concrete
* ``scale``            — product with ``<[p,p],[0,0],...>`` (rule Q-Prob)
* ``substitute``       — rule Q-Assign
* ``expect``           — rule Q-Sample
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.lang.ast import Distribution
from repro.lp.affine import AffForm
from repro.lp.problem import LPProblem
from repro.poly.kernel import (
    ExpectationPlan,
    TermAccumulator,
    kernel_enabled,
    substitution_plan,
)
from repro.poly.monomial import monomials_up_to_degree
from repro.poly.polynomial import Polynomial
from repro.rings.interval import Interval
from repro.rings.moment import binomial


def _accumulate_interval(sources) -> "PolyInterval":
    """Fused ``Σ scalar·iv`` over ``(PolyInterval, scalar)`` pairs.

    The single home of the accumulation loop shared by ``prefix_cost``,
    ``prob_mix`` and ``oplus_all``: zero scalars contribute nothing (like
    ``Polynomial.scale(0)``), interval ends swap under negative scalars
    (like ``PolyInterval.scale``), and contributions stream through
    :class:`~repro.poly.kernel.TermAccumulator` in source order — the exact
    ``_add_term`` sequence the legacy chained form performs, so results are
    bit-identical to it.
    """
    lo_acc, hi_acc = TermAccumulator(), TermAccumulator()
    for iv, scalar in sources:
        if scalar == 0:
            continue
        lo_src, hi_src = (iv.lo, iv.hi) if scalar >= 0 else (iv.hi, iv.lo)
        for mono, c in lo_src.coeffs.items():
            lo_acc.add(mono, c, scalar)
        for mono, c in hi_src.coeffs.items():
            hi_acc.add(mono, c, scalar)
    return PolyInterval(lo_acc.to_polynomial(), hi_acc.to_polynomial())


@dataclass
class PolyInterval:
    """The interval ``[lo, hi]`` with polynomial ends."""

    lo: Polynomial
    hi: Polynomial

    @staticmethod
    def zero() -> "PolyInterval":
        return PolyInterval(Polynomial.zero(), Polynomial.zero())

    @staticmethod
    def point(poly: Polynomial) -> "PolyInterval":
        return PolyInterval(poly, poly)

    @staticmethod
    def of_constants(lo: float, hi: float) -> "PolyInterval":
        return PolyInterval(Polynomial.constant(lo), Polynomial.constant(hi))

    def __add__(self, other: "PolyInterval") -> "PolyInterval":
        return PolyInterval(self.lo + other.lo, self.hi + other.hi)

    def scale(self, scalar: float) -> "PolyInterval":
        """Product with the point scalar ``[scalar, scalar]`` (exact)."""
        if scalar >= 0:
            return PolyInterval(self.lo.scale(scalar), self.hi.scale(scalar))
        return PolyInterval(self.hi.scale(scalar), self.lo.scale(scalar))

    def map_ends(self, fn: Callable[[Polynomial], Polynomial]) -> "PolyInterval":
        return PolyInterval(fn(self.lo), fn(self.hi))

    def is_zero(self) -> bool:
        return self.lo.is_zero() and self.hi.is_zero()

    def evaluate(self, valuation: dict[str, float]) -> Interval:
        lo = self.lo.evaluate(valuation)
        hi = self.hi.evaluate(valuation)
        if isinstance(lo, AffForm) or isinstance(hi, AffForm):
            raise TypeError("cannot evaluate a template interval to numbers")
        return Interval(min(lo, hi), max(lo, hi))

    def __repr__(self) -> str:
        return f"[{self.lo!r}, {self.hi!r}]"


class MomentAnnotation:
    """``<[L_0,U_0], ..., [L_m,U_m]>`` — an element of ``M_PI^(m)``."""

    __slots__ = ("intervals",)

    def __init__(self, intervals: list[PolyInterval]):
        self.intervals = list(intervals)

    # -- constructors -------------------------------------------------------------

    @staticmethod
    def zero(m: int) -> "MomentAnnotation":
        return MomentAnnotation([PolyInterval.zero() for _ in range(m + 1)])

    @staticmethod
    def one(m: int) -> "MomentAnnotation":
        """The multiplicative unit ``<[1,1],[0,0],...,[0,0]>``.

        This is the post-annotation of a whole program (nothing remains to
        be executed, so all moments of the remaining cost are zero and the
        termination probability is one).
        """
        intervals = [PolyInterval.of_constants(1.0, 1.0)]
        intervals += [PolyInterval.zero() for _ in range(m)]
        return MomentAnnotation(intervals)

    @staticmethod
    def of_point_vector(values: list[float]) -> "MomentAnnotation":
        return MomentAnnotation(
            [PolyInterval.of_constants(v, v) for v in values]
        )

    # -- semiring operations ---------------------------------------------------------

    @property
    def degree(self) -> int:
        return len(self.intervals) - 1

    def oplus(self, other: "MomentAnnotation") -> "MomentAnnotation":
        if len(self.intervals) != len(other.intervals):
            raise ValueError("annotations of different moment orders")
        return MomentAnnotation(
            [a + b for a, b in zip(self.intervals, other.intervals)]
        )

    @staticmethod
    def oplus_all(annotations: "list[MomentAnnotation]") -> "MomentAnnotation":
        """``a_1 ⊕ a_2 ⊕ ... ⊕ a_n`` in one accumulation pass.

        Bit-identical to the left fold of :meth:`oplus` (same merge
        sequence per monomial); with the symbolic kernel enabled the
        intermediate annotations are never materialized.
        """
        if not annotations:
            raise ValueError("oplus_all of no annotations")
        if len(annotations) == 1:
            return annotations[0]
        if not kernel_enabled():
            folded = annotations[0]
            for ann in annotations[1:]:
                folded = folded.oplus(ann)
            return folded
        width = len(annotations[0].intervals)
        if any(len(a.intervals) != width for a in annotations):
            raise ValueError("annotations of different moment orders")
        return MomentAnnotation(
            [
                _accumulate_interval((a.intervals[k], 1.0) for a in annotations)
                for k in range(width)
            ]
        )

    def prefix_cost(self, cost: float) -> "MomentAnnotation":
        """``<[cost^k, cost^k]>_{k} ⊗ self`` — rule (Q-Tick).

        The binomial convolution of eq. (7) where the left operand is the
        (point-interval) moment vector of the deterministic cost.  With the
        symbolic kernel enabled the convolution accumulates into one
        mutable polynomial per interval end — the same ``_add_term``
        sequence the chained interval sums below perform, minus the
        per-step dict copies (bit-identical results, linear allocation).
        """
        m = self.degree
        powers = [1.0]
        for _ in range(m):
            powers.append(powers[-1] * cost)
        if kernel_enabled():
            return MomentAnnotation(
                [
                    _accumulate_interval(
                        (self.intervals[k - i], binomial(k, i) * powers[i])
                        for i in range(k + 1)
                    )
                    for k in range(m + 1)
                ]
            )
        result = []
        for k in range(m + 1):
            acc = PolyInterval.zero()
            for i in range(k + 1):
                scalar = binomial(k, i) * powers[i]
                acc = acc + self.intervals[k - i].scale(scalar)
            result.append(acc)
        return MomentAnnotation(result)

    def scale(self, p: float) -> "MomentAnnotation":
        """``<[p,p],[0,0],...,[0,0]> ⊗ self`` for ``p >= 0`` — rule (Q-Prob)."""
        if p < 0:
            raise ValueError("probability scale must be nonnegative")
        return MomentAnnotation([iv.scale(p) for iv in self.intervals])

    def prob_mix(self, p: float, other: "MomentAnnotation") -> "MomentAnnotation":
        """``self.scale(p) ⊕ other.scale(1 - p)`` — the (Q-Prob) mix.

        With the symbolic kernel enabled the two scalings and the interval
        sum fuse into one accumulation pass per interval end (the same
        ``_add_term`` sequence, so results are bit-identical to the chained
        form), skipping two full intermediate annotations per branch point.
        """
        if not 0.0 <= p <= 1.0:
            raise ValueError("branch probability must lie in [0, 1]")
        q = 1.0 - p
        if not kernel_enabled():
            return self.scale(p).oplus(other.scale(q))
        if len(self.intervals) != len(other.intervals):
            raise ValueError("annotations of different moment orders")
        return MomentAnnotation(
            [
                _accumulate_interval(((iv_a, p), (iv_b, q)))
                for iv_a, iv_b in zip(self.intervals, other.intervals)
            ]
        )

    # -- statement transfers -----------------------------------------------------------

    def substitute(self, var: str, poly: Polynomial) -> "MomentAnnotation":
        """Rule (Q-Assign): ``Q[poly / var]`` on every interval end.

        With the symbolic kernel enabled, all ``2*(m+1)`` interval ends
        share one memoized :class:`~repro.poly.kernel.SubstitutionPlan`, so
        every monomial's expansion is computed once per (var, replacement)
        pair per process rather than once per end per statement.
        """
        if kernel_enabled() and poly.is_concrete():
            plan = substitution_plan(var, poly)
            return MomentAnnotation(
                [iv.map_ends(plan.apply) for iv in self.intervals]
            )
        return MomentAnnotation(
            [iv.map_ends(lambda e: e.substitute(var, poly)) for iv in self.intervals]
        )

    def expect(self, var: str, dist: Distribution) -> "MomentAnnotation":
        """Rule (Q-Sample): ``E_{var ~ dist}[Q]`` on every interval end.

        The per-monomial moment replacements are shared across the interval
        ends through one :class:`~repro.poly.kernel.ExpectationPlan`.
        """
        if kernel_enabled():
            plan = ExpectationPlan(var, dist.moment)
            return MomentAnnotation(
                [iv.map_ends(plan.apply) for iv in self.intervals]
            )
        return MomentAnnotation(
            [
                iv.map_ends(lambda e: e.expect_powers(var, dist.moment))
                for iv in self.intervals
            ]
        )

    # -- queries -----------------------------------------------------------------------

    def evaluate(self, valuation: dict[str, float]) -> list[Interval]:
        return [iv.evaluate(valuation) for iv in self.intervals]

    def max_end_degree(self) -> int:
        return max(
            max(iv.lo.degree(), iv.hi.degree()) for iv in self.intervals
        )

    def __repr__(self) -> str:
        inner = ", ".join(repr(iv) for iv in self.intervals)
        return f"<{inner}>"


def component_degree(k: int, template_degree: int, degree_cap: int | None) -> int:
    """Polynomial degree of the k-th moment component (``min(k*d, cap)``)."""
    degree = k * template_degree
    if degree_cap is not None:
        degree = min(degree, degree_cap)
    return max(degree, 1)


def fresh_annotation(
    lp: LPProblem,
    m: int,
    template_degree: int,
    variables: tuple[str, ...],
    label: str,
    restrict: int = 0,
    upper_only: bool = False,
    degree_cap: int | None = None,
) -> MomentAnnotation:
    """A fresh ``h``-restricted template annotation (section 3.3).

    Components ``k < restrict`` are pinned to ``[0,0]``; if ``restrict == 0``
    the 0-th component is the point ``[1,1]`` (termination probability, fixed
    to one for level-0 annotations as in the paper's examples).  Component
    ``k`` uses polynomials of degree up to ``k * template_degree`` with a
    fresh LP unknown per monomial.  With ``upper_only`` the lower ends are
    pinned to zero (valid for nonnegative costs; used by the raw-moment
    baseline and the termination checker).
    """
    intervals: list[PolyInterval] = []
    for k in range(m + 1):
        if k < restrict:
            intervals.append(PolyInterval.zero())
            continue
        if k == 0:
            intervals.append(PolyInterval.of_constants(1.0, 1.0))
            continue
        monos = monomials_up_to_degree(
            list(variables), component_degree(k, template_degree, degree_cap)
        )
        hi = Polynomial(
            {
                mono: AffForm.of_var(lp.fresh(f"{label}.U{k}[{mono!r}]"))
                for mono in monos
            }
        )
        if upper_only:
            lo = Polynomial.zero()
        else:
            lo = Polynomial(
                {
                    mono: AffForm.of_var(lp.fresh(f"{label}.L{k}[{mono!r}]"))
                    for mono in monos
                }
            )
        intervals.append(PolyInterval(lo, hi))
    return MomentAnnotation(intervals)
