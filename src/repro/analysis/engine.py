"""The analysis driver — a thin façade over the staged pipeline.

Historically this module hard-wired the full contexts → templates →
constraints → LP sequence into one function; that lives in
:mod:`repro.analysis.pipeline` now, with one cacheable artifact per stage
and a batch driver.  This module keeps the stable public entry points:

* :class:`AnalysisOptions` — the analyzer knobs
* :func:`analyze` — one-shot analysis of a single program
* :func:`analyze_upper_raw` — the raw-moment upper-bound baseline mode
* :func:`analyze_many` — concurrent batch analysis of a workload
* :class:`AnalysisPipeline` — stage-level access with artifact caching
"""

from __future__ import annotations

from repro.analysis.pipeline import (
    AnalysisOptions,
    AnalysisPipeline,
    analyze,
    analyze_many,
    analyze_upper_raw,
)
from repro.analysis.transformer import AnalysisError

__all__ = [
    "AnalysisError",
    "AnalysisOptions",
    "AnalysisPipeline",
    "analyze",
    "analyze_many",
    "analyze_upper_raw",
]
