"""The analysis driver: contexts → templates → constraints → LP → bounds.

Orchestrates the full pipeline of the paper's tool (section 3.4):

1. validate the program and compute shared static facts,
2. run the interprocedural context analysis (abstract interpretation),
3. allocate spec templates for every called function at every restriction
   level 0..m (moment-polymorphic recursion),
4. run the backward derivation over every function body and over main,
   emitting linear constraints,
5. solve the LP, minimizing the imprecision of main's pre-annotation at
   concrete valuations of the pre-condition (lexicographically from the
   first moment upwards),
6. resolve the templates into concrete polynomial interval bounds,
7. optionally run the Theorem 4.4 soundness side-condition checks
   (bounded updates + termination-moment finiteness).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace

import numpy as np
from scipy.optimize import linprog

from repro.analysis.annotations import MomentAnnotation
from repro.analysis.results import (
    FunctionBound,
    MomentBoundResult,
    resolve_annotation,
)
from repro.analysis.specs import SpecTable
from repro.analysis.transformer import AnalysisError, Deriver
from repro.lang.ast import Program
from repro.lang.varinfo import analyze_program as static_info
from repro.logic.absint import compute_contexts
from repro.logic.context import Context
from repro.lp.affine import AffForm
from repro.lp.problem import LPProblem


@dataclass(frozen=True)
class AnalysisOptions:
    """Knobs of the analyzer.

    ``moment_degree`` is the paper's ``m`` (how many raw moments to bound);
    ``template_degree`` is ``d`` (the k-th moment component uses polynomials
    of degree ``k*d``).  ``objective_valuations`` are the concrete points at
    which imprecision is minimized; when omitted, a feasible point of main's
    pre-condition is computed automatically.
    """

    moment_degree: int = 2
    template_degree: int = 1
    objective_valuations: tuple[dict[str, float], ...] | None = None
    upper_only: bool = False
    unit_cost: bool = False
    check_soundness: bool = False
    lexicographic: bool = True
    lp_bound: float = 1e12
    degree_cap: int | None = None

    def __post_init__(self) -> None:
        if self.moment_degree < 1:
            raise ValueError("moment_degree must be at least 1")
        if self.template_degree < 1:
            raise ValueError("template_degree must be at least 1")


def analyze(program: Program, options: AnalysisOptions | None = None) -> MomentBoundResult:
    """Derive interval bounds on the raw moments of the cost of ``program``."""
    options = options or AnalysisOptions()
    start = time.perf_counter()

    info = static_info(program)
    cmap = compute_contexts(program, info)
    lp = LPProblem()

    called = sorted(
        set().union(*(info.call_graph[f] for f in info.reachable))
        & info.reachable
    )
    specs = SpecTable(
        lp,
        called,
        options.moment_degree,
        options.template_degree,
        info.variables,
        upper_only=options.upper_only,
        degree_cap=options.degree_cap,
    )
    deriver = Deriver(
        lp=lp,
        cmap=cmap,
        specs=specs,
        m=options.moment_degree,
        template_degree=options.template_degree,
        variables=info.variables,
        unit_cost=options.unit_cost,
        upper_only=options.upper_only,
        degree_cap=options.degree_cap,
    )

    for name in called:
        deriver.derive_function_specs(program, name)

    main_post = MomentAnnotation.one(options.moment_degree)
    main_pre = deriver.derive(program.main_fun.body, main_post, level=0)

    valuations = _objective_valuations(
        options, cmap.fun_pre[program.main], info.variables
    )
    solution, objective_values = _solve(
        lp, main_pre, valuations, options, specs
    )

    resolved = resolve_annotation(main_pre, solution.values)
    fun_bounds = {
        name: FunctionBound(
            name=name,
            pres=[resolve_annotation(a, solution.values) for a in spec.pres],
            posts=[resolve_annotation(a, solution.values) for a in spec.posts],
        )
        for name, spec in specs.specs.items()
    }

    result = MomentBoundResult(
        raw=resolved,
        functions=fun_bounds,
        valuations=list(valuations),
        objective_values=objective_values,
        warnings=list(cmap.warnings),
        lp_variables=lp.num_variables,
        lp_constraints=lp.num_constraints,
        solve_seconds=time.perf_counter() - start,
    )

    if options.check_soundness:
        from repro.soundness.checker import check_soundness

        result.soundness = check_soundness(
            program, options.moment_degree * options.template_degree
        )
    return result


def analyze_upper_raw(
    program: Program, options: AnalysisOptions | None = None
) -> MomentBoundResult:
    """Upper bounds on raw moments only (the Kura et al. baseline mode).

    Lower ends are pinned to zero, which is only sound for nonnegative
    costs — the same restriction the compared tools have (Fig. 1(a)).
    """
    options = options or AnalysisOptions()
    return analyze(program, replace(options, upper_only=True))


# ---------------------------------------------------------------------------
# Objective handling
# ---------------------------------------------------------------------------


def _objective_valuations(
    options: AnalysisOptions,
    pre_ctx: Context,
    variables: tuple[str, ...],
) -> list[dict[str, float]]:
    def complete(valuation: dict[str, float]) -> dict[str, float]:
        full = {v: 1.0 for v in variables}
        full.update(valuation)
        return full

    if options.objective_valuations:
        return [complete(dict(v)) for v in options.objective_valuations]
    point = _feasible_point(pre_ctx)
    valuations = [complete(point)]
    scaled = {v: x * 50.0 for v, x in point.items()}
    if all(g.holds(scaled) for g in pre_ctx.ineqs) and scaled != point:
        valuations.append(complete(scaled))
    return valuations


def _feasible_point(ctx: Context) -> dict[str, float]:
    """A strictly interior point of the pre-condition polyhedron.

    Maximizes the minimum slack (Chebyshev-style) within a +/-100 box, so the
    objective is evaluated away from degenerate boundary points.
    """
    variables = sorted(ctx.variables())
    if not variables or ctx.bottom:
        return {v: 1.0 for v in variables}
    index = {v: i for i, v in enumerate(variables)}
    n = len(variables)
    # max t  s.t.  g_i(x) >= t,  |x| <= 100,  t <= 10
    cost = np.zeros(n + 1)
    cost[n] = -1.0
    rows = []
    rhs = []
    for g in ctx.ineqs:
        row = np.zeros(n + 1)
        for v, c in g.expr.coeffs:
            row[index[v]] = -c
        row[n] = 1.0
        rows.append(row)
        rhs.append(g.expr.const)
    bounds = [(-100.0, 100.0)] * n + [(None, 10.0)]
    result = linprog(
        cost, A_ub=np.array(rows), b_ub=np.array(rhs), bounds=bounds, method="highs"
    )
    if not result.success:
        return {v: 1.0 for v in variables}
    return {v: float(result.x[index[v]]) for v in variables}


def _solve(
    lp: LPProblem,
    main_pre: MomentAnnotation,
    valuations: list[dict[str, float]],
    options: AnalysisOptions,
    specs: SpecTable | None = None,
):
    """Lexicographic minimization of imprecision, first moment first."""
    m = main_pre.degree
    stage_objectives: list[AffForm] = []
    for k in range(1, m + 1):
        obj = AffForm.constant(0.0)
        for valuation in valuations:
            hi = main_pre.intervals[k].hi.evaluate(valuation)
            obj = obj + _as_aff(hi)
            if not options.upper_only:
                lo = main_pre.intervals[k].lo.evaluate(valuation)
                obj = obj - _as_aff(lo)
        stage_objectives.append(obj)

    if not options.lexicographic:
        total = AffForm.constant(0.0)
        for obj in stage_objectives:
            total = total + obj
        solution = lp.solve(total, bound=options.lp_bound)
        return solution, [solution.objective]

    solution = None
    objective_values: list[float] = []
    for stage, obj in enumerate(stage_objectives):
        if obj.is_constant():
            objective_values.append(obj.const)
            continue
        # Normalize the stage objective: higher moments reach 1e8-scale
        # coefficients, and HiGHS is sensitive to objective scaling.
        scale = max(abs(c) for c in obj.terms.values())
        scaled = obj * (1.0 / scale)
        solution = lp.solve(scaled, bound=options.lp_bound)
        objective_values.append(solution.objective * scale)
        if stage < len(stage_objectives) - 1:
            # Keep a margin well above HiGHS' feasibility tolerance so the
            # next stage's problem stays numerically feasible.
            tolerance = 1e-5 * (1.0 + abs(solution.objective))
            lp.add_le(scaled - (solution.objective + tolerance))
    if solution is None:
        solution = lp.solve(None, bound=options.lp_bound)
    return solution, objective_values


def _as_aff(value) -> AffForm:
    if isinstance(value, AffForm):
        return value
    return AffForm.constant(float(value))


__all__ = [
    "AnalysisOptions",
    "AnalysisError",
    "analyze",
    "analyze_upper_raw",
]
