"""Result types for the moment analysis."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.annotations import MomentAnnotation, PolyInterval
from repro.lp.affine import AffForm
from repro.poly.polynomial import Polynomial, format_polynomial
from repro.rings.interval import Interval
from repro.rings.moment import raw_to_central, variance_interval


def resolve_polynomial(poly: Polynomial, values) -> Polynomial:
    """Substitute an LP solution into a template polynomial."""

    def resolve_coeff(c):
        if isinstance(c, AffForm):
            return c.evaluate(values)
        return c

    resolved = poly.map_coefficients(resolve_coeff)
    # Drop numeric noise from the LP solution.
    cleaned = {
        mono: (0.0 if abs(c) < 1e-9 else round(c, 9))
        for mono, c in resolved.coeffs.items()
    }
    return Polynomial(cleaned)


def resolve_annotation(ann: MomentAnnotation, values) -> MomentAnnotation:
    return MomentAnnotation(
        [
            PolyInterval(
                resolve_polynomial(iv.lo, values), resolve_polynomial(iv.hi, values)
            )
            for iv in ann.intervals
        ]
    )


@dataclass
class FunctionBound:
    """Resolved spec annotations of one function, per restriction level."""

    name: str
    pres: list[MomentAnnotation]
    posts: list[MomentAnnotation]


@dataclass
class MomentBoundResult:
    """Interval bounds on the raw moments of the main cost accumulator.

    ``raw.intervals[k]`` brackets ``E[C^k]`` symbolically in the program
    variables *at program entry* (all variables are zero at the start of
    execution unless the objective valuation says otherwise — the symbolic
    form is valid for every initial valuation satisfying the declared
    pre-condition of main, Theorem 4.4).
    """

    raw: MomentAnnotation
    functions: dict[str, FunctionBound] = field(default_factory=dict)
    valuations: list[dict[str, float]] = field(default_factory=list)
    objective_values: list[float] = field(default_factory=list)
    #: Per-stage solver cascade rung ("optimal", "optimal:regularized",
    #: "optimal:boxed", "constant") and objective normalization factor —
    #: see :class:`repro.analysis.pipeline.StageSolution`.
    solver_statuses: list[str] = field(default_factory=list)
    objective_scales: list[float] = field(default_factory=list)
    #: Per-stage lexicographic cut margins, in the stage objective's units:
    #: ``objective_values[k]`` is the un-padded stage optimum, and stages
    #: after ``k`` were held within ``tolerances[k]`` of it (0.0 for the
    #: final stage, which pins nothing).
    stage_tolerances: list[float] = field(default_factory=list)
    #: LP reduction layer stats (columns eliminated, rows deduped, component
    #: sizes, ...) when the solve went through :mod:`repro.lp.reduce`.
    lp_reduction: dict | None = None
    #: Tighter template-coefficient box the solve succeeded under after a
    #: template restart (``None`` for the normal no-restart path); bounds
    #: are then taken over the certificate family restricted to that box —
    #: still sound, possibly conservative.
    lp_restart_bound: float | None = None
    warnings: list[str] = field(default_factory=list)
    lp_variables: int = 0
    lp_constraints: int = 0
    solve_seconds: float = 0.0
    soundness: "object | None" = None
    #: Graceful-degradation provenance: ``None`` for a full-fidelity result;
    #: otherwise ``{"requested_degree", "degree", "cause", "error"}`` — the
    #: analysis fell back to ``degree`` moments after the requested degree
    #: timed out or failed.  Only emitted in :meth:`to_dict` when set, so
    #: un-degraded results stay byte-identical to pre-degradation output.
    degraded: dict | None = None

    # -- numeric queries -----------------------------------------------------------

    def _valuation(self, valuation: dict[str, float] | None) -> dict[str, float]:
        if valuation is not None:
            return valuation
        if self.valuations:
            return self.valuations[0]
        return {}

    def raw_interval(self, k: int, valuation: dict[str, float] | None = None) -> Interval:
        """Numeric interval for ``E[C^k]`` at a concrete initial valuation."""
        return self.raw.intervals[k].evaluate(self._valuation(valuation))

    def raw_intervals(self, valuation: dict[str, float] | None = None) -> list[Interval]:
        return [self.raw_interval(k, valuation) for k in range(self.raw.degree + 1)]

    def central_interval(
        self, k: int, valuation: dict[str, float] | None = None
    ) -> Interval:
        """Interval bound on the k-th central moment ``E[(C - E[C])^k]``."""
        raws = self.raw_intervals(valuation)
        if k == 2:
            return variance_interval(raws)
        return raw_to_central(raws, k)

    def variance(self, valuation: dict[str, float] | None = None) -> Interval:
        return self.central_interval(2, valuation)

    def skewness_upper(self, valuation: dict[str, float] | None = None) -> float:
        """Upper estimate of skewness from the moment intervals."""
        c3 = self.central_interval(3, valuation)
        var = self.variance(valuation)
        if var.lo <= 0:
            return float("inf")
        return c3.hi / var.lo**1.5

    def kurtosis_upper(self, valuation: dict[str, float] | None = None) -> float:
        c4 = self.central_interval(4, valuation)
        var = self.variance(valuation)
        if var.lo <= 0:
            return float("inf")
        return c4.hi / var.lo**2

    # -- symbolic queries ------------------------------------------------------------

    def upper_poly(self, k: int) -> Polynomial:
        return self.raw.intervals[k].hi

    def lower_poly(self, k: int) -> Polynomial:
        return self.raw.intervals[k].lo

    def upper_str(self, k: int) -> str:
        return format_polynomial(self.upper_poly(k), precision=4)

    def lower_str(self, k: int) -> str:
        return format_polynomial(self.lower_poly(k), precision=4)

    def to_dict(self) -> dict:
        """JSON-ready view of the result (used by ``repro serve``).

        Symbolic bounds are rendered with the same formatter as
        :meth:`summary`, numeric intervals as ``[lo, hi]`` pairs at the
        first objective valuation.
        """
        evaluated = {}
        for k in range(1, self.raw.degree + 1):
            interval = self.raw_interval(k)
            evaluated[f"E[C^{k}]"] = [interval.lo, interval.hi]
        if self.raw.degree >= 2:
            var = self.variance()
            evaluated["V[C]"] = [var.lo, var.hi]
        out = {
            "moments": self.raw.degree,
            "raw_bounds": {
                str(k): {"lower": self.lower_str(k), "upper": self.upper_str(k)}
                for k in range(1, self.raw.degree + 1)
            },
            "evaluated": evaluated,
            "valuations": self.valuations,
            "objective_values": self.objective_values,
            "solver_statuses": self.solver_statuses,
            "objective_scales": self.objective_scales,
            "stage_tolerances": self.stage_tolerances,
            "lp_reduction": self.lp_reduction,
            "lp_restart_bound": self.lp_restart_bound,
            "warnings": self.warnings,
            "lp_variables": self.lp_variables,
            "lp_constraints": self.lp_constraints,
            "solve_seconds": self.solve_seconds,
        }
        if self.degraded is not None:
            out["degraded"] = self.degraded
        return out

    def summary(self) -> str:
        lines = [
            f"moment bounds ({self.raw.degree} moments, "
            f"{self.lp_variables} LP vars, {self.lp_constraints} constraints, "
            f"{self.solve_seconds:.3f}s)"
        ]
        if self.degraded is not None:
            lines.append(
                f"  DEGRADED: {self.degraded['degree']} of "
                f"{self.degraded['requested_degree']} requested moments "
                f"({self.degraded['cause']})"
            )
        if self.lp_reduction:
            red = self.lp_reduction
            lines.append(
                f"  lp reduce: {red['cols']}->{red['reduced_cols']} cols, "
                f"{red['rows']}->{red['reduced_rows']} rows, "
                f"{red['components']} block"
                + ("s" if red["components"] != 1 else "")
            )
        if any(self.stage_tolerances):
            margins = ", ".join(f"{t:.3g}" for t in self.stage_tolerances)
            lines.append(f"  lex cut margins: [{margins}]")
        if self.lp_restart_bound is not None:
            lines.append(
                f"  template restart: solved under the ±{self.lp_restart_bound:g} "
                "coefficient box (degenerate template at the requested bound)"
            )
        for k in range(1, self.raw.degree + 1):
            lines.append(f"  E[C^{k}] in [{self.lower_str(k)}, {self.upper_str(k)}]")
        if self.valuations:
            val = self.valuations[0]
            pretty = ", ".join(f"{v}={x:g}" for v, x in sorted(val.items()))
            lines.append(f"  at {{{pretty}}}:")
            for k in range(1, self.raw.degree + 1):
                lines.append(f"    E[C^{k}] in {self.raw_interval(k)!r}")
            if self.raw.degree >= 2:
                lines.append(f"    V[C]    in {self.variance()!r}")
        return "\n".join(lines)
